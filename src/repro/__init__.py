"""NDFT reproduction: near-data LR-TDDFT via hardware/software co-design.

Reproduces "NDFT: Accelerating Density Functional Theory Calculations via
Hardware/Software Co-Design on Near-Data Computing System" (DAC 2025,
arXiv:2504.03451) as a self-contained Python library:

- :mod:`repro.dft` — a functional plane-wave LR-TDDFT implementation (the
  accelerated application) plus its analytic workload model;
- :mod:`repro.parallel` — simulated MPI collectives and data layouts;
- :mod:`repro.hw` — the CPU-NDP/GPU machine models (zsim+Ramulator
  substitute);
- :mod:`repro.shmem` — the shared-block pseudopotential runtime
  (Algorithm 1, Table II APIs, hierarchical arbiters);
- :mod:`repro.core` — the NDFT framework itself: SCA, Eq. 1 cost model,
  cost-aware scheduler, pipeline executor, baselines;
- :mod:`repro.workloads` — the Si_16 .. Si_2048 evaluation systems;
- :mod:`repro.experiments` — drivers regenerating every table and figure.

Quickstart::

    from repro import NdftFramework, run_cpu_baseline, problem_size

    problem = problem_size(1024)            # the paper's "large system"
    result = NdftFramework().run(problem=problem)
    baseline = run_cpu_baseline(problem)
    print(baseline.total_time / result.total_time)   # ~5x
"""

from repro.core import (
    NdftFramework,
    NdftRunResult,
    run_cpu_baseline,
    run_gpu_baseline,
)
from repro.core.scheduler import Placement, SchedulingPolicy
from repro.dft import (
    PlaneWaveBasis,
    problem_size,
    run_lrtddft,
    silicon_supercell,
    solve_ground_state,
    stage_workloads,
)
from repro.hw import cpu_baseline_config, gpu_baseline_config, ndft_system_config
from repro.model import AccessPattern, KernelWorkload, PhaseName
from repro.shmem import footprint_ndft, footprint_replicated
from repro.workloads import paper_systems, silicon_workload

__version__ = "1.0.0"

__all__ = [
    "NdftFramework",
    "NdftRunResult",
    "run_cpu_baseline",
    "run_gpu_baseline",
    "Placement",
    "SchedulingPolicy",
    "PlaneWaveBasis",
    "problem_size",
    "run_lrtddft",
    "silicon_supercell",
    "solve_ground_state",
    "stage_workloads",
    "cpu_baseline_config",
    "gpu_baseline_config",
    "ndft_system_config",
    "AccessPattern",
    "KernelWorkload",
    "PhaseName",
    "footprint_ndft",
    "footprint_replicated",
    "paper_systems",
    "silicon_workload",
    "__version__",
]
