"""Local-density exchange-correlation functional and the adiabatic kernel.

LR-TDDFT needs two things from the XC side (Fig. 1 of the paper):

- the ground-state potential ``v_xc(rho)`` entering the Kohn-Sham-style
  Hamiltonian, and
- the adiabatic kernel ``f_xc(rho) = d v_xc / d rho`` applied to pair
  densities when assembling the response matrix.

We implement Slater exchange plus Perdew-Zunger (PZ81) correlation, all in
Hartree atomic units, with analytic derivatives for exchange and the PZ
high/low-density branches.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PhysicsError

# Slater exchange: eps_x(rho) = C_X * rho^(1/3), C_X = -(3/4)(3/pi)^(1/3)
_CX = -(3.0 / 4.0) * (3.0 / np.pi) ** (1.0 / 3.0)

# PZ81 correlation parameters (unpolarized)
_PZ_GAMMA = -0.1423
_PZ_BETA1 = 1.0529
_PZ_BETA2 = 0.3334
_PZ_A = 0.0311
_PZ_B = -0.048
_PZ_C = 0.0020
_PZ_D = -0.0116

_RHO_FLOOR = 1e-12


def _rs(rho: np.ndarray) -> np.ndarray:
    """Wigner-Seitz radius for a density array (clipped below at the floor)."""
    rho = np.maximum(rho, _RHO_FLOOR)
    return (3.0 / (4.0 * np.pi * rho)) ** (1.0 / 3.0)


def exchange_energy_density(rho: np.ndarray) -> np.ndarray:
    """Slater exchange energy per particle, eps_x(rho), Hartree."""
    rho = np.maximum(np.asarray(rho, dtype=float), 0.0)
    return _CX * np.cbrt(rho)


def exchange_potential(rho: np.ndarray) -> np.ndarray:
    """v_x = d(rho * eps_x)/d rho = (4/3) eps_x."""
    return (4.0 / 3.0) * exchange_energy_density(rho)


def exchange_kernel(rho: np.ndarray) -> np.ndarray:
    """f_x = d v_x / d rho = (4/9) C_X rho^(-2/3) (negative, diverges at 0)."""
    rho = np.maximum(np.asarray(rho, dtype=float), _RHO_FLOOR)
    return (4.0 / 9.0) * _CX * rho ** (-2.0 / 3.0)


def correlation_energy_density(rho: np.ndarray) -> np.ndarray:
    """PZ81 correlation energy per particle, eps_c(rho), Hartree."""
    rs = _rs(np.asarray(rho, dtype=float))
    low = rs >= 1.0
    eps = np.empty_like(rs)
    sq = np.sqrt(rs[low])
    eps[low] = _PZ_GAMMA / (1.0 + _PZ_BETA1 * sq + _PZ_BETA2 * rs[low])
    lr = np.log(rs[~low])
    eps[~low] = (
        _PZ_A * lr + _PZ_B + _PZ_C * rs[~low] * lr + _PZ_D * rs[~low]
    )
    return eps


def correlation_potential(rho: np.ndarray) -> np.ndarray:
    """v_c = eps_c - (rs/3) d eps_c / d rs (standard LDA relation)."""
    rho = np.asarray(rho, dtype=float)
    rs = _rs(rho)
    low = rs >= 1.0
    vc = np.empty_like(rs)

    sq = np.sqrt(rs[low])
    denom = 1.0 + _PZ_BETA1 * sq + _PZ_BETA2 * rs[low]
    eps_low = _PZ_GAMMA / denom
    deps_drs = -eps_low * (0.5 * _PZ_BETA1 / sq + _PZ_BETA2) / denom
    vc[low] = eps_low - (rs[low] / 3.0) * deps_drs

    lr = np.log(rs[~low])
    deps_drs_high = _PZ_A / rs[~low] + _PZ_C * (lr + 1.0) + _PZ_D
    eps_high = _PZ_A * lr + _PZ_B + _PZ_C * rs[~low] * lr + _PZ_D * rs[~low]
    vc[~low] = eps_high - (rs[~low] / 3.0) * deps_drs_high
    return vc


def correlation_kernel(rho: np.ndarray, delta: float = 1e-6) -> np.ndarray:
    """f_c = d v_c / d rho via a central finite difference.

    PZ81's second derivative is piecewise analytic but messy; a relative
    central difference is accurate to ~1e-8 for the densities that occur in
    silicon and is what we validate against in the tests.
    """
    rho = np.maximum(np.asarray(rho, dtype=float), _RHO_FLOOR)
    step = np.maximum(rho * delta, _RHO_FLOOR)
    return (correlation_potential(rho + step) - correlation_potential(rho - step)) / (
        2.0 * step
    )


def xc_potential(rho: np.ndarray) -> np.ndarray:
    """Total LDA potential v_xc = v_x + v_c."""
    return exchange_potential(rho) + correlation_potential(rho)


def xc_kernel(rho: np.ndarray, include_correlation: bool = True) -> np.ndarray:
    """Adiabatic LDA kernel f_xc = d v_xc / d rho evaluated pointwise.

    Raises :class:`PhysicsError` on negative densities: those indicate an
    upstream bug (densities are |psi|^2 sums), not a physical regime.
    """
    rho = np.asarray(rho, dtype=float)
    if np.any(rho < -1e-10):
        raise PhysicsError(f"negative density passed to xc_kernel: min={rho.min()}")
    result = exchange_kernel(rho)
    if include_correlation:
        result = result + correlation_kernel(rho)
    return result
