"""Silicon pseudopotentials: local EPM form factors + nonlocal projectors.

Two pieces live here:

1. **Local empirical pseudopotential (EPM).**  The classic
   Cohen-Bergstresser silicon form factors, smoothly interpolated so that
   supercell G vectors (which fall between the primitive-cell shells) get
   physically shaped values.  This drives the ground-state solver.

2. **Nonlocal Kleinman-Bylander-style projectors.**  Each atom carries a
   small set of separable projectors ``|beta> D <beta|``; applying them to
   wavefunctions is the *pseudopotential kernel* the paper optimizes
   (Algorithm 1).  The per-atom payload is deliberately structured the way
   the paper describes it — "arrays of integers and double-precision
   floating-point matrices" — because the NDFT shared-block optimization
   (`repro.shmem`) reorganizes exactly this payload.

All energies in Hartree, lengths in Bohr.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.interpolate import CubicSpline

from repro.dft.basis import PlaneWaveBasis
from repro.dft.lattice import A_SILICON, Crystal
from repro.errors import ConfigError
from repro.units import RYDBERG_TO_HARTREE

# ---------------------------------------------------------------------------
# Local part: Cohen-Bergstresser empirical form factors
# ---------------------------------------------------------------------------

#: (q^2 in (2*pi/a)^2 units, form factor in Rydberg) knots.  The three
#: interior points are the published Si values (V3 = -0.21, V8 = 0.04,
#: V11 = 0.08 Ry); the end knots extend the curve smoothly to q -> 0
#: (attractive long-wavelength limit) and to zero beyond the last shell,
#: which is the standard treatment when EPM is used on supercells.
_EPM_KNOTS_Q2 = np.array([0.0, 3.0, 8.0, 11.0, 16.0, 24.0])
_EPM_KNOTS_V_RY = np.array([-0.42, -0.21, 0.04, 0.08, 0.02, 0.0])

_EPM_SPLINE = CubicSpline(_EPM_KNOTS_Q2, _EPM_KNOTS_V_RY, bc_type="clamped")
_EPM_Q2_CUTOFF = float(_EPM_KNOTS_Q2[-1])


def epm_form_factor(g2: np.ndarray, lattice_constant: float = A_SILICON) -> np.ndarray:
    """Per-atom local form factor ``v(|G|)`` in Hartree.

    Parameters
    ----------
    g2:
        Squared cartesian G magnitudes, Bohr^-2.
    lattice_constant:
        Conventional-cell lattice constant used to express ``g2`` in the
        Cohen-Bergstresser ``(2*pi/a)^2`` units.
    """
    g2 = np.asarray(g2, dtype=float)
    unit = (2.0 * np.pi / lattice_constant) ** 2
    q2 = g2 / unit
    v_ry = np.where(q2 <= _EPM_Q2_CUTOFF, _EPM_SPLINE(np.minimum(q2, _EPM_Q2_CUTOFF)), 0.0)
    # The G = 0 component is a constant energy shift absorbed by the
    # compensating background; zero it so total energies stay finite.
    v_ry = np.where(q2 < 1e-12, 0.0, v_ry)
    return v_ry * RYDBERG_TO_HARTREE


def local_potential_coefficients(cell: Crystal, g_cart: np.ndarray) -> np.ndarray:
    """Fourier coefficients of the total local potential, ``V_loc(G)``.

    ``V_loc(G) = S(G) v(|G|) / n_atoms``: Cohen-Bergstresser tabulate the
    *symmetric form factor* v_S such that the primitive 2-atom cell has
    ``V(G) = v_S(|G|) cos(G . tau)``; since the 2-atom structure factor for
    atoms at ±tau is ``2 cos(G . tau)``, the per-atom normalization
    ``S(G)/n_atoms * v_S`` reproduces that convention and generalizes it to
    arbitrary supercells (where S(G) vanishes except on the primitive
    reciprocal lattice, making supercell EPM exactly equivalent).
    """
    g_cart = np.atleast_2d(np.asarray(g_cart, dtype=float))
    g2 = np.einsum("ij,ij->i", g_cart, g_cart)
    form = epm_form_factor(g2)
    structure = cell.structure_factor(g_cart)
    return structure * form / cell.n_atoms


# ---------------------------------------------------------------------------
# Nonlocal part: Kleinman-Bylander-style separable projectors
# ---------------------------------------------------------------------------

#: Gaussian widths (Bohr) of the s- and p-channel projectors.
_SIGMA_S = 1.1
_SIGMA_P = 1.3
#: Channel coupling strengths (Hartree); small enough to perturb, not
#: restructure, the EPM bands.
_D_S = 0.08
_D_P = 0.04

#: Projectors per atom: one s + three p.
PROJECTORS_PER_ATOM = 4


@dataclass(frozen=True)
class AtomPseudoBlock:
    """The pseudopotential payload of one atom.

    This is the unit of data that Algorithm 1 reorganizes into shared
    memory.  Field layout mirrors the paper's description:

    - ``atom_index``, ``pw_index``: *arrays of integers* (identity plus the
      plane-wave index list the projectors touch — the full sphere here).
    - ``projectors``: *double-precision matrix* (n_proj, n_pw) — stored as
      two real matrices (real/imag) to keep the "double matrices" framing
      honest.
    - ``coupling``: (n_proj,) channel strengths D_j.
    """

    atom_index: int
    pw_index: np.ndarray
    projectors_re: np.ndarray
    projectors_im: np.ndarray
    coupling: np.ndarray

    @property
    def n_proj(self) -> int:
        return len(self.coupling)

    @property
    def projectors(self) -> np.ndarray:
        """Complex (n_proj, n_pw) projector matrix."""
        return self.projectors_re + 1j * self.projectors_im

    @property
    def nbytes(self) -> int:
        """Exact payload size in bytes (what footprint accounting counts)."""
        return (
            self.pw_index.nbytes
            + self.projectors_re.nbytes
            + self.projectors_im.nbytes
            + self.coupling.nbytes
        )


def build_projectors(cell: Crystal, basis: PlaneWaveBasis) -> list[AtomPseudoBlock]:
    """Build the per-atom Kleinman-Bylander blocks for every atom in ``cell``.

    The s channel is a normalized Gaussian in G space; the p channels carry
    an extra ``i * G_alpha`` factor (the l = 1 angular dependence).  Each
    atom's projectors pick up the usual ``exp(-i G . tau)`` translation
    phase.
    """
    g = basis.g_cart
    g2 = basis.g2
    volume = cell.volume

    radial_s = np.exp(-0.5 * _SIGMA_S**2 * g2)
    radial_p = np.exp(-0.5 * _SIGMA_P**2 * g2)

    channels = [radial_s, *(1j * g[:, alpha] * radial_p for alpha in range(3))]
    coupling = np.array([_D_S, _D_P, _D_P, _D_P])

    blocks: list[AtomPseudoBlock] = []
    positions = cell.cart_positions
    for atom in range(cell.n_atoms):
        phase = np.exp(-1j * (g @ positions[atom]))
        rows = []
        for channel in channels:
            row = channel * phase
            norm = np.linalg.norm(row)
            if norm < 1e-14:
                raise ConfigError("degenerate projector (basis too small?)")
            rows.append(row / norm * np.sqrt(basis.n_pw / volume))
        matrix = np.array(rows)
        blocks.append(
            AtomPseudoBlock(
                atom_index=atom,
                pw_index=np.arange(basis.n_pw, dtype=np.int64),
                projectors_re=np.ascontiguousarray(matrix.real),
                projectors_im=np.ascontiguousarray(matrix.imag),
                coupling=coupling.copy(),
            )
        )
    return blocks


def apply_nonlocal(
    blocks: list[AtomPseudoBlock], coeffs: np.ndarray
) -> np.ndarray:
    """Apply ``sum_atoms sum_j |beta_aj> D_j <beta_aj|`` to wavefunctions.

    ``coeffs`` is (n_bands, n_pw) (or a single vector); returns the same
    shape.  This is the reference (replicated-layout) implementation; the
    shared-block layout in :mod:`repro.shmem.pseudo_layout` must reproduce
    it bit-for-bit on the same inputs.
    """
    coeffs = np.asarray(coeffs)
    single = coeffs.ndim == 1
    batch = coeffs[None, :] if single else coeffs
    out = np.zeros_like(batch)
    for block in blocks:
        beta = block.projectors
        overlaps = batch @ beta.conj().T          # (n_bands, n_proj)
        out += (overlaps * block.coupling) @ beta  # back-projection
    return out[0] if single else out
