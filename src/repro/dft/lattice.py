"""Crystalline-silicon supercell builder.

The paper evaluates LR-TDDFT on diamond-cubic silicon supercells with 16 to
2048 atoms (Si_16 ... Si_2048, §V).  This module builds those cells: lattice
vectors, fractional/cartesian atomic positions, and reciprocal-space metadata
consumed by :mod:`repro.dft.basis`.

All lengths are in Bohr (Hartree atomic units).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.units import ANGSTROM_TO_BOHR

#: Experimental lattice constant of silicon (conventional cubic cell), Bohr.
A_SILICON = 5.431 * ANGSTROM_TO_BOHR

#: Fractional coordinates of the 8 atoms in the conventional diamond cell:
#: an FCC lattice plus the same lattice displaced by (1/4, 1/4, 1/4).
DIAMOND_BASIS = np.array(
    [
        [0.00, 0.00, 0.00],
        [0.00, 0.50, 0.50],
        [0.50, 0.00, 0.50],
        [0.50, 0.50, 0.00],
        [0.25, 0.25, 0.25],
        [0.25, 0.75, 0.75],
        [0.75, 0.25, 0.75],
        [0.75, 0.75, 0.25],
    ]
)

ATOMS_PER_CONVENTIONAL_CELL = len(DIAMOND_BASIS)


@dataclass(frozen=True)
class Crystal:
    """An atomic crystal in a periodic supercell.

    Attributes
    ----------
    lattice:
        3x3 array, rows are the supercell lattice vectors in Bohr.
    frac_positions:
        (n_atoms, 3) fractional atomic coordinates in [0, 1).
    species:
        Tuple of chemical symbols, one per atom.
    """

    lattice: np.ndarray
    frac_positions: np.ndarray
    species: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        lattice = np.asarray(self.lattice, dtype=float)
        frac = np.asarray(self.frac_positions, dtype=float)
        if lattice.shape != (3, 3):
            raise ConfigError(f"lattice must be 3x3, got {lattice.shape}")
        if frac.ndim != 2 or frac.shape[1] != 3:
            raise ConfigError(f"frac_positions must be (n, 3), got {frac.shape}")
        if abs(float(np.linalg.det(lattice))) < 1e-12:
            raise ConfigError("lattice vectors are linearly dependent")
        species = self.species or ("Si",) * len(frac)
        if len(species) != len(frac):
            raise ConfigError(
                f"{len(species)} species for {len(frac)} positions"
            )
        object.__setattr__(self, "lattice", lattice)
        object.__setattr__(self, "frac_positions", np.mod(frac, 1.0))
        object.__setattr__(self, "species", tuple(species))

    @property
    def n_atoms(self) -> int:
        """Number of atoms in the supercell."""
        return len(self.frac_positions)

    @property
    def volume(self) -> float:
        """Supercell volume in Bohr^3."""
        return abs(float(np.linalg.det(self.lattice)))

    @property
    def reciprocal(self) -> np.ndarray:
        """Reciprocal lattice vectors (rows), in Bohr^-1, with the physics
        convention ``B = 2*pi * inv(A)^T`` so that ``A @ B.T = 2*pi*I``."""
        return 2.0 * math.pi * np.linalg.inv(self.lattice).T

    @property
    def cart_positions(self) -> np.ndarray:
        """(n_atoms, 3) cartesian atomic positions in Bohr."""
        return self.frac_positions @ self.lattice

    def structure_factor(self, g_cart: np.ndarray) -> np.ndarray:
        """Structure factor ``S(G) = sum_atoms exp(-i G . tau)`` for a batch
        of cartesian G vectors of shape (n_g, 3).

        The 1/n_atoms normalization is *not* applied; callers that want the
        per-atom form factor convention divide by :attr:`n_atoms`.
        """
        g_cart = np.atleast_2d(np.asarray(g_cart, dtype=float))
        phases = g_cart @ self.cart_positions.T
        return np.exp(-1j * phases).sum(axis=1)


def supercell_dims(n_cells: int) -> tuple[int, int, int]:
    """Factor ``n_cells`` into a near-cubic (na, nb, nc) repetition.

    Matches the paper's progression: Si_16 -> (2,1,1) conventional cells,
    Si_64 -> (2,2,2), Si_1024 -> (8,4,4), Si_2048 -> (8,8,4).
    """
    if n_cells < 1:
        raise ConfigError(f"n_cells must be >= 1, got {n_cells}")
    best: tuple[int, int, int] | None = None
    best_score: tuple[int, int] | None = None
    for na in range(1, n_cells + 1):
        if n_cells % na:
            continue
        rest = n_cells // na
        for nb in range(1, rest + 1):
            if rest % nb:
                continue
            nc = rest // nb
            dims = tuple(sorted((na, nb, nc), reverse=True))
            # Prefer the most cubic factorization: minimize spread, then
            # the largest dimension.
            score = (dims[0] - dims[2], dims[0])
            if best_score is None or score < best_score:
                best_score = score
                best = dims  # type: ignore[assignment]
    assert best is not None
    return best


def silicon_supercell(n_atoms: int) -> Crystal:
    """Build a diamond-cubic silicon supercell with ``n_atoms`` atoms.

    ``n_atoms`` must be a multiple of 8 (the conventional-cell atom count);
    this covers every system in the paper (Si_16 ... Si_2048) plus the small
    Si_8 cell used throughout the test suite.
    """
    if n_atoms <= 0 or n_atoms % ATOMS_PER_CONVENTIONAL_CELL:
        raise ConfigError(
            f"n_atoms must be a positive multiple of "
            f"{ATOMS_PER_CONVENTIONAL_CELL}, got {n_atoms}"
        )
    dims = supercell_dims(n_atoms // ATOMS_PER_CONVENTIONAL_CELL)
    lattice = np.diag([A_SILICON * d for d in dims])
    shifts = np.array(
        [
            [i, j, k]
            for i in range(dims[0])
            for j in range(dims[1])
            for k in range(dims[2])
        ],
        dtype=float,
    )
    frac = (DIAMOND_BASIS[None, :, :] + shifts[:, None, :]).reshape(-1, 3)
    frac /= np.array(dims, dtype=float)
    return Crystal(lattice=lattice, frac_positions=frac)
