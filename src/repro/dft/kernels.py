"""Instrumented numerical kernels: FFT, face-splitting product, GEMM, SYEVD.

These are the five operations in the paper's Fig. 1 flowchart (the fifth,
MPI_Alltoall, lives in :mod:`repro.parallel.mpi`).  Each kernel both
*executes* (numpy/scipy) and *accounts*: FLOPs and bytes-touched are added
to a :class:`KernelCounters` so that functional runs at small scale can be
cross-checked against the analytic workload model
(:mod:`repro.dft.workload`), which is what the roofline and scheduling
machinery consume at paper scale.

Counting conventions (documented so the tests can assert them exactly):

- complex multiply-add = 8 real FLOPs; complex multiply = 6.
- FFT of n complex points = ``5 n log2(n)`` real FLOPs (the standard
  radix-2 accounting used by FFTW's own benchmarks).
- complex GEMM (m x k)(k x n) = ``8 m n k`` FLOPs.
- complex Hermitian SYEVD of dimension n = ``9 n^3`` FLOPs (tridiagonal
  reduction + back-transformation, the LAPACK zheevd ballpark).
- bytes are counted as array elements actually read + written, complex128
  = 16 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg

from repro.errors import PhysicsError
from repro.units import COMPLEX_BYTES

FLOPS_PER_COMPLEX_MUL = 6
FLOPS_PER_COMPLEX_MAC = 8
SYEVD_FLOP_COEFF = 9


@dataclass
class KernelCounters:
    """Accumulated operation counts for one or more kernel invocations."""

    flops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    calls: dict[str, int] = field(default_factory=dict)

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of traffic; the roofline x-axis."""
        if self.bytes_total == 0:
            raise PhysicsError("arithmetic intensity undefined: no traffic")
        return self.flops / self.bytes_total

    def record(self, name: str, flops: float, bytes_read: float, bytes_written: float) -> None:
        self.flops += flops
        self.bytes_read += bytes_read
        self.bytes_written += bytes_written
        self.calls[name] = self.calls.get(name, 0) + 1

    def merged(self, other: "KernelCounters") -> "KernelCounters":
        merged = KernelCounters(
            flops=self.flops + other.flops,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            calls=dict(self.calls),
        )
        for name, count in other.calls.items():
            merged.calls[name] = merged.calls.get(name, 0) + count
        return merged


def fft_flops(n: int) -> float:
    """Standard ``5 n log2 n`` FLOP count for an n-point complex FFT."""
    if n < 1:
        raise PhysicsError(f"FFT size must be >= 1, got {n}")
    return 5.0 * n * np.log2(max(n, 2))


def fft_3d(field_array: np.ndarray, counters: KernelCounters | None = None) -> np.ndarray:
    """Forward 3D FFT of one or more complex grids.

    Accepts (*grid) or (batch, *grid) arrays; the FFT runs over the last
    three axes.
    """
    field_array = np.asarray(field_array, dtype=complex)
    grid_points = int(np.prod(field_array.shape[-3:]))
    batch = int(np.prod(field_array.shape[:-3])) if field_array.ndim > 3 else 1
    out = np.fft.fftn(field_array, axes=(-3, -2, -1))
    if counters is not None:
        counters.record(
            "fft",
            flops=batch * fft_flops(grid_points),
            bytes_read=batch * grid_points * COMPLEX_BYTES,
            bytes_written=batch * grid_points * COMPLEX_BYTES,
        )
    return out


def ifft_3d(field_array: np.ndarray, counters: KernelCounters | None = None) -> np.ndarray:
    """Inverse 3D FFT; same accounting as :func:`fft_3d`."""
    field_array = np.asarray(field_array, dtype=complex)
    grid_points = int(np.prod(field_array.shape[-3:]))
    batch = int(np.prod(field_array.shape[:-3])) if field_array.ndim > 3 else 1
    out = np.fft.ifftn(field_array, axes=(-3, -2, -1))
    if counters is not None:
        counters.record(
            "fft",
            flops=batch * fft_flops(grid_points),
            bytes_read=batch * grid_points * COMPLEX_BYTES,
            bytes_written=batch * grid_points * COMPLEX_BYTES,
        )
    return out


def face_splitting_product(
    psi_v: np.ndarray, psi_c: np.ndarray, counters: KernelCounters | None = None
) -> np.ndarray:
    """Row-wise (transposed Khatri-Rao / "face-splitting") product.

    Given valence orbitals ``psi_v`` of shape (n_v, n_r) and conduction
    orbitals ``psi_c`` of shape (n_c, n_r), returns the pair-density matrix
    ``P[(i, a), r] = conj(psi_v[i, r]) * psi_c[a, r]`` of shape
    (n_v * n_c, n_r) — exactly the ``P_vc`` of the paper's Fig. 1.
    """
    psi_v = np.atleast_2d(np.asarray(psi_v, dtype=complex))
    psi_c = np.atleast_2d(np.asarray(psi_c, dtype=complex))
    if psi_v.shape[1] != psi_c.shape[1]:
        raise PhysicsError(
            f"grid mismatch: {psi_v.shape[1]} vs {psi_c.shape[1]} points"
        )
    n_v, n_r = psi_v.shape
    n_c = psi_c.shape[0]
    pairs = (psi_v.conj()[:, None, :] * psi_c[None, :, :]).reshape(n_v * n_c, n_r)
    if counters is not None:
        elements = n_v * n_c * n_r
        counters.record(
            "face_split",
            flops=FLOPS_PER_COMPLEX_MUL * elements,
            bytes_read=(n_v + n_c) * n_r * COMPLEX_BYTES
            + elements * 0,  # operands are re-read from cache in the model
            bytes_written=elements * COMPLEX_BYTES,
        )
    return pairs


def gemm(
    a: np.ndarray, b: np.ndarray, counters: KernelCounters | None = None
) -> np.ndarray:
    """Complex GEMM ``a @ b`` with ``8 m n k`` FLOP accounting."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape[-1] != b.shape[0]:
        raise PhysicsError(f"GEMM shape mismatch: {a.shape} @ {b.shape}")
    out = a @ b
    if counters is not None:
        m, k = a.shape if a.ndim == 2 else (1, a.shape[0])
        n = b.shape[1] if b.ndim == 2 else 1
        counters.record(
            "gemm",
            flops=FLOPS_PER_COMPLEX_MAC * m * n * k,
            bytes_read=(m * k + k * n) * COMPLEX_BYTES,
            bytes_written=m * n * COMPLEX_BYTES,
        )
    return out


def syevd(
    h: np.ndarray, counters: KernelCounters | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Dense Hermitian eigendecomposition (LAPACK *syevd path).

    Returns (eigenvalues ascending, eigenvectors as columns).  Raises
    :class:`PhysicsError` if the input is not Hermitian — the LR-TDDFT
    response matrix must be, so a violation is an assembly bug.
    """
    h = np.asarray(h)
    if h.ndim != 2 or h.shape[0] != h.shape[1]:
        raise PhysicsError(f"SYEVD needs a square matrix, got {h.shape}")
    if not np.allclose(h, h.conj().T, atol=1e-8 * max(1.0, float(np.abs(h).max()))):
        raise PhysicsError("SYEVD input is not Hermitian")
    eigenvalues, eigenvectors = scipy.linalg.eigh(h, driver="evd")
    if counters is not None:
        n = h.shape[0]
        counters.record(
            "syevd",
            flops=SYEVD_FLOP_COEFF * float(n) ** 3,
            bytes_read=n * n * COMPLEX_BYTES,
            bytes_written=(n * n + n) * COMPLEX_BYTES,
        )
    return eigenvalues, eigenvectors


def pointwise_multiply(
    field_array: np.ndarray,
    multiplier: np.ndarray,
    counters: KernelCounters | None = None,
) -> np.ndarray:
    """Elementwise product used to apply diagonal kernels (f_H in G space,
    f_xc in real space) to batches of pair densities."""
    field_array = np.asarray(field_array)
    out = field_array * multiplier
    if counters is not None:
        elements = int(np.prod(field_array.shape))
        counters.record(
            "pointwise",
            flops=FLOPS_PER_COMPLEX_MUL * elements,
            bytes_read=elements * COMPLEX_BYTES + np.asarray(multiplier).nbytes,
            bytes_written=elements * COMPLEX_BYTES,
        )
    return out
