"""Plane-wave DFT / LR-TDDFT substrate.

This package is the "physics half" of the NDFT reproduction: a from-scratch,
functional plane-wave LR-TDDFT implementation (the application the paper
accelerates), plus an analytic workload model that extrapolates per-kernel
FLOP/byte counts to system sizes too large to execute numerically.

Public entry points:

- :func:`repro.dft.lattice.silicon_supercell` — build Si_N crystals.
- :class:`repro.dft.basis.PlaneWaveBasis` — Γ-point plane-wave basis.
- :func:`repro.dft.groundstate.solve_ground_state` — EPM Kohn-Sham-style
  orbitals and eigenvalues.
- :func:`repro.dft.lrtddft.run_lrtddft` — end-to-end excitation energies.
- :func:`repro.dft.workload.problem_size` /
  :func:`repro.dft.workload.stage_workloads` — analytic kernel workloads.
"""

from repro.dft.lattice import Crystal, silicon_supercell
from repro.dft.basis import PlaneWaveBasis
from repro.dft.groundstate import GroundState, solve_ground_state
from repro.dft.lrtddft import LrtddftResult, run_lrtddft
from repro.dft.workload import ProblemSize, problem_size, stage_workloads

__all__ = [
    "Crystal",
    "silicon_supercell",
    "PlaneWaveBasis",
    "GroundState",
    "solve_ground_state",
    "LrtddftResult",
    "run_lrtddft",
    "ProblemSize",
    "problem_size",
    "stage_workloads",
]
