"""End-to-end LR-TDDFT drivers.

Two functionally equivalent paths:

- :func:`run_lrtddft` with ``n_ranks=1`` — the serial reference: assemble
  the TDA matrix via :mod:`repro.dft.hamiltonian` and diagonalize.
- :func:`run_lrtddft` with ``n_ranks>1`` — the simulated-MPI path that
  mirrors the paper's Fig. 1 structure: pair-parallel face-splitting and
  FFTs, three ``MPI_Alltoall`` transposes, grid-parallel kernel application
  and GEMM partial sums, an allreduce of the coupling matrix, and a
  replicated SYEVD.

Both return the same excitation energies (up to reduction order); the
parallel path additionally reports exact communication traffic, which the
performance models consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dft import xc
from repro.dft.groundstate import GroundState
from repro.dft.hamiltonian import (
    ActiveWindow,
    build_tda_matrix,
    coulomb_multiplier,
    pair_energy_differences,
    select_active_window,
)
from repro.dft.kernels import (
    FLOPS_PER_COMPLEX_MUL,
    KernelCounters,
    fft_3d,
    gemm,
    pointwise_multiply,
    syevd,
)
from repro.errors import ConfigError, PhysicsError
from repro.parallel.layouts import block_partition, pairs_to_grid_layout
from repro.parallel.mpi import SimCommunicator
from repro.units import COMPLEX_BYTES


@dataclass(frozen=True)
class LrtddftResult:
    """Output of one LR-TDDFT run.

    Attributes
    ----------
    excitation_energies:
        (n_pairs,) singlet TDA excitation energies in Hartree, ascending.
    counters:
        Aggregated FLOP/byte counts across all simulated ranks.
    comm_bytes:
        Total bytes moved by collectives (0 for the serial path).
    comm_bytes_by_op:
        Per-collective breakdown (empty for the serial path).
    window:
        The active orbital window that defined the pair space.
    """

    excitation_energies: np.ndarray
    counters: KernelCounters
    comm_bytes: int
    comm_bytes_by_op: dict[str, int]
    window: ActiveWindow

    @property
    def lowest_excitation_ev(self) -> float:
        from repro.units import HARTREE_TO_EV

        return float(self.excitation_energies[0]) * HARTREE_TO_EV


def run_lrtddft(
    ground_state: GroundState,
    n_active_valence: int | None = None,
    n_active_conduction: int | None = None,
    n_ranks: int = 1,
    include_correlation: bool = True,
) -> LrtddftResult:
    """Compute TDA excitation energies for a ground state.

    ``n_ranks > 1`` exercises the simulated-MPI pipeline; results are
    identical to the serial path up to floating-point reduction order.
    """
    if n_ranks < 1:
        raise ConfigError(f"n_ranks must be >= 1, got {n_ranks}")
    window = select_active_window(
        ground_state, n_active_valence, n_active_conduction
    )
    counters = KernelCounters()
    if n_ranks == 1:
        a_matrix = build_tda_matrix(
            ground_state, window, include_correlation, counters
        )
        energies, _ = syevd(a_matrix, counters)
        _validate_energies(energies)
        return LrtddftResult(
            excitation_energies=energies,
            counters=counters,
            comm_bytes=0,
            comm_bytes_by_op={},
            window=window,
        )
    return _run_parallel(
        ground_state, window, n_ranks, include_correlation, counters
    )


def _validate_energies(energies: np.ndarray) -> None:
    if np.any(energies <= 0):
        raise PhysicsError(
            f"non-positive excitation energy: min={energies.min():.6f} Ha; "
            "the TDA matrix is not physical"
        )


def _run_parallel(
    ground_state: GroundState,
    window: ActiveWindow,
    n_ranks: int,
    include_correlation: bool,
    counters: KernelCounters,
) -> LrtddftResult:
    """The Fig. 1 pipeline over a simulated communicator."""
    basis = ground_state.basis
    cell = ground_state.cell
    n_grid = basis.n_grid
    comm = SimCommunicator(n_ranks)

    psi_v = basis.to_grid(ground_state.orbitals[window.valence_index])
    psi_c = basis.to_grid(ground_state.orbitals[window.conduction_index])
    psi_v = psi_v.reshape(window.n_valence, n_grid)
    psi_c = psi_c.reshape(window.n_conduction, n_grid)

    density = ground_state.density_grid().reshape(-1)
    f_xc = xc.xc_kernel(density, include_correlation=include_correlation)
    v_g = coulomb_multiplier(basis)

    # Pair-parallel distribution: rank r owns a contiguous block of (i, a)
    # pairs.  Pairs are enumerated valence-major to match the serial
    # face-splitting product.
    pair_slices = block_partition(window.n_pairs, n_ranks)
    pair_index = [
        np.arange(s.start, s.stop) for s in pair_slices
    ]

    # --- Fig. 1 step 1: local face-splitting products -------------------
    local_pairs: list[np.ndarray] = []
    for rank in range(n_ranks):
        idx = pair_index[rank]
        if len(idx) == 0:
            local_pairs.append(np.zeros((0, n_grid), dtype=complex))
            continue
        v_idx, c_idx = np.divmod(idx, window.n_conduction)
        # Per-rank face-splitting over just the owned (i, a) rows; this is
        # the distributed equivalent of slicing the full product.
        block = psi_v[v_idx].conj() * psi_c[c_idx]
        counters.record(
            "face_split",
            flops=FLOPS_PER_COMPLEX_MUL * float(block.size),
            bytes_read=2.0 * block.size * COMPLEX_BYTES,
            bytes_written=float(block.size) * COMPLEX_BYTES,
        )
        local_pairs.append(block)

    # --- f_xc branch: pointwise in real space, then transpose -----------
    local_xc = [
        pointwise_multiply(block, f_xc[None, :], counters)
        for block in local_pairs
    ]
    grid_pairs_real = pairs_to_grid_layout(comm, local_pairs)      # A2A #1
    grid_xc = pairs_to_grid_layout(comm, local_xc)                 # A2A #2

    k_xc_partials = [
        gemm(grid_pairs_real[r].conj(), grid_xc[r].T, counters)
        for r in range(n_ranks)
    ]
    k_xc = comm.allreduce(k_xc_partials)[0] / (cell.volume * n_grid)

    # --- Hartree branch: local FFTs, transpose, pointwise, GEMM ---------
    local_pairs_g = []
    for block in local_pairs:
        if len(block) == 0:
            local_pairs_g.append(block)
            continue
        shaped = block.reshape(len(block), *basis.fft_shape)
        local_pairs_g.append(
            fft_3d(shaped, counters).reshape(len(block), n_grid) / n_grid
        )
    grid_pairs_g = pairs_to_grid_layout(comm, local_pairs_g)       # A2A #3

    grid_slices = block_partition(n_grid, n_ranks)
    k_h_partials = []
    for rank in range(n_ranks):
        v_slice = v_g[grid_slices[rank]]
        weighted = pointwise_multiply(
            grid_pairs_g[rank], v_slice[None, :], counters
        )
        k_h_partials.append(
            gemm(grid_pairs_g[rank].conj(), weighted.T, counters)
        )
    k_hartree = comm.allreduce(k_h_partials)[0] / cell.volume

    # --- Assemble and diagonalize (replicated SYEVD) ---------------------
    a_matrix = np.diag(pair_energy_differences(ground_state, window)).astype(
        complex
    )
    a_matrix += 2.0 * (k_hartree + k_xc)
    a_matrix = 0.5 * (a_matrix + a_matrix.conj().T)
    energies, _ = syevd(a_matrix, counters)
    _validate_energies(energies)

    return LrtddftResult(
        excitation_energies=energies,
        counters=counters,
        comm_bytes=comm.total_bytes,
        comm_bytes_by_op=comm.bytes_by_op(),
        window=window,
    )
