"""Casida/TDA response-matrix assembly.

Within the Tamm-Dancoff approximation the singlet excitation energies are
the eigenvalues of

    A[(ia),(jb)] = delta_ij delta_ab (eps_a - eps_i) + 2 K[(ia),(jb)]

with the coupling matrix

    K = (ia | f_H | jb) + (ia | f_xc | jb),

where ``f_H`` is the bare Coulomb kernel ``4 pi / |G|^2`` applied in
reciprocal space and ``f_xc`` the adiabatic LDA kernel applied pointwise in
real space.  This module assembles A through exactly the operation sequence
of the paper's Fig. 1 — face-splitting product, FFT, pointwise kernel
application, GEMM — so that the instrumented counters reflect the real
kernel mix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dft import xc
from repro.dft.basis import PlaneWaveBasis
from repro.dft.groundstate import GroundState
from repro.dft.kernels import (
    KernelCounters,
    face_splitting_product,
    fft_3d,
    gemm,
    pointwise_multiply,
)
from repro.errors import ConfigError, PhysicsError


@dataclass(frozen=True)
class ActiveWindow:
    """The valence/conduction orbital window entering the response matrix."""

    valence_index: np.ndarray
    conduction_index: np.ndarray

    @property
    def n_valence(self) -> int:
        return len(self.valence_index)

    @property
    def n_conduction(self) -> int:
        return len(self.conduction_index)

    @property
    def n_pairs(self) -> int:
        return self.n_valence * self.n_conduction


def select_active_window(
    ground_state: GroundState,
    n_active_valence: int | None = None,
    n_active_conduction: int | None = None,
) -> ActiveWindow:
    """Pick the orbitals nearest the gap.

    Defaults to every computed valence and conduction band; production
    LR-TDDFT restricts to a window near the gap, which callers express via
    the two counts.
    """
    n_v = ground_state.n_valence
    n_c = ground_state.n_conduction
    take_v = n_v if n_active_valence is None else n_active_valence
    take_c = n_c if n_active_conduction is None else n_active_conduction
    if not 1 <= take_v <= n_v:
        raise ConfigError(f"n_active_valence={take_v} outside [1, {n_v}]")
    if not 1 <= take_c <= n_c:
        raise ConfigError(f"n_active_conduction={take_c} outside [1, {n_c}]")
    return ActiveWindow(
        valence_index=np.arange(n_v - take_v, n_v),
        conduction_index=np.arange(n_v, n_v + take_c),
    )


def coulomb_multiplier(basis: PlaneWaveBasis) -> np.ndarray:
    """``4 pi / |G|^2`` on the flattened FFT grid, zero at G = 0.

    The G = 0 term is cancelled by the neutralizing background in periodic
    systems, so dropping it is the physical choice (not an approximation).
    """
    g2 = np.einsum("ij,ij->i", basis.grid_g_vectors(), basis.grid_g_vectors())
    multiplier = np.zeros_like(g2)
    nonzero = g2 > 1e-12
    multiplier[nonzero] = 4.0 * np.pi / g2[nonzero]
    return multiplier


def pair_energy_differences(
    ground_state: GroundState, window: ActiveWindow
) -> np.ndarray:
    """(n_pairs,) orbital-energy differences eps_a - eps_i, pair-major in
    (valence, conduction) order matching the face-splitting product."""
    eps = ground_state.eigenvalues
    diffs = (
        eps[window.conduction_index][None, :] - eps[window.valence_index][:, None]
    )
    if np.any(diffs <= 0):
        raise PhysicsError("non-positive orbital energy difference in window")
    return diffs.reshape(-1)


def build_tda_matrix(
    ground_state: GroundState,
    window: ActiveWindow | None = None,
    include_correlation: bool = True,
    counters: KernelCounters | None = None,
) -> np.ndarray:
    """Assemble the dense TDA response matrix A (serial reference path).

    The parallel driver in :mod:`repro.dft.lrtddft` must produce the same
    matrix (up to floating-point reduction order); the integration tests
    assert that.
    """
    if window is None:
        window = select_active_window(ground_state)
    basis = ground_state.basis
    cell = ground_state.cell
    counters = counters if counters is not None else KernelCounters()

    psi_v = basis.to_grid(ground_state.orbitals[window.valence_index])
    psi_c = basis.to_grid(ground_state.orbitals[window.conduction_index])
    n_grid = basis.n_grid

    # Fig. 1 step 1: face-splitting product, P[(ia), r].
    pair_grid = face_splitting_product(
        psi_v.reshape(window.n_valence, n_grid),
        psi_c.reshape(window.n_conduction, n_grid),
        counters,
    )

    # f_xc branch (real space): X = f_xc(rho0) * P.
    density = ground_state.density_grid().reshape(-1)
    f_xc = xc.xc_kernel(density, include_correlation=include_correlation)
    xc_pairs = pointwise_multiply(pair_grid, f_xc[None, :], counters)
    k_xc = gemm(pair_grid.conj(), xc_pairs.T, counters) / (cell.volume * n_grid)

    # Hartree branch (reciprocal space): FFT then 4 pi / G^2.
    shaped = pair_grid.reshape(window.n_pairs, *basis.fft_shape)
    pair_g = fft_3d(shaped, counters).reshape(window.n_pairs, n_grid) / n_grid
    v_g = coulomb_multiplier(basis)
    hartree_pairs = pointwise_multiply(pair_g, v_g[None, :], counters)
    k_hartree = gemm(pair_g.conj(), hartree_pairs.T, counters) / cell.volume

    coupling = k_hartree + k_xc
    a_matrix = np.diag(pair_energy_differences(ground_state, window)).astype(
        complex
    )
    a_matrix += 2.0 * coupling

    deviation = np.abs(a_matrix - a_matrix.conj().T).max()
    scale = max(1.0, float(np.abs(a_matrix).max()))
    if deviation > 1e-8 * scale:
        raise PhysicsError(
            f"TDA matrix not Hermitian (max deviation {deviation:.2e})"
        )
    # Enforce exact Hermiticity so SYEVD sees a clean input.
    return 0.5 * (a_matrix + a_matrix.conj().T)
