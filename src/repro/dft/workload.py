"""Analytic per-kernel workload model for LR-TDDFT at any system size.

The functional implementation in this package can execute Si_8 .. Si_64 at
reduced cutoffs, but the paper evaluates up to Si_2048 at production
resolution.  Following standard practice for architecture studies, the
roofline/scheduling/timing machinery therefore consumes *analytic* workload
descriptors whose scaling rules are documented here and whose small-size
predictions are validated against the instrumented numpy kernels
(``tests/dft/test_workload_consistency.py``).

Dimension rules (N = number of silicon atoms)
---------------------------------------------
- real-space grid      n_grid ~= 1000 * N  (production ~10 Ha cutoff density)
- wavefunction sphere  n_pw    = n_grid / 8
- occupied orbitals    n_valence = 2 N (4 valence electrons, spin-restricted)
- active response window: n_active_v = 5 ceil(sqrt(N)), n_active_c = 8
  (a fixed low-conduction window, valence window grown as sqrt(N) to keep
  the spectral region covered) -> n_pairs = 40 ceil(sqrt(N))
- response G-sphere    n_chi   = n_grid / 160 (reduced kernel cutoff)

Traffic coefficients (bytes per pair-grid-point, complex128 = 16 B)
-------------------------------------------------------------------
- face-split + pointwise kernels: write P once, re-read for two pointwise
  multiplies -> 88 B/point; 18 FLOPs/point.
- FFT: two 3D transforms per pair, ~2.5 memory passes each (cache-blocked
  pencil sweeps), read+write -> 160 B/point; 10 log2(n_grid) FLOPs/point.
- global comm: three alltoall transposes of P -> 48 B/point crossing the
  network, plus pack/unpack traffic on both ends (charged by the machine
  models).
- pseudopotential application: projector blocks stream once per pair batch
  -> 110 B/point at arithmetic intensity 2 (ZGEMV-shaped).

GEMM contracts the pair matrix over the reduced sphere (16 p^2 n_chi
FLOPs, blocked, AI ~= 48); SYEVD is 9 p^3 with a size-dependent intensity
``AI(p) = clip(p / 150, 2, 30)`` capturing the BLAS2 -> blocked-BLAS3
transition that makes it memory-bound for small systems and compute-bound
for large ones (the paper's Fig. 4 observation 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dft.basis import next_fast_fft_size
from repro.errors import ConfigError
from repro.model import AccessPattern, KernelWorkload, PhaseName

# Traffic/flop coefficients, per pair-grid-point unless noted.
FACE_SPLIT_FLOPS_PER_POINT = 18.0
FACE_SPLIT_BYTES_PER_POINT = 88.0
FFT_FLOPS_PER_POINT_PER_LOG = 10.0
# Two transforms x (three axis sweeps + two local transposes) x read+write
# x 16 B: distributed pencil FFTs stream the array ~10 times per direction.
FFT_BYTES_PER_POINT = 320.0
COMM_NET_BYTES_PER_POINT = 48.0
PSEUDO_BYTES_PER_POINT = 110.0
PSEUDO_ARITH_INTENSITY = 2.0
GEMM_FLOP_COEFF = 16.0
# Blocked GEMM intensity grows with the matrix dimension until the blocking
# saturates — the paper's "GEMM becomes more compute-bound as the system
# size increases" (Fig. 4 observation 3).
GEMM_AI_SLOPE = 1.0 / 16.0
GEMM_AI_MIN = 24.0
GEMM_AI_MAX = 64.0
SYEVD_FLOP_COEFF = 9.0
# SYEVD's BLAS2 -> blocked-BLAS3 transition: the slope is set so the
# Casida dimension of the small system (Si_64) stays below the CPU ridge
# (memory-bound) and the large system (Si_1024) lands above it.
SYEVD_AI_SLOPE = 1.0 / 120.0
SYEVD_AI_MIN = 2.0
SYEVD_AI_MAX = 30.0

GRID_POINTS_PER_ATOM = 1000
PW_SPHERE_FRACTION = 8
CHI_SPHERE_FRACTION = 160


@dataclass(frozen=True)
class ProblemSize:
    """Derived dimensions of one Si_N LR-TDDFT problem."""

    n_atoms: int
    grid_side: int
    n_valence: int
    n_conduction: int
    n_active_valence: int
    n_active_conduction: int

    @property
    def n_grid(self) -> int:
        return self.grid_side**3

    @property
    def n_pw(self) -> int:
        return self.n_grid // PW_SPHERE_FRACTION

    @property
    def n_chi(self) -> int:
        return max(64, self.n_grid // CHI_SPHERE_FRACTION)

    @property
    def n_pairs(self) -> int:
        return self.n_active_valence * self.n_active_conduction

    @property
    def pair_volume(self) -> float:
        """n_pairs * n_grid — the unit all streaming phases scale with."""
        return float(self.n_pairs) * self.n_grid

    @property
    def label(self) -> str:
        return f"Si_{self.n_atoms}"


def problem_size(n_atoms: int) -> ProblemSize:
    """Derive the LR-TDDFT problem dimensions for an Si_N system."""
    if n_atoms < 1:
        raise ConfigError(f"n_atoms must be >= 1, got {n_atoms}")
    root = math.isqrt(n_atoms)
    if root * root != n_atoms:
        root += 1  # ceil(sqrt(N))
    grid_side = next_fast_fft_size(
        math.ceil((GRID_POINTS_PER_ATOM * n_atoms) ** (1.0 / 3.0))
    )
    return ProblemSize(
        n_atoms=n_atoms,
        grid_side=grid_side,
        n_valence=2 * n_atoms,
        n_conduction=max(8, n_atoms // 4),
        n_active_valence=5 * root,
        n_active_conduction=8,
    )


def syevd_intensity(dimension: int) -> float:
    """Size-dependent arithmetic intensity of the dense eigensolver."""
    return min(SYEVD_AI_MAX, max(SYEVD_AI_MIN, dimension * SYEVD_AI_SLOPE))


def gemm_intensity(pairs: int) -> float:
    """Size-dependent arithmetic intensity of the coupling-matrix GEMM."""
    return min(GEMM_AI_MAX, max(GEMM_AI_MIN, pairs * GEMM_AI_SLOPE))


def stage_workloads(problem: ProblemSize) -> dict[PhaseName, KernelWorkload]:
    """Whole-run workload descriptors for every Fig. 7 phase."""
    volume = problem.pair_volume
    pairs = problem.n_pairs
    n_grid = problem.n_grid
    log_grid = math.log2(n_grid)

    pair_matrix_bytes = volume * 16.0

    face_split = KernelWorkload(
        name=PhaseName.FACE_SPLIT,
        flops=FACE_SPLIT_FLOPS_PER_POINT * volume,
        bytes_read=FACE_SPLIT_BYTES_PER_POINT * volume * 0.5,
        bytes_written=FACE_SPLIT_BYTES_PER_POINT * volume * 0.5,
        working_set=3.0 * n_grid * 16.0,
        footprint=(pairs + problem.n_active_valence + problem.n_active_conduction)
        * n_grid
        * 16.0,
        access_pattern=AccessPattern.SEQUENTIAL,
        parallel_tasks=pairs,
    )
    fft = KernelWorkload(
        name=PhaseName.FFT,
        flops=FFT_FLOPS_PER_POINT_PER_LOG * log_grid * volume,
        bytes_read=FFT_BYTES_PER_POINT * volume * 0.5,
        bytes_written=FFT_BYTES_PER_POINT * volume * 0.5,
        working_set=n_grid * 16.0,
        footprint=2.0 * pair_matrix_bytes,
        access_pattern=AccessPattern.STRIDED,
        parallel_tasks=2 * pairs,
    )
    global_comm = KernelWorkload(
        name=PhaseName.GLOBAL_COMM,
        flops=0.0,
        bytes_read=COMM_NET_BYTES_PER_POINT * volume,
        bytes_written=COMM_NET_BYTES_PER_POINT * volume,
        comm_bytes=COMM_NET_BYTES_PER_POINT * volume,
        working_set=n_grid * 16.0,
        footprint=2.0 * pair_matrix_bytes,
        access_pattern=AccessPattern.IRREGULAR,
        parallel_tasks=pairs,
    )
    gemm_flops = GEMM_FLOP_COEFF * float(pairs) ** 2 * problem.n_chi
    gemm_ai = gemm_intensity(pairs)
    gemm = KernelWorkload(
        name=PhaseName.GEMM,
        flops=gemm_flops,
        bytes_read=gemm_flops / gemm_ai * 0.75,
        bytes_written=gemm_flops / gemm_ai * 0.25,
        working_set=256 * 256 * 16.0 * 3,
        footprint=(2.0 * pairs * problem.n_pw + float(pairs) ** 2) * 16.0,
        access_pattern=AccessPattern.BLOCKED,
        parallel_tasks=max(1, (pairs // 128) ** 2),
    )
    syevd_flops = SYEVD_FLOP_COEFF * float(pairs) ** 3
    syevd_ai = syevd_intensity(pairs)
    syevd = KernelWorkload(
        name=PhaseName.SYEVD,
        flops=syevd_flops,
        bytes_read=syevd_flops / syevd_ai * 0.7,
        bytes_written=syevd_flops / syevd_ai * 0.3,
        working_set=float(pairs) ** 2 * 16.0,
        footprint=2.0 * float(pairs) ** 2 * 16.0,
        access_pattern=AccessPattern.BLOCKED,
        parallel_tasks=max(1, pairs // 64),
    )
    bands = problem.n_active_valence + problem.n_active_conduction
    projector_bytes = (
        problem.n_atoms * 4 * problem.n_pw * 16.0
    )  # 4 projectors/atom over the wavefunction sphere
    pseudopotential = KernelWorkload(
        name=PhaseName.PSEUDOPOTENTIAL,
        flops=PSEUDO_BYTES_PER_POINT * PSEUDO_ARITH_INTENSITY * volume,
        bytes_read=PSEUDO_BYTES_PER_POINT * volume * 0.8,
        bytes_written=PSEUDO_BYTES_PER_POINT * volume * 0.2,
        # Projector blocks are streamed, not reused: the working set is the
        # full projector payload, which exceeds any LLC beyond Si_16.
        working_set=projector_bytes,
        footprint=bands * problem.n_pw * 16.0 + projector_bytes,
        access_pattern=AccessPattern.SEQUENTIAL,
        parallel_tasks=problem.n_atoms * max(1, problem.n_active_valence),
    )
    return {
        PhaseName.FACE_SPLIT: face_split,
        PhaseName.FFT: fft,
        PhaseName.GLOBAL_COMM: global_comm,
        PhaseName.GEMM: gemm,
        PhaseName.SYEVD: syevd,
        PhaseName.PSEUDOPOTENTIAL: pseudopotential,
    }
