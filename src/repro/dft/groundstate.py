"""Ground-state solver: empirical-pseudopotential Kohn-Sham-style orbitals.

LR-TDDFT consumes a set of occupied (valence) and empty (conduction)
orbitals ``{psi_i}`` with eigenvalues ``{eps_i}``.  Production codes obtain
them from a self-consistent DFT run; for this reproduction we solve the
(non-self-consistent) empirical-pseudopotential Hamiltonian

    H = -1/2 nabla^2 + V_loc(EPM) + V_nl(Kleinman-Bylander)

in the plane-wave basis, which yields silicon bands with a realistic gap and
realistic orbital structure at a cost small enough to run in tests.  The
substitution is recorded in DESIGN.md; everything downstream (pair
densities, response kernels, the pseudopotential-application kernel that
NDFT optimizes) is the genuine article.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

from repro.dft.basis import PlaneWaveBasis
from repro.dft.lattice import Crystal
from repro.dft.pseudopotential import (
    AtomPseudoBlock,
    build_projectors,
    local_potential_coefficients,
)
from repro.errors import ConfigError, PhysicsError

#: Valence electrons contributed by each silicon atom.
VALENCE_ELECTRONS_PER_ATOM = 4


@dataclass(frozen=True)
class GroundState:
    """Converged orbitals and metadata handed to the LR-TDDFT driver.

    Attributes
    ----------
    cell, basis:
        The crystal and plane-wave basis the orbitals live in.
    eigenvalues:
        (n_bands,) orbital energies in Hartree, ascending.
    orbitals:
        (n_bands, n_pw) plane-wave coefficients, orthonormal rows.
    n_valence:
        Number of doubly-occupied orbitals (= 2 electrons each).
    pseudo_blocks:
        The per-atom nonlocal payload used to build H; re-used by the
        pseudopotential-application kernel benchmarks.
    """

    cell: Crystal
    basis: PlaneWaveBasis
    eigenvalues: np.ndarray
    orbitals: np.ndarray
    n_valence: int
    pseudo_blocks: tuple[AtomPseudoBlock, ...]

    @property
    def n_bands(self) -> int:
        return len(self.eigenvalues)

    @property
    def n_conduction(self) -> int:
        return self.n_bands - self.n_valence

    @property
    def band_gap(self) -> float:
        """HOMO-LUMO gap in Hartree (Γ-point supercell gap)."""
        if self.n_conduction < 1:
            raise PhysicsError("no conduction bands were computed")
        return float(
            self.eigenvalues[self.n_valence] - self.eigenvalues[self.n_valence - 1]
        )

    def valence_orbitals(self) -> np.ndarray:
        return self.orbitals[: self.n_valence]

    def conduction_orbitals(self) -> np.ndarray:
        return self.orbitals[self.n_valence :]

    def density_grid(self) -> np.ndarray:
        """Ground-state electron density on the FFT grid (electrons/Bohr^3),
        from the doubly-occupied valence orbitals."""
        psi_r = self.basis.to_grid(self.valence_orbitals())
        density = 2.0 * (np.abs(psi_r) ** 2).sum(axis=0) / self.cell.volume
        return density.real


def build_hamiltonian(
    cell: Crystal,
    basis: PlaneWaveBasis,
    blocks: list[AtomPseudoBlock] | None = None,
) -> np.ndarray:
    """Assemble the dense (n_pw, n_pw) plane-wave Hamiltonian.

    The local part is a convolution matrix ``V_loc(G_i - G_j)``; the
    nonlocal part adds the separable projector outer products.
    """
    n = basis.n_pw
    kinetic = np.diag(0.5 * basis.g2)

    delta_g = basis.g_cart[:, None, :] - basis.g_cart[None, :, :]
    vloc = local_potential_coefficients(cell, delta_g.reshape(-1, 3)).reshape(n, n)

    h = kinetic + vloc
    if blocks:
        for block in blocks:
            beta = block.projectors
            h = h + (beta.conj().T * block.coupling) @ beta
    if not np.allclose(h, h.conj().T, atol=1e-10):
        raise PhysicsError("assembled Hamiltonian is not Hermitian")
    return h


def solve_ground_state(
    cell: Crystal,
    basis: PlaneWaveBasis,
    n_conduction: int | None = None,
    include_nonlocal: bool = True,
) -> GroundState:
    """Diagonalize the EPM Hamiltonian and return valence + conduction bands.

    Parameters
    ----------
    n_conduction:
        How many empty bands to keep.  Defaults to half the valence count
        (the paper's workloads only excite into a window of low conduction
        states).
    include_nonlocal:
        Include the Kleinman-Bylander term in H.  Disabling it is useful in
        tests that need a purely local reference.
    """
    n_valence = cell.n_atoms * VALENCE_ELECTRONS_PER_ATOM // 2
    if n_conduction is None:
        n_conduction = max(4, n_valence // 2)
    n_bands = n_valence + n_conduction
    if n_bands > basis.n_pw:
        raise ConfigError(
            f"need {n_bands} bands but the basis has only {basis.n_pw} "
            f"plane waves; raise ecut"
        )

    blocks = build_projectors(cell, basis) if include_nonlocal else []
    h = build_hamiltonian(cell, basis, blocks)
    eigenvalues, eigenvectors = scipy.linalg.eigh(
        h, subset_by_index=(0, n_bands - 1)
    )
    orbitals = np.ascontiguousarray(eigenvectors.T)

    return GroundState(
        cell=cell,
        basis=basis,
        eigenvalues=eigenvalues,
        orbitals=orbitals,
        n_valence=n_valence,
        pseudo_blocks=tuple(blocks),
    )
