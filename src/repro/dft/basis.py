"""Γ-point plane-wave basis and FFT grids.

A wavefunction is expanded as ``psi(r) = (1/sqrt(V)) sum_G c_G exp(i G.r)``
over all reciprocal-lattice vectors with kinetic energy ``|G|^2 / 2 <= E_cut``
(Hartree).  The basis also owns the real-space FFT grid used for densities
and pair products; the grid is sized to hold products of two wavefunctions
exactly (2x the wavefunction G-sphere in every direction).

Conventions
-----------
- ``to_grid`` zero-pads the coefficient sphere onto the FFT grid and applies
  an *inverse* FFT scaled by ``n_grid`` so that grid values are the physical
  ``sqrt(V) * psi(r)`` samples (i.e. dimensionless orbital amplitudes whose
  mean square over the grid is 1 for a normalized orbital).
- ``from_grid`` is the exact inverse of ``to_grid``.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.dft.lattice import Crystal
from repro.errors import ConfigError


def next_fast_fft_size(n: int) -> int:
    """Smallest 2/3/5-smooth integer >= n (a size numpy FFTs handle well)."""
    if n < 1:
        raise ConfigError(f"FFT size must be >= 1, got {n}")
    candidate = n
    while True:
        remainder = candidate
        for prime in (2, 3, 5):
            while remainder % prime == 0:
                remainder //= prime
        if remainder == 1:
            return candidate
        candidate += 1


class PlaneWaveBasis:
    """Plane-wave basis for a crystal at the Γ point.

    Parameters
    ----------
    cell:
        The periodic supercell.
    ecut:
        Wavefunction kinetic-energy cutoff in Hartree.
    grid_factor:
        Ratio between the FFT-grid G-extent and the wavefunction sphere
        extent.  2.0 (default) makes wavefunction products exact.
    """

    def __init__(self, cell: Crystal, ecut: float, grid_factor: float = 2.0):
        if ecut <= 0:
            raise ConfigError(f"ecut must be positive, got {ecut}")
        if grid_factor < 1.0:
            raise ConfigError(f"grid_factor must be >= 1, got {grid_factor}")
        self.cell = cell
        self.ecut = float(ecut)
        self.grid_factor = float(grid_factor)

        recip = cell.reciprocal
        gmax = np.sqrt(2.0 * ecut)
        # Conservative per-axis Miller-index bound: |h_i| <= gmax / |b_i*|
        # where b_i* is the distance between neighboring (h_i) planes.
        inv_row_norms = np.linalg.norm(np.linalg.inv(recip.T), axis=1)
        hmax = np.maximum(1, np.ceil(gmax * inv_row_norms).astype(int))

        axes = [np.arange(-h, h + 1) for h in hmax]
        hh, kk, ll = np.meshgrid(*axes, indexing="ij")
        miller = np.stack([hh.ravel(), kk.ravel(), ll.ravel()], axis=1)
        g_cart = miller @ recip
        g2 = np.einsum("ij,ij->i", g_cart, g_cart)
        keep = g2 / 2.0 <= ecut + 1e-12

        order = np.lexsort(
            (miller[keep][:, 2], miller[keep][:, 1], miller[keep][:, 0], g2[keep])
        )
        self.miller = miller[keep][order]
        self.g_cart = g_cart[keep][order]
        self.g2 = g2[keep][order]

        span = 2 * np.ceil(self.grid_factor * hmax).astype(int) + 1
        self.fft_shape = tuple(next_fast_fft_size(int(s)) for s in span)

        self._grid_index = tuple(
            np.mod(self.miller[:, axis], self.fft_shape[axis])
            for axis in range(3)
        )

    @property
    def n_pw(self) -> int:
        """Number of plane waves in the wavefunction sphere."""
        return len(self.miller)

    @property
    def n_grid(self) -> int:
        """Number of real-space FFT grid points."""
        return int(np.prod(self.fft_shape))

    @cached_property
    def gamma_index(self) -> int:
        """Index of the G = 0 component within the coefficient sphere."""
        matches = np.flatnonzero(~self.miller.any(axis=1))
        if len(matches) != 1:
            raise ConfigError("basis does not contain exactly one G=0 vector")
        return int(matches[0])

    # ------------------------------------------------------------------
    # Sphere <-> grid transforms
    # ------------------------------------------------------------------
    def to_grid(self, coeffs: np.ndarray) -> np.ndarray:
        """Transform sphere coefficients to real-space grid samples.

        ``coeffs`` may be a single (n_pw,) vector or a batch (n, n_pw);
        returns (*fft_shape) or (n, *fft_shape) complex arrays.
        """
        coeffs = np.asarray(coeffs)
        single = coeffs.ndim == 1
        batch = coeffs[None, :] if single else coeffs
        if batch.shape[-1] != self.n_pw:
            raise ConfigError(
                f"expected {self.n_pw} coefficients, got {batch.shape[-1]}"
            )
        grid = np.zeros((len(batch), *self.fft_shape), dtype=complex)
        grid[(slice(None), *self._grid_index)] = batch
        out = np.fft.ifftn(grid, axes=(1, 2, 3)) * self.n_grid
        return out[0] if single else out

    def from_grid(self, grid: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`to_grid`: grid samples -> sphere coefficients."""
        grid = np.asarray(grid)
        single = grid.ndim == 3
        batch = grid[None, ...] if single else grid
        if batch.shape[1:] != self.fft_shape:
            raise ConfigError(
                f"expected grid shape {self.fft_shape}, got {batch.shape[1:]}"
            )
        transformed = np.fft.fftn(batch, axes=(1, 2, 3)) / self.n_grid
        coeffs = transformed[(slice(None), *self._grid_index)]
        return coeffs[0] if single else coeffs

    # ------------------------------------------------------------------
    # Helpers used by the Hamiltonian builders
    # ------------------------------------------------------------------
    def grid_g_vectors(self) -> np.ndarray:
        """Cartesian G vectors for every FFT grid point, shape (n_grid, 3).

        Frequencies follow FFT ordering (0, 1, ..., -1) per axis, mapped
        through the reciprocal lattice.
        """
        freqs = [
            np.fft.fftfreq(n, d=1.0 / n).astype(int) for n in self.fft_shape
        ]
        hh, kk, ll = np.meshgrid(*freqs, indexing="ij")
        miller = np.stack([hh.ravel(), kk.ravel(), ll.ravel()], axis=1)
        return miller @ self.cell.reciprocal

    def normalize(self, coeffs: np.ndarray) -> np.ndarray:
        """Return coefficients scaled to unit norm (orbital normalization)."""
        coeffs = np.asarray(coeffs)
        norms = np.linalg.norm(coeffs, axis=-1, keepdims=True)
        if np.any(norms == 0):
            raise ConfigError("cannot normalize a zero wavefunction")
        return coeffs / norms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PlaneWaveBasis(n_pw={self.n_pw}, fft_shape={self.fft_shape}, "
            f"ecut={self.ecut:.2f} Ha)"
        )
