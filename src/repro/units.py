"""Unit constants and formatting helpers used across the NDFT reproduction.

All internal accounting uses SI base units: bytes, seconds, Hz, FLOP/s.
Physics modules use Hartree atomic units (energies in Hartree, lengths in
Bohr) and convert at the boundary with these helpers.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Information units (binary prefixes, as used for memory capacities)
# ---------------------------------------------------------------------------

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

# Decimal prefixes (as used for bandwidths and rates)
KB = 1_000
MB = 1_000 * KB
GB = 1_000 * MB
TB = 1_000 * GB

# ---------------------------------------------------------------------------
# Time / frequency
# ---------------------------------------------------------------------------

NS = 1e-9
US = 1e-6
MS = 1e-3

KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

# ---------------------------------------------------------------------------
# Compute rates
# ---------------------------------------------------------------------------

GFLOPS = 1e9
TFLOPS = 1e12

# ---------------------------------------------------------------------------
# Physics conversions (CODATA-2018 rounded; precision is irrelevant for the
# performance model, but keeps the physics output in recognizable ranges)
# ---------------------------------------------------------------------------

HARTREE_TO_EV = 27.211386245988
EV_TO_HARTREE = 1.0 / HARTREE_TO_EV
BOHR_TO_ANGSTROM = 0.529177210903
ANGSTROM_TO_BOHR = 1.0 / BOHR_TO_ANGSTROM
RYDBERG_TO_HARTREE = 0.5

DOUBLE_BYTES = 8
COMPLEX_BYTES = 16
INT_BYTES = 8


def format_bytes(n: float) -> str:
    """Render a byte count with a binary prefix, e.g. ``format_bytes(2**34)``
    -> ``'16.00 GiB'``."""
    if n < 0:
        raise ValueError(f"byte count must be non-negative, got {n}")
    for unit, name in ((TiB, "TiB"), (GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if n >= unit:
            return f"{n / unit:.2f} {name}"
    return f"{n:.0f} B"


def format_seconds(t: float) -> str:
    """Render a duration with an adaptive unit, e.g. ``format_seconds(3e-5)``
    -> ``'30.00 us'``."""
    if t < 0:
        raise ValueError(f"duration must be non-negative, got {t}")
    if t >= 1.0:
        return f"{t:.3f} s"
    if t >= MS:
        return f"{t / MS:.2f} ms"
    if t >= US:
        return f"{t / US:.2f} us"
    return f"{t / NS:.2f} ns"


def format_rate(flops_per_s: float) -> str:
    """Render a compute rate, e.g. ``format_rate(3.84e11)`` -> ``'384.0 GFLOP/s'``."""
    if flops_per_s < 0:
        raise ValueError(f"rate must be non-negative, got {flops_per_s}")
    if flops_per_s >= TFLOPS:
        return f"{flops_per_s / TFLOPS:.2f} TFLOP/s"
    return f"{flops_per_s / GFLOPS:.1f} GFLOP/s"
