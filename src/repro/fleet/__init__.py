"""Fleet-scale serving: a multi-process worker pool with deterministic
backlog-aware routing and shared warm cache snapshots.

- :mod:`repro.fleet.router` — pure virtual-time job→replica assignment
  (join-shortest-predicted-backlog over the admission controller's
  serialized-lane model);
- :mod:`repro.fleet.pool` — ``WorkerPool``: spawn-safe worker
  processes, the shared-snapshot warm-start/merge-back lifecycle;
- :mod:`repro.fleet.result` — ``FleetResult``/``ReplicaSummary``
  aggregation (fleet throughput, p50/p99, utilization, imbalance).
"""

from repro.fleet.pool import WorkerPool
from repro.fleet.result import FleetResult, ReplicaSummary
from repro.fleet.router import RoutingPlan, route_jobs

__all__ = [
    "FleetResult",
    "ReplicaSummary",
    "RoutingPlan",
    "WorkerPool",
    "route_jobs",
]
