"""Deterministic backlog-aware routing for the fleet serving layer.

One arrival stream feeds N replica frameworks; something has to decide
which replica simulates which job, and that decision must be *pure
virtual-time arithmetic* — never a function of which worker process
happened to report first — or the fleet's results would depend on OS
scheduling.  :func:`route_jobs` therefore reuses the exact backlog model
:func:`repro.core.arrivals.plan_admission` applies at admission time:
each replica carries a per-lane drain clock, a job's predicted start on
a replica is ``max(arrival, that replica's drain time over the job's
lanes)``, its predicted completion adds the memoized solo estimate, and
the job goes to the replica with the *shortest predicted completion*
(join-shortest-predicted-backlog), ties broken by replica index.  The
model deliberately serializes shared lanes — the same conservative
choice the admission controller makes — because an over-estimated
backlog merely spreads load earlier, which is the safe direction.

Same arrivals + same solo estimates ⇒ same :class:`RoutingPlan`, always:
the router runs entirely in the parent, before any worker exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError


@dataclass(frozen=True)
class RoutingPlan:
    """The deterministic job→replica assignment for one served batch.

    ``assignments[i]`` is the replica index job ``i`` (submission order)
    was routed to; ``predicted_completions[i]`` is the backlog model's
    completion estimate for it on that replica — an *estimate* used only
    for routing, never reported as a result.  ``predicted_backlogs`` is
    each replica's final drain time (the max of its lane clocks), the
    quantity the router was balancing."""

    n_replicas: int
    assignments: tuple[int, ...]
    predicted_completions: tuple[float, ...]
    predicted_backlogs: tuple[float, ...]

    @property
    def n_jobs(self) -> int:
        return len(self.assignments)

    def jobs_for(self, replica: int) -> tuple[int, ...]:
        """Global submission indices routed to ``replica``, in
        submission order (the order the worker receives them)."""
        return tuple(
            i for i, r in enumerate(self.assignments) if r == replica
        )

    @property
    def replica_job_counts(self) -> tuple[int, ...]:
        """Jobs per replica — the router's load split at a glance."""
        counts = [0] * self.n_replicas
        for r in self.assignments:
            counts[r] += 1
        return tuple(counts)


def route_jobs(
    n_replicas: int,
    arrivals: Sequence[float] | None,
    solo_times: Sequence[float],
    lanes: Sequence[tuple],
) -> RoutingPlan:
    """Assign every job to the replica with the shortest predicted
    backlog (see the module docstring for the model).

    ``arrivals`` may be ``None`` for the closed batch — every job
    releases at t=0 and ties resolve by submission index, exactly like
    the simulator's release order.  ``solo_times`` and ``lanes`` are
    the per-job estimates from
    :meth:`repro.core.framework.NdftFramework.job_estimates`.
    """
    if n_replicas < 1:
        raise ConfigError(f"n_replicas must be >= 1, got {n_replicas}")
    n = len(solo_times)
    if arrivals is None:
        arrivals = [0.0] * n
    if not (len(arrivals) == len(lanes) == n):
        raise ConfigError(
            "arrivals, solo_times and lanes must align: got "
            f"{len(arrivals)}/{n}/{len(lanes)}"
        )
    lane_free: list[dict] = [{} for _ in range(n_replicas)]
    assignments: list[int] = [0] * n
    predicted: list[float] = [0.0] * n
    for i in sorted(range(n), key=lambda j: (arrivals[j], j)):
        arrival = float(arrivals[i])
        best_replica = 0
        best_completion = None
        for replica in range(n_replicas):
            start = arrival
            clocks = lane_free[replica]
            for lane in lanes[i]:
                free = clocks.get(lane)
                if free is not None and free > start:
                    start = free
            completion = start + solo_times[i]
            if best_completion is None or completion < best_completion:
                best_completion = completion
                best_replica = replica
        assignments[i] = best_replica
        predicted[i] = best_completion
        clocks = lane_free[best_replica]
        for lane in lanes[i]:
            clocks[lane] = best_completion
    backlogs = tuple(
        max(clocks.values()) if clocks else 0.0 for clocks in lane_free
    )
    return RoutingPlan(
        n_replicas=n_replicas,
        assignments=tuple(assignments),
        predicted_completions=tuple(predicted),
        predicted_backlogs=backlogs,
    )
