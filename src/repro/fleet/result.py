"""Fleet-level aggregation of per-replica serving results.

A :class:`FleetResult` is what ``WorkerPool.serve`` returns: the
deterministic routing plan, one :class:`ReplicaSummary` per replica
(virtual-time numbers lifted from each worker's
:class:`~repro.core.framework.NdftBatchResult`, reduced to picklable
plain data for the process boundary), and the fleet rollups the serving
benchmark quotes — aggregate throughput, p50/p99 completion latency over
*all* jobs, per-replica utilization and the imbalance ratio.  Everything
except the measured wall seconds is pure virtual-time arithmetic, so two
runs with the same plan produce equal results no matter how the worker
processes interleaved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.arrivals import percentile
from repro.fleet.router import RoutingPlan


@dataclass(frozen=True)
class ReplicaSummary:
    """One replica's contribution to a served batch.

    ``job_indices`` are global submission indices in the replica's local
    submission order; ``completion_times`` align with them (virtual
    seconds on the shared t=0 timeline).  An unused replica (fewer jobs
    than replicas) has empty tuples and zero spans."""

    replica: int
    job_indices: tuple[int, ...]
    completion_times: tuple[float, ...]
    makespan: float
    busy_span: float
    lane_busy_seconds: dict[str, float] = field(default_factory=dict)
    backend_jobs: dict[str, int] = field(default_factory=dict)
    #: Host wall seconds the worker spent simulating (all rounds).
    wall_seconds: float = 0.0

    @property
    def n_jobs(self) -> int:
        return len(self.job_indices)

    @property
    def throughput(self) -> float:
        """Jobs per second of this replica's busy span (virtual)."""
        if self.busy_span <= 0:
            return 0.0
        return self.n_jobs / self.busy_span


@dataclass(frozen=True)
class FleetResult:
    """A batch served by the whole fleet.

    ``arrivals`` is the global release stream (``None`` = closed batch,
    every job at t=0 on its replica); ``rounds`` is how many times each
    worker repeated the identical simulation inside the measured wall
    (sustained-serving measurement — results are bit-identical across
    rounds, only the wall accumulates).  ``merged_entries`` counts the
    never-seen cache entries and tuner cells the post-run merge-back
    folded from the workers into the shared snapshot."""

    plan: RoutingPlan
    arrivals: tuple[float, ...] | None
    replicas: tuple[ReplicaSummary, ...]
    wall_seconds: float
    rounds: int = 1
    merged_entries: int = 0

    @property
    def n_replicas(self) -> int:
        return self.plan.n_replicas

    @property
    def n_jobs(self) -> int:
        return self.plan.n_jobs

    @property
    def completion_times(self) -> tuple[float, ...]:
        """Per-job virtual completion, scattered back to global
        submission order — directly comparable, job for job, with a
        single-process run of the same assignment."""
        out: list[float] = [0.0] * self.n_jobs
        for summary in self.replicas:
            for index, completion in zip(
                summary.job_indices, summary.completion_times
            ):
                out[index] = completion
        return tuple(out)

    @property
    def completion_latencies(self) -> tuple[float, ...]:
        """Per-job completion minus release, global submission order."""
        completions = self.completion_times
        if self.arrivals is None:
            return completions
        return tuple(
            completion - release
            for completion, release in zip(completions, self.arrivals)
        )

    def latency_percentile(self, q: float) -> float:
        latencies = self.completion_latencies
        if not latencies:
            return 0.0
        return percentile(latencies, q)

    @property
    def p50_latency(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p99_latency(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def makespan(self) -> float:
        """Last completion across the fleet (virtual)."""
        return max((s.makespan for s in self.replicas), default=0.0)

    @property
    def busy_span(self) -> float:
        """First release to last completion across the fleet."""
        completions = self.completion_times
        if not completions:
            return 0.0
        first_release = (
            0.0 if self.arrivals is None else min(self.arrivals)
        )
        return max(completions) - first_release

    @property
    def throughput(self) -> float:
        """Fleet jobs per second of virtual busy span.  N replicas
        draining in parallel finish the span sooner, so this scales
        with the fleet — it is the virtual-time counterpart of the
        measured :attr:`jobs_per_second_wall`."""
        span = self.busy_span
        if span <= 0:
            return 0.0
        return self.n_jobs / span

    @property
    def jobs_per_second_wall(self) -> float:
        """Measured host throughput: jobs simulated (all rounds) per
        wall second of the whole serve call — routing, dispatch,
        simulation and merge-back included."""
        if self.wall_seconds <= 0:
            return 0.0
        return (self.n_jobs * self.rounds) / self.wall_seconds

    @property
    def lane_busy_seconds(self) -> dict[str, float]:
        """Virtual busy seconds per lane name, summed across replicas
        (each replica is its own machine; same-named lanes add)."""
        totals: dict[str, float] = {}
        for summary in self.replicas:
            for lane, busy in summary.lane_busy_seconds.items():
                totals[lane] = totals.get(lane, 0.0) + busy
        return totals

    @property
    def lane_utilization(self) -> dict[str, float]:
        """Fleet-average busy fraction per lane: summed busy seconds
        over ``n_replicas`` copies of the fleet busy span."""
        span = self.busy_span
        if span <= 0:
            return {}
        denominator = span * self.n_replicas
        return {
            lane: busy / denominator
            for lane, busy in sorted(self.lane_busy_seconds.items())
        }

    @property
    def replica_utilization(self) -> tuple[float, ...]:
        """Each replica's busy span as a fraction of the fleet busy
        span — how evenly the router kept the fleet working."""
        span = self.busy_span
        if span <= 0:
            return tuple(0.0 for _ in self.replicas)
        return tuple(s.busy_span / span for s in self.replicas)

    @property
    def imbalance_ratio(self) -> float:
        """Max over mean of the per-replica busy spans (1.0 = perfectly
        balanced; an idle replica drags the mean down and pushes the
        ratio up).  1.0 for a degenerate fleet with no busy time."""
        spans = [s.busy_span for s in self.replicas]
        if not spans:
            return 1.0
        mean = sum(spans) / len(spans)
        if mean <= 0:
            return 1.0
        return max(spans) / mean

    @property
    def backend_jobs(self) -> dict[str, int]:
        """Jobs simulated per backend name, summed across replicas."""
        totals: dict[str, int] = {}
        for summary in self.replicas:
            for name, count in summary.backend_jobs.items():
                totals[name] = totals.get(name, 0) + count
        return totals
