"""A multi-process fleet of replica frameworks behind one router.

``WorkerPool`` is the scale-out answer to the single-process ceiling:
N worker processes (``multiprocessing`` spawn context — no inherited
state, every worker importable-from-scratch), each holding a replica
:class:`~repro.core.framework.NdftFramework` over the same
:class:`~repro.hw.config.SystemConfig`, fed from one arrival stream by
the deterministic backlog-aware router (:mod:`repro.fleet.router`).

The shared-snapshot lifecycle per ``serve`` call:

1. the parent derives every distinct job's schedule/solo estimate once
   (it needs them to route anyway) and writes **one** cache snapshot
   (:meth:`~repro.core.framework.NdftFramework.save_caches`);
2. every worker builds its replica framework, loads that snapshot under
   the usual fingerprint-refusal rules — workers start *warm*, paying
   none of the derivation cost — simulates its routed jobs, and writes
   its own learned snapshot;
3. the parent **merges back**
   (:meth:`~repro.core.framework.NdftFramework.merge_caches`): cache
   entries and tuner cells it has never seen are unioned in, so the
   fleet warms monotonically across runs; with ``snapshot_path=`` the
   merged state also persists across pool lifetimes.

Determinism contract: the routing plan and every virtual-time number in
the returned :class:`~repro.fleet.result.FleetResult` are computed from
(arrivals, memoized solo estimates, lane names) alone — worker processes
only *execute* the plan, so OS scheduling can change wall seconds but
never results.  Per-job completion times are bit-identical to a
single-process run of the same assignment (``inline=True`` runs the
identical worker code in-process for exactly that comparison).
"""

from __future__ import annotations

import multiprocessing
import tempfile
import time
from pathlib import Path
from typing import Sequence

from repro.core.framework import NdftFramework
from repro.core.scheduler import SchedulingPolicy
from repro.errors import ConfigError
from repro.fleet.result import FleetResult, ReplicaSummary
from repro.fleet.router import RoutingPlan, route_jobs
from repro.hw.config import SystemConfig


def _serve_replica(payload: dict) -> dict:
    """One worker's whole serve step: build the replica framework, load
    the shared snapshot (same fingerprint-refusal rules as any load),
    simulate the routed jobs ``rounds`` times, persist what it learned.

    Top-level function, plain-data payload, plain-data return — the
    spawn-context contract.  Also called in-process by ``inline`` pools:
    the worker path and the bit-identity reference are the same code.
    """
    framework = NdftFramework(
        system=payload["system"],
        policy=payload["policy"],
        enable_gpu=payload["enable_gpu"],
        cache_size=payload["cache_size"],
    )
    framework.load_caches(payload["snapshot"])
    started = time.perf_counter()
    result = None
    for _ in range(payload["rounds"]):
        result = framework.run_many(
            payload["sizes"],
            arrivals=payload["arrivals"],
            backend=payload["backend"],
        )
    wall = time.perf_counter() - started
    framework.save_caches(payload["out_snapshot"])
    return {
        "replica": payload["replica"],
        "completions": [job.report.total_time for job in result.jobs],
        "makespan": result.makespan,
        "busy_span": result.busy_span,
        "lane_busy_seconds": dict(result.lane_busy_seconds),
        "backend_jobs": dict(result.batch_report.backend_jobs),
        "wall_seconds": wall,
    }


class WorkerPool:
    """N replica frameworks served by worker processes (or inline).

    ``snapshot_path`` names a persistent shared snapshot: loaded into
    the parent at construction when it exists (fleet-mode fingerprint
    refusal happens right here — a snapshot from a different
    policy/system/registry raises :class:`~repro.errors.ConfigError`),
    re-written with the merged fleet state after every serve.  Without
    it the snapshot lives in a temporary directory for the pool's life.

    ``inline=True`` skips process creation and runs each worker payload
    sequentially in-process — same code, same results, no parallelism;
    the deterministic reference for tests and 1-core hosts.

    Use as a context manager (or call :meth:`close`): worker processes
    and the temporary snapshot directory persist across ``serve`` calls
    so repeated serving measures steady state, not process start-up.
    """

    def __init__(
        self,
        n_replicas: int,
        system: SystemConfig | None = None,
        policy: SchedulingPolicy = SchedulingPolicy.COST_AWARE,
        enable_gpu: bool = False,
        cache_size: int | None = NdftFramework.DEFAULT_CACHE_SIZE,
        snapshot_path: Path | str | None = None,
        inline: bool = False,
        start_method: str = "spawn",
    ):
        if n_replicas < 1:
            raise ConfigError(
                f"a worker pool needs n_replicas >= 1, got {n_replicas}"
            )
        self.n_replicas = n_replicas
        self.inline = inline
        self._start_method = start_method
        self.snapshot_path = (
            None if snapshot_path is None else Path(snapshot_path)
        )
        #: The parent (router-side) replica: derives estimates, owns the
        #: shared snapshot, accumulates every worker's merge-back.
        self.framework = NdftFramework(
            system=system,
            policy=policy,
            enable_gpu=enable_gpu,
            cache_size=cache_size,
        )
        self._payload_template = {
            "system": self.framework.system,
            "policy": policy,
            "enable_gpu": enable_gpu,
            "cache_size": cache_size,
        }
        if self.snapshot_path is not None and self.snapshot_path.exists():
            self.framework.load_caches(self.snapshot_path)
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        self._pool = None

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Tear down worker processes and the temporary snapshot dir
        (a persistent ``snapshot_path`` keeps its merged state)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def _workdir(self) -> Path:
        if self._tmpdir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="ndft-fleet-")
        return Path(self._tmpdir.name)

    def _process_pool(self):
        if self._pool is None:
            context = multiprocessing.get_context(self._start_method)
            self._pool = context.Pool(processes=self.n_replicas)
        return self._pool

    # -- serving -------------------------------------------------------
    def serve(
        self,
        batch: Sequence[int],
        arrivals: Sequence[float] | None = None,
        backend: str | None = None,
        rounds: int = 1,
    ) -> FleetResult:
        """Route ``batch`` across the fleet and simulate it.

        ``batch`` entries are atom counts (the fleet routes by size;
        arbitrary pipeline objects do not cross a process boundary).
        ``arrivals`` turns the batch into an open queue exactly as in
        :meth:`~repro.core.framework.NdftFramework.run_many` — each
        worker receives the global release offsets of its jobs, so all
        replicas share one virtual timeline.  ``rounds`` repeats the
        identical simulation per worker inside one measured wall
        (sustained-serving measurement; results are bit-identical
        across rounds).
        """
        if rounds < 1:
            raise ConfigError(f"rounds must be >= 1, got {rounds}")
        sizes = []
        for entry in batch:
            if isinstance(entry, bool) or not isinstance(entry, int):
                raise ConfigError(
                    "fleet serving routes by problem size: batch entries "
                    f"must be int atom counts, got {entry!r}"
                )
            sizes.append(entry)
        if not sizes:
            raise ConfigError("serve needs at least one job")
        if arrivals is not None:
            arrivals = tuple(float(offset) for offset in arrivals)
            if len(arrivals) != len(sizes):
                raise ConfigError(
                    f"{len(sizes)} jobs but {len(arrivals)} arrival offsets"
                )
        started = time.perf_counter()
        solo_times, lanes = self.framework.job_estimates(sizes)
        plan = route_jobs(self.n_replicas, arrivals, solo_times, lanes)

        workdir = self._workdir()
        shared_snapshot = workdir / "fleet_shared.pkl"
        self.framework.save_caches(shared_snapshot)
        payloads = []
        for replica in range(self.n_replicas):
            indices = plan.jobs_for(replica)
            if not indices:
                continue
            payload = dict(self._payload_template)
            payload.update(
                replica=replica,
                sizes=[sizes[i] for i in indices],
                arrivals=(
                    None
                    if arrivals is None
                    else [arrivals[i] for i in indices]
                ),
                backend=backend,
                rounds=rounds,
                snapshot=str(shared_snapshot),
                out_snapshot=str(workdir / f"fleet_worker_{replica}.pkl"),
            )
            payloads.append(payload)

        if self.inline:
            raw = [_serve_replica(payload) for payload in payloads]
        else:
            raw = self._process_pool().map(_serve_replica, payloads)

        merged = 0
        for payload in payloads:
            merged += self.framework.merge_caches(payload["out_snapshot"])
        if self.snapshot_path is not None:
            self.framework.save_caches(self.snapshot_path)

        by_replica = {entry["replica"]: entry for entry in raw}
        summaries = []
        for replica in range(self.n_replicas):
            entry = by_replica.get(replica)
            if entry is None:
                summaries.append(
                    ReplicaSummary(
                        replica=replica,
                        job_indices=(),
                        completion_times=(),
                        makespan=0.0,
                        busy_span=0.0,
                    )
                )
                continue
            summaries.append(
                ReplicaSummary(
                    replica=replica,
                    job_indices=plan.jobs_for(replica),
                    completion_times=tuple(entry["completions"]),
                    makespan=entry["makespan"],
                    busy_span=entry["busy_span"],
                    lane_busy_seconds=entry["lane_busy_seconds"],
                    backend_jobs=entry["backend_jobs"],
                    wall_seconds=entry["wall_seconds"],
                )
            )
        wall = time.perf_counter() - started
        return FleetResult(
            plan=plan,
            arrivals=arrivals,
            replicas=tuple(summaries),
            wall_seconds=wall,
            rounds=rounds,
            merged_entries=merged,
        )


__all__ = ["WorkerPool", "RoutingPlan", "route_jobs", "_serve_replica"]
