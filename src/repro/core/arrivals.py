"""Arrival processes, latency statistics and admission control for
open-queue serving.

The classic batch mode releases every job at t=0; a real DFT service
sees staggered arrivals.  :func:`poisson_arrivals` generates the
standard open-queue workload — exponential inter-arrival gaps at a given
offered load, from a seeded generator so every experiment is exactly
reproducible — and :func:`percentile` computes the p50/p99 completion
latencies the serving reports quote (linear interpolation between order
statistics, the numpy default, implemented locally so the core stays
dependency-free).

The arrival sampler is vectorized (one numpy draw plus a cumulative
sum) but stays *bit-compatible* with the original
``random.Random(seed).expovariate(rate)`` loop: committed benchmark
artifacts record offsets from specific seeds, and those must never
drift.  Two details make that exact rather than approximate: numpy's
``RandomState`` is seeded with the same init-by-array key CPython
derives from an int seed, so both visit the identical Mersenne Twister
stream, and the log transform goes through ``math.log`` (libm) because
numpy's SIMD ``np.log`` differs from libm by one ulp on a fraction of
inputs.  :func:`_poisson_arrivals_loop` keeps the original loop as the
regression oracle.

Past the saturation knee an open queue grows without bound, so a served
deployment needs to *act* at admission time: :class:`AdmissionPolicy`
declares the SLO (:attr:`~AdmissionPolicy.slo_p99` on predicted
completion latency, :attr:`~AdmissionPolicy.max_queue_depth` on
in-flight jobs) and what to do with violators (``shed`` drops them,
``deprioritize`` defers them behind the backlog), and
:func:`plan_admission` applies it deterministically over a batch's
arrival order using each job's memoized solo-time estimate and a
per-lane backlog model.  :meth:`repro.core.framework.NdftFramework.run_many`
consumes the plan before simulating.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass
from typing import Sequence

import numpy as np

# Re-exported from the foundation layer so existing callers keep this
# import path; the implementation lives in repro.stats, low enough for
# the simulation layer (core/faults.py) to use without importing upward.
from repro.stats import percentile

__all__ = [
    "ADMISSION_MODES",
    "AdmissionDecision",
    "AdmissionPolicy",
    "percentile",
    "plan_admission",
    "poisson_arrivals",
]


def _mt_seed_key(seed: int) -> list[int]:
    """The init-by-array key CPython derives from an int seed.

    ``random.Random(seed)`` folds ``abs(seed)`` into 32-bit
    little-endian chunks and feeds them to the Mersenne Twister's
    ``init_by_array``; ``numpy.random.RandomState`` accepts the same key
    and then produces the identical 53-bit uniform stream.
    """
    magnitude = abs(int(seed))
    if magnitude == 0:
        return [0]
    key = []
    while magnitude:
        key.append(magnitude & 0xFFFFFFFF)
        magnitude >>= 32
    return key


def poisson_arrivals(
    n_jobs: int, rate: float, seed: int = 0
) -> tuple[float, ...]:
    """Release offsets of a Poisson arrival process.

    ``rate`` is the offered load in jobs per second of virtual time;
    inter-arrival gaps are exponential with mean ``1/rate``.  The first
    job arrives after one gap (not at t=0), and offsets are
    non-decreasing — the order the open queue admits them.

    Vectorized, but bit-identical to :func:`_poisson_arrivals_loop` for
    every (seed, rate): the uniforms come from the same Mersenne
    Twister stream and the exponential transform applies libm's log to
    each draw, exactly as ``Random.expovariate`` does.
    """
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if rate <= 0:
        raise ValueError(f"arrival rate must be > 0, got {rate}")
    uniforms = np.random.RandomState(_mt_seed_key(seed)).random_sample(n_jobs)
    np.subtract(1.0, uniforms, out=uniforms)
    # math.log, not np.log: the SIMD log differs from libm by one ulp on
    # a fraction of inputs, which would silently shift committed offsets.
    gaps = np.fromiter(
        map(math.log, uniforms.tolist()), dtype=np.float64, count=n_jobs
    )
    gaps /= -rate
    return tuple(np.add.accumulate(gaps).tolist())


def _poisson_arrivals_loop(
    n_jobs: int, rate: float, seed: int = 0
) -> tuple[float, ...]:
    """The original scalar sampler, kept as the bit-compatibility oracle
    for :func:`poisson_arrivals` (regression-tested, not served)."""
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if rate <= 0:
        raise ValueError(f"arrival rate must be > 0, got {rate}")
    generator = random.Random(seed)
    now = 0.0
    offsets = []
    for _ in range(n_jobs):
        now += generator.expovariate(rate)
        offsets.append(now)
    return tuple(offsets)


#: Admission verdicts a policy can take on an over-SLO arrival.
ADMISSION_MODES = ("shed", "deprioritize")


@dataclass(frozen=True)
class AdmissionPolicy:
    """An SLO-driven admission policy for the open-queue serving path.

    ``slo_p99`` bounds the *predicted* completion latency (seconds of
    virtual time) an arrival may add to the tail: a job whose solo-time
    estimate plus the current backlog on its placement's lanes would
    exceed it is not admitted.  ``max_queue_depth`` bounds how many
    admitted jobs may be in flight (per their predicted completions)
    when a new job arrives.  Either criterion may be ``None``
    (unchecked); at least one must be set.

    ``mode`` picks the action on a violator: ``"shed"`` rejects it
    outright (it is never simulated), ``"deprioritize"`` keeps it but
    defers its release until its lanes' backlog is predicted to drain —
    it still runs, still occupies lanes, but no longer competes inside
    the SLO window and is excluded from the post-shed percentiles.

    The policy is pure data and the plan is a deterministic function of
    (policy, arrivals, solo estimates, lanes): the same seed and SLO
    always shed the same set.
    """

    slo_p99: float | None = None
    max_queue_depth: int | None = None
    mode: str = "shed"

    def __post_init__(self):
        if self.mode not in ADMISSION_MODES:
            raise ValueError(
                f"admission mode must be one of {ADMISSION_MODES}, "
                f"got {self.mode!r}"
            )
        if self.slo_p99 is None and self.max_queue_depth is None:
            raise ValueError(
                "an admission policy needs slo_p99 and/or max_queue_depth"
            )
        if self.slo_p99 is not None and self.slo_p99 <= 0:
            raise ValueError(f"slo_p99 must be > 0, got {self.slo_p99}")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )

    def to_json_dict(self) -> dict:
        """The policy as the plain dict recorded in benchmark artifacts
        (``BENCH_serving.json``'s top-level ``admission`` key)."""
        return {
            "slo_p99": self.slo_p99,
            "max_queue_depth": self.max_queue_depth,
            "mode": self.mode,
        }


@dataclass(frozen=True)
class AdmissionDecision:
    """One arrival's verdict under an :class:`AdmissionPolicy`.

    ``admitted`` jobs run at their arrival and count toward the SLO
    percentiles.  ``deferred`` jobs (``deprioritize`` mode only) run at
    the later ``release`` and are excluded from the SLO accounting.
    Jobs that are neither are shed: never simulated.  ``reason`` names
    the violated criterion (``"slo_p99"`` / ``"queue_depth"``) and is
    ``None`` for admitted jobs."""

    index: int
    label: str
    arrival: float
    predicted_latency: float
    admitted: bool
    deferred: bool
    release: float
    reason: str | None


def plan_admission(
    policy: AdmissionPolicy,
    arrivals: Sequence[float],
    solo_times: Sequence[float],
    lanes: Sequence[tuple],
    labels: Sequence[str],
) -> tuple[AdmissionDecision, ...]:
    """Apply ``policy`` over a batch, in arrival order.

    The backlog model is deliberately conservative: an admitted job is
    charged to *every* lane its placement touches (devices and crossing
    wires) from its predicted start — ``max(arrival, its lanes' drain
    time)`` — until ``start + solo_time``, i.e. the estimate serializes
    the work shared lanes would contend over and ignores the overlap
    the real DES finds.  Over-estimating the backlog sheds early, which
    is the safe direction for an SLO.  ``solo_times`` are the memoized
    dedicated-machine makespans the framework already derives per
    distinct signature; ``lanes[i]`` is job ``i``'s lane-name tuple
    (:meth:`repro.core.executor.PipelineExecutor.schedule_lanes`).

    Ties on the arrival instant are broken by submission index, exactly
    like the simulator's release order.  Returns one decision per job,
    in submission order.
    """
    n = len(arrivals)
    if not (len(solo_times) == len(lanes) == len(labels) == n):
        raise ValueError(
            "arrivals, solo_times, lanes and labels must align: got "
            f"{n}/{len(solo_times)}/{len(lanes)}/{len(labels)}"
        )
    lane_free: dict = {}
    in_flight: list[float] = []  # predicted completions of admitted jobs
    decisions: list[AdmissionDecision | None] = [None] * n
    for i in sorted(range(n), key=lambda j: (arrivals[j], j)):
        arrival = float(arrivals[i])
        while in_flight and in_flight[0] <= arrival:
            heapq.heappop(in_flight)
        start = arrival
        for lane in lanes[i]:
            free = lane_free.get(lane)
            if free is not None and free > start:
                start = free
        predicted_completion = start + solo_times[i]
        predicted_latency = predicted_completion - arrival
        reason = None
        if (
            policy.max_queue_depth is not None
            and len(in_flight) >= policy.max_queue_depth
        ):
            reason = "queue_depth"
        elif policy.slo_p99 is not None and predicted_latency > policy.slo_p99:
            reason = "slo_p99"
        if reason is None:
            for lane in lanes[i]:
                lane_free[lane] = predicted_completion
            heapq.heappush(in_flight, predicted_completion)
            decisions[i] = AdmissionDecision(
                index=i,
                label=labels[i],
                arrival=arrival,
                predicted_latency=predicted_latency,
                admitted=True,
                deferred=False,
                release=arrival,
                reason=None,
            )
        elif policy.mode == "shed":
            decisions[i] = AdmissionDecision(
                index=i,
                label=labels[i],
                arrival=arrival,
                predicted_latency=predicted_latency,
                admitted=False,
                deferred=False,
                release=arrival,
                reason=reason,
            )
        else:
            # Deprioritize: defer the release to the predicted drain of
            # whatever the job violated — its lanes' backlog, and (for a
            # depth violation, where the lanes may well be idle) at
            # least the earliest in-flight completion, so deferral is
            # never a no-op that re-admits the job at its own arrival.
            release = start
            if reason == "queue_depth" and in_flight and in_flight[0] > release:
                release = in_flight[0]
            completion = release + solo_times[i]
            for lane in lanes[i]:
                lane_free[lane] = completion
            decisions[i] = AdmissionDecision(
                index=i,
                label=labels[i],
                arrival=arrival,
                predicted_latency=predicted_latency,
                admitted=False,
                deferred=True,
                release=release,
                reason=reason,
            )
    return tuple(decisions)  # type: ignore[arg-type]


