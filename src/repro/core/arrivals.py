"""Arrival processes and latency statistics for open-queue serving.

The classic batch mode releases every job at t=0; a real DFT service
sees staggered arrivals.  :func:`poisson_arrivals` generates the
standard open-queue workload — exponential inter-arrival gaps at a given
offered load, from a seeded generator so every experiment is exactly
reproducible — and :func:`percentile` computes the p50/p99 completion
latencies the serving reports quote (linear interpolation between order
statistics, the numpy default, implemented locally so the core stays
dependency-free).
"""

from __future__ import annotations

import random
from typing import Sequence


def poisson_arrivals(
    n_jobs: int, rate: float, seed: int = 0
) -> tuple[float, ...]:
    """Release offsets of a Poisson arrival process.

    ``rate`` is the offered load in jobs per second of virtual time;
    inter-arrival gaps are exponential with mean ``1/rate``.  The first
    job arrives after one gap (not at t=0), and offsets are
    non-decreasing — the order the open queue admits them.
    """
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if rate <= 0:
        raise ValueError(f"arrival rate must be > 0, got {rate}")
    generator = random.Random(seed)
    now = 0.0
    offsets = []
    for _ in range(n_jobs):
        now += generator.expovariate(rate)
        offsets.append(now)
    return tuple(offsets)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction
