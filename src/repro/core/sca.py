"""Static code analyzer (SCA) substitute (§IV-A2).

The paper leverages a static analyzer (Intel architecture code analyzer /
LLVM) to estimate, per code region: execution time, memory access
patterns, instruction dependencies, and the data each region would have to
move if offloaded.  Our :class:`StaticCodeAnalyzer` derives the same
quantities from the kernel IR plus the machine rooflines — which is
faithful to how such analyzers are actually used in NDP offload studies
(classify boundedness, estimate DT sets), without a binary front end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ir import KernelFunction
from repro.errors import ConfigError
from repro.hw.roofline import RooflineModel


@dataclass(frozen=True)
class ScaReport:
    """The analyzer's verdict on one function."""

    function_name: str
    arithmetic_intensity: float
    boundedness: str                 # "memory" or "compute"
    intensity_consistency: float     # [0, 1]; high -> function-level safe
    estimated_cpu_time: float
    estimated_ndp_time: float
    transfer_in_bytes: float
    transfer_out_bytes: float

    @property
    def prefers_ndp(self) -> bool:
        """First-order placement hint (ignores transfer costs — those are
        the scheduler's job, Eq. 1)."""
        return self.estimated_ndp_time < self.estimated_cpu_time


class StaticCodeAnalyzer:
    """Analyzes kernel functions against a CPU and an NDP roofline."""

    def __init__(self, cpu_roofline: RooflineModel, ndp_roofline: RooflineModel):
        self.cpu_roofline = cpu_roofline
        self.ndp_roofline = ndp_roofline

    def _estimate_time(self, function: KernelFunction, roofline: RooflineModel) -> float:
        """First-order time: max of compute at peak and traffic at peak BW.

        This is the *static* estimate the scheduler refines with the full
        machine models; it has no utilization or cache corrections, exactly
        like a static analyzer working without execution profiles.
        """
        compute = function.flops / roofline.peak_flops
        memory = function.bytes_total / roofline.peak_bandwidth
        return max(compute, memory)

    def analyze(self, function: KernelFunction) -> ScaReport:
        if function.flops < 0:
            raise ConfigError("function with negative FLOPs")
        ai = function.arithmetic_intensity
        classify_ai = ai if ai != float("inf") else self.cpu_roofline.ridge_point
        return ScaReport(
            function_name=function.name,
            arithmetic_intensity=ai,
            boundedness=self.cpu_roofline.classify(classify_ai),
            intensity_consistency=function.intensity_consistency(),
            estimated_cpu_time=self._estimate_time(function, self.cpu_roofline),
            estimated_ndp_time=self._estimate_time(function, self.ndp_roofline),
            transfer_in_bytes=function.live_in_bytes,
            transfer_out_bytes=function.live_out_bytes,
        )

    def analyze_all(
        self, functions: list[KernelFunction]
    ) -> dict[str, ScaReport]:
        return {fn.name: self.analyze(fn) for fn in functions}
