"""The offload cost model — the paper's Eq. 1.

    Scheduling Overhead = sum over placement boundaries of (DT(i, j) + CXT)

DT(i, j) is the data-transfer time for the bytes live across a placement
boundary; CXT is the constant context-switch cost of synchronizing
execution state between the two kinds of units.  The scheduler charges
this overhead for every edge of the stage graph whose endpoints run on
different targets, and NDFT's reported "scheduling overhead" (3.8 % /
4.9 % of runtime, §VI-A) is exactly this sum over the CPU<->NDP link.

With more than two targets the boundaries are no longer all served by
the same wire: ``device_links`` maps an unordered placement pair to the
link that physically carries it (e.g. CPU<->GPU over PCIe, NDP<->GPU
over CXL *and* PCIe in series).  Pairs without an entry fall back to
``host_link``, which keeps the paper's two-sided numbers untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import ConfigError
from repro.hw.interconnect import HostLink

#: An unordered pair of placement names, e.g. frozenset({"cpu", "gpu"}).
DevicePair = frozenset


def serial_links(first: HostLink, second: HostLink) -> HostLink:
    """The effective link of two wires traversed back to back: latencies
    add, bandwidth is the harmonic combination (each byte pays both)."""
    return HostLink(
        bandwidth=1.0 / (1.0 / first.bandwidth + 1.0 / second.bandwidth),
        base_latency=first.base_latency + second.base_latency,
    )


@dataclass(frozen=True)
class OffloadCostModel:
    """DT + CXT accounting over the inter-device links."""

    host_link: HostLink
    context_switch: float  # seconds per boundary crossing (CXT)
    #: Per device-pair links; missing pairs use ``host_link``.
    device_links: Mapping[DevicePair, HostLink] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.context_switch < 0:
            raise ConfigError("context switch cost must be non-negative")

    def link_for(self, pair: Iterable | None = None) -> HostLink:
        """The link serving a boundary between the two given placements
        (any iterable of placements/strings; order irrelevant)."""
        if pair is None:
            return self.host_link
        key = frozenset(str(p) for p in pair)
        return self.device_links.get(key, self.host_link)

    def data_transfer_time(self, nbytes: float, pair: Iterable | None = None) -> float:
        """DT(i, j) for one boundary carrying ``nbytes``."""
        return self.link_for(pair).transfer_time(nbytes)

    def boundary_cost(self, nbytes: float, pair: Iterable | None = None) -> float:
        """DT + CXT for one placement boundary."""
        return self.data_transfer_time(nbytes, pair) + self.context_switch

    def schedule_overhead(self, crossing_edges: list[float]) -> float:
        """Eq. 1: total overhead for a set of boundary-crossing edges on
        the default host link, given as the byte counts crossing each
        boundary."""
        return sum(self.boundary_cost(nbytes) for nbytes in crossing_edges)
