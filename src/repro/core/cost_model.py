"""The offload cost model — the paper's Eq. 1.

    Scheduling Overhead = sum over CPU<->NDP boundaries of (DT(i, j) + CXT)

DT(i, j) is the data-transfer time for the bytes live across a placement
boundary (served by the host link); CXT is the constant context-switch
cost of synchronizing execution state between the two kinds of units.
The scheduler charges this overhead for every edge of the stage graph
whose endpoints run on different sides, and NDFT's reported "scheduling
overhead" (3.8 % / 4.9 % of runtime, §VI-A) is exactly this sum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hw.interconnect import HostLink


@dataclass(frozen=True)
class OffloadCostModel:
    """DT + CXT accounting over a host link."""

    host_link: HostLink
    context_switch: float  # seconds per boundary crossing (CXT)

    def __post_init__(self) -> None:
        if self.context_switch < 0:
            raise ConfigError("context switch cost must be non-negative")

    def data_transfer_time(self, nbytes: float) -> float:
        """DT(i, j) for one boundary carrying ``nbytes``."""
        return self.host_link.transfer_time(nbytes)

    def boundary_cost(self, nbytes: float) -> float:
        """DT + CXT for one placement boundary."""
        return self.data_transfer_time(nbytes) + self.context_switch

    def schedule_overhead(self, crossing_edges: list[float]) -> float:
        """Eq. 1: total overhead for a set of boundary-crossing edges,
        given as the byte counts crossing each boundary."""
        return sum(self.boundary_cost(nbytes) for nbytes in crossing_edges)
