"""Pipeline executor: maps schedules onto the machine models via the DES.

The executor turns a :class:`~repro.core.scheduler.Schedule` into a
discrete-event simulation: one process per stage that (1) waits for *all*
of its DAG predecessors, (2) pays any cross-boundary transfer of its
inputs over the link serving that device pair (one transfer per crossing
in-edge; the CPU<->NDP host link by default, per-pair wires when the
cost model defines them), (3) occupies its assigned device for the
stage's modeled duration.  Devices and links are engine resources, so
independent branches placed on distinct devices genuinely overlap while
stages contending for the same device — or concurrent transfers
contending for the same wire — serialize exactly as they would on the
real hardware.

Two entry points:

- :meth:`PipelineExecutor.execute` — one job, one engine; on the paper's
  linear chain this reproduces the original serialized totals exactly
  (the Fig. 7 data).
- :meth:`PipelineExecutor.execute_many` — a batch of jobs through one
  shared engine and one shared set of device/link resources: the batching
  back-end of :meth:`repro.core.framework.NdftFramework.run_many`.

An ``observer`` callback (``lane, label, start, end``) receives every
occupancy interval — device lanes are named after the placement
(``"cpu"``/``"ndp"``/``"gpu"``), transfers land on one lane per physical
wire (``"link:cpu-ndp"``, ``"link:cpu-gpu"``, ...) — which is how
:mod:`repro.core.trace` rebuilds exact Gantt timelines without a second
timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.cost_model import OffloadCostModel
from repro.core.pipeline import Pipeline
from repro.core.scheduler import Placement, Schedule
from repro.errors import SimulationError
from repro.hw.engine import Engine, Resource, SimProcess
from repro.hw.timing import PhaseTime

#: Trace callback: (lane, label, start_seconds, end_seconds).
TraceObserver = Callable[[str, str, float, float], None]

#: Prefix of every trace lane carrying boundary transfers; each physical
#: wire gets its own lane ("link:cpu-ndp", "link:cpu-gpu", ...) because
#: distinct wires legitimately carry transfers concurrently.
LINK_LANE_PREFIX = "link"


@dataclass(frozen=True)
class ExecutionReport:
    """Result of executing one pipeline under one schedule.

    ``total_time`` is the DES makespan: for a chain it equals the sum of
    phase times plus the scheduling overhead; for a branching DAG it can
    be smaller (branch overlap), and for a job inside a batch it includes
    any time spent queueing for shared devices.
    """

    phase_seconds: dict[str, float]
    phase_times: dict[str, PhaseTime]
    scheduling_overhead: float
    total_time: float
    assignments: dict[str, Placement] = field(default_factory=dict)

    @property
    def overhead_fraction(self) -> float:
        if self.total_time == 0:
            return 0.0
        return self.scheduling_overhead / self.total_time

    @property
    def serial_time(self) -> float:
        """The no-overlap bound: every stage back to back plus overhead."""
        return sum(self.phase_seconds.values()) + self.scheduling_overhead

    def breakdown(self) -> dict[str, float]:
        """Per-phase seconds plus a 'scheduling' bucket (Fig. 7 bars)."""
        out = dict(self.phase_seconds)
        out["scheduling"] = self.scheduling_overhead
        return out


@dataclass(frozen=True)
class BatchExecutionReport:
    """Result of executing a batch of jobs on one shared machine."""

    job_reports: tuple[ExecutionReport, ...]
    makespan: float

    @property
    def n_jobs(self) -> int:
        return len(self.job_reports)

    @property
    def throughput(self) -> float:
        """Jobs per second of shared-machine time."""
        if self.makespan == 0:
            return 0.0
        return self.n_jobs / self.makespan

    @property
    def no_overlap_time(self) -> float:
        """The fully-serialized bound: every stage of every job back to
        back.  For branching jobs this exceeds what solo DES runs achieve
        (they already overlap branches) — use
        :attr:`repro.core.framework.NdftBatchResult.serial_time` for the
        achievable one-job-at-a-time baseline."""
        return sum(report.serial_time for report in self.job_reports)


@dataclass
class PipelineExecutor:
    """Runs scheduled pipelines through the discrete-event engine."""

    cost_model: OffloadCostModel

    # ------------------------------------------------------------------
    # Single job
    # ------------------------------------------------------------------
    def execute(
        self,
        pipeline: Pipeline,
        schedule: Schedule,
        observer: TraceObserver | None = None,
    ) -> ExecutionReport:
        if observer is None and self._is_single_chain(pipeline):
            return self._execute_chain_analytic(pipeline, schedule)
        engine = Engine()
        devices = self._device_resources(engine, [schedule])
        links: dict[frozenset, Resource] = {}
        plan = self._transfer_plan(engine, links, pipeline, schedule)
        processes, overhead_total = self._spawn_job(
            engine, devices, pipeline, schedule, observer, plan
        )
        engine.run()
        return self._job_report(
            pipeline, schedule, overhead_total, self._finish_time(processes)
        )

    @staticmethod
    def _is_single_chain(pipeline: Pipeline) -> bool:
        """One connected chain: the only shape where a solo job's DES run
        is fully serialized regardless of placement (every stage waits on
        its unique predecessor before touching any resource), so the
        makespan can be computed without the event loop.  ``is_chain``
        alone also admits forests of disjoint chains, which genuinely
        overlap on distinct devices — those must go through the DES."""
        return pipeline.is_chain and len(pipeline.entry_stages) == 1

    def _execute_chain_analytic(
        self, pipeline: Pipeline, schedule: Schedule
    ) -> ExecutionReport:
        """O(stages) fast path for one uncontended chain job.

        Accumulates virtual time in exactly the order the DES would (each
        boundary transfer, then the stage duration, stage by stage down
        the chain), so the resulting floats are bit-identical to
        :class:`~repro.hw.engine.Engine`'s makespan — the Fig. 7 totals
        do not move.  Passing any ``observer`` (even a no-op) forces the
        full DES, which is how the tests cross-check the two paths.
        """
        # Eq. 1 overhead summed in pipeline.edges order, matching both the
        # scheduler and the DES path's _spawn_job float-summation order.
        overhead_total = 0.0
        for edge in pipeline.edges:
            src = schedule.assignments[edge.src]
            dst = schedule.assignments[edge.dst]
            if src is not dst:
                overhead_total += self.cost_model.boundary_cost(
                    edge.nbytes, (src, dst)
                )
        self._check_overhead(overhead_total, schedule)
        # Virtual-time accrual in chain order: transfer(s), then compute.
        now = 0.0
        for name in pipeline.topological_order:
            placement = schedule.assignments[name]
            for edge in pipeline.in_edges(name):
                src = schedule.assignments[edge.src]
                if src is not placement:
                    now += self.cost_model.boundary_cost(
                        edge.nbytes, (src, placement)
                    )
            now += schedule.stage_times[name].total
        return self._job_report(pipeline, schedule, overhead_total, now)

    # ------------------------------------------------------------------
    # Batched jobs on one shared machine
    # ------------------------------------------------------------------
    def execute_many(
        self,
        jobs: Sequence[tuple[Pipeline, Schedule]],
        observer: TraceObserver | None = None,
    ) -> BatchExecutionReport:
        """Execute every (pipeline, schedule) job concurrently on one
        shared set of devices.  Jobs are all released at t=0; the DES
        arbitrates device and link contention between them."""
        if not jobs:
            raise SimulationError("execute_many needs at least one job")
        engine = Engine()
        devices = self._device_resources(
            engine, [schedule for _pipeline, schedule in jobs]
        )
        links: dict[frozenset, Resource] = {}
        # Deduplicated batch setup: jobs sharing the same pipeline and
        # schedule *objects* (what the framework's signature caches hand
        # out for duplicate jobs) share one transfer plan instead of
        # re-pricing every boundary per copy.  Keyed by identity — the
        # ``jobs`` sequence keeps the objects alive for the whole call —
        # because value-equality would be as expensive as rebuilding.
        plans: dict[tuple[int, int], tuple] = {}
        spawned = []
        for index, (pipeline, schedule) in enumerate(jobs):
            plan_key = (id(pipeline), id(schedule))
            plan = plans.get(plan_key)
            if plan is None:
                plan = self._transfer_plan(engine, links, pipeline, schedule)
                plans[plan_key] = plan
            processes, overhead_total = self._spawn_job(
                engine,
                devices,
                pipeline,
                schedule,
                observer,
                plan,
                label_prefix=f"job{index}:",
            )
            spawned.append((pipeline, schedule, processes, overhead_total))
        makespan = engine.run()
        job_reports = tuple(
            self._job_report(
                pipeline, schedule, overhead_total, self._finish_time(processes)
            )
            for pipeline, schedule, processes, overhead_total in spawned
        )
        return BatchExecutionReport(job_reports=job_reports, makespan=makespan)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _device_resources(
        engine: Engine, schedules: Sequence[Schedule]
    ) -> dict[Placement, Resource]:
        # Occupancy intervals reach the trace via the observer callback,
        # never via Resource.usage_log, so sampling stays off.
        placements = sorted(
            {p for schedule in schedules for p in schedule.assignments.values()},
            key=lambda p: p.value,
        )
        return {
            p: engine.resource(1, str(p), log_usage=False) for p in placements
        }

    def _transfer_plan(
        self,
        engine: Engine,
        links: dict[frozenset, Resource],
        pipeline: Pipeline,
        schedule: Schedule,
    ) -> tuple[dict[str, list[tuple[str, Resource, float]]], float]:
        """Price every boundary-crossing in-edge of one job: per-stage
        transfer lists plus the job's total Eq. 1 overhead.

        ``links`` maps each device pair to its capacity-1 wire resource
        (created on first use and shared across every job in the engine),
        so CPU<->NDP and CPU<->GPU transfers ride distinct wires while
        transfers on the same wire serialize.  Crossing edges are summed
        in ``pipeline.edges`` order so the float summation matches the
        scheduler's exactly.
        """
        transfers: dict[str, list[tuple[str, Resource, float]]] = {
            name: [] for name in pipeline.stage_names
        }
        overhead_total = 0.0
        for edge in pipeline.edges:
            src_placement = schedule.assignments[edge.src]
            dst_placement = schedule.assignments[edge.dst]
            if src_placement is not dst_placement:
                pair = frozenset((src_placement, dst_placement))
                if pair not in links:
                    wire_name = "link:" + "-".join(sorted(p.value for p in pair))
                    links[pair] = engine.resource(1, wire_name, log_usage=False)
                cost = self.cost_model.boundary_cost(
                    edge.nbytes, (src_placement, dst_placement)
                )
                transfers[edge.dst].append(
                    (f"{edge.src}->{edge.dst}", links[pair], cost)
                )
                overhead_total += cost
        self._check_overhead(overhead_total, schedule)
        return transfers, overhead_total

    def _spawn_job(
        self,
        engine: Engine,
        devices: dict[Placement, Resource],
        pipeline: Pipeline,
        schedule: Schedule,
        observer: TraceObserver | None,
        plan: tuple[dict[str, list[tuple[str, Resource, float]]], float],
        label_prefix: str = "",
    ) -> tuple[dict[str, SimProcess], float]:
        """Spawn one process per stage (in topological order, so every
        predecessor process exists before its dependents) and return the
        processes plus the job's total Eq. 1 overhead.  ``plan`` is the
        job's :meth:`_transfer_plan` (shareable between jobs that run
        the same pipeline/schedule objects in the same engine)."""
        transfers, overhead_total = plan

        def stage_process(name: str, predecessors: list[SimProcess]):
            placement = schedule.assignments[name]
            device = devices[placement]
            duration = schedule.stage_times[name].total
            for predecessor in predecessors:
                yield predecessor
            for label, wire, cost in transfers[name]:
                yield wire.acquire()
                start = engine.now
                yield engine.timeout(cost)
                if observer is not None:
                    observer(wire.name, label_prefix + label, start, engine.now)
                yield wire.release()
            yield device.acquire()
            start = engine.now
            yield engine.timeout(duration)
            if observer is not None:
                observer(
                    str(placement), label_prefix + name, start, engine.now
                )
            yield device.release()

        processes: dict[str, SimProcess] = {}
        for name in pipeline.topological_order:
            predecessors = [processes[p] for p in pipeline.predecessors(name)]
            processes[name] = engine.spawn(
                stage_process(name, predecessors), name=label_prefix + name
            )
        return processes, overhead_total

    @staticmethod
    def _check_overhead(overhead_total: float, schedule: Schedule) -> None:
        expected_overhead = schedule.scheduling_overhead
        if abs(overhead_total - expected_overhead) > 1e-9 * max(
            1.0, expected_overhead
        ):
            raise SimulationError(
                "executor and scheduler disagree on Eq. 1 overhead: "
                f"{overhead_total} vs {expected_overhead}"
            )

    @staticmethod
    def _finish_time(processes: dict[str, SimProcess]) -> float:
        finishes = [p.finish_time for p in processes.values()]
        if any(f is None for f in finishes):
            raise SimulationError("job finished with unfinished stages")
        return max(finishes)

    @staticmethod
    def _job_report(
        pipeline: Pipeline,
        schedule: Schedule,
        overhead_total: float,
        total_time: float,
    ) -> ExecutionReport:
        phase_seconds = {
            name: schedule.stage_times[name].total
            for name in pipeline.stage_names
        }
        return ExecutionReport(
            phase_seconds=phase_seconds,
            phase_times=dict(schedule.stage_times),
            scheduling_overhead=overhead_total,
            total_time=total_time,
            assignments=dict(schedule.assignments),
        )
