"""Pipeline executor: maps a schedule onto the machine models via the DES.

The executor turns a :class:`~repro.core.scheduler.Schedule` into a
discrete-event simulation: one process per stage that (1) waits for its
predecessor, (2) waits for any cross-boundary transfer of its inputs over
the host link, (3) occupies its assigned device for the stage's modeled
duration.  Devices and the host link are engine resources, so concurrent
transfers serialize exactly as they would on the real link.

The output :class:`ExecutionReport` is the Fig. 7 data: per-phase seconds
plus the scheduling overhead bucket.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cost_model import OffloadCostModel
from repro.core.pipeline import Pipeline
from repro.core.scheduler import Placement, Schedule
from repro.errors import SimulationError
from repro.hw.engine import Engine
from repro.hw.timing import PhaseTime


@dataclass(frozen=True)
class ExecutionReport:
    """Result of executing one pipeline under one schedule."""

    phase_seconds: dict[str, float]
    phase_times: dict[str, PhaseTime]
    scheduling_overhead: float
    total_time: float
    assignments: dict[str, Placement] = field(default_factory=dict)

    @property
    def overhead_fraction(self) -> float:
        if self.total_time == 0:
            return 0.0
        return self.scheduling_overhead / self.total_time

    def breakdown(self) -> dict[str, float]:
        """Per-phase seconds plus a 'scheduling' bucket (Fig. 7 bars)."""
        out = dict(self.phase_seconds)
        out["scheduling"] = self.scheduling_overhead
        return out


@dataclass
class PipelineExecutor:
    """Runs a scheduled pipeline through the discrete-event engine."""

    cost_model: OffloadCostModel

    def execute(self, pipeline: Pipeline, schedule: Schedule) -> ExecutionReport:
        engine = Engine()
        cpu_resource = engine.resource(1, "cpu")
        ndp_resource = engine.resource(1, "ndp")
        link_resource = engine.resource(1, "host-link")
        resources = {Placement.CPU: cpu_resource, Placement.NDP: ndp_resource}

        stage_order = pipeline.stage_names
        processes: dict[str, object] = {}
        overhead_total = 0.0

        # Pre-compute boundary transfer costs per stage (inputs that cross).
        transfer_in: dict[str, float] = {name: 0.0 for name in stage_order}
        for edge in pipeline.edges:
            if schedule.assignments[edge.src] is not schedule.assignments[edge.dst]:
                transfer_in[edge.dst] += self.cost_model.boundary_cost(edge.nbytes)
        overhead_total = sum(transfer_in.values())
        expected_overhead = schedule.scheduling_overhead
        if abs(overhead_total - expected_overhead) > 1e-9 * max(
            1.0, expected_overhead
        ):
            raise SimulationError(
                "executor and scheduler disagree on Eq. 1 overhead: "
                f"{overhead_total} vs {expected_overhead}"
            )

        def stage_process(name: str, predecessor):
            placement = schedule.assignments[name]
            duration = schedule.stage_times[name].total
            if predecessor is not None:
                yield predecessor
            if transfer_in[name] > 0:
                yield link_resource.acquire()
                yield engine.timeout(transfer_in[name])
                yield link_resource.release()
            yield resources[placement].acquire()
            yield engine.timeout(duration)
            yield resources[placement].release()

        previous = None
        for name in stage_order:
            previous = engine.spawn(stage_process(name, previous), name=name)
            processes[name] = previous

        total_time = engine.run()

        phase_seconds = {
            name: schedule.stage_times[name].total for name in stage_order
        }
        return ExecutionReport(
            phase_seconds=phase_seconds,
            phase_times=dict(schedule.stage_times),
            scheduling_overhead=overhead_total,
            total_time=total_time,
            assignments=dict(schedule.assignments),
        )
