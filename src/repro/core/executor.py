"""Pipeline executor: maps schedules onto the machine models via the DES.

The executor turns a :class:`~repro.core.scheduler.Schedule` into a
discrete-event simulation: one process per stage that (1) waits for *all*
of its DAG predecessors, (2) pays any cross-boundary transfer of its
inputs over the link serving that device pair (one transfer per crossing
in-edge; the CPU<->NDP host link by default, per-pair wires when the
cost model defines them), (3) occupies its assigned device for the
stage's modeled duration.  Devices and links are engine resources, so
independent branches placed on distinct devices genuinely overlap while
stages contending for the same device — or concurrent transfers
contending for the same wire — serialize exactly as they would on the
real hardware.

Two entry points:

- :meth:`PipelineExecutor.execute` — one job, one engine; on the paper's
  linear chain this reproduces the original serialized totals exactly
  (the Fig. 7 data).
- :meth:`PipelineExecutor.execute_many` — a batch of jobs through one
  shared engine and one shared set of device/link resources: the batching
  back-end of :meth:`repro.core.framework.NdftFramework.run_many`.

An ``observer`` callback (``lane, label, start, end``) receives every
occupancy interval — device lanes are named after the placement
(``"cpu"``/``"ndp"``/``"gpu"``), transfers land on one lane per physical
wire (``"link:cpu-ndp"``, ``"link:cpu-gpu"``, ...) — which is how
:mod:`repro.core.trace` rebuilds exact Gantt timelines without a second
timing model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Sequence

import repro.core.backends as _backends
from repro.core.cost_model import OffloadCostModel
from repro.core.faults import FaultPlan, RunFailure
from repro.core.pipeline import Pipeline
from repro.core.scheduler import Placement, Schedule
from repro.errors import SimulationError
from repro.hw.engine import Engine, Resource, SimProcess
from repro.hw.timing import PhaseTime

#: Trace callback: (lane, label, start_seconds, end_seconds).
TraceObserver = Callable[[str, str, float, float], None]

#: Prefix of every trace lane carrying boundary transfers; each physical
#: wire gets its own lane ("link:cpu-ndp", "link:cpu-gpu", ...) because
#: distinct wires legitimately carry transfers concurrently.
LINK_LANE_PREFIX = "link"

#: Name of the universal-fallback backend in the registry.
_ENGINE_BACKEND = "engine"


def lane_name(key: object) -> str:
    """The trace-lane name of one simulated resource: a device lane for
    a :class:`Placement` (``"cpu"``/``"ndp"``/``"gpu"``), a wire lane
    for a placement-pair frozenset (``"link:cpu-ndp"``) — exactly the
    names the engine's resources and the trace observer use, so lane
    accounting keys agree across every backend."""
    if isinstance(key, frozenset):
        return LINK_LANE_PREFIX + ":" + "-".join(
            sorted(p.value for p in key)
        )
    return str(key)


@dataclass(frozen=True, slots=True)
class ExecutionReport:
    """Result of executing one pipeline under one schedule.

    ``total_time`` is the DES makespan: for a chain it equals the sum of
    phase times plus the scheduling overhead; for a branching DAG it can
    be smaller (branch overlap), and for a job inside a batch it includes
    any time spent queueing for shared devices.
    """

    phase_seconds: dict[str, float]
    phase_times: dict[str, PhaseTime]
    scheduling_overhead: float
    total_time: float
    assignments: dict[str, Placement] = field(default_factory=dict)

    @property
    def overhead_fraction(self) -> float:
        if self.total_time == 0:
            return 0.0
        return self.scheduling_overhead / self.total_time

    @property
    def serial_time(self) -> float:
        """The no-overlap bound: every stage back to back plus overhead."""
        return sum(self.phase_seconds.values()) + self.scheduling_overhead

    def breakdown(self) -> dict[str, float]:
        """Per-phase seconds plus a 'scheduling' bucket (Fig. 7 bars)."""
        out = dict(self.phase_seconds)
        out["scheduling"] = self.scheduling_overhead
        return out


@dataclass(frozen=True, slots=True)
class ShardTiming:
    """Wall-clock accounting for one simulated contention shard.

    ``backend`` is the registry name of the backend that actually timed
    the shard; ``wall_seconds`` is host (not virtual) time spent
    simulating it, measured around the whole backend walk including any
    declined attempts.  The remaining fields are the shard features the
    measured auto-tuner (:class:`BackendTuner`) buckets on and humans
    debug with: job count, signature-coalesced super-job count (0 on
    the uncollapsed engine path), total stage count across the shard's
    distinct templates, and whether every job is a single chain.
    """

    backend: str
    wall_seconds: float
    n_jobs: int
    n_superjobs: int
    n_stages: int
    is_chain: bool


@dataclass(frozen=True, slots=True)
class BatchExecutionReport:
    """Result of executing a batch of jobs on one shared machine.

    ``arrivals`` is the per-job release offset when the batch ran as an
    open queue (``None`` for the classic everyone-at-t=0 closed batch).
    ``n_shards``/``n_superjobs``/``backend_jobs`` are observability for
    the scale-out fast path: how many independent contention shards the
    batch split into, how many signature-coalesced super-jobs they
    contained (0 when every shard took the uncollapsed engine path),
    and how many jobs each simulation backend
    (:mod:`repro.core.backends`) timed.

    ``lane_occupancy`` is the per-resource busy accounting every
    backend records while simulating: for each device or wire lane
    (named as in :func:`lane_name`), the ``(start, end)`` occupancy
    intervals in grant order.  The intervals are bit-identical
    whichever backend simulated (property-tested in
    ``tests/core/test_dag_replay.py``), which makes the derived
    :attr:`lane_busy_seconds`/:attr:`lane_utilization` safe to trend
    across backend selections.
    """

    job_reports: tuple[ExecutionReport, ...]
    makespan: float
    arrivals: tuple[float, ...] | None = None
    n_shards: int = 1
    n_superjobs: int = 0
    #: Jobs simulated per backend name, e.g. ``{"dag_replay": 512}``.
    backend_jobs: dict[str, int] = field(default_factory=dict)
    #: Occupancy intervals per lane, in grant order (see class docs).
    lane_occupancy: dict[str, tuple[tuple[float, float], ...]] = field(
        default_factory=dict
    )
    #: Per-shard wall time and shard features, in shard order — the raw
    #: observability the measured auto-tuner and ``serve-bench``'s
    #: per-backend breakdown read.
    backend_timings: tuple[ShardTiming, ...] = ()
    #: Runs killed by fault-plan events (:class:`repro.core.faults.
    #: RunFailure`), in deterministic fault-event order; always empty
    #: without a fault plan.  A failed run's ``job_report`` entry covers
    #: the truncated attempt (release to fail time).
    failures: tuple = ()

    @property
    def n_jobs(self) -> int:
        return len(self.job_reports)

    @property
    def completion_latencies(self) -> tuple[float, ...]:
        """Per-job completion minus release (== completion at t=0)."""
        if self.arrivals is None:
            return tuple(r.total_time for r in self.job_reports)
        return tuple(
            report.total_time - arrival
            for report, arrival in zip(self.job_reports, self.arrivals)
        )

    @property
    def first_release(self) -> float:
        """When the machine first had work: the earliest release offset
        of an open queue, 0.0 for the t=0 closed batch (and for an
        empty report)."""
        if self.arrivals:
            return min(self.arrivals)
        return 0.0

    @property
    def busy_span(self) -> float:
        """Shared-machine seconds from the first release to the last
        completion.  For the t=0 batch this *is* the makespan; under an
        open queue it excludes the idle arrival ramp before the first
        job is released, which the makespan (an absolute virtual time)
        includes."""
        return self.makespan - self.first_release

    @property
    def throughput(self) -> float:
        """Jobs per second of shared-machine time (the busy span, so an
        open queue's arrival ramp does not dilute the rate; identical
        to jobs/makespan for the t=0 batch)."""
        span = self.busy_span
        if span <= 0:
            return 0.0
        return self.n_jobs / span

    @property
    def lane_busy_seconds(self) -> dict[str, float]:
        """Busy (occupied) seconds per device/wire lane, summed over
        the occupancy intervals in grant order."""
        return {
            lane: sum(end - start for start, end in intervals)
            for lane, intervals in self.lane_occupancy.items()
        }

    @property
    def lane_utilization(self) -> dict[str, float]:
        """Busy fraction per lane over the batch's :attr:`busy_span` —
        the "where does the saturation knee come from" signal: the lane
        closest to 1.0 is the bottleneck.  Empty when the span is
        degenerate (zero jobs)."""
        span = self.busy_span
        if span <= 0:
            return {lane: 0.0 for lane in self.lane_occupancy}
        return {
            lane: busy / span
            for lane, busy in self.lane_busy_seconds.items()
        }

    @property
    def backend_wall_seconds(self) -> dict[str, float]:
        """Host wall seconds spent simulating, totalled per backend
        over :attr:`backend_timings` — the per-backend breakdown the
        serving benchmark reports per sweep point."""
        totals: dict[str, float] = {}
        for timing in self.backend_timings:
            totals[timing.backend] = (
                totals.get(timing.backend, 0.0) + timing.wall_seconds
            )
        return totals

    @property
    def no_overlap_time(self) -> float:
        """The fully-serialized bound: every stage of every job back to
        back.  For branching jobs this exceeds what solo DES runs achieve
        (they already overlap branches) — use
        :attr:`repro.core.framework.NdftBatchResult.serial_time` for the
        achievable one-job-at-a-time baseline."""
        return sum(report.serial_time for report in self.job_reports)


class BackendTuner:
    """Measured backend selection: a per-shard-size winner table.

    Static preference order is a correctness fallback chain, not a
    performance policy — it cannot know that a 16k-replica coalesced
    shard belongs on ``vector_replay`` while a 2-job shard should stay
    on the event replays.  Because every backend is bit-identical on
    every shard it accepts, *routing is free to chase wall time*: the
    tuner buckets shards by job-count magnitude
    (``n_jobs.bit_length()``), accumulates observed wall seconds and
    job counts per backend per bucket, and reorders each shard's
    candidate walk:

    - **explore** — the first non-engine candidate (static order) that
      supports the shard but has no measurement in the bucket goes
      first, so every eligible replay gets measured once per bucket;
    - **exploit** — otherwise, measured candidates are tried in
      ascending observed wall-seconds-per-job, unmeasured ones after
      in static order.

    The engine is never explored proactively (it is the guaranteed
    fallback and the slowest path at scale), but engine runs that do
    happen — forced, ``coalesce=False``, or decline fallbacks — are
    recorded, so buckets where the engine genuinely wins (tiny shards,
    where replay flattening dominates) route back to it.

    The table is host-performance state, not simulation state: it
    changes which backend runs, never what any backend returns.  The
    framework persists it alongside the derivation caches
    (:meth:`repro.core.framework.NdftFramework.save_caches`) so a
    warmed service skips re-exploration.
    """

    __slots__ = ("_samples",)

    def __init__(self) -> None:
        #: bucket -> backend name -> [wall seconds total, jobs total].
        self._samples: dict[int, dict[str, list[float]]] = {}

    @staticmethod
    def bucket(n_jobs: int) -> int:
        """Shard-size bucket: job-count magnitude (1-2 jobs -> 1-2,
        3-4 -> 3, ..., 32769-65536 -> 17)."""
        return n_jobs.bit_length()

    def record(
        self, n_jobs: int, backend: str, wall_seconds: float
    ) -> None:
        """Fold one shard's measured wall time into its size bucket."""
        cells = self._samples.setdefault(self.bucket(n_jobs), {})
        cell = cells.get(backend)
        if cell is None:
            cells[backend] = [wall_seconds, float(n_jobs)]
        else:
            cell[0] += wall_seconds
            cell[1] += n_jobs

    def order(
        self,
        executor: "PipelineExecutor",
        shard_jobs: list,
        candidates: tuple,
    ) -> tuple:
        """Reorder one shard's backend walk (see class docs).  The walk
        still checks ``supports``/declines downstream, so reordering
        can never change *whether* a shard simulates — only which
        bit-identical backend does the work."""
        cells = self._samples.get(self.bucket(len(shard_jobs)), {})
        for candidate in candidates:
            if candidate.name == _ENGINE_BACKEND:
                continue
            if candidate.name in cells:
                continue
            if candidate.supports(executor, shard_jobs):
                return (candidate,) + tuple(
                    c for c in candidates if c is not candidate
                )
        measured = sorted(
            (c for c in candidates if c.name in cells),
            key=lambda c: cells[c.name][0] / cells[c.name][1],
        )
        unmeasured = [c for c in candidates if c.name not in cells]
        return tuple(measured) + tuple(unmeasured)

    def snapshot(self) -> list[tuple[int, str, float, float]]:
        """The table as plain rows ``(bucket, backend, wall, jobs)`` —
        what the framework's cache snapshot stores."""
        return [
            (bucket, name, cell[0], cell[1])
            for bucket, cells in sorted(self._samples.items())
            for name, cell in sorted(cells.items())
        ]

    def merge(self, rows) -> int:
        """Fold snapshot rows into the table (adding to any live
        measurements); returns the number of rows folded.  Rows naming
        backends no longer registered are skipped — the fingerprint
        scheme guards model drift, the registry guards its own.
        Malformed rows are skipped too: a NaN, negative, or non-finite
        wall-seconds entry (or a non-positive job count) from a corrupt
        snapshot would otherwise poison the winner table forever, since
        ``wall_per_job`` averages persist across sessions."""
        count = 0
        registered = set(_backends.backend_names())
        for row in rows:
            try:
                bucket, name, wall, jobs = row
                bucket = int(bucket)
                wall = float(wall)
                jobs = float(jobs)
            except (TypeError, ValueError):
                continue
            if name not in registered:
                continue
            if not (math.isfinite(wall) and wall >= 0.0):
                continue
            if not (math.isfinite(jobs) and jobs > 0.0):
                continue
            cells = self._samples.setdefault(bucket, {})
            cell = cells.get(name)
            if cell is None:
                cells[name] = [wall, jobs]
            else:
                cell[0] += wall
                cell[1] += jobs
            count += 1
        return count

    def union(self, rows) -> int:
        """Fold snapshot rows into the table *only where the cell is
        absent*; returns the number of rows adopted.  This is the
        fleet merge-back primitive: a worker's snapshot contains the
        parent's own measurements plus whatever the worker observed, so
        :meth:`merge`'s additive fold would double-count the shared
        wall seconds on every round trip.  Union-if-absent is
        idempotent — re-merging the same snapshot adopts nothing — at
        the cost of ignoring refinements to cells the parent already
        measured (acceptable: any measurement routes correctly, and
        the parent's own cells keep accumulating live).  Row vetting
        matches :meth:`merge` exactly."""
        count = 0
        registered = set(_backends.backend_names())
        for row in rows:
            try:
                bucket, name, wall, jobs = row
                bucket = int(bucket)
                wall = float(wall)
                jobs = float(jobs)
            except (TypeError, ValueError):
                continue
            if name not in registered:
                continue
            if not (math.isfinite(wall) and wall >= 0.0):
                continue
            if not (math.isfinite(jobs) and jobs > 0.0):
                continue
            cells = self._samples.setdefault(bucket, {})
            if name in cells:
                continue
            cells[name] = [wall, jobs]
            count += 1
        return count

    def clear(self) -> None:
        self._samples.clear()


class _RunFaultState:
    """Shared mutable fault flag for one simulated run.

    Every stage process of a job holds the same instance; the first
    fault that kills a task wins (deterministic: failures happen at
    fault-event instants processed in engine order) and later stages
    observe it and fall through.  ``completed`` collects the stages
    whose device occupancy finished — including stages already in
    service on another lane when the failure struck, whose committed
    occupancies run to completion — which is the checkpoint frontier a
    ``RetryPolicy(checkpoint=True)`` resume starts past."""

    __slots__ = ("failed_at", "lane", "kind", "completed")

    def __init__(self) -> None:
        self.failed_at: float | None = None
        self.lane: str | None = None
        self.kind: str | None = None
        self.completed: list[str] = []

    def fail(self, time: float, lane: str, kind: str) -> None:
        if self.failed_at is None:
            self.failed_at = time
            self.lane = lane
            self.kind = kind


@dataclass(slots=True)
class PipelineExecutor:
    """Runs scheduled pipelines through the discrete-event engine."""

    cost_model: OffloadCostModel

    # ------------------------------------------------------------------
    # Single job
    # ------------------------------------------------------------------
    def execute(
        self,
        pipeline: Pipeline,
        schedule: Schedule,
        observer: TraceObserver | None = None,
    ) -> ExecutionReport:
        if observer is None and self._is_single_chain(pipeline):
            return self._execute_chain_analytic(pipeline, schedule)
        engine = Engine()
        devices = self._device_resources(engine, [schedule])
        links: dict[frozenset, Resource] = {}
        plan = self._transfer_plan(engine, links, pipeline, schedule)
        processes, overhead_total = self._spawn_job(
            engine, devices, pipeline, schedule, observer, plan
        )
        engine.run()
        return self._job_report(
            pipeline, schedule, overhead_total, self._finish_time(processes)
        )

    @staticmethod
    def _is_single_chain(pipeline: Pipeline) -> bool:
        """One connected chain: the only shape where a solo job's DES run
        is fully serialized regardless of placement (every stage waits on
        its unique predecessor before touching any resource), so the
        makespan can be computed without the event loop.  ``is_chain``
        alone also admits forests of disjoint chains, which genuinely
        overlap on distinct devices — those must go through the DES."""
        return pipeline.is_chain and len(pipeline.entry_stages) == 1

    def _eq1_overhead(self, pipeline: Pipeline, schedule: Schedule) -> float:
        """The job's total Eq. 1 overhead, summed in ``pipeline.edges``
        order — the float-summation order is load-bearing: it must match
        the scheduler's exactly (and does, cross-checked here against
        ``schedule.scheduling_overhead``), so every executor path prices
        boundaries through this one helper."""
        overhead_total = 0.0
        for edge in pipeline.edges:
            src = schedule.assignments[edge.src]
            dst = schedule.assignments[edge.dst]
            if src is not dst:
                overhead_total += self.cost_model.boundary_cost(
                    edge.nbytes, (src, dst)
                )
        self._check_overhead(overhead_total, schedule)
        return overhead_total

    def _execute_chain_analytic(
        self, pipeline: Pipeline, schedule: Schedule
    ) -> ExecutionReport:
        """O(stages) fast path for one uncontended chain job.

        Accumulates virtual time in exactly the order the DES would (each
        boundary transfer, then the stage duration, stage by stage down
        the chain), so the resulting floats are bit-identical to
        :class:`~repro.hw.engine.Engine`'s makespan — the Fig. 7 totals
        do not move.  Passing any ``observer`` (even a no-op) forces the
        full DES, which is how the tests cross-check the two paths.
        """
        overhead_total = self._eq1_overhead(pipeline, schedule)
        # Virtual-time accrual in chain order: transfer(s), then compute.
        now = 0.0
        for name in pipeline.topological_order:
            placement = schedule.assignments[name]
            for edge in pipeline.in_edges(name):
                src = schedule.assignments[edge.src]
                if src is not placement:
                    now += self.cost_model.boundary_cost(
                        edge.nbytes, (src, placement)
                    )
            now += schedule.stage_times[name].total
        return self._job_report(pipeline, schedule, overhead_total, now)

    # ------------------------------------------------------------------
    # Batched jobs on one shared machine
    # ------------------------------------------------------------------
    def execute_many(
        self,
        jobs: Sequence[tuple[Pipeline, Schedule]],
        observer: TraceObserver | None = None,
        arrivals: Sequence[float] | None = None,
        coalesce: bool = True,
        shard: bool = True,
        backend: str | None = None,
        tuner: BackendTuner | None = None,
        faults: "FaultPlan | None" = None,
    ) -> BatchExecutionReport:
        """Execute every (pipeline, schedule) job concurrently on one
        shared set of devices.

        ``arrivals`` turns the closed batch into an open queue: job ``i``
        is released at offset ``arrivals[i]`` (seconds of virtual time,
        non-negative) instead of t=0.  The DES arbitrates device and link
        contention between the released jobs exactly as before.

        Scale-out fast path (results bit-identical to the plain shared
        engine, cross-checked in tests):

        - ``shard=True`` partitions the batch by contention — jobs whose
          placements touch disjoint device/link sets share no resources,
          hence no events, so each partition runs on its own simulation;
        - ``coalesce=True`` folds jobs with identical pipeline/schedule
          objects (what the framework's signature caches hand out for
          duplicate jobs) into weighted super-jobs and hands each shard
          to the first registered simulation backend
          (:mod:`repro.core.backends`) that supports it: the slim chain
          FIFO replay, the DAG replay (join counters on fan-in stages),
          or the generator engine as the universal fallback.

        ``backend`` names one registered backend to force for every
        shard (the serving benchmark's A/B switch); a forced backend
        that cannot simulate a shard raises :class:`SimulationError`
        naming the reason instead of silently falling back.
        ``coalesce=False`` pins the uncollapsed engine path, preserving
        the pre-backend semantics — combining it with a forced
        non-engine backend (which coalesces by construction) is a
        contradiction and raises too.

        ``tuner`` switches the per-shard backend walk from static
        preference order to the :class:`BackendTuner`'s measured
        ordering, and feeds each shard's wall time back into its
        table.  Results are bit-identical either way (every backend
        reproduces the engine's floats on every shard it accepts) —
        only wall time moves.  Per-shard wall time and shard features
        land in :attr:`BatchExecutionReport.backend_timings` whether or
        not a tuner is supplied.

        Passing any ``observer`` forces the uncollapsed, unsharded DES:
        trace consumers see the exact event stream of one shared engine.

        ``faults`` injects a :class:`repro.core.faults.FaultPlan`: shards
        whose lanes carry fault events run on the fault-aware engine path
        (replay backends decline them —
        :data:`repro.core.backends.FAULTED_SHARD_REASON`), runs killed by
        an outage or permanent failure land in
        :attr:`BatchExecutionReport.failures`, and unaffected shards take
        the exact unmodified code path — an *empty* plan is bit-identical
        to no plan for every backend.  Fault-shard wall times are never
        fed to the tuner (the faulted workload is not the healthy one).
        """
        if not jobs:
            raise SimulationError("execute_many needs at least one job")
        n = len(jobs)
        if faults is not None and faults.is_empty:
            faults = None
        if arrivals is not None:
            arrivals = [float(offset) for offset in arrivals]
            if len(arrivals) != n:
                raise SimulationError(
                    f"{n} jobs but {len(arrivals)} arrival offsets"
                )
            for offset in arrivals:
                if offset < 0:
                    raise SimulationError(
                        f"negative arrival offset: {offset}"
                    )
        forced = None if backend is None else _backends.get_backend(backend)
        if forced is not None and not coalesce and forced.name != _ENGINE_BACKEND:
            raise SimulationError(
                "coalesce=False pins the uncollapsed engine path; it "
                f"cannot be combined with backend={backend!r}"
            )
        lane_log: dict[str, list[tuple[float, float]]] = {}
        if observer is not None:
            if forced is not None and forced.name != _ENGINE_BACKEND:
                raise SimulationError(
                    "a trace observer forces the uncollapsed engine DES; "
                    f"it cannot be combined with backend={backend!r}"
                )

            def recording(lane, label, start, end, _user=observer):
                lane_log.setdefault(lane, []).append((start, end))
                _user(lane, label, start, end)

            wall_start = perf_counter()
            observer_failures: list = []
            job_reports, makespan = self._execute_batch_engine(
                jobs,
                range(n),
                recording,
                arrivals,
                fault_plan=faults,
                failures=observer_failures,
            )
            # Observed wall time includes the caller's observer work,
            # so it is reported but never fed to a tuner.
            timing = ShardTiming(
                backend=_ENGINE_BACKEND,
                wall_seconds=perf_counter() - wall_start,
                n_jobs=n,
                n_superjobs=0,
                n_stages=self._shard_stage_count(jobs),
                is_chain=all(
                    self._is_single_chain(p) for p, _s in jobs
                ),
            )
            return BatchExecutionReport(
                job_reports=tuple(job_reports),
                makespan=makespan,
                arrivals=None if arrivals is None else tuple(arrivals),
                backend_jobs={_ENGINE_BACKEND: n},
                lane_occupancy=self._freeze_lanes(lane_log),
                backend_timings=(timing,),
                failures=tuple(observer_failures),
            )

        shards = (
            self._contention_shards(jobs) if shard else [list(range(n))]
        )
        reports: list[ExecutionReport | None] = [None] * n
        makespan = 0.0
        n_superjobs = 0
        backend_jobs: dict[str, int] = {}
        timings: list[ShardTiming] = []
        failures: list = []
        for indices in shards:
            shard_jobs = [jobs[i] for i in indices]
            shard_arrivals = (
                None if arrivals is None else [arrivals[i] for i in indices]
            )
            faulted = faults is not None and faults.affects(
                self._shard_lane_names(shard_jobs)
            )
            wall_start = perf_counter()
            if faulted:
                chosen, shard_reports, shard_makespan, shard_groups = (
                    self._simulate_faulted_shard(
                        shard_jobs,
                        indices,
                        shard_arrivals,
                        forced,
                        lane_log,
                        faults,
                        failures,
                    )
                )
            else:
                chosen, shard_reports, shard_makespan, shard_groups = (
                    self._simulate_shard(
                        shard_jobs,
                        shard_arrivals,
                        coalesce,
                        forced,
                        lane_log,
                        tuner,
                    )
                )
            wall_seconds = perf_counter() - wall_start
            if tuner is not None and not faulted:
                tuner.record(len(indices), chosen, wall_seconds)
            timings.append(
                ShardTiming(
                    backend=chosen,
                    wall_seconds=wall_seconds,
                    n_jobs=len(indices),
                    n_superjobs=shard_groups,
                    n_stages=self._shard_stage_count(shard_jobs),
                    is_chain=all(
                        self._is_single_chain(p) for p, _s in shard_jobs
                    ),
                )
            )
            n_superjobs += shard_groups
            backend_jobs[chosen] = backend_jobs.get(chosen, 0) + len(indices)
            for index, report in zip(indices, shard_reports):
                reports[index] = report
            if shard_makespan > makespan:
                makespan = shard_makespan
        return BatchExecutionReport(
            job_reports=tuple(reports),
            makespan=makespan,
            arrivals=None if arrivals is None else tuple(arrivals),
            n_shards=len(shards),
            n_superjobs=n_superjobs,
            backend_jobs=backend_jobs,
            lane_occupancy=self._freeze_lanes(lane_log),
            backend_timings=tuple(timings),
            failures=tuple(failures),
        )

    def _shard_lane_names(
        self, shard_jobs: Sequence[tuple[Pipeline, Schedule]]
    ) -> set[str]:
        """All device/wire lane names the shard's schedules can occupy."""
        lanes: set[str] = set()
        for schedule in {
            id(schedule): schedule for _pipeline, schedule in shard_jobs
        }.values():
            lanes.update(self.schedule_lanes(schedule))
        return lanes

    def _simulate_faulted_shard(
        self,
        shard_jobs: Sequence[tuple[Pipeline, Schedule]],
        indices: Sequence[int],
        shard_arrivals: Sequence[float] | None,
        forced,
        lane_log: dict[str, list[tuple[float, float]]],
        faults: "FaultPlan",
        failures: list,
    ) -> tuple[str, list[ExecutionReport], float, int]:
        """Simulate a shard whose lanes carry fault-plan events.

        Only the fault-aware generator engine understands outage and
        slowdown windows, so every replay backend declines here —
        forcing one raises with the named reason, mirroring
        :meth:`_simulate_shard`'s refusal style.  The reason
        distinguishes the two shapes: a shard whose lanes carry any
        job-killing event (outage window, permanent death) declines
        with :data:`~repro.core.backends.FAULTED_SHARD_REASON`; a
        slowdown-only shard — nothing dies, services just inflate —
        declines with
        :data:`~repro.core.backends.SLOWDOWN_SHARD_REASON` (the FIFO
        hop-cascade equivalence does not carry over to inflated
        services).  Run failures are appended to ``failures`` keyed by
        the *batch-global* submission index from ``indices``.
        """
        if forced is not None and forced.name != _ENGINE_BACKEND:
            reason = (
                _backends.FAULTED_SHARD_REASON
                if faults.affects_lethally(self._shard_lane_names(shard_jobs))
                else _backends.SLOWDOWN_SHARD_REASON
            )
            raise SimulationError(
                f"backend {forced.name!r} cannot simulate a "
                f"{len(shard_jobs)}-job shard "
                f"({reason}) and no fallback "
                "is allowed"
            )

        def record(lane, _label, start, end):
            lane_log.setdefault(lane, []).append((start, end))

        shard_reports, shard_makespan = self._execute_batch_engine(
            shard_jobs,
            list(indices),
            record,
            shard_arrivals,
            fault_plan=faults,
            failures=failures,
        )
        return _ENGINE_BACKEND, shard_reports, shard_makespan, 0

    @staticmethod
    def _freeze_lanes(
        lane_log: dict[str, list[tuple[float, float]]]
    ) -> dict[str, tuple[tuple[float, float], ...]]:
        return {lane: tuple(ivs) for lane, ivs in lane_log.items()}

    @staticmethod
    def _shard_stage_count(
        shard_jobs: Sequence[tuple[Pipeline, Schedule]]
    ) -> int:
        """Total stages across the shard's *distinct* pipeline objects
        (replicas coalesce by identity, so a 16k-replica super-job
        counts its template once)."""
        distinct = {
            id(pipeline): pipeline for pipeline, _schedule in shard_jobs
        }
        return sum(
            len(pipeline.stage_names) for pipeline in distinct.values()
        )

    # ------------------------------------------------------------------
    # Batch internals: sharding, coalescing, the engine path
    # ------------------------------------------------------------------
    @staticmethod
    def _contention_shards(
        jobs: Sequence[tuple[Pipeline, Schedule]]
    ) -> list[list[int]]:
        """Partition job indices into contention components.

        Two jobs land in the same shard iff their placements share a
        device or a boundary wire (transitively).  Disjoint resource
        sets mean disjoint event graphs: no acquire of one shard can
        ever delay — or reorder a grant of — another, so running each
        shard on its own engine reproduces the shared engine's floats
        exactly.  Shards preserve submission order.
        """
        parent = list(range(len(jobs)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        # Resource sets are a pure function of the schedule, so compute
        # them once per distinct schedule object (duplicate jobs share
        # the object through the framework's caches).
        touched: dict[int, tuple] = {}
        owner: dict[object, int] = {}
        for i, (_pipeline, schedule) in enumerate(jobs):
            keys = touched.get(id(schedule))
            if keys is None:
                key_set: set = set(schedule.assignments.values())
                for pair in schedule.crossing_pairs:
                    key_set.add(frozenset(pair))
                keys = touched[id(schedule)] = tuple(key_set)
            for key in keys:
                claimant = owner.get(key)
                if claimant is None:
                    owner[key] = i
                else:
                    root_a, root_b = find(i), find(claimant)
                    if root_a != root_b:
                        parent[root_b] = root_a
        shards: dict[int, list[int]] = {}
        for i in range(len(jobs)):
            shards.setdefault(find(i), []).append(i)
        return list(shards.values())

    def _simulate_shard(
        self,
        shard_jobs: list[tuple[Pipeline, Schedule]],
        shard_arrivals: list[float] | None,
        coalesce: bool,
        forced: "_backends.SimulationBackend | None",
        lane_log: dict[str, list[tuple[float, float]]],
        tuner: BackendTuner | None = None,
    ) -> tuple[str, list[ExecutionReport], float, int]:
        """Time one contention shard through the backend layer.

        The default walk tries every registered backend in preference
        order (chain replay, DAG replay, vector replay, engine) and
        takes the first that supports the shard and does not decline
        it; the engine backend supports everything, so the walk always
        terminates.  ``tuner`` reorders that walk by measured wall time
        (see :class:`BackendTuner`) — legal because every backend is
        bit-identical on every shard it accepts.  ``coalesce=False``
        pins the engine (the uncollapsed reference semantics);
        ``forced`` pins one named backend and raises — naming the
        backend's reason — when it cannot simulate the shard.
        ``lane_log`` collects the shard's per-lane occupancy intervals
        (shards touch disjoint resource sets, so the per-shard entries
        never interleave).  Returns the chosen backend's name, the
        per-job reports in shard order, the shard makespan, and the
        super-job count.
        """
        if forced is not None:
            candidates: tuple = (forced,)
        elif coalesce:
            candidates = _backends.iter_backends()
            if tuner is not None:
                candidates = tuner.order(self, shard_jobs, candidates)
        else:
            candidates = (_backends.get_backend(_ENGINE_BACKEND),)
        for candidate in candidates:
            if not candidate.supports(self, shard_jobs):
                continue
            result = candidate.simulate(
                self, shard_jobs, shard_arrivals, lane_log
            )
            if result is not None:
                reports, makespan, groups = result
                return candidate.name, reports, makespan, groups
        refused = candidates[-1]
        describe = getattr(refused, "unsupported_reason", None)
        reason = (
            describe(self, shard_jobs)
            if describe is not None
            else "unsupported shape or zero-duration task"
        )
        raise SimulationError(
            f"backend {refused.name!r} cannot simulate a "
            f"{len(shard_jobs)}-job shard ({reason}) and no fallback "
            "is allowed"
        )

    def _flatten_stage(
        self,
        pipeline: Pipeline,
        schedule: Schedule,
        name: str,
        resource_ids: dict[object, int],
    ) -> list[tuple[int, float]]:
        """One stage as FIFO-replay tasks: ``(resource index, duration)``
        pairs — each boundary-crossing in-edge's transfer on the owning
        wire (in-edge order), then the stage on its device — exactly the
        acquire sequence :meth:`_spawn_job`'s stage processes perform.
        ``resource_ids`` interns devices (:class:`Placement`) and wires
        (placement-pair frozensets) shard-wide, so replicas and distinct
        groups contend on the same indices.  The single pricing/interning
        walk both replay backends flatten through — change boundary
        pricing here and the chain replay, the DAG replay and the engine
        (via :meth:`_eq1_overhead`'s cross-check) stay in lockstep."""
        placement = schedule.assignments[name]
        tasks: list[tuple[int, float]] = []
        for edge in pipeline.in_edges(name):
            src = schedule.assignments[edge.src]
            if src is not placement:
                pair = frozenset((src, placement))
                wire = resource_ids.get(pair)
                if wire is None:
                    wire = resource_ids[pair] = len(resource_ids)
                tasks.append(
                    (
                        wire,
                        self.cost_model.boundary_cost(
                            edge.nbytes, (src, placement)
                        ),
                    )
                )
        device = resource_ids.get(placement)
        if device is None:
            device = resource_ids[placement] = len(resource_ids)
        tasks.append((device, schedule.stage_times[name].total))
        return tasks

    def _chain_tasks(
        self,
        pipeline: Pipeline,
        schedule: Schedule,
        resource_ids: dict[object, int],
    ) -> tuple[list[tuple[int, float, int]] | None, float]:
        """Flatten one single-chain job into FIFO-replay tasks.

        Tasks are ``(resource index, duration, entry_hop)`` in chain
        order (:meth:`_flatten_stage` per stage).  ``entry_hop`` is the
        engine's same-instant cascade distance from the previous task's
        completion to this task's acquire (1 within a stage, 2 across a
        stage boundary; see :func:`repro.hw.engine.replay_chain_batch`).
        The job total comes from :meth:`_eq1_overhead` (the one
        scheduler-order summation).

        Returns ``(None, overhead)`` when any duration is non-positive:
        the replay's banded tie-handling assumes time strictly advances
        per occupancy, so zero-cost tasks (possible only under degenerate
        custom cost models) fall back to the generator engine.
        """
        overhead_total = self._eq1_overhead(pipeline, schedule)
        tasks: list[tuple[int, float, int]] = []
        for name in pipeline.topological_order:
            stage_tasks = self._flatten_stage(
                pipeline, schedule, name, resource_ids
            )
            for wire, cost in stage_tasks[:-1]:
                tasks.append((wire, cost, 2))
            device, duration = stage_tasks[-1]
            entry_hop = (
                1 if len(stage_tasks) > 1 else (2 if tasks else 0)
            )
            tasks.append((device, duration, entry_hop))
        if any(duration <= 0.0 for _res, duration, _hop in tasks):
            return None, overhead_total
        return tasks, overhead_total

    def _execute_batch_engine(
        self,
        shard_jobs: Sequence[tuple[Pipeline, Schedule]],
        labels: Sequence[int],
        observer: TraceObserver | None,
        shard_arrivals: Sequence[float] | None,
        fault_plan: "FaultPlan | None" = None,
        failures: list | None = None,
    ) -> tuple[list[ExecutionReport], float]:
        """The uncollapsed path: every job of ``shard_jobs`` as stage
        processes on one shared engine (the pre-coalescing semantics,
        and the reference the fast paths are verified against).
        ``labels`` carries the submission indices for trace prefixes.

        With a ``fault_plan``, each job gets a shared mutable fault
        state: the first task of the job hit by an outage window or a
        permanent lane death marks the whole job failed at that instant,
        remaining stages fall through (holding nothing past their
        current occupancy), and the run lands in ``failures`` under its
        submission index from ``labels``.  ``fault_plan=None`` takes the
        exact pre-fault generator — bit-identity with the replay
        backends depends on it."""
        engine = Engine()
        devices = self._device_resources(
            engine, [schedule for _pipeline, schedule in shard_jobs]
        )
        links: dict[frozenset, Resource] = {}
        # Deduplicated batch setup: jobs sharing the same pipeline and
        # schedule *objects* (what the framework's signature caches hand
        # out for duplicate jobs) share one transfer plan instead of
        # re-pricing every boundary per copy.  Keyed by identity — the
        # ``jobs`` sequence keeps the objects alive for the whole call —
        # because value-equality would be as expensive as rebuilding.
        plans: dict[tuple[int, int], tuple] = {}
        spawned = []
        states = (
            None
            if fault_plan is None
            else [_RunFaultState() for _ in shard_jobs]
        )
        for position, (pipeline, schedule) in enumerate(shard_jobs):
            plan_key = (id(pipeline), id(schedule))
            plan = plans.get(plan_key)
            if plan is None:
                plan = self._transfer_plan(engine, links, pipeline, schedule)
                plans[plan_key] = plan
            processes, overhead_total = self._spawn_job(
                engine,
                devices,
                pipeline,
                schedule,
                observer,
                plan,
                label_prefix=f"job{labels[position]}:",
                release=(
                    None if shard_arrivals is None
                    else shard_arrivals[position]
                ),
                fault_plan=fault_plan,
                fault_state=None if states is None else states[position],
            )
            spawned.append((pipeline, schedule, processes, overhead_total))
        makespan = engine.run()
        job_reports = [
            self._job_report(
                pipeline, schedule, overhead_total, self._finish_time(processes)
            )
            for pipeline, schedule, processes, overhead_total in spawned
        ]
        if states is not None and failures is not None:
            for position, state in enumerate(states):
                if state.failed_at is not None:
                    failures.append(
                        RunFailure(
                            job=labels[position],
                            time=state.failed_at,
                            lane=state.lane,
                            kind=state.kind,
                            completed_stages=tuple(sorted(state.completed)),
                        )
                    )
        return job_reports, makespan

    @staticmethod
    def schedule_lanes(schedule: Schedule) -> tuple[str, ...]:
        """The device/wire lane names one scheduled job occupies — the
        keys its occupancies land under in ``lane_occupancy``, and the
        resources an admission controller charges its backlog to."""
        lanes = {lane_name(p) for p in schedule.assignments.values()}
        for pair in schedule.crossing_pairs:
            lanes.add(lane_name(frozenset(pair)))
        return tuple(sorted(lanes))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _device_resources(
        engine: Engine, schedules: Sequence[Schedule]
    ) -> dict[Placement, Resource]:
        # Occupancy intervals reach the trace via the observer callback,
        # never via Resource.usage_log, so sampling stays off.
        placements = sorted(
            {p for schedule in schedules for p in schedule.assignments.values()},
            key=lambda p: p.value,
        )
        return {
            p: engine.resource(1, str(p), log_usage=False) for p in placements
        }

    def _transfer_plan(
        self,
        engine: Engine,
        links: dict[frozenset, Resource],
        pipeline: Pipeline,
        schedule: Schedule,
    ) -> tuple[dict[str, list[tuple[str, Resource, float]]], float]:
        """Price every boundary-crossing in-edge of one job: per-stage
        transfer lists plus the job's total Eq. 1 overhead.

        ``links`` maps each device pair to its capacity-1 wire resource
        (created on first use and shared across every job in the engine),
        so CPU<->NDP and CPU<->GPU transfers ride distinct wires while
        transfers on the same wire serialize.  The job total comes from
        :meth:`_eq1_overhead` (the one scheduler-order summation).
        """
        overhead_total = self._eq1_overhead(pipeline, schedule)
        transfers: dict[str, list[tuple[str, Resource, float]]] = {
            name: [] for name in pipeline.stage_names
        }
        for edge in pipeline.edges:
            src_placement = schedule.assignments[edge.src]
            dst_placement = schedule.assignments[edge.dst]
            if src_placement is not dst_placement:
                pair = frozenset((src_placement, dst_placement))
                if pair not in links:
                    wire_name = "link:" + "-".join(sorted(p.value for p in pair))
                    links[pair] = engine.resource(1, wire_name, log_usage=False)
                cost = self.cost_model.boundary_cost(
                    edge.nbytes, (src_placement, dst_placement)
                )
                transfers[edge.dst].append(
                    (f"{edge.src}->{edge.dst}", links[pair], cost)
                )
        return transfers, overhead_total

    def _spawn_job(
        self,
        engine: Engine,
        devices: dict[Placement, Resource],
        pipeline: Pipeline,
        schedule: Schedule,
        observer: TraceObserver | None,
        plan: tuple[dict[str, list[tuple[str, Resource, float]]], float],
        label_prefix: str = "",
        release: float | None = None,
        fault_plan: FaultPlan | None = None,
        fault_state: "_RunFaultState | None" = None,
    ) -> tuple[dict[str, SimProcess], float]:
        """Spawn one process per stage (in topological order, so every
        predecessor process exists before its dependents) and return the
        processes plus the job's total Eq. 1 overhead.  ``plan`` is the
        job's :meth:`_transfer_plan` (shareable between jobs that run
        the same pipeline/schedule objects in the same engine).
        ``release`` delays the job's entry stages to that arrival offset
        (downstream stages inherit it through the predecessor waits).

        ``fault_plan``/``fault_state`` switch to the fault-aware stage
        generator.  The healthy generator below stays byte-for-byte what
        it was before faults existed: the empty-plan bit-identity
        contract requires the no-fault event stream to be untouched."""
        transfers, overhead_total = plan

        def stage_process(name: str, predecessors: list[SimProcess]):
            placement = schedule.assignments[name]
            device = devices[placement]
            duration = schedule.stage_times[name].total
            if release is not None and not predecessors:
                yield engine.timeout(release)
            for predecessor in predecessors:
                yield predecessor
            for label, wire, cost in transfers[name]:
                yield wire.acquire()
                start = engine.now
                yield engine.timeout(cost)
                if observer is not None:
                    observer(wire.name, label_prefix + label, start, engine.now)
                yield wire.release()
            yield device.acquire()
            start = engine.now
            yield engine.timeout(duration)
            if observer is not None:
                observer(
                    str(placement), label_prefix + name, start, engine.now
                )
            yield device.release()

        def faulty_stage_process(name: str, predecessors: list[SimProcess]):
            # Mirrors stage_process, but every occupancy runs through the
            # fault plan, and once any stage of the job fails, the
            # remaining stages fall through: they still pass their
            # acquire/release pairs (so FIFO queues drain and nothing
            # deadlocks) but occupy no time on the lane.
            placement = schedule.assignments[name]
            device = devices[placement]
            duration = schedule.stage_times[name].total
            if release is not None and not predecessors:
                yield engine.timeout(release)
            for predecessor in predecessors:
                yield predecessor
            for label, wire, cost in transfers[name]:
                yield wire.acquire()
                alive = fault_state.failed_at is None and (
                    yield from self._occupy_faulted(
                        engine,
                        fault_plan,
                        fault_state,
                        wire.name,
                        cost,
                        observer,
                        label_prefix + label,
                    )
                )
                yield wire.release()
                if not alive:
                    return
            yield device.acquire()
            alive = fault_state.failed_at is None and (
                yield from self._occupy_faulted(
                    engine,
                    fault_plan,
                    fault_state,
                    str(placement),
                    duration,
                    observer,
                    label_prefix + name,
                )
            )
            if alive:
                # The stage's device work finished — even if another
                # stage of the job failed mid-flight, this occupancy was
                # committed and ran to completion, so it belongs to the
                # checkpoint frontier a resume may start past.
                fault_state.completed.append(name)
            yield device.release()
            if not alive:
                return

        factory = stage_process if fault_state is None else faulty_stage_process
        processes: dict[str, SimProcess] = {}
        for name in pipeline.topological_order:
            predecessors = [processes[p] for p in pipeline.predecessors(name)]
            processes[name] = engine.spawn(
                factory(name, predecessors), name=label_prefix + name
            )
        return processes, overhead_total

    @staticmethod
    def _occupy_faulted(
        engine: Engine,
        fault_plan: FaultPlan,
        fault_state: "_RunFaultState",
        lane: str,
        duration: float,
        observer: TraceObserver | None,
        label: str,
    ):
        """Occupy ``lane`` for ``duration`` under the fault plan.

        The caller already holds the lane's resource.  A task granted
        inside an outage window waits the window out (no failure); a
        window starting mid-service — or the lane's permanent death —
        kills the job at that instant and marks ``fault_state``.
        Slowdown windows never kill: they inflate the occupancy to the
        piecewise wall time the fault plan resolved.  Yields engine
        commands; returns True when the occupancy completed, False when
        the job failed (the caller releases and bails out).
        """
        grant = engine.now
        service, wall, fail_time, kind = fault_plan.resolve_service(
            lane, grant, duration
        )
        if fail_time is None:
            if service > grant:
                yield engine.timeout(service - grant)
            start = engine.now
            yield engine.timeout(wall)
            if observer is not None:
                observer(lane, label, start, engine.now)
            return True
        if fail_time > grant:
            yield engine.timeout(fail_time - grant)
        if observer is not None and engine.now > service:
            # The truncated occupancy [service, fail): real busy time the
            # lane spent on work that was then thrown away.
            observer(lane, label, service, engine.now)
        fault_state.fail(engine.now, lane, kind)
        return False

    @staticmethod
    def _check_overhead(overhead_total: float, schedule: Schedule) -> None:
        expected_overhead = schedule.scheduling_overhead
        if abs(overhead_total - expected_overhead) > 1e-9 * max(
            1.0, expected_overhead
        ):
            raise SimulationError(
                "executor and scheduler disagree on Eq. 1 overhead: "
                f"{overhead_total} vs {expected_overhead}"
            )

    @staticmethod
    def _finish_time(processes: dict[str, SimProcess]) -> float:
        finishes = [p.finish_time for p in processes.values()]
        if any(f is None for f in finishes):
            raise SimulationError("job finished with unfinished stages")
        return max(finishes)

    @staticmethod
    def _job_report(
        pipeline: Pipeline,
        schedule: Schedule,
        overhead_total: float,
        total_time: float,
    ) -> ExecutionReport:
        phase_seconds = {
            name: schedule.stage_times[name].total
            for name in pipeline.stage_names
        }
        return ExecutionReport(
            phase_seconds=phase_seconds,
            phase_times=dict(schedule.stage_times),
            scheduling_overhead=overhead_total,
            total_time=total_time,
            assignments=dict(schedule.assignments),
        )
