"""NDFT core: the paper's primary contribution.

- :mod:`repro.core.ir` — the kernel IR the static code analyzer consumes.
- :mod:`repro.core.sca` — the SCA substitute: per-function compute/memory
  intensity, boundedness classification, transfer-set estimation (§IV-A2).
- :mod:`repro.core.cost_model` — Eq. 1: scheduling overhead as the sum of
  data-transfer (DT) and context-switch (CXT) costs over placement
  boundaries.
- :mod:`repro.core.scheduler` — the cost-aware offloader over a pluggable
  target registry (CPU, NDP, GPU, ...), solved by an exact topological
  DP with exhaustive enumeration retained as the test oracle; plus the
  naive / all-CPU / all-NDP ablation policies at four offload
  granularities (instruction, basic block, function, kernel).
- :mod:`repro.core.pipeline` — validated stage DAGs with data edges: the
  paper's LR-TDDFT chain plus branching (k-point) variants.
- :mod:`repro.core.executor` — maps schedules onto the machine models via
  the discrete-event engine: DAG-aware waits, branch overlap on distinct
  devices, and batched multi-job execution on one shared machine, scaled
  out through signature-coalesced super-jobs and contention-sharded
  simulations (bit-identical to the plain shared engine).
- :mod:`repro.core.backends` — the simulation-backend layer the executor
  selects from per contention shard: the chain FIFO replay, the DAG
  replay (join counters on fan-in stages) and the generator engine
  fallback, all bit-identical and pluggable via ``register_backend``.
- :mod:`repro.core.arrivals` — arrival processes (seeded Poisson),
  latency percentiles and the SLO-driven admission policy
  (shed/deprioritize) for the open-queue serving model.
- :mod:`repro.core.faults` — deterministic fault injection: seeded
  lane-outage/permanent-failure plans, retry policies with exponential
  backoff in virtual time, and the per-batch resilience report
  (availability, goodput vs throughput, post-fault percentiles).
- :mod:`repro.core.signature` / :mod:`repro.core.lru` — content-addressed
  job signatures and the bounded LRU caches they key.
- :mod:`repro.core.framework` — the end-to-end NDFT driver (single jobs
  and concurrent batches).
- :mod:`repro.core.baselines` — CPU-only and GPU execution models.
"""

from repro.core.arrivals import (
    AdmissionDecision,
    AdmissionPolicy,
    percentile,
    plan_admission,
    poisson_arrivals,
)
from repro.core.backends import (
    SimulationBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.core.faults import (
    AttemptRecord,
    FaultPlan,
    ResilienceReport,
    RetryPolicy,
    poisson_fault_plan,
)
from repro.core.ir import CodeSegment, KernelFunction
from repro.core.lru import LruCache
from repro.core.sca import ScaReport, StaticCodeAnalyzer
from repro.core.cost_model import OffloadCostModel
from repro.core.pipeline import (
    Edge,
    Pipeline,
    Stage,
    build_kpoint_pipeline,
    build_pipeline,
)
from repro.core.scheduler import (
    Placement,
    Schedule,
    SchedulingPolicy,
    CostAwareScheduler,
)
from repro.core.executor import (
    BatchExecutionReport,
    ExecutionReport,
    PipelineExecutor,
)
from repro.core.framework import (
    AdmissionResult,
    NdftBatchResult,
    NdftFramework,
    NdftRunResult,
)
from repro.core.baselines import run_cpu_baseline, run_gpu_baseline

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "AdmissionResult",
    "percentile",
    "plan_admission",
    "poisson_arrivals",
    "SimulationBackend",
    "backend_names",
    "get_backend",
    "register_backend",
    "AttemptRecord",
    "FaultPlan",
    "ResilienceReport",
    "RetryPolicy",
    "poisson_fault_plan",
    "LruCache",
    "CodeSegment",
    "KernelFunction",
    "ScaReport",
    "StaticCodeAnalyzer",
    "OffloadCostModel",
    "Edge",
    "Pipeline",
    "Stage",
    "build_pipeline",
    "build_kpoint_pipeline",
    "Placement",
    "Schedule",
    "SchedulingPolicy",
    "CostAwareScheduler",
    "BatchExecutionReport",
    "ExecutionReport",
    "PipelineExecutor",
    "NdftBatchResult",
    "NdftFramework",
    "NdftRunResult",
    "run_cpu_baseline",
    "run_gpu_baseline",
]
