"""NDFT core: the paper's primary contribution.

- :mod:`repro.core.ir` — the kernel IR the static code analyzer consumes.
- :mod:`repro.core.sca` — the SCA substitute: per-function compute/memory
  intensity, boundedness classification, transfer-set estimation (§IV-A2).
- :mod:`repro.core.cost_model` — Eq. 1: scheduling overhead as the sum of
  data-transfer (DT) and context-switch (CXT) costs over placement
  boundaries.
- :mod:`repro.core.scheduler` — the cost-aware offloader, plus the naive /
  all-CPU / all-NDP policies used as ablations, at four offload
  granularities (instruction, basic block, function, kernel).
- :mod:`repro.core.pipeline` — the LR-TDDFT stage graph with data edges.
- :mod:`repro.core.executor` — maps a schedule onto the machine models via
  the discrete-event engine.
- :mod:`repro.core.framework` — the end-to-end NDFT driver.
- :mod:`repro.core.baselines` — CPU-only and GPU execution models.
"""

from repro.core.ir import CodeSegment, KernelFunction
from repro.core.sca import ScaReport, StaticCodeAnalyzer
from repro.core.cost_model import OffloadCostModel
from repro.core.pipeline import Pipeline, Stage, build_pipeline
from repro.core.scheduler import (
    Placement,
    Schedule,
    SchedulingPolicy,
    CostAwareScheduler,
)
from repro.core.executor import ExecutionReport, PipelineExecutor
from repro.core.framework import NdftFramework, NdftRunResult
from repro.core.baselines import run_cpu_baseline, run_gpu_baseline

__all__ = [
    "CodeSegment",
    "KernelFunction",
    "ScaReport",
    "StaticCodeAnalyzer",
    "OffloadCostModel",
    "Pipeline",
    "Stage",
    "build_pipeline",
    "Placement",
    "Schedule",
    "SchedulingPolicy",
    "CostAwareScheduler",
    "ExecutionReport",
    "PipelineExecutor",
    "NdftFramework",
    "NdftRunResult",
    "run_cpu_baseline",
    "run_gpu_baseline",
]
