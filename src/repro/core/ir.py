"""Kernel IR: what our static code analyzer analyzes.

The paper's SCA (built on Intel's static analyzer / LLVM) inspects x86
code regions.  Our substitute inspects an explicit IR: each kernel
*function* is a sequence of :class:`CodeSegment` records (think basic
blocks annotated with op counts and access patterns).  That carries the
same information the paper extracts — estimated FLOPs, memory traffic,
access shape, live-in/live-out data sizes — without pretending to parse
machine code.

The granularity study (§IV-A1) operates on this IR: offload decisions can
be taken per segment ("basic block"), per function (NDFT's choice), or per
whole kernel region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.model import AccessPattern, KernelWorkload


@dataclass(frozen=True)
class CodeSegment:
    """One straight-line region inside a kernel function."""

    name: str
    flops: float
    bytes_read: float
    bytes_written: float
    access_pattern: AccessPattern = AccessPattern.SEQUENTIAL
    #: Approximate dynamic instruction count (for instruction-granularity
    #: overhead estimates).
    instructions: int = 0

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_read < 0 or self.bytes_written < 0:
            raise ConfigError(f"negative counts in segment {self.name}")
        if self.instructions < 0:
            raise ConfigError(f"negative instruction count in {self.name}")

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    @property
    def arithmetic_intensity(self) -> float:
        if self.bytes_total == 0:
            return float("inf")
        return self.flops / self.bytes_total


@dataclass(frozen=True)
class KernelFunction:
    """A function-level offload unit: segments + live-in/out data sizes."""

    name: str
    segments: tuple[CodeSegment, ...]
    live_in_bytes: float
    live_out_bytes: float
    workload: KernelWorkload | None = None

    def __post_init__(self) -> None:
        if not self.segments:
            raise ConfigError(f"function {self.name} has no segments")
        if self.live_in_bytes < 0 or self.live_out_bytes < 0:
            raise ConfigError(f"negative live set in {self.name}")
        object.__setattr__(self, "segments", tuple(self.segments))

    @property
    def flops(self) -> float:
        return sum(s.flops for s in self.segments)

    @property
    def bytes_total(self) -> float:
        return sum(s.bytes_total for s in self.segments)

    @property
    def arithmetic_intensity(self) -> float:
        total = self.bytes_total
        if total == 0:
            return float("inf")
        return self.flops / total

    @property
    def instructions(self) -> int:
        return sum(s.instructions for s in self.segments)

    def intensity_consistency(self) -> float:
        """How uniform the segments' intensities are, in [0, 1].

        1.0 means every segment has the function's overall intensity; low
        values flag functions that mix compute- and memory-bound regions.
        The paper's observation 2 in §IV-A1 — "most functions in LR-TDDFT
        exhibit consistent compute/memory characteristics" — is what makes
        function-level offloading safe, and this metric quantifies it.
        """
        overall = self.arithmetic_intensity
        if overall in (0.0, float("inf")) or len(self.segments) == 1:
            return 1.0
        weights = [s.bytes_total for s in self.segments]
        total_weight = sum(weights)
        if total_weight == 0:
            return 1.0
        deviation = 0.0
        for segment, weight in zip(self.segments, weights):
            ai = segment.arithmetic_intensity
            if ai == float("inf"):
                continue
            deviation += weight / total_weight * abs(ai - overall) / overall
        return max(0.0, 1.0 - deviation)


def function_from_workload(
    workload: KernelWorkload,
    live_in_bytes: float,
    live_out_bytes: float,
    n_segments: int = 4,
) -> KernelFunction:
    """Build a function IR whose segments evenly split a workload.

    Used by the pipeline builder: each LR-TDDFT phase becomes one function
    whose segments share the phase's characteristics (which is what makes
    the consistency metric high and function-level offloading the right
    granularity).
    """
    if n_segments < 1:
        raise ConfigError("n_segments must be >= 1")
    share = 1.0 / n_segments
    segments = tuple(
        CodeSegment(
            name=f"{workload.name}.seg{i}",
            flops=workload.flops * share,
            bytes_read=workload.bytes_read * share,
            bytes_written=workload.bytes_written * share,
            access_pattern=workload.access_pattern,
            instructions=max(1, int(workload.flops * share / 4)),
        )
        for i in range(n_segments)
    )
    return KernelFunction(
        name=str(workload.name),
        segments=segments,
        live_in_bytes=live_in_bytes,
        live_out_bytes=live_out_bytes,
        workload=workload,
    )
