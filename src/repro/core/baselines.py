"""Baseline execution models: CPU-only and GPU (paper §V).

Both baselines run the same pipeline workloads end to end on one machine
model.  The GPU baseline additionally pays per-phase host<->device
transfers (that is the point the paper makes about heterogeneous
offload); the CPU baseline pays nothing extra — it is the reference
everything is normalized against (Fig. 7, Fig. 8).
"""

from __future__ import annotations

from repro.core.executor import ExecutionReport
from repro.core.pipeline import Pipeline, build_pipeline
from repro.core.scheduler import Placement
from repro.dft.workload import ProblemSize
from repro.hw.config import CpuConfig, GpuConfig, cpu_baseline_config, gpu_baseline_config
from repro.hw.cpu import CpuModel
from repro.hw.gpu import GpuModel


def run_cpu_baseline(
    problem: ProblemSize,
    config: CpuConfig | None = None,
    pipeline: Pipeline | None = None,
) -> ExecutionReport:
    """Run every phase on the CPU baseline (2x Xeon E5-2695)."""
    machine = CpuModel(config or cpu_baseline_config())
    pipeline = pipeline or build_pipeline(problem)
    phase_times = {
        stage.name: machine.execute(stage.workload) for stage in pipeline.stages
    }
    phase_seconds = {name: t.total for name, t in phase_times.items()}
    return ExecutionReport(
        phase_seconds=phase_seconds,
        phase_times=phase_times,
        scheduling_overhead=0.0,
        total_time=sum(phase_seconds.values()),
        assignments={name: Placement.CPU for name in phase_seconds},
    )


def run_gpu_baseline(
    problem: ProblemSize,
    config: GpuConfig | None = None,
    pipeline: Pipeline | None = None,
) -> ExecutionReport:
    """Run every phase on the GPU baseline (2x V100, PCIe-attached).

    Each phase's host<->device traffic is charged inside
    :meth:`repro.hw.gpu.GpuModel.execute`; there is no separate scheduling
    overhead bucket because the GPU pipeline has a single placement.
    """
    machine = GpuModel(config or gpu_baseline_config())
    pipeline = pipeline or build_pipeline(problem)
    phase_times = {
        stage.name: machine.execute(stage.workload) for stage in pipeline.stages
    }
    phase_seconds = {name: t.total for name, t in phase_times.items()}
    return ExecutionReport(
        phase_seconds=phase_seconds,
        phase_times=phase_times,
        scheduling_overhead=0.0,
        total_time=sum(phase_seconds.values()),
        assignments={name: Placement.GPU for name in phase_seconds},
    )
