"""The end-to-end NDFT framework (the paper's headline system).

:class:`NdftFramework` wires everything together for one Si_N problem:

1. build the LR-TDDFT pipeline (the Fig. 1 chain by default, any DAG on
   request) and its function IR;
2. run the SCA over every function (boundedness + consistency);
3. schedule with the cost-aware offloader (Eq. 1) over the registered
   execution targets (CPU + NDP, plus the discrete GPU when
   ``enable_gpu=True``);
4. execute on the machine models through the DES engine;
5. account pseudopotential memory under the shared-block layout.

The result carries everything the evaluation section reports: per-phase
breakdown (Fig. 7), scheduling-overhead fraction (§VI-A), and memory
footprints (Table I / §VI-A discussion).

Beyond the paper, :meth:`NdftFramework.run_many` is the batching
front-end: it schedules a batch of heterogeneous problem sizes and
executes them concurrently through one shared engine, reporting per-job
completion times plus aggregate makespan and throughput — the serving
mode a DFT-as-a-service deployment runs in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.cost_model import OffloadCostModel, serial_links
from repro.core.executor import (
    BatchExecutionReport,
    ExecutionReport,
    PipelineExecutor,
)
from repro.core.pipeline import Pipeline, build_pipeline
from repro.core.sca import ScaReport, StaticCodeAnalyzer
from repro.core.scheduler import (
    CostAwareScheduler,
    Schedule,
    SchedulingPolicy,
)
from repro.dft.workload import ProblemSize, problem_size
from repro.hw.config import SystemConfig, gpu_baseline_config, ndft_system_config
from repro.hw.cpu import CpuModel
from repro.hw.gpu import GpuModel
from repro.hw.interconnect import HostLink
from repro.hw.ndp import NdpSystemModel
from repro.hw.roofline import RooflineModel
from repro.model import AccessPattern
from repro.shmem.footprint import (
    NDP_RANKS,
    NDP_STACKS,
    footprint_ndft,
    footprint_replicated,
)


@dataclass(frozen=True)
class NdftRunResult:
    """Everything one NDFT run produces."""

    problem: ProblemSize
    schedule: Schedule
    report: ExecutionReport
    sca_reports: dict[str, ScaReport]
    memory_footprint_gb: float
    replicated_footprint_gb: float

    @property
    def total_time(self) -> float:
        return self.report.total_time

    @property
    def scheduling_overhead_fraction(self) -> float:
        return self.report.overhead_fraction

    @property
    def memory_reduction_percent(self) -> float:
        """Footprint saving vs the replicated NDP layout (§VI-A: 57.8 %)."""
        if self.replicated_footprint_gb == 0:
            return 0.0
        return 100.0 * (
            1.0 - self.memory_footprint_gb / self.replicated_footprint_gb
        )

    def breakdown(self) -> dict[str, float]:
        return self.report.breakdown()


@dataclass(frozen=True)
class NdftBatchResult:
    """A batch of jobs executed concurrently on one shared machine."""

    jobs: tuple[NdftRunResult, ...]
    batch_report: BatchExecutionReport
    #: What the same jobs cost run one at a time on a dedicated machine
    #: (the sum of standalone DES makespans).
    solo_times: tuple[float, ...]

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def makespan(self) -> float:
        """Aggregate completion time of the whole batch."""
        return self.batch_report.makespan

    @property
    def throughput(self) -> float:
        """Jobs per second of shared-machine time."""
        return self.batch_report.throughput

    @property
    def serial_time(self) -> float:
        """Back-to-back baseline: the sum of standalone single-job runs."""
        return sum(self.solo_times)

    @property
    def batching_speedup(self) -> float:
        """Makespan advantage of sharing the machine across the batch."""
        if self.makespan == 0:
            return 1.0
        return self.serial_time / self.makespan

    def job_completion_times(self) -> tuple[tuple[str, float], ...]:
        """Per-job ``(label, completion seconds)`` in submission order
        (completion includes queueing for shared devices).  A batch may
        contain several jobs of the same size, so labels can repeat."""
        return tuple(
            (result.problem.label, result.report.total_time)
            for result in self.jobs
        )


class NdftFramework:
    """NDFT on the Table III CPU-NDP system.

    ``enable_gpu=True`` additionally registers the discrete-GPU baseline
    machine as a third schedulable target, letting the cost-aware
    scheduler mix all three device kinds.  The default keeps the paper's
    two-sided system (and its published numbers) intact.
    """

    def __init__(
        self,
        system: SystemConfig | None = None,
        policy: SchedulingPolicy = SchedulingPolicy.COST_AWARE,
        enable_gpu: bool = False,
    ):
        self.system = system or ndft_system_config()
        self.policy = policy
        self.host = CpuModel(self.system.host)
        self.ndp = NdpSystemModel(self.system.ndp)
        self.gpu = GpuModel(gpu_baseline_config()) if enable_gpu else None
        # Offload handovers run at half the raw link rate: the releasing
        # side flushes dirty lines before the consuming side can pull
        # (flush + copy, serialized).
        cpu_ndp_link = HostLink(
            bandwidth=self.system.ndp.host_link_bandwidth / 2.0
        )
        device_links: dict[frozenset, HostLink] = {}
        if self.gpu is not None:
            # GPU boundaries ride PCIe, not the CPU<->NDP host link; an
            # NDP<->GPU handover stages through host memory, traversing
            # both wires in series.
            pcie = HostLink(
                bandwidth=self.gpu.config.aggregate_pcie_bandwidth,
                base_latency=1e-6,
            )
            device_links[frozenset({"cpu", "gpu"})] = pcie
            device_links[frozenset({"ndp", "gpu"})] = serial_links(
                cpu_ndp_link, pcie
            )
        self.cost_model = OffloadCostModel(
            host_link=cpu_ndp_link,
            context_switch=self.system.context_switch_overhead,
            device_links=device_links,
        )
        self.scheduler = CostAwareScheduler(
            host=self.host,
            ndp=self.ndp,
            cost_model=self.cost_model,
            gpu=self.gpu,
        )
        self.executor = PipelineExecutor(cost_model=self.cost_model)
        self.sca = StaticCodeAnalyzer(
            cpu_roofline=RooflineModel(
                name=self.system.host.name,
                peak_flops=self.system.host.peak_flops,
                peak_bandwidth=self.host.memory.effective_bandwidth(
                    AccessPattern.SEQUENTIAL
                ),
            ),
            ndp_roofline=RooflineModel(
                name=self.system.ndp.name,
                peak_flops=self.system.ndp.peak_flops,
                peak_bandwidth=self.system.ndp.aggregate_internal_bandwidth
                * 0.86,
            ),
        )

    # ------------------------------------------------------------------
    # Single job
    # ------------------------------------------------------------------
    def run(
        self,
        n_atoms: int | None = None,
        problem: ProblemSize | None = None,
        pipeline: Pipeline | None = None,
    ) -> NdftRunResult:
        """Schedule + execute LR-TDDFT for Si_{n_atoms} on the CPU-NDP
        system and account its memory."""
        problem, pipeline = self._resolve_job(n_atoms, problem, pipeline)
        schedule = self.scheduler.schedule(pipeline, self.policy)
        report = self.executor.execute(pipeline, schedule)
        return self._run_result(problem, pipeline, schedule, report)

    # ------------------------------------------------------------------
    # Batched jobs
    # ------------------------------------------------------------------
    def run_many(
        self,
        batch: Sequence[int | ProblemSize | Pipeline],
        pipeline_builder: Callable[[ProblemSize], Pipeline] | None = None,
    ) -> NdftBatchResult:
        """Schedule and execute a batch of heterogeneous jobs through one
        shared engine.

        ``batch`` entries may be atom counts, :class:`ProblemSize` records
        or prebuilt pipelines (mixed freely).  Every job is scheduled
        independently under the framework policy, then all jobs execute
        concurrently on the shared device/link resources, so jobs whose
        placements use different devices at different times genuinely
        overlap.  ``pipeline_builder`` overrides the Fig. 1 chain for
        entries given as sizes (e.g. ``build_kpoint_pipeline``).
        """
        if not batch:
            raise ValueError("run_many needs at least one job")
        builder = pipeline_builder or build_pipeline
        jobs: list[tuple[ProblemSize, Pipeline, Schedule]] = []
        for entry in batch:
            if isinstance(entry, Pipeline):
                problem, pipeline = entry.problem, entry
            elif isinstance(entry, ProblemSize):
                problem, pipeline = entry, builder(entry)
            else:
                problem = problem_size(entry)
                pipeline = builder(problem)
            schedule = self.scheduler.schedule(pipeline, self.policy)
            jobs.append((problem, pipeline, schedule))

        batch_report = self.executor.execute_many(
            [(pipeline, schedule) for _problem, pipeline, schedule in jobs]
        )
        solo_times = tuple(
            self.executor.execute(pipeline, schedule).total_time
            for _problem, pipeline, schedule in jobs
        )
        results = tuple(
            self._run_result(problem, pipeline, schedule, report)
            for (problem, pipeline, schedule), report in zip(
                jobs, batch_report.job_reports
            )
        )
        return NdftBatchResult(
            jobs=results, batch_report=batch_report, solo_times=solo_times
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve_job(
        self,
        n_atoms: int | None,
        problem: ProblemSize | None,
        pipeline: Pipeline | None,
    ) -> tuple[ProblemSize, Pipeline]:
        if problem is None:
            if pipeline is not None:
                problem = pipeline.problem
            elif n_atoms is not None:
                problem = problem_size(n_atoms)
            else:
                raise ValueError("pass n_atoms, problem or pipeline")
        return problem, pipeline or build_pipeline(problem)

    def _run_result(
        self,
        problem: ProblemSize,
        pipeline: Pipeline,
        schedule: Schedule,
        report: ExecutionReport,
    ) -> NdftRunResult:
        sca_reports = self.sca.analyze_all(
            [stage.function for stage in pipeline.stages]
        )
        return NdftRunResult(
            problem=problem,
            schedule=schedule,
            report=report,
            sca_reports=sca_reports,
            memory_footprint_gb=footprint_ndft(
                problem.n_atoms, NDP_RANKS, NDP_STACKS
            ),
            replicated_footprint_gb=footprint_replicated(
                problem.n_atoms, NDP_RANKS
            ),
        )
