"""The end-to-end NDFT framework (the paper's headline system).

:class:`NdftFramework` wires everything together for one Si_N problem:

1. build the LR-TDDFT pipeline and its function IR;
2. run the SCA over every function (boundedness + consistency);
3. schedule with the cost-aware offloader (Eq. 1);
4. execute on the CPU-NDP machine models through the DES engine;
5. account pseudopotential memory under the shared-block layout.

The result carries everything the evaluation section reports: per-phase
breakdown (Fig. 7), scheduling-overhead fraction (§VI-A), and memory
footprints (Table I / §VI-A discussion).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost_model import OffloadCostModel
from repro.core.executor import ExecutionReport, PipelineExecutor
from repro.core.pipeline import Pipeline, build_pipeline
from repro.core.sca import ScaReport, StaticCodeAnalyzer
from repro.core.scheduler import (
    CostAwareScheduler,
    Schedule,
    SchedulingPolicy,
)
from repro.dft.workload import ProblemSize, problem_size
from repro.hw.config import SystemConfig, ndft_system_config
from repro.hw.cpu import CpuModel
from repro.hw.interconnect import HostLink
from repro.hw.ndp import NdpSystemModel
from repro.hw.roofline import RooflineModel
from repro.model import AccessPattern
from repro.shmem.footprint import (
    NDP_RANKS,
    NDP_STACKS,
    footprint_ndft,
    footprint_replicated,
)


@dataclass(frozen=True)
class NdftRunResult:
    """Everything one NDFT run produces."""

    problem: ProblemSize
    schedule: Schedule
    report: ExecutionReport
    sca_reports: dict[str, ScaReport]
    memory_footprint_gb: float
    replicated_footprint_gb: float

    @property
    def total_time(self) -> float:
        return self.report.total_time

    @property
    def scheduling_overhead_fraction(self) -> float:
        return self.report.overhead_fraction

    @property
    def memory_reduction_percent(self) -> float:
        """Footprint saving vs the replicated NDP layout (§VI-A: 57.8 %)."""
        if self.replicated_footprint_gb == 0:
            return 0.0
        return 100.0 * (
            1.0 - self.memory_footprint_gb / self.replicated_footprint_gb
        )

    def breakdown(self) -> dict[str, float]:
        return self.report.breakdown()


class NdftFramework:
    """NDFT on the Table III CPU-NDP system."""

    def __init__(
        self,
        system: SystemConfig | None = None,
        policy: SchedulingPolicy = SchedulingPolicy.COST_AWARE,
    ):
        self.system = system or ndft_system_config()
        self.policy = policy
        self.host = CpuModel(self.system.host)
        self.ndp = NdpSystemModel(self.system.ndp)
        # Offload handovers run at half the raw link rate: the releasing
        # side flushes dirty lines before the consuming side can pull
        # (flush + copy, serialized).
        self.cost_model = OffloadCostModel(
            host_link=HostLink(
                bandwidth=self.system.ndp.host_link_bandwidth / 2.0
            ),
            context_switch=self.system.context_switch_overhead,
        )
        self.scheduler = CostAwareScheduler(
            host=self.host, ndp=self.ndp, cost_model=self.cost_model
        )
        self.executor = PipelineExecutor(cost_model=self.cost_model)
        self.sca = StaticCodeAnalyzer(
            cpu_roofline=RooflineModel(
                name=self.system.host.name,
                peak_flops=self.system.host.peak_flops,
                peak_bandwidth=self.host.memory.effective_bandwidth(
                    AccessPattern.SEQUENTIAL
                ),
            ),
            ndp_roofline=RooflineModel(
                name=self.system.ndp.name,
                peak_flops=self.system.ndp.peak_flops,
                peak_bandwidth=self.system.ndp.aggregate_internal_bandwidth
                * 0.86,
            ),
        )

    def run(
        self,
        n_atoms: int | None = None,
        problem: ProblemSize | None = None,
        pipeline: Pipeline | None = None,
    ) -> NdftRunResult:
        """Schedule + execute LR-TDDFT for Si_{n_atoms} on the CPU-NDP
        system and account its memory."""
        if problem is None:
            if n_atoms is None:
                raise ValueError("pass n_atoms or problem")
            problem = problem_size(n_atoms)
        pipeline = pipeline or build_pipeline(problem)
        sca_reports = self.sca.analyze_all(
            [stage.function for stage in pipeline.stages]
        )
        schedule = self.scheduler.schedule(pipeline, self.policy)
        report = self.executor.execute(pipeline, schedule)
        return NdftRunResult(
            problem=problem,
            schedule=schedule,
            report=report,
            sca_reports=sca_reports,
            memory_footprint_gb=footprint_ndft(
                problem.n_atoms, NDP_RANKS, NDP_STACKS
            ),
            replicated_footprint_gb=footprint_replicated(
                problem.n_atoms, NDP_RANKS
            ),
        )
