"""The end-to-end NDFT framework (the paper's headline system).

:class:`NdftFramework` wires everything together for one Si_N problem:

1. build the LR-TDDFT pipeline (the Fig. 1 chain by default, any DAG on
   request) and its function IR;
2. run the SCA over every function (boundedness + consistency);
3. schedule with the cost-aware offloader (Eq. 1) over the registered
   execution targets (CPU + NDP, plus the discrete GPU when
   ``enable_gpu=True``);
4. execute on the machine models through the DES engine;
5. account pseudopotential memory under the shared-block layout.

The result carries everything the evaluation section reports: per-phase
breakdown (Fig. 7), scheduling-overhead fraction (§VI-A), and memory
footprints (Table I / §VI-A discussion).

Beyond the paper, :meth:`NdftFramework.run_many` is the batching
front-end: it schedules a batch of heterogeneous problem sizes and
executes them concurrently through one shared machine, reporting per-job
completion times plus aggregate makespan and throughput — the serving
mode a DFT-as-a-service deployment runs in.  Passing ``arrivals``
(deterministic offsets or :func:`repro.core.arrivals.poisson_arrivals`)
turns the batch into an open queue and the result additionally reports
p50/p99 completion latency and per-job queueing delay.

Serving fast path: every artifact the framework derives per job — the
built pipeline, the cost-aware schedule, the SCA reports, and the
standalone (solo) DES report — is a pure function of the job's
content-addressed :class:`~repro.core.signature.JobSignature`, so the
framework memoizes all four in bounded LRU caches
(``cache_size`` entries each, eviction counted in ``cache_stats``).
``run_many([512] * 256)`` schedules, analyzes and solo-times the
512-atom job exactly once; the shared batch simulation itself is scaled
out by the executor (signature-coalesced super-jobs, contention-sharded
engines — bit-identical to the plain shared engine), and cold
placements of never-seen sizes warm-start the exact DP from the nearest
same-structure neighbor.  The caches live on the framework, compose
across calls, and are dropped whenever
:meth:`NdftFramework.register_target` changes the machine registry.
``NdftFramework(memoize=False)`` is the escape hatch that re-derives
everything per job — the serving benchmark
(:mod:`repro.experiments.scale_serving`) uses it as the "before"
measurement and asserts the results are identical either way.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Sequence

from repro.core.arrivals import (
    AdmissionDecision,
    AdmissionPolicy,
    percentile,
    plan_admission,
)
from repro.core.backends import backend_names
from repro.core.cost_model import OffloadCostModel, serial_links
from repro.core.executor import (
    BackendTuner,
    BatchExecutionReport,
    ExecutionReport,
    PipelineExecutor,
)
from repro.core.faults import (
    AttemptRecord,
    FaultPlan,
    ResilienceReport,
    RetryPolicy,
)
from repro.core.lru import LruCache
from repro.core.pipeline import Pipeline, build_pipeline
from repro.core.sca import ScaReport, StaticCodeAnalyzer
from repro.core.scheduler import (
    CostAwareScheduler,
    ExecutionTarget,
    Placement,
    Schedule,
    SchedulingPolicy,
)
from repro.core.signature import (
    JobSignature,
    cost_model_fingerprint,
    job_signature,
    structure_signature,
    target_registry_fingerprint,
)
from repro.errors import ConfigError
from repro.dft.workload import ProblemSize, problem_size
from repro.hw.config import SystemConfig, gpu_baseline_config, ndft_system_config
from repro.hw.cpu import CpuModel
from repro.hw.gpu import GpuModel
from repro.hw.interconnect import HostLink
from repro.hw.ndp import NdpSystemModel
from repro.hw.roofline import RooflineModel
from repro.model import AccessPattern
from repro.shmem.footprint import (
    NDP_RANKS,
    NDP_STACKS,
    footprint_ndft,
    footprint_replicated,
)


@dataclass(frozen=True)
class NdftRunResult:
    """Everything one NDFT run produces."""

    problem: ProblemSize
    schedule: Schedule
    report: ExecutionReport
    sca_reports: dict[str, ScaReport]
    memory_footprint_gb: float
    replicated_footprint_gb: float

    @property
    def total_time(self) -> float:
        return self.report.total_time

    @property
    def scheduling_overhead_fraction(self) -> float:
        return self.report.overhead_fraction

    @property
    def memory_reduction_percent(self) -> float:
        """Footprint saving vs the replicated NDP layout (§VI-A: 57.8 %)."""
        if self.replicated_footprint_gb == 0:
            return 0.0
        return 100.0 * (
            1.0 - self.memory_footprint_gb / self.replicated_footprint_gb
        )

    def breakdown(self) -> dict[str, float]:
        return self.report.breakdown()


@dataclass(frozen=True)
class AdmissionResult:
    """What the admission controller did to one submitted batch.

    ``decisions`` covers *every submitted job* in submission order —
    including shed jobs, which never reach the simulator and therefore
    have no entry in the result's ``jobs``.  ``counted_indices`` maps
    into the *executed* jobs tuple: the positions whose latencies count
    toward the post-shed SLO percentiles (admitted jobs; deprioritized
    jobs execute but are excluded)."""

    policy: AdmissionPolicy
    decisions: tuple[AdmissionDecision, ...]
    counted_indices: tuple[int, ...]

    @property
    def n_submitted(self) -> int:
        return len(self.decisions)

    @property
    def admitted(self) -> int:
        """Jobs admitted inside the SLO window."""
        return sum(1 for d in self.decisions if d.admitted)

    @property
    def shed(self) -> int:
        """Jobs rejected outright (never simulated)."""
        return sum(
            1 for d in self.decisions if not d.admitted and not d.deferred
        )

    @property
    def deferred(self) -> int:
        """Jobs deprioritized: executed at a deferred release."""
        return sum(1 for d in self.decisions if d.deferred)

    @property
    def shed_rate(self) -> float:
        """Fraction of submitted jobs rejected outright."""
        if not self.decisions:
            return 0.0
        return self.shed / len(self.decisions)

    @property
    def shed_labels(self) -> tuple[str, ...]:
        """Labels of the shed jobs, in submission order (a batch may
        shed several jobs of the same size, so labels can repeat)."""
        return tuple(
            d.label for d in self.decisions if not d.admitted and not d.deferred
        )


@dataclass(frozen=True)
class NdftBatchResult:
    """A batch of jobs executed concurrently on one shared machine.

    When the batch ran as an open queue (``run_many(..., arrivals=...)``)
    the latency properties report completion latency — finish minus
    release — and queueing delay — latency minus the job's unloaded solo
    makespan; at t=0 they degrade to the closed-batch completion times.

    Under an admission policy (``run_many(..., admission=...)``)
    ``jobs``/``solo_times``/the latency properties cover the *executed*
    jobs only; :attr:`admission` records what happened to every
    submitted job, and the ``slo_*`` accessors give the post-shed
    percentiles (admitted jobs only — identical to ``p50``/``p99`` in
    ``shed`` mode, excluding deferred jobs in ``deprioritize`` mode).

    Degenerate batches (everything shed) degrade gracefully: empty
    latency tuples, 0.0 percentiles/means, 0.0 throughput — matching
    the executor's empty-report conventions rather than raising.
    """

    jobs: tuple[NdftRunResult, ...]
    batch_report: BatchExecutionReport
    #: What the same jobs cost run one at a time on a dedicated machine
    #: (the sum of standalone DES makespans).
    solo_times: tuple[float, ...]
    #: The admission controller's record (``None`` when admission was
    #: not requested).
    admission: AdmissionResult | None = None
    #: The resilience record under fault injection
    #: (``run_many(..., faults=...)``): every attempt of the final
    #: retry round, availability, goodput vs throughput, post-fault
    #: latency percentiles.  ``None`` when no fault plan was passed.
    resilience: ResilienceReport | None = None

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def arrivals(self) -> tuple[float, ...] | None:
        """Per-job release offsets, or ``None`` for the t=0 batch.
        Under ``deprioritize`` admission these are the *actual*
        (possibly deferred) releases the simulation used."""
        return self.batch_report.arrivals

    @property
    def completion_latencies(self) -> tuple[float, ...]:
        """Per-job completion minus release, in submission order."""
        return self.batch_report.completion_latencies

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th completion-latency percentile over the executed
        jobs; 0.0 for an empty (fully shed) batch."""
        latencies = self.completion_latencies
        if not latencies:
            return 0.0
        return percentile(latencies, q)

    @property
    def p50_latency(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p99_latency(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def slo_latencies(self) -> tuple[float, ...]:
        """Latencies of the jobs counted toward the SLO: everything
        executed when admission is off, the admitted subset under a
        policy (shed jobs never execute; deferred jobs are excluded)."""
        latencies = self.completion_latencies
        if self.admission is None:
            return latencies
        return tuple(latencies[i] for i in self.admission.counted_indices)

    def slo_latency_percentile(self, q: float) -> float:
        """Post-shed percentile over :attr:`slo_latencies` (0.0 when
        nothing was admitted)."""
        latencies = self.slo_latencies
        if not latencies:
            return 0.0
        return percentile(latencies, q)

    @property
    def slo_p50_latency(self) -> float:
        return self.slo_latency_percentile(50.0)

    @property
    def slo_p99_latency(self) -> float:
        return self.slo_latency_percentile(99.0)

    @property
    def queueing_delays(self) -> tuple[float, ...]:
        """How much longer each job took than it would have alone —
        time spent waiting for contended devices and wires."""
        return tuple(
            latency - solo
            for latency, solo in zip(self.completion_latencies, self.solo_times)
        )

    @property
    def mean_queueing_delay(self) -> float:
        """Average queueing delay; 0.0 for an empty (fully shed) batch,
        matching :attr:`throughput`'s degenerate convention."""
        delays = self.queueing_delays
        if not delays:
            return 0.0
        return sum(delays) / len(delays)

    @property
    def makespan(self) -> float:
        """Aggregate completion time of the whole batch."""
        return self.batch_report.makespan

    @property
    def busy_span(self) -> float:
        """First release to last completion (== makespan at t=0)."""
        return self.batch_report.busy_span

    @property
    def throughput(self) -> float:
        """Jobs per second of shared-machine time — the busy span, so
        an open queue's idle arrival ramp does not dilute the rate.
        For the t=0 batch the busy span *is* the makespan, so the
        closed-batch numbers are unchanged."""
        return self.batch_report.throughput

    @property
    def lane_busy_seconds(self) -> dict[str, float]:
        """Busy seconds per device/wire lane (see the executor's
        ``lane_occupancy``)."""
        return self.batch_report.lane_busy_seconds

    @property
    def lane_utilization(self) -> dict[str, float]:
        """Busy fraction per lane over the busy span — which device or
        wire the batch actually saturated."""
        return self.batch_report.lane_utilization

    @property
    def serial_time(self) -> float:
        """Back-to-back baseline: the sum of standalone single-job runs."""
        return sum(self.solo_times)

    @property
    def batching_speedup(self) -> float:
        """Busy-span advantage of sharing the machine across the batch.
        Computed over the busy span (first release to last completion)
        so an open queue's arrival ramp — idle time before the first
        job exists — does not count as shared-machine time; for the
        t=0 batch the busy span is the makespan and the speedup is
        unchanged."""
        span = self.busy_span
        if span <= 0:
            return 1.0
        return self.serial_time / span

    def job_completion_times(self) -> tuple[tuple[str, float], ...]:
        """Per-job ``(label, completion seconds)`` in submission order
        (completion includes queueing for shared devices).  A batch may
        contain several jobs of the same size, so labels can repeat."""
        return tuple(
            (result.problem.label, result.report.total_time)
            for result in self.jobs
        )


class NdftFramework:
    """NDFT on the Table III CPU-NDP system.

    ``enable_gpu=True`` additionally registers the discrete-GPU baseline
    machine as a third schedulable target, letting the cost-aware
    scheduler mix all three device kinds.  The default keeps the paper's
    two-sided system (and its published numbers) intact.
    """

    #: Default bound on every signature cache: ample for realistic size
    #: mixes, finite under adversarial variety (each entry is small, but
    #: a public service should not grow state per unique request).
    DEFAULT_CACHE_SIZE = 1024

    def __init__(
        self,
        system: SystemConfig | None = None,
        policy: SchedulingPolicy = SchedulingPolicy.COST_AWARE,
        enable_gpu: bool = False,
        memoize: bool = True,
        cache_size: int | None = DEFAULT_CACHE_SIZE,
    ):
        self.system = system or ndft_system_config()
        self.policy = policy
        #: Serving fast path: memoize pipelines/schedules/SCA/solo reports
        #: by content-addressed job signature.  ``False`` re-derives
        #: everything per job (the benchmark's uncached baseline).
        self.memoize = memoize
        #: LRU bound per cache (``None`` = unbounded).  Eviction is a
        #: capacity decision only: evicted entries are re-derived with
        #: identical values on the next miss.
        self.cache_size = cache_size
        self._pipeline_cache = LruCache(cache_size)
        self._schedule_cache = LruCache(cache_size)
        self._solo_report_cache = LruCache(cache_size)
        self._sca_cache = LruCache(cache_size)
        #: Minted signatures keyed by pipeline object identity (the value
        #: pins the pipeline so a recycled ``id`` can never alias): batch
        #: entries resolved through ``_pipeline_cache`` share one object,
        #: so duplicate jobs skip re-fingerprinting the registry per job.
        self._signature_cache = LruCache(cache_size)
        #: Warm-start index for the placement DP: structure signature ->
        #: {n_atoms: assignments}.  Consulted on schedule-cache misses to
        #: seed the branch-and-bound bound from the nearest same-shape
        #: size; never consulted for results.  Bounded like the caches
        #: (LRU over structures, FIFO cap on sizes per structure) so
        #: adversarial variety cannot grow it without limit.
        self._warm_start_index: LruCache = LruCache(cache_size)
        self._warm_start_hits = 0
        self._warm_start_misses = 0
        #: Memory footprints are pure functions of the size (and fixed
        #: NDP geometry) — computed once per distinct n_atoms, not per
        #: batch member; bounded for the same reason as the caches.
        self._footprint_cache: LruCache = LruCache(cache_size)
        #: Memoized ``(registry, cost model)`` fingerprint pair and the
        #: fault-lane catalog: pure functions of the target registry,
        #: recomputed only after ``register_target`` invalidates them
        #: (``None`` = not yet derived).  Unlike the LRU caches these are
        #: kept even under ``memoize=False`` — they are identity digests,
        #: not derived results, so staleness is the only hazard and
        #: ``clear_caches`` drops them with everything else.
        self._fingerprints: tuple[tuple, tuple] | None = None
        self._fault_lanes: tuple[str, ...] | None = None
        #: Jobs simulated per backend name across every ``run_many``
        #: call (see :attr:`backend_stats`).
        self._backend_jobs: dict[str, int] = {}
        #: Host wall seconds spent simulating per backend name across
        #: every ``run_many`` call (see :attr:`backend_stats`).
        self._backend_wall: dict[str, float] = {}
        #: Measured backend-selection table (persisted by the cache
        #: snapshots): routes each contention shard to the backend with
        #: the best observed wall-seconds-per-job in its size bucket.
        self._backend_tuner = BackendTuner()
        self.host = CpuModel(self.system.host)
        self.ndp = NdpSystemModel(self.system.ndp)
        self.gpu = GpuModel(gpu_baseline_config()) if enable_gpu else None
        # Offload handovers run at half the raw link rate: the releasing
        # side flushes dirty lines before the consuming side can pull
        # (flush + copy, serialized).
        cpu_ndp_link = HostLink(
            bandwidth=self.system.ndp.host_link_bandwidth / 2.0
        )
        device_links: dict[frozenset, HostLink] = {}
        if self.gpu is not None:
            # GPU boundaries ride PCIe, not the CPU<->NDP host link; an
            # NDP<->GPU handover stages through host memory, traversing
            # both wires in series.
            pcie = HostLink(
                bandwidth=self.gpu.config.aggregate_pcie_bandwidth,
                base_latency=1e-6,
            )
            device_links[frozenset({"cpu", "gpu"})] = pcie
            device_links[frozenset({"ndp", "gpu"})] = serial_links(
                cpu_ndp_link, pcie
            )
        self.cost_model = OffloadCostModel(
            host_link=cpu_ndp_link,
            context_switch=self.system.context_switch_overhead,
            device_links=device_links,
        )
        self.scheduler = CostAwareScheduler(
            host=self.host,
            ndp=self.ndp,
            cost_model=self.cost_model,
            gpu=self.gpu,
        )
        self.executor = PipelineExecutor(cost_model=self.cost_model)
        self.sca = StaticCodeAnalyzer(
            cpu_roofline=RooflineModel(
                name=self.system.host.name,
                peak_flops=self.system.host.peak_flops,
                peak_bandwidth=self.host.memory.effective_bandwidth(
                    AccessPattern.SEQUENTIAL
                ),
            ),
            ndp_roofline=RooflineModel(
                name=self.system.ndp.name,
                peak_flops=self.system.ndp.peak_flops,
                peak_bandwidth=self.system.ndp.aggregate_internal_bandwidth
                * 0.86,
            ),
        )

    @property
    def cache_stats(self) -> dict[str, int]:
        """Per-cache hit/miss/eviction counters plus placement-DP
        warm-start telemetry (observability for the serving benchmark
        and the memoization tests).  Counters survive cache clears."""
        stats: dict[str, int] = {}
        for kind, cache in (
            ("pipeline", self._pipeline_cache),
            ("schedule", self._schedule_cache),
            ("solo", self._solo_report_cache),
            ("sca", self._sca_cache),
            ("signature", self._signature_cache),
        ):
            stats[f"{kind}_hits"] = cache.hits
            stats[f"{kind}_misses"] = cache.misses
            stats[f"{kind}_evictions"] = cache.evictions
        stats["warm_start_hits"] = self._warm_start_hits
        stats["warm_start_misses"] = self._warm_start_misses
        return stats

    @property
    def backend_stats(self) -> dict[str, int | float]:
        """Per-backend observability across every ``run_many`` call —
        the ``cache_stats``-style counters for the executor's backend
        layer (:mod:`repro.core.backends`): jobs simulated under each
        registered backend's name, plus host wall seconds under
        ``"<name>_wall_seconds"``.  Every registered backend appears,
        zero-counted until used."""
        stats: dict[str, int | float] = {
            name: 0 for name in backend_names()
        }
        stats.update(self._backend_jobs)
        for name in backend_names():
            stats[f"{name}_wall_seconds"] = self._backend_wall.get(
                name, 0.0
            )
        return stats

    # ------------------------------------------------------------------
    # Target registry + caches
    # ------------------------------------------------------------------
    def register_target(
        self, placement: Placement, machine: ExecutionTarget
    ) -> None:
        """Add (or replace) an execution target and invalidate every
        memoized artifact: schedules, solo reports and built pipelines
        minted against the old registry must not survive it.

        Link pricing caveat: the cost model's per-pair ``device_links``
        are fixed at construction, so boundaries to a machine registered
        here are priced on the default CPU<->NDP host link unless the
        framework was built with the matching wires (e.g. a GPU should
        be enabled via ``NdftFramework(enable_gpu=True)``, which installs
        the PCIe and serial NDP<->GPU links, rather than registered after
        the fact)."""
        self.scheduler.register_target(placement, machine)
        self.clear_caches()

    def clear_caches(self) -> None:
        """Drop every memoized pipeline/schedule/SCA/solo-report entry,
        minted signature, warm-start placement, and the memoized
        registry/cost-model fingerprints and fault-lane catalog
        (hit/miss/eviction counters are preserved)."""
        self._pipeline_cache.clear()
        self._schedule_cache.clear()
        self._solo_report_cache.clear()
        self._sca_cache.clear()
        self._signature_cache.clear()
        self._warm_start_index.clear()
        self._footprint_cache.clear()
        self._fingerprints = None
        self._fault_lanes = None
        # Backend wall-time measurements were taken against the old
        # registry's shard shapes; re-explore rather than trust them.
        self._backend_tuner.clear()

    def fingerprints(self) -> tuple[tuple, tuple]:
        """The ``(registry, cost model)`` fingerprint pair every minted
        signature embeds, derived once per registry version instead of
        re-walking the target registry and link table per job
        (:meth:`register_target` invalidates via :meth:`clear_caches`)."""
        if self._fingerprints is None:
            self._fingerprints = (
                target_registry_fingerprint(self.scheduler),
                cost_model_fingerprint(self.cost_model),
            )
        return self._fingerprints

    # ------------------------------------------------------------------
    # Cache snapshots (serving deployments surviving process restarts)
    # ------------------------------------------------------------------
    #: Snapshot payload version; bumped whenever the persisted layout
    #: changes so stale files are refused instead of misread.
    CACHE_SNAPSHOT_FORMAT = 1


    def cache_fingerprint(self) -> tuple:
        """The identity the persisted caches are sound under: policy,
        the full :class:`~repro.hw.config.SystemConfig` (the machine
        parameters every stage time derives from — a
        :class:`~repro.core.signature.JobSignature` can omit them only
        because its registry fingerprint is process-local), the target
        registry, and the cost-model parameters.  Two frameworks with
        equal fingerprints provably derive identical schedules/reports
        for equal jobs, so loading one's snapshot into the other never
        changes results.

        Soundness caveat the snapshot paths enforce: the registry
        fingerprint stands in for machine identity with a *per-process*
        registration counter, which distinguishes nothing across a
        process boundary — two processes that each ``register_target`` a
        *different* machine under the same name would fingerprint equal.
        Within one process the constructor-built registries (the Table
        III system, ``enable_gpu=True``) are pure functions of the
        constructor arguments, so snapshots are only allowed while the
        registry is untouched (:meth:`save_caches`/:meth:`load_caches`
        refuse after any ``register_target``)."""
        registry_fp, cost_fp = self.fingerprints()
        return (self.policy, self.system, registry_fp, cost_fp)

    def _check_snapshot_registry(self, action: str) -> None:
        """Refuse snapshot traffic once ``register_target`` has run:
        custom-registered machine objects cannot be fingerprinted across
        processes, so persisted entries derived under them cannot be
        proven valid in another process."""
        if self.scheduler.registry_version != 0:
            raise ConfigError(
                f"cannot {action} a cache snapshot after register_target: "
                "custom-registered machines have no cross-process "
                "fingerprint, so snapshot soundness cannot be checked"
            )

    def _snapshot_caches(self) -> dict[str, LruCache]:
        """The caches a snapshot persists (save and load both iterate
        this one mapping): exactly the derivation work worth saving
        across processes — the placement DP, the SCA pass, the solo DES
        run, the warm-start index, the footprint closed forms.  The
        pipeline and signature caches stay out deliberately: their keys
        embed builder callables and object ids, which do not survive a
        process boundary, and rebuilding a pipeline is cheap."""
        return {
            "schedule": self._schedule_cache,
            "solo": self._solo_report_cache,
            "sca": self._sca_cache,
            "warm_start": self._warm_start_index,
            "footprint": self._footprint_cache,
        }

    def save_caches(self, path: Path | str) -> Path:
        """Snapshot the signature-keyed caches to ``path`` so a restarted
        serving process can :meth:`load_caches` instead of re-deriving
        its working set cold.  The snapshot embeds
        :meth:`cache_fingerprint`; loading refuses a mismatch."""
        self._check_snapshot_registry("save")
        payload = {
            "format": self.CACHE_SNAPSHOT_FORMAT,
            "fingerprint": self.cache_fingerprint(),
            "caches": {
                name: cache.items()
                for name, cache in self._snapshot_caches().items()
            },
            # Optional since its introduction: absent in older
            # snapshots (skipped on load), ignored by older loaders —
            # either direction stays compatible without a format bump.
            "backend_tuner": self._backend_tuner.snapshot(),
        }
        path = Path(path)
        with path.open("wb") as handle:
            pickle.dump(payload, handle)
        return path

    def load_caches(self, path: Path | str) -> int:
        """Merge a :meth:`save_caches` snapshot into this framework's
        caches and return the number of entries loaded.

        Soundness gate: the snapshot's fingerprint (policy + target
        registry + cost model) must equal this framework's — memoized
        schedules and reports are only valid under the exact machine
        parameters they were derived with, so a mismatch raises
        :class:`~repro.errors.ConfigError` rather than serving stale
        numbers.  Entries land via normal puts (LRU bounds and eviction
        counters apply); signature-keyed entries under equal keys are
        overwritten with provably identical values, while warm-start
        index entries — whose per-structure size maps are workload-
        history-dependent — are *merged*, snapshot sizes under already-
        known ones, so locally learned hints survive the load.

        Trust caveat: the snapshot is a pickle, deserialized *before*
        the format/fingerprint checks can reject it — loading executes
        whatever the file encodes, so only load snapshots written by a
        process you trust (the intended use: this service's own
        :meth:`save_caches` output on local disk).  A truncated or
        corrupt file (half-written snapshot, disk error) raises
        :class:`~repro.errors.ConfigError` like every other rejected
        snapshot, never a raw ``EOFError``/``UnpicklingError``."""
        payload = self._read_snapshot(path, "load")
        loaded = 0
        for name, cache in self._snapshot_caches().items():
            for key, value in payload["caches"].get(name, ()):
                if name == "warm_start":
                    existing = cache.peek(key)
                    if existing is not None:
                        existing.update(
                            (size, placements)
                            for size, placements in value.items()
                            if size not in existing
                        )
                    else:
                        existing = dict(value)
                        cache.put(key, existing)
                    # Re-apply _remember_placement's per-structure FIFO
                    # cap: a snapshot from a roomier framework must not
                    # grow a bounded one's index past its own bound.
                    if self.cache_size is not None:
                        while len(existing) > self.cache_size:
                            del existing[next(iter(existing))]
                    loaded += 1
                    continue
                cache.put(key, value)
                loaded += 1
        # Measured backend-selection rows ride the same soundness gate:
        # wall-per-job measurements only transfer between equal
        # fingerprints (same machine parameters => same shard shapes).
        loaded += self._backend_tuner.merge(
            payload.get("backend_tuner", ())
        )
        return loaded

    def _read_snapshot(self, path: Path | str, action: str) -> dict:
        """Read and vet a :meth:`save_caches` payload: registry still
        pristine, readable pickle, known format, matching
        :meth:`cache_fingerprint`.  Shared by :meth:`load_caches` and
        :meth:`merge_caches` so both enforce identical refusal rules."""
        self._check_snapshot_registry(action)
        path = Path(path)
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except (EOFError, pickle.UnpicklingError, AttributeError) as exc:
            raise ConfigError(
                f"{path} is not a readable cache snapshot (truncated or "
                f"corrupt pickle: {exc})"
            ) from exc
        if (
            not isinstance(payload, dict)
            or payload.get("format") != self.CACHE_SNAPSHOT_FORMAT
        ):
            raise ConfigError(
                f"{path} is not a cache snapshot this version understands "
                f"(expected format {self.CACHE_SNAPSHOT_FORMAT})"
            )
        fingerprint = self.cache_fingerprint()
        if payload.get("fingerprint") != fingerprint:
            raise ConfigError(
                "refusing cache snapshot: it was taken under a different "
                "policy/target-registry/cost-model fingerprint "
                f"({payload.get('fingerprint')!r} vs {fingerprint!r}); "
                "re-derive instead of serving stale schedules"
            )
        return payload

    def merge_caches(self, path: Path | str) -> int:
        """Fleet merge-back: union a worker's snapshot into this
        framework's caches, counting only *never-seen* entries.

        :meth:`load_caches` is the warm-start direction (overwrite-equal
        semantics are fine because equal keys prove equal values); this
        is the reverse direction — a fleet parent folding what each
        worker replica learned back into the shared snapshot — and it
        must be *idempotent*: a worker's snapshot contains everything
        the parent shipped plus whatever the worker derived, so the
        parent skips keys it already holds, adds only the novel
        schedules/solo/SCA/footprint entries and warm-start sizes, and
        unions only backend-tuner cells it has no measurement for
        (:meth:`~repro.core.executor.BackendTuner.union` — the additive
        :meth:`~repro.core.executor.BackendTuner.merge` would
        double-count wall seconds on a second pass).  Merging the same
        snapshot twice therefore reports 0 new entries the second time
        (up to LRU capacity pressure).  The same refusal rules as
        loading apply: format, fingerprint, pristine registry."""
        payload = self._read_snapshot(path, "merge")
        merged = 0
        for name, cache in self._snapshot_caches().items():
            for key, value in payload["caches"].get(name, ()):
                if name == "warm_start":
                    existing = cache.peek(key)
                    if existing is None:
                        existing = {}
                        cache.put(key, existing)
                    for size, placements in value.items():
                        if size in existing:
                            continue
                        if (
                            self.cache_size is not None
                            and len(existing) >= self.cache_size
                        ):
                            break  # respect the per-structure FIFO cap
                        existing[size] = placements
                        merged += 1
                    continue
                if key in cache:
                    continue
                cache.put(key, value)
                merged += 1
        merged += self._backend_tuner.union(payload.get("backend_tuner", ()))
        return merged

    def job_signature(self, pipeline: Pipeline) -> JobSignature:
        """The content-addressed key this framework memoizes ``pipeline``
        under (problem + structure + policy + targets + cost model).

        Minting reuses the framework's memoized :meth:`fingerprints`
        (derived once per registry version), and with memoization on the
        signature itself is cached by pipeline object identity (entries
        resolved through the pipeline cache share one object); the
        cached pipeline is pinned in the value, so a recycled ``id``
        cannot alias, and registry changes clear the cache through
        :meth:`register_target`."""
        registry_fp, cost_fp = self.fingerprints()
        if not self.memoize:
            return job_signature(
                pipeline,
                self.policy,
                self.scheduler,
                self.cost_model,
                registry_fp=registry_fp,
                cost_fp=cost_fp,
            )
        entry = self._signature_cache.get(id(pipeline))
        if entry is not None and entry[0] is pipeline:
            return entry[1]
        signature = job_signature(
            pipeline,
            self.policy,
            self.scheduler,
            self.cost_model,
            registry_fp=registry_fp,
            cost_fp=cost_fp,
        )
        self._signature_cache.put(id(pipeline), (pipeline, signature))
        return signature

    # ------------------------------------------------------------------
    # Single job
    # ------------------------------------------------------------------
    def run(
        self,
        n_atoms: int | None = None,
        problem: ProblemSize | None = None,
        pipeline: Pipeline | None = None,
    ) -> NdftRunResult:
        """Schedule + execute LR-TDDFT for Si_{n_atoms} on the CPU-NDP
        system and account its memory."""
        problem, pipeline = self._resolve_job(n_atoms, problem, pipeline)
        signature = self.job_signature(pipeline) if self.memoize else None
        schedule = self._schedule_for(pipeline, signature)
        report = self._solo_report(pipeline, schedule, signature)
        return self._run_result(problem, pipeline, schedule, report)

    # ------------------------------------------------------------------
    # Batched jobs
    # ------------------------------------------------------------------
    def fault_lanes(self) -> tuple[str, ...]:
        """Every lane name the configured system exposes to fault plans:
        one device lane per registered scheduler target plus the
        pairwise ``link:a-b`` wire lanes the executor creates between
        them.  A fault window on any other lane name can never fire —
        the CLI validates ``--fault-lanes`` against this set.  Memoized
        per registry version (:meth:`register_target` invalidates), so
        per-call validation in serving loops costs a tuple fetch."""
        if self._fault_lanes is None:
            targets = sorted(self.scheduler.targets, key=lambda p: p.value)
            lanes = [p.value for p in targets]
            for i, a in enumerate(targets):
                for b in targets[i + 1 :]:
                    lanes.append(
                        "link:" + "-".join(sorted((a.value, b.value)))
                    )
            self._fault_lanes = tuple(sorted(lanes))
        return self._fault_lanes

    def run_many(
        self,
        batch: Sequence[int | ProblemSize | Pipeline],
        pipeline_builder: Callable[[ProblemSize], Pipeline] | None = None,
        arrivals: Sequence[float] | None = None,
        coalesce: bool = True,
        shard: bool = True,
        backend: str | None = None,
        admission: AdmissionPolicy | None = None,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
    ) -> NdftBatchResult:
        """Schedule and execute a batch of heterogeneous jobs through one
        shared machine.

        ``batch`` entries may be atom counts, :class:`ProblemSize` records
        or prebuilt pipelines (mixed freely).  Every job is scheduled
        independently under the framework policy, then all jobs execute
        concurrently on the shared device/link resources, so jobs whose
        placements use different devices at different times genuinely
        overlap.  ``pipeline_builder`` overrides the Fig. 1 chain for
        entries given as sizes (e.g. ``build_kpoint_pipeline``).

        ``arrivals`` releases job ``i`` at virtual-time offset
        ``arrivals[i]`` instead of t=0 — the open-queue serving model
        (see :func:`repro.core.arrivals.poisson_arrivals` for the
        standard generator); the result then reports completion-latency
        percentiles and queueing delays.

        With memoization on (the default), duplicate jobs in the batch
        are deduplicated through the signature caches: each distinct
        signature is built, scheduled, analyzed and solo-timed once, and
        only the shared-machine simulation sees every submitted job.
        ``coalesce``/``shard`` control the executor's scale-out fast
        path (signature-coalesced super-jobs, contention-sharded
        engines); ``backend`` forces one named simulation backend for
        every shard (:mod:`repro.core.backends`; by default the
        framework's measured :class:`~repro.core.executor.BackendTuner`
        routes each shard to the backend with the best observed wall
        time for its size bucket, exploring unmeasured ones first).
        Results are bit-identical whichever backend simulates — every
        run, forced or routed, also feeds its wall time back into the
        tuner table.

        ``admission`` applies an SLO-driven
        :class:`~repro.core.arrivals.AdmissionPolicy` to the open queue
        (it requires ``arrivals``): each arrival's completion is
        predicted from its memoized solo-time estimate plus the current
        backlog on its placement's lanes, violators are shed (never
        simulated) or deprioritized (released after the predicted
        drain), and the result's :attr:`NdftBatchResult.admission`
        records every decision.  The plan is deterministic — the same
        arrivals and policy always shed the same set.

        ``faults`` injects a deterministic
        :class:`~repro.core.faults.FaultPlan`; ``retry`` (default
        :class:`~repro.core.faults.RetryPolicy`) governs recovery: a job
        killed by a lane outage re-enters the open queue at its
        backoff-delayed release, and jobs whose base placement touches a
        *permanently* dead lane are re-placed through the exact DP with
        the dead target excluded (graceful degradation, e.g. NDP→CPU).
        The result's ``jobs``/latency properties then cover the jobs
        that eventually completed, and :attr:`NdftBatchResult.resilience`
        records every attempt, availability, goodput vs throughput, and
        post-fault latency percentiles.  Plans may also carry correlated
        shock outages (:func:`~repro.core.faults.shock_fault_plan`) and
        non-lethal :class:`~repro.core.faults.SlowdownWindow` degradation
        (service times inflate piecewise, jobs survive), and
        ``RetryPolicy(checkpoint=True)`` turns retries into resumes:
        the failed run's completed-stage frontier re-enters as the
        residual suffix pipeline, and the report surfaces
        ``resumed_stages``/``work_saved_seconds``.  An *empty* plan is
        bit-identical to no plan across every backend.
        """
        if not batch:
            raise ConfigError("run_many needs at least one job")
        if retry is not None and faults is None:
            raise ConfigError(
                "retry= only makes sense under fault injection: pass "
                "faults= (a FaultPlan) alongside it"
            )
        builder = pipeline_builder or build_pipeline
        jobs = self._resolve_batch(batch, builder)

        # Solo (dedicated-machine) makespans first: the admission
        # controller's completion estimates need them, and they are
        # pure per-signature derivations — computing them before or
        # after the shared simulation changes nothing.
        solo_times = tuple(
            self._solo_report(pipeline, schedule, signature).total_time
            for _p, pipeline, schedule, signature in jobs
        )
        admission_result = None
        if admission is not None:
            jobs, arrivals, solo_times, admission_result = self._admit(
                admission, jobs, arrivals, solo_times
            )
            if not jobs:  # everything shed: nothing to simulate
                return NdftBatchResult(
                    jobs=(),
                    batch_report=BatchExecutionReport(
                        job_reports=(),
                        makespan=0.0,
                        arrivals=(),
                        n_shards=0,
                        n_superjobs=0,
                    ),
                    solo_times=(),
                    admission=admission_result,
                    resilience=(
                        None
                        if faults is None
                        else ResilienceReport(
                            plan=faults, retry=retry or RetryPolicy()
                        )
                    ),
                )

        if faults is not None:
            return self._run_resilient(
                jobs,
                arrivals,
                solo_times,
                faults,
                retry or RetryPolicy(),
                coalesce,
                shard,
                backend,
                admission_result,
            )

        batch_report = self.executor.execute_many(
            [(pipeline, schedule) for _p, pipeline, schedule, _s in jobs],
            arrivals=arrivals,
            coalesce=coalesce,
            shard=shard,
            backend=backend,
            tuner=self._backend_tuner,
        )
        for name, count in batch_report.backend_jobs.items():
            self._backend_jobs[name] = self._backend_jobs.get(name, 0) + count
        for name, wall in batch_report.backend_wall_seconds.items():
            self._backend_wall[name] = (
                self._backend_wall.get(name, 0.0) + wall
            )
        results = tuple(
            self._run_result(problem, pipeline, schedule, report)
            for (problem, pipeline, schedule, _s), report in zip(
                jobs, batch_report.job_reports
            )
        )
        return NdftBatchResult(
            jobs=results,
            batch_report=batch_report,
            solo_times=solo_times,
            admission=admission_result,
        )

    def _resolve_batch(
        self,
        batch: Sequence[int | ProblemSize | Pipeline],
        builder: Callable[[ProblemSize], Pipeline],
    ) -> list[tuple[ProblemSize, Pipeline, Schedule, JobSignature | None]]:
        """Resolve batch entries (atom counts, problems, pipelines) into
        scheduled jobs, deduplicating through the signature caches when
        memoization is on.  Shared by :meth:`run_many` and
        :meth:`job_estimates` so both see identical jobs."""
        problems: dict[int, ProblemSize] = {}
        jobs: list[
            tuple[ProblemSize, Pipeline, Schedule, JobSignature | None]
        ] = []
        for entry in batch:
            if isinstance(entry, Pipeline):
                problem, pipeline = entry.problem, entry
            elif isinstance(entry, ProblemSize):
                problem, pipeline = entry, self._build_pipeline(entry, builder)
            else:
                problem = problems.get(entry) if self.memoize else None
                if problem is None:
                    problem = problem_size(entry)
                    problems[entry] = problem
                pipeline = self._build_pipeline(problem, builder)
            signature = self.job_signature(pipeline) if self.memoize else None
            schedule = self._schedule_for(pipeline, signature)
            jobs.append((problem, pipeline, schedule, signature))
        return jobs

    def job_estimates(
        self,
        batch: Sequence[int | ProblemSize | Pipeline],
        pipeline_builder: Callable[[ProblemSize], Pipeline] | None = None,
    ) -> tuple[tuple[float, ...], tuple[tuple, ...]]:
        """Per-job ``(solo_times, lanes)`` — the memoized backlog-model
        inputs :func:`~repro.core.arrivals.plan_admission` consumes:
        each job's dedicated-machine DES makespan and the device/wire
        lane names its placement occupies.  The admission controller
        and the fleet router (:mod:`repro.fleet`) share exactly these
        estimates, so routing and shedding predict with one model, and
        every derivation rides the ordinary signature caches (a size
        seen before costs a lookup)."""
        if not batch:
            raise ConfigError("job_estimates needs at least one job")
        builder = pipeline_builder or build_pipeline
        jobs = self._resolve_batch(batch, builder)
        solo_times = tuple(
            self._solo_report(pipeline, schedule, signature).total_time
            for _p, pipeline, schedule, signature in jobs
        )
        lanes = tuple(
            PipelineExecutor.schedule_lanes(schedule)
            for _p, _pipe, schedule, _s in jobs
        )
        return solo_times, lanes

    def _run_resilient(
        self,
        jobs: list,
        arrivals: Sequence[float] | None,
        solo_times: tuple[float, ...],
        faults: FaultPlan,
        retry: RetryPolicy,
        coalesce: bool,
        shard: bool,
        backend: str | None,
        admission_result,
    ) -> NdftBatchResult:
        """The fault-injected serving loop: simulate, retry, re-place.

        Runs rounds of the full shared-machine simulation to a fixpoint:
        each round's *run list* is the base submission plus, for every
        run the fault plan killed, its retry released at
        ``fail_time + backoff(attempt)`` (while attempts and the per-job
        timeout allow).  Because a retry always releases strictly after
        the failure that caused it, and failures only happen at the
        plan's fault-event instants, the run list stabilizes after at
        most one round per (event, attempt) pair — the final round *is*
        the consistent execution, and everything reported comes from it.

        Runs released at-or-after a lane's permanent death whose base
        placement touches the dead target are re-placed through the
        exact DP with every dead-at-release target excluded
        (:meth:`_schedule_for` with ``exclude=``), reusing the degraded
        schedule across runs via the composite cache keys.

        Under ``retry.checkpoint`` a failed run's completed-stage
        frontier rides along with its retry, which re-enters as the
        *residual* pipeline (:meth:`Pipeline.residual`): the suffix past
        the frontier, scheduled through the same exact DP under its own
        content-derived signature, so residual and full schedules
        coexist in every cache.  Frontiers accumulate across attempts,
        and each resumed attempt's skipped work — valued at the base
        schedule's stage times — surfaces as
        :attr:`ResilienceReport.work_saved_seconds`.
        """
        n = len(jobs)
        releases0 = (
            [0.0] * n if arrivals is None else [float(a) for a in arrivals]
        )
        dead_at: dict[Placement, float] = {}
        for lane, death in faults.dead_lanes().items():
            try:
                placement = Placement(lane)
            except ValueError as exc:
                raise ConfigError(
                    f"permanent failure on {lane!r} does not name a known "
                    f"device lane"
                ) from exc
            dead_at[placement] = death

        # Residual (pipeline, signature, schedule) per checkpoint
        # frontier, built once per (job, frontier) within this call; the
        # residual's schedule and solo numbers persist across calls via
        # the ordinary content-derived signature caches.
        residuals: dict[tuple[int, tuple[str, ...]], tuple] = {}

        def resolve_run(job_index: int, release: float, frontier: tuple):
            """The (pipeline, signature, schedule, exclusion, degraded?,
            work_saved) for one run.  A non-empty ``frontier`` swaps in
            the residual pipeline past the checkpointed stages; dead-at-
            release targets are excluded iff the run's placement touches
            one (a placement clear of every dead lane cannot suffer a
            permanent failure, so re-solving would change nothing)."""
            _problem, pipeline, schedule, signature = jobs[job_index]
            work_saved = 0.0
            if frontier:
                base_times = schedule.stage_times
                work_saved = sum(
                    base_times[name].total for name in frontier
                )
                key = (job_index, frontier)
                cached = residuals.get(key)
                if cached is None:
                    residual = pipeline.residual(frontier)
                    r_signature = (
                        self.job_signature(residual) if self.memoize else None
                    )
                    cached = (
                        residual,
                        r_signature,
                        self._schedule_for(residual, r_signature),
                    )
                    residuals[key] = cached
                pipeline, signature, schedule = cached
            excl = frozenset(
                p for p, death in dead_at.items() if death <= release
            )
            if not excl or not (excl & set(schedule.assignments.values())):
                return pipeline, signature, schedule, frozenset(), False, work_saved
            degraded = self._schedule_for(pipeline, signature, exclude=excl)
            return pipeline, signature, degraded, excl, True, work_saved

        base_runs = [(i, 1, releases0[i], ()) for i in range(n)]
        runs = base_runs
        max_rounds = (len(faults.event_times()) + 1) * retry.max_attempts + 2
        report = None
        run_meta: list = []
        failed_runs: dict[int, object] = {}
        for _round in range(max_rounds):
            sim_jobs = []
            run_meta = []
            for job_index, _attempt, release, frontier in runs:
                resolved = resolve_run(job_index, release, frontier)
                sim_jobs.append((resolved[0], resolved[2]))
                run_meta.append(resolved)
            # The base round of a closed batch must be the exact no-plan
            # submission (arrivals=None, not explicit zeros): the empty-
            # plan bit-identity contract covers the event stream, and a
            # zero release still costs a timeout event.
            sim_arrivals = (
                None
                if arrivals is None and runs == base_runs
                else [release for _job, _attempt, release, _f in runs]
            )
            report = self.executor.execute_many(
                sim_jobs,
                arrivals=sim_arrivals,
                coalesce=coalesce,
                shard=shard,
                backend=backend,
                tuner=self._backend_tuner,
                faults=faults,
            )
            failed_runs = {failure.job: failure for failure in report.failures}
            new_runs = list(base_runs)
            for position, (job_index, attempt, _release, frontier) in enumerate(
                runs
            ):
                failure = failed_runs.get(position)
                if failure is None:
                    continue
                next_attempt = attempt + 1
                if next_attempt > retry.max_attempts:
                    continue
                next_release = failure.time + retry.backoff(attempt)
                if (
                    retry.job_timeout is not None
                    and next_release - releases0[job_index]
                    > retry.job_timeout
                ):
                    continue
                next_frontier = frontier
                if retry.checkpoint and failure.completed_stages:
                    # The frontier accumulates: stages the residual run
                    # completed join the stages earlier attempts banked.
                    next_frontier = tuple(
                        sorted(set(frontier) | set(failure.completed_stages))
                    )
                new_runs.append(
                    (job_index, next_attempt, next_release, next_frontier)
                )
            if new_runs == runs:
                break
            runs = new_runs
        else:  # pragma: no cover - the per-(event, attempt) bound holds
            raise ConfigError(
                "fault retry loop did not reach a fixpoint within "
                f"{max_rounds} rounds"
            )

        for name, count in report.backend_jobs.items():
            self._backend_jobs[name] = self._backend_jobs.get(name, 0) + count
        for name, wall in report.backend_wall_seconds.items():
            self._backend_wall[name] = self._backend_wall.get(name, 0.0) + wall

        # Outcomes: each job has at most one non-failed run (its last
        # attempt); every run of the converged round becomes an
        # AttemptRecord.
        completed: dict[int, int] = {}
        records = []
        for position, (job_index, attempt, release, frontier) in enumerate(
            runs
        ):
            failure = failed_runs.get(position)
            degraded = run_meta[position][4]
            work_saved = run_meta[position][5]
            if failure is None:
                completed[job_index] = position
            records.append(
                AttemptRecord(
                    job_index=job_index,
                    attempt=attempt,
                    release=release,
                    completed=failure is None,
                    failure_time=None if failure is None else failure.time,
                    failure_lane=None if failure is None else failure.lane,
                    failure_kind=None if failure is None else failure.kind,
                    degraded=degraded,
                    frontier=frontier,
                    work_saved=work_saved,
                )
            )
        abandoned = tuple(
            job_index for job_index in range(n) if job_index not in completed
        )
        end_to_end: list[float | None] = []
        for job_index in range(n):
            position = completed.get(job_index)
            if position is None:
                end_to_end.append(None)
            else:
                end_to_end.append(
                    report.job_reports[position].total_time
                    - releases0[job_index]
                )
        resilience = ResilienceReport(
            plan=faults,
            retry=retry,
            attempts=tuple(records),
            submitted=n,
            abandoned_jobs=abandoned,
            end_to_end_latencies=tuple(end_to_end),
            busy_span=report.busy_span,
        )

        # The surfaced batch covers the jobs that completed, in
        # submission order, with their *final-attempt* releases — the
        # convention deprioritized admission set (latencies count from
        # the release the simulation actually used; end-to-end latency
        # from the original arrival lives on the resilience report).
        kept = sorted(completed)
        kept_reports = tuple(report.job_reports[completed[i]] for i in kept)
        kept_releases = tuple(runs[completed[i]][2] for i in kept)
        out_arrivals = (
            None
            if arrivals is None and runs == base_runs
            else kept_releases
        )
        batch_report = BatchExecutionReport(
            job_reports=kept_reports,
            makespan=report.makespan,
            arrivals=out_arrivals,
            n_shards=report.n_shards,
            n_superjobs=report.n_superjobs,
            backend_jobs=report.backend_jobs,
            lane_occupancy=report.lane_occupancy,
            backend_timings=report.backend_timings,
            failures=report.failures,
        )
        results = []
        kept_solo = []
        for job_index in kept:
            position = completed[job_index]
            problem = jobs[job_index][0]
            pipeline, signature, schedule, excl, degraded, _saved = run_meta[
                position
            ]
            resumed = pipeline is not jobs[job_index][1]
            if degraded or resumed:
                excl_key = tuple(sorted(p.value for p in excl))
                solo_key = (
                    None if signature is None else (signature, excl_key)
                )
                solo = self._solo_report(
                    pipeline, schedule, signature, cache_key=solo_key
                ).total_time
            else:
                solo = solo_times[job_index]
            kept_solo.append(solo)
            results.append(
                self._run_result(
                    problem, pipeline, schedule, report.job_reports[position]
                )
            )
        if admission_result is not None and abandoned:
            # Abandoned jobs shift the surviving jobs' positions; the
            # admitted-only percentile indices must follow them.
            remap = {job_index: new for new, job_index in enumerate(kept)}
            admission_result = replace(
                admission_result,
                counted_indices=tuple(
                    remap[i]
                    for i in admission_result.counted_indices
                    if i in remap
                ),
            )
        return NdftBatchResult(
            jobs=tuple(results),
            batch_report=batch_report,
            solo_times=tuple(kept_solo),
            admission=admission_result,
            resilience=resilience,
        )

    def _admit(
        self,
        admission: AdmissionPolicy,
        jobs: list,
        arrivals: Sequence[float] | None,
        solo_times: tuple[float, ...],
    ) -> tuple[list, list[float], tuple[float, ...], AdmissionResult]:
        """Run the admission controller over a resolved batch and
        return the executed subset: jobs, (possibly deferred) releases,
        solo times, and the full decision record."""
        if arrivals is None:
            raise ConfigError(
                "admission control acts on an open queue: pass arrivals= "
                "(e.g. poisson_arrivals) alongside admission="
            )
        arrivals = [float(offset) for offset in arrivals]
        if len(arrivals) != len(jobs):
            raise ConfigError(
                f"{len(jobs)} jobs but {len(arrivals)} arrival offsets"
            )
        decisions = plan_admission(
            admission,
            arrivals,
            solo_times,
            [
                PipelineExecutor.schedule_lanes(schedule)
                for _p, _pipe, schedule, _s in jobs
            ],
            [problem.label for problem, _pipe, _s, _sig in jobs],
        )
        executed = [
            i
            for i, decision in enumerate(decisions)
            if decision.admitted or decision.deferred
        ]
        counted = tuple(
            position
            for position, i in enumerate(executed)
            if decisions[i].admitted
        )
        admission_result = AdmissionResult(
            policy=admission,
            decisions=decisions,
            counted_indices=counted,
        )
        return (
            [jobs[i] for i in executed],
            [decisions[i].release for i in executed],
            tuple(solo_times[i] for i in executed),
            admission_result,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve_job(
        self,
        n_atoms: int | None,
        problem: ProblemSize | None,
        pipeline: Pipeline | None,
    ) -> tuple[ProblemSize, Pipeline]:
        if problem is None:
            if pipeline is not None:
                problem = pipeline.problem
            elif n_atoms is not None:
                problem = problem_size(n_atoms)
            else:
                raise ConfigError("pass n_atoms, problem or pipeline")
        return problem, pipeline or self._build_pipeline(problem, build_pipeline)

    def _build_pipeline(
        self,
        problem: ProblemSize,
        builder: Callable[[ProblemSize], Pipeline],
    ) -> Pipeline:
        """Build (or reuse) the pipeline for one problem/builder pair.
        Sharing the built object also shares its cached structural hash,
        so duplicate batch entries hash once."""
        if not self.memoize:
            return builder(problem)
        key = (problem, builder)
        pipeline = self._pipeline_cache.get(key)
        if pipeline is None:
            pipeline = builder(problem)
            self._pipeline_cache.put(key, pipeline)
        return pipeline

    def _schedule_for(
        self,
        pipeline: Pipeline,
        signature: JobSignature | None,
        exclude: frozenset[Placement] | None = None,
    ) -> Schedule:
        """Schedule (or fetch the memoized schedule of) one job.

        ``exclude`` is the degraded-placement path after a permanent
        lane failure: the exact DP re-solves over the surviving targets,
        and both the schedule cache and the warm-start index key the
        exclusion set alongside the signature/structure — a degraded
        schedule must never shadow (or be shadowed by) the healthy one.
        """
        excl = frozenset(exclude) if exclude else frozenset()
        if signature is None:
            return self.scheduler.schedule(
                pipeline, self.policy, exclude=excl or None
            )
        excl_key = tuple(sorted(p.value for p in excl))
        cache_key = signature if not excl else (signature, excl_key)
        schedule = self._schedule_cache.get(cache_key)
        if schedule is None:
            structure_key = None
            if self.policy is SchedulingPolicy.COST_AWARE:
                registry_fp, cost_fp = self.fingerprints()
                structure_key = structure_signature(
                    pipeline,
                    self.policy,
                    self.scheduler,
                    self.cost_model,
                    registry_fp=registry_fp,
                    cost_fp=cost_fp,
                )
                if excl:
                    structure_key = (structure_key, excl_key)
            schedule = self.scheduler.schedule(
                pipeline,
                self.policy,
                warm_start=self._warm_start_hint(pipeline, structure_key),
                exclude=excl or None,
            )
            self._schedule_cache.put(cache_key, schedule)
            self._remember_placement(pipeline, schedule, structure_key)
        return schedule

    def _warm_start_hint(
        self, pipeline: Pipeline, structure_key: tuple | None
    ) -> dict[str, Placement] | None:
        """The cached placement of the nearest same-structure size, as a
        branch-and-bound seed for the placement DP.  A hint only prunes
        provably suboptimal DP states, so the returned schedule is
        bit-identical to a cold search — stale or mismatched hints cost
        nothing but the lookup."""
        if structure_key is None:
            return None
        neighbors = self._warm_start_index.get(structure_key)
        if not neighbors:
            self._warm_start_misses += 1
            return None
        n_atoms = pipeline.problem.n_atoms
        nearest = min(neighbors, key=lambda size: (abs(size - n_atoms), size))
        # Placements are stored name-free (topological order), so a
        # same-shape pipeline with different stage names rehydrates to
        # its own names here.
        hint = CostAwareScheduler.rehydrate_placements(
            pipeline, neighbors[nearest]
        )
        if hint is None:
            self._warm_start_misses += 1
            return None
        self._warm_start_hits += 1
        return hint

    def _remember_placement(
        self,
        pipeline: Pipeline,
        schedule: Schedule,
        structure_key: tuple | None,
    ) -> None:
        """Index a freshly-computed placement for future warm starts."""
        if structure_key is None:
            return
        key = structure_key
        neighbors = self._warm_start_index.peek(key)
        if neighbors is None:
            neighbors = {}
            self._warm_start_index.put(key, neighbors)
        neighbors[pipeline.problem.n_atoms] = (
            CostAwareScheduler.normalize_placements(
                pipeline, schedule.assignments
            )
        )
        # FIFO cap on sizes per structure: hints are a heuristic, so
        # dropping the oldest size costs at most a colder search.
        if self.cache_size is not None and len(neighbors) > self.cache_size:
            del neighbors[next(iter(neighbors))]

    def _solo_report(
        self,
        pipeline: Pipeline,
        schedule: Schedule,
        signature: JobSignature | None,
        cache_key=None,
    ) -> ExecutionReport:
        """The job's standalone (dedicated-machine) DES report.

        ``cache_key`` overrides the cache key (default: the signature)
        — the degraded-placement path keys solo reports by
        ``(signature, exclusion)`` so they never collide with the
        healthy schedule's numbers."""
        if signature is None:
            return self.executor.execute(pipeline, schedule)
        key = signature if cache_key is None else cache_key
        report = self._solo_report_cache.get(key)
        if report is None:
            report = self.executor.execute(pipeline, schedule)
            self._solo_report_cache.put(key, report)
        return report

    def _sca_reports(self, pipeline: Pipeline) -> dict[str, ScaReport]:
        """SCA verdicts for every stage function.  Keyed by structural
        hash alone: the analyzer sees only the pipeline and the rooflines
        fixed at construction, never the target registry."""
        if not self.memoize:
            return self.sca.analyze_all(
                [stage.function for stage in pipeline.stages]
            )
        key = pipeline.structural_hash
        reports = self._sca_cache.get(key)
        if reports is None:
            reports = self.sca.analyze_all(
                [stage.function for stage in pipeline.stages]
            )
            self._sca_cache.put(key, reports)
        return reports

    def _run_result(
        self,
        problem: ProblemSize,
        pipeline: Pipeline,
        schedule: Schedule,
        report: ExecutionReport,
    ) -> NdftRunResult:
        sca_reports = self._sca_reports(pipeline)
        footprints = None
        if self.memoize:
            footprints = self._footprint_cache.get(problem.n_atoms)
        if footprints is None:
            footprints = (
                footprint_ndft(problem.n_atoms, NDP_RANKS, NDP_STACKS),
                footprint_replicated(problem.n_atoms, NDP_RANKS),
            )
            if self.memoize:
                self._footprint_cache.put(problem.n_atoms, footprints)
        return NdftRunResult(
            problem=problem,
            schedule=schedule,
            report=report,
            sca_reports=sca_reports,
            memory_footprint_gb=footprints[0],
            replicated_footprint_gb=footprints[1],
        )
