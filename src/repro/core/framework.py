"""The end-to-end NDFT framework (the paper's headline system).

:class:`NdftFramework` wires everything together for one Si_N problem:

1. build the LR-TDDFT pipeline (the Fig. 1 chain by default, any DAG on
   request) and its function IR;
2. run the SCA over every function (boundedness + consistency);
3. schedule with the cost-aware offloader (Eq. 1) over the registered
   execution targets (CPU + NDP, plus the discrete GPU when
   ``enable_gpu=True``);
4. execute on the machine models through the DES engine;
5. account pseudopotential memory under the shared-block layout.

The result carries everything the evaluation section reports: per-phase
breakdown (Fig. 7), scheduling-overhead fraction (§VI-A), and memory
footprints (Table I / §VI-A discussion).

Beyond the paper, :meth:`NdftFramework.run_many` is the batching
front-end: it schedules a batch of heterogeneous problem sizes and
executes them concurrently through one shared engine, reporting per-job
completion times plus aggregate makespan and throughput — the serving
mode a DFT-as-a-service deployment runs in.

Serving fast path: every artifact the framework derives per job — the
built pipeline, the cost-aware schedule, the SCA reports, and the
standalone (solo) DES report — is a pure function of the job's
content-addressed :class:`~repro.core.signature.JobSignature`, so the
framework memoizes all four.  ``run_many([512] * 256)`` schedules,
analyzes and solo-times the 512-atom job exactly once; only the shared
batch simulation still sees all 256 jobs (their completion times differ
through contention).  The caches live on the framework, compose across
calls, and are dropped whenever :meth:`NdftFramework.register_target`
changes the machine registry.  ``NdftFramework(memoize=False)`` is the
escape hatch that re-derives everything per job — the serving benchmark
(:mod:`repro.experiments.scale_serving`) uses it as the "before"
measurement and asserts the results are identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.cost_model import OffloadCostModel, serial_links
from repro.core.executor import (
    BatchExecutionReport,
    ExecutionReport,
    PipelineExecutor,
)
from repro.core.pipeline import Pipeline, build_pipeline
from repro.core.sca import ScaReport, StaticCodeAnalyzer
from repro.core.scheduler import (
    CostAwareScheduler,
    ExecutionTarget,
    Placement,
    Schedule,
    SchedulingPolicy,
)
from repro.core.signature import JobSignature, job_signature
from repro.dft.workload import ProblemSize, problem_size
from repro.hw.config import SystemConfig, gpu_baseline_config, ndft_system_config
from repro.hw.cpu import CpuModel
from repro.hw.gpu import GpuModel
from repro.hw.interconnect import HostLink
from repro.hw.ndp import NdpSystemModel
from repro.hw.roofline import RooflineModel
from repro.model import AccessPattern
from repro.shmem.footprint import (
    NDP_RANKS,
    NDP_STACKS,
    footprint_ndft,
    footprint_replicated,
)


@dataclass(frozen=True)
class NdftRunResult:
    """Everything one NDFT run produces."""

    problem: ProblemSize
    schedule: Schedule
    report: ExecutionReport
    sca_reports: dict[str, ScaReport]
    memory_footprint_gb: float
    replicated_footprint_gb: float

    @property
    def total_time(self) -> float:
        return self.report.total_time

    @property
    def scheduling_overhead_fraction(self) -> float:
        return self.report.overhead_fraction

    @property
    def memory_reduction_percent(self) -> float:
        """Footprint saving vs the replicated NDP layout (§VI-A: 57.8 %)."""
        if self.replicated_footprint_gb == 0:
            return 0.0
        return 100.0 * (
            1.0 - self.memory_footprint_gb / self.replicated_footprint_gb
        )

    def breakdown(self) -> dict[str, float]:
        return self.report.breakdown()


@dataclass(frozen=True)
class NdftBatchResult:
    """A batch of jobs executed concurrently on one shared machine."""

    jobs: tuple[NdftRunResult, ...]
    batch_report: BatchExecutionReport
    #: What the same jobs cost run one at a time on a dedicated machine
    #: (the sum of standalone DES makespans).
    solo_times: tuple[float, ...]

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def makespan(self) -> float:
        """Aggregate completion time of the whole batch."""
        return self.batch_report.makespan

    @property
    def throughput(self) -> float:
        """Jobs per second of shared-machine time."""
        return self.batch_report.throughput

    @property
    def serial_time(self) -> float:
        """Back-to-back baseline: the sum of standalone single-job runs."""
        return sum(self.solo_times)

    @property
    def batching_speedup(self) -> float:
        """Makespan advantage of sharing the machine across the batch."""
        if self.makespan == 0:
            return 1.0
        return self.serial_time / self.makespan

    def job_completion_times(self) -> tuple[tuple[str, float], ...]:
        """Per-job ``(label, completion seconds)`` in submission order
        (completion includes queueing for shared devices).  A batch may
        contain several jobs of the same size, so labels can repeat."""
        return tuple(
            (result.problem.label, result.report.total_time)
            for result in self.jobs
        )


class NdftFramework:
    """NDFT on the Table III CPU-NDP system.

    ``enable_gpu=True`` additionally registers the discrete-GPU baseline
    machine as a third schedulable target, letting the cost-aware
    scheduler mix all three device kinds.  The default keeps the paper's
    two-sided system (and its published numbers) intact.
    """

    def __init__(
        self,
        system: SystemConfig | None = None,
        policy: SchedulingPolicy = SchedulingPolicy.COST_AWARE,
        enable_gpu: bool = False,
        memoize: bool = True,
    ):
        self.system = system or ndft_system_config()
        self.policy = policy
        #: Serving fast path: memoize pipelines/schedules/SCA/solo reports
        #: by content-addressed job signature.  ``False`` re-derives
        #: everything per job (the benchmark's uncached baseline).
        self.memoize = memoize
        self._pipeline_cache: dict[tuple, Pipeline] = {}
        self._schedule_cache: dict[JobSignature, Schedule] = {}
        self._solo_report_cache: dict[JobSignature, ExecutionReport] = {}
        self._sca_cache: dict[str, dict[str, ScaReport]] = {}
        #: Per-cache hit/miss counters (observability for the serving
        #: benchmark and the memoization tests).
        self.cache_stats = {
            "pipeline_hits": 0,
            "pipeline_misses": 0,
            "schedule_hits": 0,
            "schedule_misses": 0,
            "solo_hits": 0,
            "solo_misses": 0,
            "sca_hits": 0,
            "sca_misses": 0,
        }
        self.host = CpuModel(self.system.host)
        self.ndp = NdpSystemModel(self.system.ndp)
        self.gpu = GpuModel(gpu_baseline_config()) if enable_gpu else None
        # Offload handovers run at half the raw link rate: the releasing
        # side flushes dirty lines before the consuming side can pull
        # (flush + copy, serialized).
        cpu_ndp_link = HostLink(
            bandwidth=self.system.ndp.host_link_bandwidth / 2.0
        )
        device_links: dict[frozenset, HostLink] = {}
        if self.gpu is not None:
            # GPU boundaries ride PCIe, not the CPU<->NDP host link; an
            # NDP<->GPU handover stages through host memory, traversing
            # both wires in series.
            pcie = HostLink(
                bandwidth=self.gpu.config.aggregate_pcie_bandwidth,
                base_latency=1e-6,
            )
            device_links[frozenset({"cpu", "gpu"})] = pcie
            device_links[frozenset({"ndp", "gpu"})] = serial_links(
                cpu_ndp_link, pcie
            )
        self.cost_model = OffloadCostModel(
            host_link=cpu_ndp_link,
            context_switch=self.system.context_switch_overhead,
            device_links=device_links,
        )
        self.scheduler = CostAwareScheduler(
            host=self.host,
            ndp=self.ndp,
            cost_model=self.cost_model,
            gpu=self.gpu,
        )
        self.executor = PipelineExecutor(cost_model=self.cost_model)
        self.sca = StaticCodeAnalyzer(
            cpu_roofline=RooflineModel(
                name=self.system.host.name,
                peak_flops=self.system.host.peak_flops,
                peak_bandwidth=self.host.memory.effective_bandwidth(
                    AccessPattern.SEQUENTIAL
                ),
            ),
            ndp_roofline=RooflineModel(
                name=self.system.ndp.name,
                peak_flops=self.system.ndp.peak_flops,
                peak_bandwidth=self.system.ndp.aggregate_internal_bandwidth
                * 0.86,
            ),
        )

    # ------------------------------------------------------------------
    # Target registry + caches
    # ------------------------------------------------------------------
    def register_target(
        self, placement: Placement, machine: ExecutionTarget
    ) -> None:
        """Add (or replace) an execution target and invalidate every
        memoized artifact: schedules, solo reports and built pipelines
        minted against the old registry must not survive it.

        Link pricing caveat: the cost model's per-pair ``device_links``
        are fixed at construction, so boundaries to a machine registered
        here are priced on the default CPU<->NDP host link unless the
        framework was built with the matching wires (e.g. a GPU should
        be enabled via ``NdftFramework(enable_gpu=True)``, which installs
        the PCIe and serial NDP<->GPU links, rather than registered after
        the fact)."""
        self.scheduler.register_target(placement, machine)
        self.clear_caches()

    def clear_caches(self) -> None:
        """Drop every memoized pipeline/schedule/SCA/solo-report entry
        (hit/miss counters are preserved)."""
        self._pipeline_cache.clear()
        self._schedule_cache.clear()
        self._solo_report_cache.clear()
        self._sca_cache.clear()

    def job_signature(self, pipeline: Pipeline) -> JobSignature:
        """The content-addressed key this framework memoizes ``pipeline``
        under (problem + structure + policy + targets + cost model)."""
        return job_signature(
            pipeline, self.policy, self.scheduler, self.cost_model
        )

    # ------------------------------------------------------------------
    # Single job
    # ------------------------------------------------------------------
    def run(
        self,
        n_atoms: int | None = None,
        problem: ProblemSize | None = None,
        pipeline: Pipeline | None = None,
    ) -> NdftRunResult:
        """Schedule + execute LR-TDDFT for Si_{n_atoms} on the CPU-NDP
        system and account its memory."""
        problem, pipeline = self._resolve_job(n_atoms, problem, pipeline)
        signature = self.job_signature(pipeline) if self.memoize else None
        schedule = self._schedule_for(pipeline, signature)
        report = self._solo_report(pipeline, schedule, signature)
        return self._run_result(problem, pipeline, schedule, report)

    # ------------------------------------------------------------------
    # Batched jobs
    # ------------------------------------------------------------------
    def run_many(
        self,
        batch: Sequence[int | ProblemSize | Pipeline],
        pipeline_builder: Callable[[ProblemSize], Pipeline] | None = None,
    ) -> NdftBatchResult:
        """Schedule and execute a batch of heterogeneous jobs through one
        shared engine.

        ``batch`` entries may be atom counts, :class:`ProblemSize` records
        or prebuilt pipelines (mixed freely).  Every job is scheduled
        independently under the framework policy, then all jobs execute
        concurrently on the shared device/link resources, so jobs whose
        placements use different devices at different times genuinely
        overlap.  ``pipeline_builder`` overrides the Fig. 1 chain for
        entries given as sizes (e.g. ``build_kpoint_pipeline``).

        With memoization on (the default), duplicate jobs in the batch
        are deduplicated through the signature caches: each distinct
        signature is built, scheduled, analyzed and solo-timed once, and
        only the shared-machine simulation sees every submitted job.
        """
        if not batch:
            raise ValueError("run_many needs at least one job")
        builder = pipeline_builder or build_pipeline
        jobs: list[tuple[ProblemSize, Pipeline, Schedule, JobSignature | None]] = []
        for entry in batch:
            if isinstance(entry, Pipeline):
                problem, pipeline = entry.problem, entry
            elif isinstance(entry, ProblemSize):
                problem, pipeline = entry, self._build_pipeline(entry, builder)
            else:
                problem = problem_size(entry)
                pipeline = self._build_pipeline(problem, builder)
            signature = self.job_signature(pipeline) if self.memoize else None
            schedule = self._schedule_for(pipeline, signature)
            jobs.append((problem, pipeline, schedule, signature))

        batch_report = self.executor.execute_many(
            [(pipeline, schedule) for _p, pipeline, schedule, _s in jobs]
        )
        solo_times = tuple(
            self._solo_report(pipeline, schedule, signature).total_time
            for _p, pipeline, schedule, signature in jobs
        )
        results = tuple(
            self._run_result(problem, pipeline, schedule, report)
            for (problem, pipeline, schedule, _s), report in zip(
                jobs, batch_report.job_reports
            )
        )
        return NdftBatchResult(
            jobs=results, batch_report=batch_report, solo_times=solo_times
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve_job(
        self,
        n_atoms: int | None,
        problem: ProblemSize | None,
        pipeline: Pipeline | None,
    ) -> tuple[ProblemSize, Pipeline]:
        if problem is None:
            if pipeline is not None:
                problem = pipeline.problem
            elif n_atoms is not None:
                problem = problem_size(n_atoms)
            else:
                raise ValueError("pass n_atoms, problem or pipeline")
        return problem, pipeline or self._build_pipeline(problem, build_pipeline)

    def _build_pipeline(
        self,
        problem: ProblemSize,
        builder: Callable[[ProblemSize], Pipeline],
    ) -> Pipeline:
        """Build (or reuse) the pipeline for one problem/builder pair.
        Sharing the built object also shares its cached structural hash,
        so duplicate batch entries hash once."""
        if not self.memoize:
            return builder(problem)
        key = (problem, builder)
        pipeline = self._pipeline_cache.get(key)
        if pipeline is None:
            self.cache_stats["pipeline_misses"] += 1
            pipeline = builder(problem)
            self._pipeline_cache[key] = pipeline
        else:
            self.cache_stats["pipeline_hits"] += 1
        return pipeline

    def _schedule_for(
        self, pipeline: Pipeline, signature: JobSignature | None
    ) -> Schedule:
        if signature is None:
            return self.scheduler.schedule(pipeline, self.policy)
        schedule = self._schedule_cache.get(signature)
        if schedule is None:
            self.cache_stats["schedule_misses"] += 1
            schedule = self.scheduler.schedule(pipeline, self.policy)
            self._schedule_cache[signature] = schedule
        else:
            self.cache_stats["schedule_hits"] += 1
        return schedule

    def _solo_report(
        self,
        pipeline: Pipeline,
        schedule: Schedule,
        signature: JobSignature | None,
    ) -> ExecutionReport:
        """The job's standalone (dedicated-machine) DES report."""
        if signature is None:
            return self.executor.execute(pipeline, schedule)
        report = self._solo_report_cache.get(signature)
        if report is None:
            self.cache_stats["solo_misses"] += 1
            report = self.executor.execute(pipeline, schedule)
            self._solo_report_cache[signature] = report
        else:
            self.cache_stats["solo_hits"] += 1
        return report

    def _sca_reports(self, pipeline: Pipeline) -> dict[str, ScaReport]:
        """SCA verdicts for every stage function.  Keyed by structural
        hash alone: the analyzer sees only the pipeline and the rooflines
        fixed at construction, never the target registry."""
        if not self.memoize:
            return self.sca.analyze_all(
                [stage.function for stage in pipeline.stages]
            )
        key = pipeline.structural_hash
        reports = self._sca_cache.get(key)
        if reports is None:
            self.cache_stats["sca_misses"] += 1
            reports = self.sca.analyze_all(
                [stage.function for stage in pipeline.stages]
            )
            self._sca_cache[key] = reports
        else:
            self.cache_stats["sca_hits"] += 1
        return reports

    def _run_result(
        self,
        problem: ProblemSize,
        pipeline: Pipeline,
        schedule: Schedule,
        report: ExecutionReport,
    ) -> NdftRunResult:
        sca_reports = self._sca_reports(pipeline)
        return NdftRunResult(
            problem=problem,
            schedule=schedule,
            report=report,
            sca_reports=sca_reports,
            memory_footprint_gb=footprint_ndft(
                problem.n_atoms, NDP_RANKS, NDP_STACKS
            ),
            replicated_footprint_gb=footprint_replicated(
                problem.n_atoms, NDP_RANKS
            ),
        )
