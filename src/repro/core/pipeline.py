"""Schedulable stage graphs: general DAGs, with the paper's chain as the
canonical instance.

A :class:`Pipeline` is a validated directed acyclic graph of
:class:`Stage` nodes connected by byte-weighted :class:`Edge` data
dependencies.  Validation happens at construction: duplicate or unknown
stage names and cycles are rejected, and the graph indexes (name lookup,
predecessor/successor adjacency, topological order) are built once so
every query afterwards is O(1)/O(degree).

Two builders ship with the package:

- :func:`build_pipeline` — the paper's Fig. 1 LR-TDDFT chain,

      pseudopotential -> face_split -> fft -> global_comm -> gemm -> syevd,

  byte-for-byte identical to the original linear pipeline (the Fig. 7 /
  Table I numbers depend on it);
- :func:`build_kpoint_pipeline` — a branching variant that splits the
  face-split/FFT middle section across independent k-point batches which
  fan back into the global communication stage, so a DAG-aware scheduler
  can overlap the batches on distinct devices.

Each stage carries its analytic workload (:mod:`repro.dft.workload`) and
its function-level IR (for the SCA); edges are weighted with the bytes
live between the two stages — the quantity the DT term of Eq. 1 charges
when a placement boundary cuts the edge.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass

from repro.core.ir import KernelFunction, function_from_workload
from repro.dft.workload import ProblemSize, stage_workloads
from repro.errors import ConfigError
from repro.model import KernelWorkload, PhaseName


@dataclass(frozen=True)
class Stage:
    """One schedulable phase of the pipeline."""

    name: str
    workload: KernelWorkload
    function: KernelFunction


@dataclass(frozen=True)
class Edge:
    """Data dependency between two stages, weighted in bytes."""

    src: str
    dst: str
    nbytes: float

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ConfigError("edge bytes must be non-negative")
        if self.src == self.dst:
            raise ConfigError(f"self-edge on stage {self.src!r}")


@dataclass(frozen=True)
class Pipeline:
    """A validated DAG of stages with byte-weighted data edges.

    ``stages`` keeps its given order (builders emit a topological order
    for readability) but all scheduling code should use
    :attr:`topological_order`, which is recomputed from the edges and is
    what the validator certifies to be cycle-free.
    """

    problem: ProblemSize
    stages: tuple[Stage, ...]
    edges: tuple[Edge, ...]

    def __post_init__(self) -> None:
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ConfigError("duplicate stage names in pipeline")
        by_name = {s.name: s for s in self.stages}
        for edge in self.edges:
            if edge.src not in by_name or edge.dst not in by_name:
                raise ConfigError(
                    f"edge {edge.src}->{edge.dst} references unknown stage"
                )

        in_edges: dict[str, list[Edge]] = {n: [] for n in names}
        out_edges: dict[str, list[Edge]] = {n: [] for n in names}
        for edge in self.edges:
            out_edges[edge.src].append(edge)
            in_edges[edge.dst].append(edge)

        # Kahn's algorithm: certifies acyclicity and yields the canonical
        # topological order (ties broken by declaration order).
        indegree = {n: len(in_edges[n]) for n in names}
        ready = deque(n for n in names if indegree[n] == 0)
        topo: list[str] = []
        while ready:
            node = ready.popleft()
            topo.append(node)
            for edge in out_edges[node]:
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    ready.append(edge.dst)
        if len(topo) != len(names):
            cyclic = sorted(n for n in names if indegree[n] > 0)
            raise ConfigError(f"pipeline graph has a cycle through {cyclic}")

        # Frozen dataclass: attach the derived indexes as plain attributes
        # (they are functions of the declared fields, so eq/repr need not
        # see them).
        object.__setattr__(self, "_by_name", by_name)
        object.__setattr__(
            self, "_in_edges", {n: tuple(es) for n, es in in_edges.items()}
        )
        object.__setattr__(
            self, "_out_edges", {n: tuple(es) for n, es in out_edges.items()}
        )
        object.__setattr__(self, "_topo_order", tuple(topo))
        # Shape predicates are queried per job at batch-serving scale
        # (the executor's chain fast path asks for every batch member),
        # so derive them once with the other indexes.
        object.__setattr__(
            self,
            "_entry_stages",
            tuple(n for n in topo if not in_edges[n]),
        )
        object.__setattr__(
            self,
            "_is_chain",
            all(
                len(in_edges[n]) <= 1 and len(out_edges[n]) <= 1
                for n in topo
            ),
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def stage(self, name: str) -> Stage:
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigError(f"no stage named {name!r}") from None

    def edges_between(self, src: str, dst: str) -> list[Edge]:
        self.stage(dst)  # validate both endpoints
        return [e for e in self._out_edges[self.stage(src).name] if e.dst == dst]

    @property
    def stage_names(self) -> list[str]:
        return [s.name for s in self.stages]

    # ------------------------------------------------------------------
    # Graph structure
    # ------------------------------------------------------------------
    @property
    def topological_order(self) -> tuple[str, ...]:
        return self._topo_order

    def in_edges(self, name: str) -> tuple[Edge, ...]:
        return self._in_edges[self.stage(name).name]

    def out_edges(self, name: str) -> tuple[Edge, ...]:
        return self._out_edges[self.stage(name).name]

    def predecessors(self, name: str) -> tuple[str, ...]:
        return tuple(e.src for e in self.in_edges(name))

    def successors(self, name: str) -> tuple[str, ...]:
        return tuple(e.dst for e in self.out_edges(name))

    @property
    def entry_stages(self) -> tuple[str, ...]:
        return self._entry_stages

    @property
    def exit_stages(self) -> tuple[str, ...]:
        return tuple(n for n in self._topo_order if not self._out_edges[n])

    @property
    def is_chain(self) -> bool:
        """True when every stage has at most one predecessor and one
        successor — the shape the original linear executor assumed."""
        return self._is_chain

    @property
    def structural_hash(self) -> str:
        """Content hash of everything scheduling/execution can observe.

        Covers the problem dimensions, every stage's workload numbers and
        live-in/out sets, and the byte-weighted edge list — so two
        pipelines built for the same problem by the same builder hash
        equal, while any change to a workload coefficient, edge weight or
        graph shape changes the hash.  This is the content-addressed key
        the serving fast path memoizes schedules, SCA reports and solo
        makespans under (:mod:`repro.core.signature`).

        Floats are folded in via ``repr`` (exact round-trip), so the hash
        distinguishes values that differ in any bit.
        """
        try:
            return self._structural_hash
        except AttributeError:
            pass
        digest = hashlib.sha256()
        p = self.problem
        digest.update(
            repr(
                (
                    p.n_atoms,
                    p.grid_side,
                    p.n_valence,
                    p.n_conduction,
                    p.n_active_valence,
                    p.n_active_conduction,
                )
            ).encode()
        )
        for stage in self.stages:
            w = stage.workload
            digest.update(
                repr(
                    (
                        stage.name,
                        str(w.name),
                        w.flops,
                        w.bytes_read,
                        w.bytes_written,
                        w.comm_bytes,
                        w.working_set,
                        w.footprint,
                        w.access_pattern.value,
                        w.parallel_tasks,
                        stage.function.live_in_bytes,
                        stage.function.live_out_bytes,
                        # Per-segment contents, not just the count: the
                        # SCA's consistency verdict and time estimates
                        # depend on how flops/bytes distribute across
                        # segments, so two hand-built pipelines that
                        # differ only inside a segment must hash apart.
                        tuple(
                            (
                                segment.name,
                                segment.flops,
                                segment.bytes_read,
                                segment.bytes_written,
                                segment.access_pattern.value,
                                segment.instructions,
                            )
                            for segment in stage.function.segments
                        ),
                    )
                ).encode()
            )
        for edge in self.edges:
            digest.update(repr((edge.src, edge.dst, edge.nbytes)).encode())
        value = digest.hexdigest()
        object.__setattr__(self, "_structural_hash", value)
        return value

    def residual(self, completed) -> "Pipeline":
        """The suffix subgraph left after checkpointing ``completed``.

        ``completed`` is a collection of stage names whose work already
        finished (a checkpoint frontier recorded at failure time).  The
        residual pipeline keeps every other stage and only the edges
        between kept stages: an edge crossing the frontier carries data
        the checkpoint already materialized next to its consumer, so the
        resumed job pays neither its transfer cost nor its Eq. 1
        overhead term.  Kept stages retain their declaration order, so
        the residual of a residual is well-defined and deterministic.

        The frontier recorded by the executor is downward-closed by
        construction (a stage only completes after all predecessors
        did), which makes the residual a genuine suffix of the DAG.
        Completing every stage leaves nothing to resume and is rejected
        — a failed job always has at least the failing stage left.
        """
        frontier = set(completed)
        unknown = sorted(frontier - set(self._by_name))
        if unknown:
            raise ConfigError(
                f"checkpoint frontier names unknown stages {unknown}"
            )
        kept = tuple(s for s in self.stages if s.name not in frontier)
        if not frontier:
            return self
        if not kept:
            raise ConfigError(
                "checkpoint frontier covers every stage; nothing to resume"
            )
        kept_names = {s.name for s in kept}
        kept_edges = tuple(
            e
            for e in self.edges
            if e.src in kept_names and e.dst in kept_names
        )
        return Pipeline(problem=self.problem, stages=kept, edges=kept_edges)

    def critical_path_length(self, node_weight) -> float:
        """Longest path through the DAG, nodes weighted by
        ``node_weight(stage_name) -> float`` (edges free).  The lower
        bound any schedule's makespan must respect."""
        longest: dict[str, float] = {}
        for name in self._topo_order:
            upstream = max(
                (longest[e.src] for e in self._in_edges[name]), default=0.0
            )
            longest[name] = upstream + node_weight(name)
        return max(longest.values(), default=0.0)


#: Canonical stage order of the LR-TDDFT pipeline.
STAGE_ORDER = (
    PhaseName.PSEUDOPOTENTIAL,
    PhaseName.FACE_SPLIT,
    PhaseName.FFT,
    PhaseName.GLOBAL_COMM,
    PhaseName.GEMM,
    PhaseName.SYEVD,
)


def _live_bytes(problem: ProblemSize) -> dict[str, float]:
    """The byte volumes live between the Fig. 1 phases."""
    orbital_bytes = (
        (problem.n_active_valence + problem.n_active_conduction)
        * problem.n_grid
        * 16.0
    )
    pair_bytes = float(problem.n_pairs) * problem.n_grid * 16.0
    # Between the transposes and the coupling GEMM the live data is the
    # pair matrix restricted to the wavefunction G-sphere.
    sphere_bytes = float(problem.n_pairs) * problem.n_pw * 16.0
    coupling_bytes = float(problem.n_pairs) ** 2 * 16.0
    return {
        "orbital": orbital_bytes,
        "pair": pair_bytes,
        "sphere": sphere_bytes,
        "coupling": coupling_bytes,
    }


def build_pipeline(problem: ProblemSize) -> Pipeline:
    """Assemble the Fig. 1 pipeline for one Si_N problem."""
    workloads = stage_workloads(problem)
    live = _live_bytes(problem)
    orbital_bytes = live["orbital"]
    pair_bytes = live["pair"]
    sphere_bytes = live["sphere"]
    coupling_bytes = live["coupling"]

    live_sets = {
        PhaseName.PSEUDOPOTENTIAL: (orbital_bytes, orbital_bytes),
        PhaseName.FACE_SPLIT: (orbital_bytes, pair_bytes),
        PhaseName.FFT: (pair_bytes, pair_bytes),
        PhaseName.GLOBAL_COMM: (pair_bytes, sphere_bytes),
        PhaseName.GEMM: (sphere_bytes, coupling_bytes),
        PhaseName.SYEVD: (coupling_bytes, coupling_bytes),
    }

    stages = tuple(
        Stage(
            name=str(phase),
            workload=workloads[phase],
            function=function_from_workload(
                workloads[phase],
                live_in_bytes=live_sets[phase][0],
                live_out_bytes=live_sets[phase][1],
            ),
        )
        for phase in STAGE_ORDER
    )

    edge_bytes = {
        (PhaseName.PSEUDOPOTENTIAL, PhaseName.FACE_SPLIT): orbital_bytes,
        (PhaseName.FACE_SPLIT, PhaseName.FFT): pair_bytes,
        (PhaseName.FFT, PhaseName.GLOBAL_COMM): pair_bytes,
        # After the transposes only the reduced response sphere feeds the
        # coupling-matrix GEMM.
        (PhaseName.GLOBAL_COMM, PhaseName.GEMM): sphere_bytes,
        (PhaseName.GEMM, PhaseName.SYEVD): coupling_bytes,
    }
    edges = tuple(
        Edge(src=str(src), dst=str(dst), nbytes=nbytes)
        for (src, dst), nbytes in edge_bytes.items()
    )
    return Pipeline(problem=problem, stages=stages, edges=edges)


def build_kpoint_pipeline(problem: ProblemSize, n_kpoints: int = 2) -> Pipeline:
    """A branching LR-TDDFT pipeline: the face-split/FFT middle section is
    split across ``n_kpoints`` independent k-point batches.

    Shape (for ``n_kpoints=2``)::

        pseudopotential -+-> face_split[k0] -> fft[k0] -+-> global_comm -> gemm -> syevd
                         +-> face_split[k1] -> fft[k1] -+

    Each branch carries ``1/n_kpoints`` of the chain's face-split and FFT
    workload (the pair batches are independent between the transforms), so
    the total work is conserved while a DAG scheduler is free to overlap
    the branches on distinct devices.  The fan-in at ``global_comm``
    models the alltoall that gathers every batch's transformed pairs.
    """
    if n_kpoints < 1:
        raise ConfigError(f"n_kpoints must be >= 1, got {n_kpoints}")
    workloads = stage_workloads(problem)
    live = _live_bytes(problem)
    orbital_bytes = live["orbital"]
    pair_bytes = live["pair"]
    sphere_bytes = live["sphere"]
    coupling_bytes = live["coupling"]
    share = 1.0 / n_kpoints

    def whole_stage(phase: PhaseName, live_in: float, live_out: float) -> Stage:
        return Stage(
            name=str(phase),
            workload=workloads[phase],
            function=function_from_workload(
                workloads[phase], live_in_bytes=live_in, live_out_bytes=live_out
            ),
        )

    def branch_stage(phase: PhaseName, k: int, live_in: float, live_out: float) -> Stage:
        scaled = workloads[phase].scaled(share)
        return Stage(
            name=f"{phase}[k{k}]",
            workload=scaled,
            function=function_from_workload(
                scaled, live_in_bytes=live_in, live_out_bytes=live_out
            ),
        )

    stages = [
        whole_stage(PhaseName.PSEUDOPOTENTIAL, orbital_bytes, orbital_bytes)
    ]
    edges: list[Edge] = []
    for k in range(n_kpoints):
        face = branch_stage(
            PhaseName.FACE_SPLIT, k, orbital_bytes * share, pair_bytes * share
        )
        fft = branch_stage(
            PhaseName.FFT, k, pair_bytes * share, pair_bytes * share
        )
        stages.extend([face, fft])
        edges.append(
            Edge(
                src=str(PhaseName.PSEUDOPOTENTIAL),
                dst=face.name,
                nbytes=orbital_bytes * share,
            )
        )
        edges.append(Edge(src=face.name, dst=fft.name, nbytes=pair_bytes * share))
        edges.append(
            Edge(
                src=fft.name,
                dst=str(PhaseName.GLOBAL_COMM),
                nbytes=pair_bytes * share,
            )
        )
    stages.append(whole_stage(PhaseName.GLOBAL_COMM, pair_bytes, sphere_bytes))
    stages.append(whole_stage(PhaseName.GEMM, sphere_bytes, coupling_bytes))
    stages.append(whole_stage(PhaseName.SYEVD, coupling_bytes, coupling_bytes))
    edges.append(
        Edge(
            src=str(PhaseName.GLOBAL_COMM),
            dst=str(PhaseName.GEMM),
            nbytes=sphere_bytes,
        )
    )
    edges.append(
        Edge(
            src=str(PhaseName.GEMM),
            dst=str(PhaseName.SYEVD),
            nbytes=coupling_bytes,
        )
    )
    return Pipeline(problem=problem, stages=tuple(stages), edges=tuple(edges))
