"""The LR-TDDFT stage graph (paper Fig. 1 as a schedulable pipeline).

Stages, in dependency order:

    pseudopotential -> face_split -> fft -> global_comm -> gemm -> syevd

Each stage carries its analytic workload (:mod:`repro.dft.workload`), its
function-level IR (for the SCA), and data edges weighted with the bytes
live between consecutive stages — the quantity the DT term of Eq. 1
charges when a placement boundary cuts the edge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ir import KernelFunction, function_from_workload
from repro.dft.workload import ProblemSize, stage_workloads
from repro.errors import ConfigError
from repro.model import KernelWorkload, PhaseName


@dataclass(frozen=True)
class Stage:
    """One schedulable phase of the pipeline."""

    name: str
    workload: KernelWorkload
    function: KernelFunction


@dataclass(frozen=True)
class Edge:
    """Data dependency between two stages, weighted in bytes."""

    src: str
    dst: str
    nbytes: float

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ConfigError("edge bytes must be non-negative")


@dataclass(frozen=True)
class Pipeline:
    """An ordered chain of stages with byte-weighted data edges."""

    problem: ProblemSize
    stages: tuple[Stage, ...]
    edges: tuple[Edge, ...]

    def __post_init__(self) -> None:
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ConfigError("duplicate stage names in pipeline")
        known = set(names)
        for edge in self.edges:
            if edge.src not in known or edge.dst not in known:
                raise ConfigError(f"edge {edge.src}->{edge.dst} references unknown stage")

    def stage(self, name: str) -> Stage:
        for candidate in self.stages:
            if candidate.name == name:
                return candidate
        raise ConfigError(f"no stage named {name!r}")

    def edges_between(self, src: str, dst: str) -> list[Edge]:
        return [e for e in self.edges if e.src == src and e.dst == dst]

    @property
    def stage_names(self) -> list[str]:
        return [s.name for s in self.stages]


#: Canonical stage order of the LR-TDDFT pipeline.
STAGE_ORDER = (
    PhaseName.PSEUDOPOTENTIAL,
    PhaseName.FACE_SPLIT,
    PhaseName.FFT,
    PhaseName.GLOBAL_COMM,
    PhaseName.GEMM,
    PhaseName.SYEVD,
)


def build_pipeline(problem: ProblemSize) -> Pipeline:
    """Assemble the Fig. 1 pipeline for one Si_N problem."""
    workloads = stage_workloads(problem)

    orbital_bytes = (
        (problem.n_active_valence + problem.n_active_conduction)
        * problem.n_grid
        * 16.0
    )
    pair_bytes = float(problem.n_pairs) * problem.n_grid * 16.0
    # Between the transposes and the coupling GEMM the live data is the
    # pair matrix restricted to the wavefunction G-sphere.
    sphere_bytes = float(problem.n_pairs) * problem.n_pw * 16.0
    coupling_bytes = float(problem.n_pairs) ** 2 * 16.0

    live_sets = {
        PhaseName.PSEUDOPOTENTIAL: (orbital_bytes, orbital_bytes),
        PhaseName.FACE_SPLIT: (orbital_bytes, pair_bytes),
        PhaseName.FFT: (pair_bytes, pair_bytes),
        PhaseName.GLOBAL_COMM: (pair_bytes, sphere_bytes),
        PhaseName.GEMM: (sphere_bytes, coupling_bytes),
        PhaseName.SYEVD: (coupling_bytes, coupling_bytes),
    }

    stages = tuple(
        Stage(
            name=str(phase),
            workload=workloads[phase],
            function=function_from_workload(
                workloads[phase],
                live_in_bytes=live_sets[phase][0],
                live_out_bytes=live_sets[phase][1],
            ),
        )
        for phase in STAGE_ORDER
    )

    edge_bytes = {
        (PhaseName.PSEUDOPOTENTIAL, PhaseName.FACE_SPLIT): orbital_bytes,
        (PhaseName.FACE_SPLIT, PhaseName.FFT): pair_bytes,
        (PhaseName.FFT, PhaseName.GLOBAL_COMM): pair_bytes,
        # After the transposes only the reduced response sphere feeds the
        # coupling-matrix GEMM.
        (PhaseName.GLOBAL_COMM, PhaseName.GEMM): sphere_bytes,
        (PhaseName.GEMM, PhaseName.SYEVD): coupling_bytes,
    }
    edges = tuple(
        Edge(src=str(src), dst=str(dst), nbytes=nbytes)
        for (src, dst), nbytes in edge_bytes.items()
    )
    return Pipeline(problem=problem, stages=stages, edges=edges)
