"""Bounded LRU mapping for the framework's signature caches.

The serving caches (:class:`repro.core.framework.NdftFramework`) are
keyed by content-addressed signatures, so a service facing adversarial
problem variety would otherwise grow them without bound.  ``LruCache``
is a small insertion-ordered mapping with least-recently-used eviction
and hit/miss/eviction counters: eviction is purely a capacity decision —
an evicted entry is re-derived on the next miss with an identical value,
so results never change (the framework's tests assert exactly that).
"""

from __future__ import annotations

from typing import Any, Hashable


class LruCache:
    """A dict with LRU eviction and telemetry counters.

    ``maxsize=None`` means unbounded (never evicts).  Recency is updated
    on every :meth:`get` hit and :meth:`put`, so the evicted key is the
    one untouched for longest.  Counters (``hits``/``misses``/
    ``evictions``) survive :meth:`clear` — the framework drops cache
    *contents* on registry changes but keeps its telemetry.
    """

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_data")

    def __init__(self, maxsize: int | None = None):
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be >= 1 or None, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # dicts preserve insertion order; move-to-end on hit makes the
        # leftmost key the LRU victim.
        self._data: dict[Hashable, Any] = {}

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Counted lookup: bumps hits/misses and refreshes recency."""
        try:
            value = self._data.pop(key)
        except KeyError:
            self.misses += 1
            return default
        self._data[key] = value  # re-insert at the MRU end
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self._data.pop(key, None)
        self._data[key] = value
        if self.maxsize is not None and len(self._data) > self.maxsize:
            victim = next(iter(self._data))
            del self._data[victim]
            self.evictions += 1

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Uncounted lookup that does not touch recency or counters."""
        return self._data.get(key, default)

    def items(self) -> list[tuple[Hashable, Any]]:
        """Every (key, value) pair in LRU-to-MRU order, without touching
        recency or counters — what cache snapshots persist."""
        return list(self._data.items())

    def clear(self) -> None:
        """Drop every entry; counters are preserved."""
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LruCache):
            return self._data == other._data
        if isinstance(other, dict):
            return self._data == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LruCache(maxsize={self.maxsize}, len={len(self._data)}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )
