"""Cost-aware workload partitioning and scheduling (paper §IV-A).

Given a stage DAG, a registry of execution targets and the offload cost
model, the scheduler picks a placement per *function* (the paper's chosen
granularity) minimizing

    sum of stage execution times  +  Eq. 1 scheduling overhead,

where the overhead is charged for every data edge whose endpoints run on
different targets.  The search is an exact dynamic program over the
topological order (:meth:`CostAwareScheduler._dag_optimal`): the DP state
is the placement of the stages still "live" (those with unprocessed
successors), so a chain costs O(stages x targets^2), a diamond
O(stages x targets^3), and the result provably matches exhaustive
enumeration — which is retained as :meth:`_exhaustive_best`, the oracle
the tests cross-check against on small graphs.

Targets are pluggable: the registry starts with the paper's two sides
(``Placement.CPU`` — the host, ``Placement.NDP`` — the near-data system)
and admits further machines via :meth:`CostAwareScheduler.register_target`
— the discrete GPU (:class:`repro.hw.gpu.GpuModel`) being the first-class
third target.  Any object with ``execute(workload) -> PhaseTime``
qualifies.

Alternative policies reproduce the paper's comparisons:

- ``ALL_CPU`` / ``ALL_NDP``: homogeneous placements;
- ``NAIVE``: per-stage greedy on raw kernel time over every registered
  target, ignoring DT/CXT — what a boundedness-only offloader (no cost
  model) would do.

The granularity ablation (§IV-A1) lives in
:func:`granularity_overheads`: finer granularities multiply boundary
crossings; coarser ones forfeit heterogeneity.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Protocol

from repro.core.cost_model import OffloadCostModel
from repro.core.pipeline import Pipeline
from repro.errors import SchedulingError
from repro.hw.cpu import CpuModel
from repro.hw.ndp import NdpSystemModel
from repro.hw.timing import PhaseTime
from repro.model import KernelWorkload


class Placement(str, enum.Enum):
    """A named execution target slot in the scheduler's registry."""

    CPU = "cpu"
    NDP = "ndp"
    GPU = "gpu"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ExecutionTarget(Protocol):
    """What the scheduler needs from a machine model."""

    def execute(self, workload: KernelWorkload) -> PhaseTime:  # pragma: no cover
        ...


class SchedulingPolicy(enum.Enum):
    COST_AWARE = "cost_aware"
    NAIVE = "naive"
    ALL_CPU = "all_cpu"
    ALL_NDP = "all_ndp"


@dataclass(frozen=True)
class Schedule:
    """A complete placement decision with its predicted cost.

    ``predicted_total`` is the *work-conserving* prediction: the sum of
    every stage's execution time plus the Eq. 1 overhead.  On a chain it
    equals the executor's makespan; on a branching DAG the DES executor
    can beat it by overlapping independent branches on distinct devices
    (:class:`repro.core.executor.ExecutionReport.total_time` is the
    makespan ground truth).
    """

    policy: SchedulingPolicy
    assignments: dict[str, Placement]
    stage_times: dict[str, PhaseTime]
    crossing_bytes: tuple[float, ...]
    scheduling_overhead: float
    predicted_total: float
    #: The (src, dst) placements of each crossing edge, aligned with
    #: ``crossing_bytes`` — decides which physical link each boundary pays.
    crossing_pairs: tuple[tuple[Placement, Placement], ...] = ()

    @property
    def n_boundaries(self) -> int:
        return len(self.crossing_bytes)

    @property
    def placements_used(self) -> frozenset[Placement]:
        return frozenset(self.assignments.values())

    @property
    def overhead_fraction(self) -> float:
        """Scheduling overhead as a fraction of predicted runtime — the
        §VI-A metric (3.8 % small / 4.9 % large)."""
        if self.predicted_total == 0:
            return 0.0
        return self.scheduling_overhead / self.predicted_total


@dataclass
class CostAwareScheduler:
    """Places pipeline stages onto the registered execution targets."""

    host: CpuModel
    ndp: NdpSystemModel
    cost_model: OffloadCostModel
    gpu: ExecutionTarget | None = None
    _targets: dict[Placement, ExecutionTarget] = field(
        init=False, repr=False, default_factory=dict
    )
    _time_cache: dict = field(default_factory=dict, repr=False)
    #: Bumped on every ``register_target`` call; stands in for the machine
    #: objects in :func:`repro.core.signature.target_registry_fingerprint`
    #: so memoized schedules never outlive a registry change.
    registry_version: int = field(init=False, default=0, repr=False)

    def __post_init__(self) -> None:
        self._targets = {Placement.CPU: self.host, Placement.NDP: self.ndp}
        if self.gpu is not None:
            self._targets[Placement.GPU] = self.gpu

    # ------------------------------------------------------------------
    # Target registry
    # ------------------------------------------------------------------
    @property
    def targets(self) -> tuple[Placement, ...]:
        """Registered targets, in registration order."""
        return tuple(self._targets)

    def target_machine(self, placement: Placement) -> ExecutionTarget:
        try:
            return self._targets[placement]
        except KeyError:
            raise SchedulingError(
                f"no machine registered for target {placement!r}"
            ) from None

    def register_target(
        self, placement: Placement, machine: ExecutionTarget
    ) -> None:
        """Add (or replace) an execution target.  Cached stage times for
        the slot are dropped so a swapped machine re-times cleanly, and
        the registry version is bumped so signature-keyed caches above
        this layer invalidate too."""
        self._targets[placement] = machine
        self.registry_version += 1
        self._time_cache = {
            key: value
            for key, value in self._time_cache.items()
            if key[1] is not placement
        }

    # ------------------------------------------------------------------
    # Stage timing on each target
    # ------------------------------------------------------------------
    def stage_time(self, pipeline: Pipeline, name: str, placement: Placement) -> PhaseTime:
        # Keyed by the (hashable, frozen) workload itself: identical
        # workloads share entries across pipelines, and holding the
        # reference prevents the id-reuse aliasing a raw id() key would
        # suffer.
        workload = pipeline.stage(name).workload
        key = (workload, placement)
        if key not in self._time_cache:
            self._time_cache[key] = self.target_machine(placement).execute(workload)
        return self._time_cache[key]

    # ------------------------------------------------------------------
    # Assignment evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self, pipeline: Pipeline, assignments: dict[str, Placement]
    ) -> Schedule:
        """Predict total runtime + Eq. 1 overhead for one assignment."""
        missing = set(pipeline.stage_names) - set(assignments)
        if missing:
            raise SchedulingError(f"assignment missing stages: {sorted(missing)}")
        stage_times = {
            name: self.stage_time(pipeline, name, assignments[name])
            for name in pipeline.stage_names
        }
        crossing_edges = [
            edge
            for edge in pipeline.edges
            if assignments[edge.src] is not assignments[edge.dst]
        ]
        crossing = tuple(edge.nbytes for edge in crossing_edges)
        pairs = tuple(
            (assignments[edge.src], assignments[edge.dst])
            for edge in crossing_edges
        )
        overhead = sum(
            self.cost_model.boundary_cost(nbytes, pair)
            for nbytes, pair in zip(crossing, pairs)
        )
        total = sum(t.total for t in stage_times.values()) + overhead
        return Schedule(
            policy=SchedulingPolicy.COST_AWARE,
            assignments=dict(assignments),
            stage_times=stage_times,
            crossing_bytes=crossing,
            scheduling_overhead=overhead,
            predicted_total=total,
            crossing_pairs=pairs,
        )

    # ------------------------------------------------------------------
    # Policies
    # ------------------------------------------------------------------
    def schedule(
        self,
        pipeline: Pipeline,
        policy: SchedulingPolicy = SchedulingPolicy.COST_AWARE,
        warm_start: dict[str, Placement] | None = None,
        exclude: frozenset[Placement] | None = None,
    ) -> Schedule:
        """Place ``pipeline`` under ``policy``.

        ``warm_start`` optionally seeds the cost-aware DP with a known
        complete assignment (typically the cached placement of the
        nearest same-structure job of a different size): its evaluated
        total becomes a branch-and-bound incumbent that prunes strictly
        dominated DP states.  The search stays exact — pruning never
        removes an optimal (or tie-optimal) state, so the returned
        schedule is bit-identical to the cold search.  Other policies
        ignore the hint.

        ``exclude`` removes targets from consideration without touching
        the registry — the degraded-placement path after a permanent
        lane failure (:mod:`repro.core.faults`): the DP re-solves
        *exactly* over the surviving targets (e.g. NDP dead ⇒ the best
        CPU/GPU placement).  Fixed policies whose target is excluded
        raise :class:`SchedulingError`, as does excluding everything.
        """
        excluded = frozenset(exclude) if exclude else frozenset()
        targets = tuple(t for t in self.targets if t not in excluded)
        if not targets:
            raise SchedulingError(
                "every registered target is excluded; nothing can host "
                "the pipeline"
            )
        if policy is SchedulingPolicy.ALL_CPU:
            if Placement.CPU in excluded:
                raise SchedulingError(
                    "policy ALL_CPU cannot run with target 'cpu' excluded"
                )
            assignment = {n: Placement.CPU for n in pipeline.stage_names}
            result = self.evaluate(pipeline, assignment)
        elif policy is SchedulingPolicy.ALL_NDP:
            if Placement.NDP in excluded:
                raise SchedulingError(
                    "policy ALL_NDP cannot run with target 'ndp' excluded"
                )
            assignment = {n: Placement.NDP for n in pipeline.stage_names}
            result = self.evaluate(pipeline, assignment)
        elif policy is SchedulingPolicy.NAIVE:
            assignment = {
                name: min(
                    targets,
                    key=lambda t: self.stage_time(pipeline, name, t).total,
                )
                for name in pipeline.stage_names
            }
            result = self.evaluate(pipeline, assignment)
        elif policy is SchedulingPolicy.COST_AWARE:
            result = self._dag_optimal(pipeline, warm_start, targets)
        else:  # pragma: no cover - exhaustive enum
            raise SchedulingError(f"unknown policy {policy}")
        return replace(result, policy=policy)

    #: Relative slack on the warm-start incumbent before a DP state is
    #: pruned.  The DP accumulates costs in walk order while ``evaluate``
    #: sums stage times first, so the same assignment can differ by a few
    #: ulps between the two; 1e-9 relative dwarfs that float noise while
    #: still discarding essentially every strictly-worse state, so
    #: optimal and tie-optimal states provably survive.
    WARM_START_SLACK = 1e-9

    def _dag_optimal(
        self,
        pipeline: Pipeline,
        warm_start: dict[str, Placement] | None = None,
        targets: tuple[Placement, ...] | None = None,
    ) -> Schedule:
        """Exact topological-order DP over placements.

        Walk the stages in topological order; the DP state after step i is
        the placement tuple of the *live* stages — those whose successors
        are not all processed yet — because only they can still influence
        future edge-crossing costs.  Dead stages are projected out, which
        is what keeps the state space at targets^(frontier width) instead
        of targets^stages: the 6-stage chain explores 12 states total
        where the old exhaustive search enumerated 64 assignments.

        ``warm_start`` (a complete assignment for this pipeline's stage
        names over registered targets) is evaluated once and its total
        used as a branch-and-bound bound: a partial state whose
        accumulated cost already exceeds it cannot finish below the
        incumbent (costs only ever grow), so dropping it changes nothing
        about the final argmin — including tie-breaks, because surviving
        states keep their relative insertion order and every
        equal-to-optimal state's accumulated cost is bounded by its own
        final total, which pruning's slack keeps safe.
        """
        if targets is None:
            targets = self.targets
        bound = None
        if warm_start is not None:
            bound = self._warm_start_bound(pipeline, warm_start, targets)
        order = pipeline.topological_order
        position = {name: i for i, name in enumerate(order)}
        last_use = {
            name: max(
                (position[s] for s in pipeline.successors(name)),
                default=position[name],
            )
            for name in order
        }

        # state: tuple of (live stage, placement) pairs, sorted by name
        #   -> (accumulated cost, assignments so far)
        states: dict[tuple, tuple[float, dict[str, Placement]]] = {
            (): (0.0, {})
        }
        for i, name in enumerate(order):
            in_edges = pipeline.in_edges(name)
            time_on = {
                t: self.stage_time(pipeline, name, t).total for t in targets
            }
            new_states: dict[tuple, tuple[float, dict[str, Placement]]] = {}
            for live, (cost, assignments) in states.items():
                live_map = dict(live)
                for target in targets:
                    candidate = cost + time_on[target]
                    for edge in in_edges:
                        if live_map[edge.src] is not target:
                            candidate += self.cost_model.boundary_cost(
                                edge.nbytes, (live_map[edge.src], target)
                            )
                    if bound is not None and candidate > bound:
                        continue
                    next_live = {
                        k: v for k, v in live_map.items() if last_use[k] > i
                    }
                    if last_use[name] > i:
                        next_live[name] = target
                    key = tuple(sorted(next_live.items()))
                    incumbent = new_states.get(key)
                    if incumbent is None or candidate < incumbent[0]:
                        new_states[key] = (
                            candidate,
                            {**assignments, name: target},
                        )
            states = new_states
        _cost, best = min(states.values(), key=lambda entry: entry[0])
        return self.evaluate(pipeline, best)

    def _warm_start_bound(
        self,
        pipeline: Pipeline,
        warm_start: dict[str, Placement],
        targets: tuple[Placement, ...] | None = None,
    ) -> float | None:
        """The pruning bound a warm-start hint buys, or ``None`` when the
        hint does not fit this pipeline (different stage names) or names
        a target outside the allowed set (unregistered, or excluded by a
        degraded search) — a stale hint degrades to a cold search, never
        an error."""
        if set(warm_start) != set(pipeline.stage_names):
            return None
        allowed = set(self.targets if targets is None else targets)
        if any(p not in allowed for p in warm_start.values()):
            return None
        total = self.evaluate(pipeline, warm_start).predicted_total
        return total * (1.0 + self.WARM_START_SLACK)

    @staticmethod
    def normalize_placements(
        pipeline: Pipeline, assignments: dict[str, Placement]
    ) -> tuple[Placement, ...]:
        """A complete assignment as placements in topological-stage
        order — the name-free form the framework's warm-start index
        stores, so same-shape pipelines with different stage names (e.g.
        k-point DAGs built under different naming conventions) can seed
        each other's searches."""
        return tuple(assignments[name] for name in pipeline.topological_order)

    @staticmethod
    def rehydrate_placements(
        pipeline: Pipeline, placements: tuple[Placement, ...]
    ) -> dict[str, Placement] | None:
        """Rebind a normalized placement tuple to ``pipeline``'s stage
        names (the inverse of :meth:`normalize_placements` under the
        pipeline's own topological order), or ``None`` when the lengths
        disagree — a stale hint degrades to a cold search, never an
        error."""
        order = pipeline.topological_order
        if len(placements) != len(order):
            return None
        return dict(zip(order, placements))

    def _exhaustive_best(self, pipeline: Pipeline) -> Schedule:
        """Brute-force enumeration over targets^stages — kept as the
        oracle the DP is validated against on small graphs (<= 8 stages
        stays comfortably enumerable)."""
        names = pipeline.stage_names
        best: Schedule | None = None
        for choices in itertools.product(self.targets, repeat=len(names)):
            candidate = self.evaluate(pipeline, dict(zip(names, choices)))
            if best is None or candidate.predicted_total < best.predicted_total:
                best = candidate
        assert best is not None
        return best


# ---------------------------------------------------------------------------
# Offload-granularity study (§IV-A1)
# ---------------------------------------------------------------------------

#: Relative number of potential placement boundaries per pipeline stage at
#: each granularity.  Instruction-level offloading re-crosses the boundary
#: roughly once per dependent instruction window; basic blocks amortize
#: tens of instructions; functions cross at most once per stage edge;
#: kernel-level (whole pipeline) never crosses.
GRANULARITY_CROSSINGS_PER_STAGE = {
    "instruction": 512,
    "basic_block": 32,
    "function": 1,
    "kernel": 0,
}


def best_homogeneous_schedule(
    pipeline: Pipeline, scheduler: CostAwareScheduler
) -> Schedule:
    """The cheapest single-target placement over the registered targets —
    the schedule whole-kernel offloading is charged as (one boundary-free
    region must live entirely on one machine)."""
    candidates = [
        scheduler.evaluate(
            pipeline, {name: target for name in pipeline.stage_names}
        )
        for target in scheduler.targets
    ]
    return min(candidates, key=lambda schedule: schedule.predicted_total)


def granularity_overheads(
    pipeline: Pipeline,
    scheduler: CostAwareScheduler,
) -> dict[str, float]:
    """Eq. 1 overhead each offload granularity would pay.

    Instruction/block/function granularities pay for the placement the
    cost-aware scheduler chose: finer granularities split each crossing
    edge's payload across many boundary crossings — the DT total stays
    (same bytes overall) but each crossing re-pays latency + CXT, which
    is what makes instruction- and block-level offloading unattractive
    (paper observation 1 in §IV-A1).

    Kernel granularity cannot cross at all, so it forfeits heterogeneity:
    it is charged as the best *homogeneous* schedule
    (:func:`best_homogeneous_schedule`), whose Eq. 1 overhead is zero by
    construction — no edge crosses a placement boundary.  Its runtime
    penalty shows up in ``predicted_total``, not here.
    """
    base = scheduler.schedule(pipeline, SchedulingPolicy.COST_AWARE)
    results: dict[str, float] = {}
    for granularity, crossings in GRANULARITY_CROSSINGS_PER_STAGE.items():
        if crossings == 0:
            homogeneous = best_homogeneous_schedule(pipeline, scheduler)
            results[granularity] = homogeneous.scheduling_overhead
            continue
        overhead = 0.0
        for nbytes, pair in zip(base.crossing_bytes, base.crossing_pairs):
            per_crossing = nbytes / crossings
            overhead += crossings * scheduler.cost_model.boundary_cost(
                per_crossing, pair
            )
        results[granularity] = overhead
    return results
