"""Cost-aware workload partitioning and scheduling (paper §IV-A).

Given the LR-TDDFT pipeline, the two execution targets (the host CPU and
the NDP system) and the offload cost model, the scheduler picks a
placement per *function* (the paper's chosen granularity) minimizing

    sum of stage execution times  +  Eq. 1 scheduling overhead,

by exhaustive enumeration — the pipeline has six stages, so the 2^6
assignment space is tiny and the result is provably optimal under the
model.  Alternative policies reproduce the paper's comparisons:

- ``ALL_CPU`` / ``ALL_NDP``: homogeneous placements;
- ``NAIVE``: per-stage greedy on raw kernel time, ignoring DT/CXT — what a
  boundedness-only offloader (no cost model) would do.

The granularity ablation (§IV-A1) lives in
:func:`granularity_overheads`: finer granularities multiply boundary
crossings; coarser ones forfeit heterogeneity.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.core.cost_model import OffloadCostModel
from repro.core.pipeline import Pipeline
from repro.errors import SchedulingError
from repro.hw.cpu import CpuModel
from repro.hw.ndp import NdpSystemModel
from repro.hw.timing import PhaseTime


class Placement(str, enum.Enum):
    CPU = "cpu"
    NDP = "ndp"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class SchedulingPolicy(enum.Enum):
    COST_AWARE = "cost_aware"
    NAIVE = "naive"
    ALL_CPU = "all_cpu"
    ALL_NDP = "all_ndp"


@dataclass(frozen=True)
class Schedule:
    """A complete placement decision with its predicted cost."""

    policy: SchedulingPolicy
    assignments: dict[str, Placement]
    stage_times: dict[str, PhaseTime]
    crossing_bytes: tuple[float, ...]
    scheduling_overhead: float
    predicted_total: float

    @property
    def n_boundaries(self) -> int:
        return len(self.crossing_bytes)

    def overhead_fraction(self) -> float:
        """Scheduling overhead as a fraction of predicted runtime — the
        §VI-A metric (3.8 % small / 4.9 % large)."""
        if self.predicted_total == 0:
            return 0.0
        return self.scheduling_overhead / self.predicted_total


@dataclass
class CostAwareScheduler:
    """Places pipeline stages on the CPU or the NDP side."""

    host: CpuModel
    ndp: NdpSystemModel
    cost_model: OffloadCostModel
    _time_cache: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Stage timing on each target
    # ------------------------------------------------------------------
    def stage_time(self, pipeline: Pipeline, name: str, placement: Placement) -> PhaseTime:
        # Keyed by the (hashable, frozen) pipeline itself: identical
        # problems share entries, and holding the reference prevents the
        # id-reuse aliasing a raw id() key would suffer.
        key = (pipeline.problem, name, placement)
        if key not in self._time_cache:
            workload = pipeline.stage(name).workload
            machine = self.host if placement is Placement.CPU else self.ndp
            self._time_cache[key] = machine.execute(workload)
        return self._time_cache[key]

    # ------------------------------------------------------------------
    # Assignment evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self, pipeline: Pipeline, assignments: dict[str, Placement]
    ) -> Schedule:
        """Predict total runtime + Eq. 1 overhead for one assignment."""
        missing = set(pipeline.stage_names) - set(assignments)
        if missing:
            raise SchedulingError(f"assignment missing stages: {sorted(missing)}")
        stage_times = {
            name: self.stage_time(pipeline, name, assignments[name])
            for name in pipeline.stage_names
        }
        crossing = tuple(
            edge.nbytes
            for edge in pipeline.edges
            if assignments[edge.src] is not assignments[edge.dst]
        )
        overhead = self.cost_model.schedule_overhead(list(crossing))
        total = sum(t.total for t in stage_times.values()) + overhead
        return Schedule(
            policy=SchedulingPolicy.COST_AWARE,
            assignments=dict(assignments),
            stage_times=stage_times,
            crossing_bytes=crossing,
            scheduling_overhead=overhead,
            predicted_total=total,
        )

    # ------------------------------------------------------------------
    # Policies
    # ------------------------------------------------------------------
    def schedule(
        self,
        pipeline: Pipeline,
        policy: SchedulingPolicy = SchedulingPolicy.COST_AWARE,
    ) -> Schedule:
        if policy is SchedulingPolicy.ALL_CPU:
            assignment = {n: Placement.CPU for n in pipeline.stage_names}
            result = self.evaluate(pipeline, assignment)
        elif policy is SchedulingPolicy.ALL_NDP:
            assignment = {n: Placement.NDP for n in pipeline.stage_names}
            result = self.evaluate(pipeline, assignment)
        elif policy is SchedulingPolicy.NAIVE:
            assignment = {
                name: (
                    Placement.CPU
                    if self.stage_time(pipeline, name, Placement.CPU).total
                    <= self.stage_time(pipeline, name, Placement.NDP).total
                    else Placement.NDP
                )
                for name in pipeline.stage_names
            }
            result = self.evaluate(pipeline, assignment)
        elif policy is SchedulingPolicy.COST_AWARE:
            result = self._exhaustive_best(pipeline)
        else:  # pragma: no cover - exhaustive enum
            raise SchedulingError(f"unknown policy {policy}")
        return Schedule(
            policy=policy,
            assignments=result.assignments,
            stage_times=result.stage_times,
            crossing_bytes=result.crossing_bytes,
            scheduling_overhead=result.scheduling_overhead,
            predicted_total=result.predicted_total,
        )

    def _exhaustive_best(self, pipeline: Pipeline) -> Schedule:
        names = pipeline.stage_names
        best: Schedule | None = None
        for choices in itertools.product(
            (Placement.CPU, Placement.NDP), repeat=len(names)
        ):
            candidate = self.evaluate(pipeline, dict(zip(names, choices)))
            if best is None or candidate.predicted_total < best.predicted_total:
                best = candidate
        assert best is not None
        return best


# ---------------------------------------------------------------------------
# Offload-granularity study (§IV-A1)
# ---------------------------------------------------------------------------

#: Relative number of potential placement boundaries per pipeline stage at
#: each granularity.  Instruction-level offloading re-crosses the boundary
#: roughly once per dependent instruction window; basic blocks amortize
#: tens of instructions; functions cross at most once per stage edge;
#: kernel-level (whole pipeline) never crosses.
GRANULARITY_CROSSINGS_PER_STAGE = {
    "instruction": 512,
    "basic_block": 32,
    "function": 1,
    "kernel": 0,
}


def granularity_overheads(
    pipeline: Pipeline,
    scheduler: CostAwareScheduler,
) -> dict[str, float]:
    """Eq. 1 overhead each offload granularity would pay for the placement
    the cost-aware scheduler chose.

    Finer granularities split each crossing edge's payload across many
    boundary crossings: the DT total stays (same bytes overall) but each
    crossing re-pays latency + CXT, which is what makes instruction- and
    block-level offloading unattractive (paper observation 1 in §IV-A1).
    """
    base = scheduler.schedule(pipeline, SchedulingPolicy.COST_AWARE)
    results: dict[str, float] = {}
    for granularity, crossings in GRANULARITY_CROSSINGS_PER_STAGE.items():
        if crossings == 0:
            # Whole-kernel offload: no boundaries, but also no
            # heterogeneity: charged as the best homogeneous schedule.
            results[granularity] = 0.0
            continue
        overhead = 0.0
        for nbytes in base.crossing_bytes:
            per_crossing = nbytes / crossings
            overhead += crossings * scheduler.cost_model.boundary_cost(
                per_crossing
            )
        results[granularity] = overhead
    return results
