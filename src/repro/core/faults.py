"""Deterministic fault injection and retry policies for the serving stack.

A :class:`FaultPlan` describes *when lanes break* in virtual time:

- **transient outages** — half-open windows ``[start, end)`` during which
  a lane (a device lane such as ``"ndp"`` or a wire lane such as
  ``"link:cpu-ndp"``) is unavailable.  A task granted the lane inside a
  window waits the window out; a window that *starts* while a task is in
  service kills the whole job at the window start (advance-knowledge,
  preemption-free semantics — see
  :func:`repro.hw.engine.resolve_faulty_service`).
- **permanent failures** — a device lane dies at time ``t`` and never
  comes back.  Jobs released after the death are re-placed through the
  exact scheduling DP with the dead target excluded (graceful
  degradation, e.g. NDP → CPU).

Plans are plain data and deterministic: the same plan (or the same
``seed`` via :func:`poisson_fault_plan`) always yields the same failure
set, retry schedule, and final report.  An *empty* plan is contractually
bit-identical to passing no plan at all — the executor never enters the
fault-aware code path, so all four simulation backends keep producing
the exact same floats.

:class:`RetryPolicy` governs what happens after a failure: a failed job
re-enters the open queue at ``fail_time + backoff(attempt)`` with
exponential backoff in virtual time, up to ``max_attempts`` tries and an
optional per-job timeout.  :class:`ResilienceReport` is the per-batch
summary surfaced on ``NdftBatchResult.resilience``.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.hw.engine import resolve_faulty_service

__all__ = [
    "FaultPlan",
    "RetryPolicy",
    "RunFailure",
    "AttemptRecord",
    "ResilienceReport",
    "poisson_fault_plan",
]

_WIRE_PREFIX = "link:"


def _normalize_outages(
    outages: tuple[tuple[str, float, float], ...],
    dead: dict[str, float],
) -> tuple[tuple[str, float, float], ...]:
    """Sort, merge, and clamp transient windows per lane."""
    by_lane: dict[str, list[tuple[float, float]]] = {}
    for entry in outages:
        try:
            lane, start, end = entry
        except (TypeError, ValueError) as exc:
            raise ConfigError(
                f"outage entries must be (lane, start, end) triples, got {entry!r}"
            ) from exc
        lane = str(lane)
        start = float(start)
        end = float(end)
        if not (start >= 0.0 and end > start):
            raise ConfigError(
                f"outage window on lane {lane!r} must satisfy 0 <= start < end, "
                f"got [{start}, {end})"
            )
        by_lane.setdefault(lane, []).append((start, end))
    normalized: list[tuple[str, float, float]] = []
    for lane in sorted(by_lane):
        dead_at = dead.get(lane)
        merged: list[list[float]] = []
        for start, end in sorted(by_lane[lane]):
            if dead_at is not None:
                # Windows at or past the permanent death are redundant:
                # the lane is already gone.
                if start >= dead_at:
                    continue
                end = min(end, dead_at)
                if end <= start:
                    continue
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        normalized.extend((lane, start, end) for start, end in merged)
    return tuple(normalized)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of lane outages and permanent failures.

    ``outages`` holds ``(lane, start, end)`` transient windows over device
    or wire lanes; ``permanent`` holds ``(lane, dead_at)`` pairs over
    *device* lanes only (a dead wire would partition the machine rather
    than degrade it, so permanent wire failures are rejected).  Windows
    are normalized on construction: sorted, merged per lane, and clamped
    at the lane's permanent death time.  ``seed``/``mtbf``/``mttr``/
    ``horizon`` are provenance metadata recorded by
    :func:`poisson_fault_plan` and carried into benchmark descriptors.
    """

    outages: tuple[tuple[str, float, float], ...] = ()
    permanent: tuple[tuple[str, float], ...] = ()
    seed: int | None = None
    mtbf: float | None = None
    mttr: float | None = None
    horizon: float | None = None

    def __post_init__(self) -> None:
        dead: dict[str, float] = {}
        for entry in self.permanent:
            try:
                lane, dead_at = entry
            except (TypeError, ValueError) as exc:
                raise ConfigError(
                    f"permanent entries must be (lane, dead_at) pairs, got {entry!r}"
                ) from exc
            lane = str(lane)
            dead_at = float(dead_at)
            if lane.startswith(_WIRE_PREFIX):
                raise ConfigError(
                    f"permanent failure on wire lane {lane!r} is not supported: "
                    "a dead link partitions the machine instead of degrading it "
                    "(use a transient outage window instead)"
                )
            if dead_at < 0.0:
                raise ConfigError(
                    f"permanent failure time for lane {lane!r} must be >= 0, "
                    f"got {dead_at}"
                )
            if lane in dead:
                dead_at = min(dead_at, dead[lane])
            dead[lane] = dead_at
        object.__setattr__(
            self,
            "permanent",
            tuple(sorted(dead.items())),
        )
        object.__setattr__(
            self,
            "outages",
            _normalize_outages(tuple(self.outages), dead),
        )
        windows: dict[str, list[tuple[float, float]]] = {}
        for lane, start, end in self.outages:
            windows.setdefault(lane, []).append((start, end))
        object.__setattr__(
            self,
            "_windows",
            {lane: tuple(spans) for lane, spans in windows.items()},
        )
        object.__setattr__(self, "_dead", dict(self.permanent))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when the plan carries no fault events at all."""
        return not self.outages and not self.permanent

    @property
    def lanes(self) -> frozenset[str]:
        """All lanes with at least one fault event."""
        return frozenset(self._windows) | frozenset(self._dead)

    def affects(self, lanes) -> bool:
        """True when any of ``lanes`` carries a fault event."""
        windows = self._windows
        dead = self._dead
        return any(lane in windows or lane in dead for lane in lanes)

    def windows_for(self, lane: str) -> tuple[tuple[float, float], ...]:
        return self._windows.get(lane, ())

    def dead_lanes(self) -> dict[str, float]:
        """Mapping of device lane -> permanent failure time."""
        return dict(self._dead)

    def event_times(self) -> tuple[float, ...]:
        """Sorted distinct fault event times (window starts + deaths).

        Job failures can only be triggered at these instants, which
        bounds the retry fixpoint iteration in the framework.
        """
        times = {start for _lane, start, _end in self.outages}
        times.update(self._dead.values())
        return tuple(sorted(times))

    def resolve_service(
        self, lane: str, grant: float, duration: float
    ) -> tuple[float, float | None, str | None]:
        """Resolve a task on ``lane`` granted at ``grant`` for ``duration``.

        Delegates to :func:`repro.hw.engine.resolve_faulty_service`;
        returns ``(service_start, fail_time_or_None, kind)``.
        """
        return resolve_faulty_service(
            self._windows.get(lane, ()), self._dead.get(lane), grant, duration
        )

    # ------------------------------------------------------------------
    # Descriptors
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """Stable content hash of the normalized fault timeline."""
        payload = repr((self.outages, self.permanent)).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()[:16]

    def to_json_dict(self) -> dict:
        """JSON-safe descriptor for benchmark reports.

        Two plans compare equal through this descriptor iff their
        normalized fault timelines match — ``bench_compare`` uses it to
        refuse trending across mismatched plans.
        """
        return {
            "seed": self.seed,
            "mtbf": self.mtbf,
            "mttr": self.mttr,
            "horizon": self.horizon,
            "lanes": sorted(self.lanes),
            "n_outages": len(self.outages),
            "n_permanent": len(self.permanent),
            "digest": self.digest(),
        }


@dataclass(frozen=True)
class RetryPolicy:
    """What happens after a fault kills a job.

    A failed job re-enters the open queue at
    ``fail_time + backoff(attempt)`` where
    ``backoff(k) = backoff_base * backoff_factor ** (k - 1)`` (exponential
    backoff in *virtual* time), for up to ``max_attempts`` total attempts.
    ``job_timeout`` (optional) abandons a job once its next attempt would
    start more than ``job_timeout`` seconds after its original arrival.
    ``backoff_base`` must be strictly positive: retries releasing strictly
    after the failure that caused them is what makes the retry fixpoint
    converge.
    """

    max_attempts: int = 3
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    job_timeout: float | None = None

    def __post_init__(self) -> None:
        if int(self.max_attempts) != self.max_attempts or self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be an integer >= 1, got {self.max_attempts!r}"
            )
        if not self.backoff_base > 0.0:
            raise ConfigError(
                f"backoff_base must be > 0 (retries must release strictly after "
                f"the failure), got {self.backoff_base!r}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if self.job_timeout is not None and not self.job_timeout > 0.0:
            raise ConfigError(
                f"job_timeout must be > 0 or None, got {self.job_timeout!r}"
            )

    def backoff(self, attempt: int) -> float:
        """Backoff delay after the ``attempt``-th (1-based) try failed."""
        return self.backoff_base * self.backoff_factor ** (attempt - 1)

    def to_json_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "job_timeout": self.job_timeout,
        }


@dataclass(frozen=True)
class RunFailure:
    """One simulated run killed by a fault event.

    ``job`` is the run's position in the ``execute_many`` submission
    list; ``time`` is the virtual fail time (a window start or the lane's
    permanent death); ``kind`` is ``"outage"`` or ``"permanent"``.
    """

    job: int
    time: float
    lane: str
    kind: str


@dataclass(frozen=True)
class AttemptRecord:
    """One attempt of one job in a resilient batch."""

    job_index: int
    attempt: int
    release: float
    completed: bool
    failure_time: float | None = None
    failure_lane: str | None = None
    failure_kind: str | None = None
    degraded: bool = False


@dataclass(frozen=True)
class ResilienceReport:
    """Per-batch resilience summary (``NdftBatchResult.resilience``).

    ``attempts`` lists every simulated attempt of the final fixpoint
    round; ``end_to_end_latencies`` maps each submitted job to its
    original-arrival→final-completion latency (``None`` when abandoned);
    ``busy_span`` covers *all* attempts of the final round, so
    ``goodput`` (completed jobs over the span) is directly comparable to
    ``throughput_all_attempts`` (work attempted over the same span).
    """

    plan: FaultPlan
    retry: RetryPolicy
    attempts: tuple[AttemptRecord, ...] = ()
    submitted: int = 0
    abandoned_jobs: tuple[int, ...] = ()
    end_to_end_latencies: tuple[float | None, ...] = field(default=())
    busy_span: float = 0.0

    @property
    def completed(self) -> int:
        return self.submitted - len(self.abandoned_jobs)

    @property
    def abandoned(self) -> int:
        return len(self.abandoned_jobs)

    @property
    def total_attempts(self) -> int:
        return len(self.attempts)

    @property
    def failed_attempts(self) -> int:
        return sum(1 for record in self.attempts if not record.completed)

    @property
    def recovered(self) -> int:
        """Jobs that completed on a retry (attempt > 1)."""
        return sum(
            1 for record in self.attempts if record.completed and record.attempt > 1
        )

    @property
    def degraded_attempts(self) -> int:
        return sum(1 for record in self.attempts if record.degraded)

    @property
    def availability(self) -> float:
        """Fraction of submitted jobs that eventually completed."""
        if self.submitted == 0:
            return 1.0
        return self.completed / self.submitted

    @property
    def goodput(self) -> float:
        """Completed jobs per second over the final round's busy span."""
        if self.busy_span <= 0.0:
            return 0.0
        return self.completed / self.busy_span

    @property
    def throughput_all_attempts(self) -> float:
        """All simulated attempts per second over the same busy span."""
        if self.busy_span <= 0.0:
            return 0.0
        return self.total_attempts / self.busy_span

    @property
    def post_fault_latencies(self) -> tuple[float, ...]:
        """End-to-end latencies of the jobs that completed."""
        return tuple(
            latency for latency in self.end_to_end_latencies if latency is not None
        )

    def _latency_percentile(self, q: float) -> float:
        from repro.core.arrivals import percentile

        latencies = self.post_fault_latencies
        if not latencies:
            return 0.0
        return percentile(latencies, q)

    @property
    def post_fault_p50(self) -> float:
        return self._latency_percentile(50.0)

    @property
    def post_fault_p99(self) -> float:
        return self._latency_percentile(99.0)

    def to_json_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "recovered": self.recovered,
            "abandoned": self.abandoned,
            "failed_attempts": self.failed_attempts,
            "total_attempts": self.total_attempts,
            "degraded_attempts": self.degraded_attempts,
            "availability": self.availability,
            "goodput": self.goodput,
            "throughput_all_attempts": self.throughput_all_attempts,
            "post_fault_p50": self.post_fault_p50,
            "post_fault_p99": self.post_fault_p99,
        }


def poisson_fault_plan(
    lanes,
    mtbf: float,
    mttr: float,
    horizon: float,
    seed: int = 0,
    permanent_after: float | None = None,
) -> FaultPlan:
    """Draw a seeded fault plan from exponential failure/repair clocks.

    Per lane (in sorted order, so the draw is independent of input
    ordering), outage starts arrive with mean spacing ``mtbf`` and last
    ``Exp(mttr)`` each, truncated at ``horizon``.  ``permanent_after``
    (optional) additionally kills each *device* lane permanently at its
    first outage start past that time.  Deterministic given ``seed``.
    """
    if not mtbf > 0.0:
        raise ConfigError(f"mtbf must be > 0, got {mtbf!r}")
    if not mttr > 0.0:
        raise ConfigError(f"mttr must be > 0, got {mttr!r}")
    if not horizon > 0.0:
        raise ConfigError(f"horizon must be > 0, got {horizon!r}")
    generator = random.Random(seed)
    outages: list[tuple[str, float, float]] = []
    permanent: list[tuple[str, float]] = []
    for lane in sorted(str(lane) for lane in lanes):
        now = 0.0
        while True:
            now += generator.expovariate(1.0 / mtbf)
            if now >= horizon:
                break
            if (
                permanent_after is not None
                and now >= permanent_after
                and not lane.startswith(_WIRE_PREFIX)
            ):
                permanent.append((lane, now))
                break
            duration = generator.expovariate(1.0 / mttr)
            outages.append((lane, now, now + duration))
            now += duration
    return FaultPlan(
        outages=tuple(outages),
        permanent=tuple(permanent),
        seed=seed,
        mtbf=mtbf,
        mttr=mttr,
        horizon=horizon,
    )
