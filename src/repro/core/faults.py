"""Deterministic fault injection and retry policies for the serving stack.

A :class:`FaultPlan` describes *when lanes break* in virtual time:

- **transient outages** — half-open windows ``[start, end)`` during which
  a lane (a device lane such as ``"ndp"`` or a wire lane such as
  ``"link:cpu-ndp"``) is unavailable.  A task granted the lane inside a
  window waits the window out; a window that *starts* while a task is in
  service kills the whole job at the window start (advance-knowledge,
  preemption-free semantics — see
  :func:`repro.hw.engine.resolve_faulty_service`).
- **permanent failures** — a device lane dies at time ``t`` and never
  comes back.  Jobs released after the death are re-placed through the
  exact scheduling DP with the dead target excluded (graceful
  degradation, e.g. NDP → CPU).
- **slowdown windows** (:class:`SlowdownWindow`) — partial degradation:
  during ``[start, end)`` the lane serves at ``1/factor`` of its
  nominal rate, so services overlapping the window accrue piecewise-
  inflated durations instead of dying (see
  :func:`repro.hw.engine.inflate_service`).  Slowdowns never kill a
  job on their own, but the inflated span *is* what the outage and
  permanent-death checks run against.

Plans compose: :meth:`FaultPlan.merge` unions two plans' timelines
(re-normalizing per lane), which is how the correlated-shock process of
:func:`shock_fault_plan` — one shared seeded clock striking whole lane
*groups* at once — layers on top of independent per-lane
:func:`poisson_fault_plan` windows and :func:`slowdown_fault_plan`
degradation.

Plans are plain data and deterministic: the same plan (or the same
``seed`` via the drawing helpers) always yields the same failure set,
retry schedule, and final report.  An *empty* plan is contractually
bit-identical to passing no plan at all — the executor never enters the
fault-aware code path, so all four simulation backends keep producing
the exact same floats.

:class:`RetryPolicy` governs what happens after a failure: a failed job
re-enters the open queue at ``fail_time + backoff(attempt)`` with
exponential backoff in virtual time (clamped at ``backoff_max`` when
set), up to ``max_attempts`` tries and an optional per-job timeout.
``checkpoint=True`` additionally records each failed run's completed-
stage frontier, so the retry re-enters as a *residual pipeline* (the
suffix past the checkpoint) instead of redoing finished work.
:class:`ResilienceReport` is the per-batch summary surfaced on
``NdftBatchResult.resilience``.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.hw.engine import resolve_degraded_service
from repro.stats import percentile

__all__ = [
    "FaultPlan",
    "SlowdownWindow",
    "RetryPolicy",
    "RunFailure",
    "AttemptRecord",
    "ResilienceReport",
    "poisson_fault_plan",
    "shock_fault_plan",
    "slowdown_fault_plan",
]

_WIRE_PREFIX = "link:"


def _normalize_outages(
    outages: tuple[tuple[str, float, float], ...],
    dead: dict[str, float],
) -> tuple[tuple[str, float, float], ...]:
    """Sort, merge, and clamp transient windows per lane."""
    by_lane: dict[str, list[tuple[float, float]]] = {}
    for entry in outages:
        try:
            lane, start, end = entry
        except (TypeError, ValueError) as exc:
            raise ConfigError(
                f"outage entries must be (lane, start, end) triples, got {entry!r}"
            ) from exc
        lane = str(lane)
        start = float(start)
        end = float(end)
        if not (start >= 0.0 and end > start):
            raise ConfigError(
                f"outage window on lane {lane!r} must satisfy 0 <= start < end, "
                f"got [{start}, {end})"
            )
        by_lane.setdefault(lane, []).append((start, end))
    normalized: list[tuple[str, float, float]] = []
    for lane in sorted(by_lane):
        dead_at = dead.get(lane)
        merged: list[list[float]] = []
        for start, end in sorted(by_lane[lane]):
            if dead_at is not None:
                # Windows at or past the permanent death are redundant:
                # the lane is already gone.
                if start >= dead_at:
                    continue
                end = min(end, dead_at)
                if end <= start:
                    continue
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        normalized.extend((lane, start, end) for start, end in merged)
    return tuple(normalized)


@dataclass(frozen=True)
class SlowdownWindow:
    """Partial degradation of one lane: during ``[start, end)`` the lane
    serves at ``1/factor`` of its nominal rate.

    Unlike an outage, a slowdown never kills a job — a service
    overlapping the window accrues a piecewise-inflated wall duration
    (:func:`repro.hw.engine.inflate_service`) and completes late.
    ``factor`` must be > 1.0: a factor of 1.0 is a no-op that would
    still route its shard off the replay backends, and a factor below
    1.0 would be a speedup, not a degradation.
    """

    lane: str
    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "lane", str(self.lane))
        object.__setattr__(self, "start", float(self.start))
        object.__setattr__(self, "end", float(self.end))
        object.__setattr__(self, "factor", float(self.factor))
        if not (self.start >= 0.0 and self.end > self.start):
            raise ConfigError(
                f"slowdown window on lane {self.lane!r} must satisfy "
                f"0 <= start < end, got [{self.start}, {self.end})"
            )
        if not self.factor > 1.0:
            raise ConfigError(
                f"slowdown factor on lane {self.lane!r} must be > 1.0 "
                f"(an inflation), got {self.factor}"
            )


def _normalize_slowdowns(
    slowdowns,
    dead: dict[str, float],
) -> tuple[SlowdownWindow, ...]:
    """Sort and clamp slowdown windows per lane; reject overlaps.

    Overlapping slowdowns on one lane have no defined composite rate
    (factors do not merge the way outage windows union), so they are a
    configuration error rather than silently combined.  Windows at or
    past the lane's permanent death are dropped; windows spanning it
    are clamped — a dead lane cannot be slow.
    """
    by_lane: dict[str, list[SlowdownWindow]] = {}
    for entry in slowdowns:
        if not isinstance(entry, SlowdownWindow):
            try:
                lane, start, end, factor = entry
            except (TypeError, ValueError) as exc:
                raise ConfigError(
                    "slowdown entries must be SlowdownWindow or "
                    f"(lane, start, end, factor), got {entry!r}"
                ) from exc
            entry = SlowdownWindow(lane, start, end, factor)
        by_lane.setdefault(entry.lane, []).append(entry)
    normalized: list[SlowdownWindow] = []
    for lane in sorted(by_lane):
        dead_at = dead.get(lane)
        previous_end = None
        for window in sorted(
            by_lane[lane], key=lambda w: (w.start, w.end)
        ):
            if dead_at is not None:
                if window.start >= dead_at:
                    continue
                if window.end > dead_at:
                    window = SlowdownWindow(
                        lane, window.start, dead_at, window.factor
                    )
            if previous_end is not None and window.start < previous_end:
                raise ConfigError(
                    f"slowdown windows on lane {lane!r} overlap at "
                    f"{window.start}: overlapping factors have no "
                    "defined composite rate"
                )
            previous_end = window.end
            normalized.append(window)
    return tuple(normalized)


def _merged_meta(a, b):
    """Provenance metadata of a merged plan: kept when unambiguous
    (one side unset, or both agree), dropped otherwise — the composed
    timeline is still fully described by the digest."""
    if a is None:
        return b
    if b is None:
        return a
    return a if a == b else None


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of lane outages and permanent failures.

    ``outages`` holds ``(lane, start, end)`` transient windows over device
    or wire lanes; ``permanent`` holds ``(lane, dead_at)`` pairs over
    *device* lanes only (a dead wire would partition the machine rather
    than degrade it, so permanent wire failures are rejected);
    ``slowdowns`` holds :class:`SlowdownWindow` partial-degradation
    windows (plain ``(lane, start, end, factor)`` tuples are accepted
    too).  Everything is normalized on construction: sorted, merged
    (outages) or overlap-rejected (slowdowns) per lane, and clamped at
    the lane's permanent death time.  ``seed``/``mtbf``/``mttr``/
    ``horizon``/``shock_rate``/``shock_groups`` are provenance metadata
    recorded by the drawing helpers and carried into benchmark
    descriptors; :meth:`merge` keeps each field only when unambiguous.
    """

    outages: tuple[tuple[str, float, float], ...] = ()
    permanent: tuple[tuple[str, float], ...] = ()
    slowdowns: tuple[SlowdownWindow, ...] = ()
    seed: int | None = None
    mtbf: float | None = None
    mttr: float | None = None
    horizon: float | None = None
    shock_rate: float | None = None
    shock_groups: tuple[tuple[str, ...], ...] | None = None

    def __post_init__(self) -> None:
        dead: dict[str, float] = {}
        for entry in self.permanent:
            try:
                lane, dead_at = entry
            except (TypeError, ValueError) as exc:
                raise ConfigError(
                    f"permanent entries must be (lane, dead_at) pairs, got {entry!r}"
                ) from exc
            lane = str(lane)
            dead_at = float(dead_at)
            if lane.startswith(_WIRE_PREFIX):
                raise ConfigError(
                    f"permanent failure on wire lane {lane!r} is not supported: "
                    "a dead link partitions the machine instead of degrading it "
                    "(use a transient outage window instead)"
                )
            if dead_at < 0.0:
                raise ConfigError(
                    f"permanent failure time for lane {lane!r} must be >= 0, "
                    f"got {dead_at}"
                )
            if lane in dead:
                dead_at = min(dead_at, dead[lane])
            dead[lane] = dead_at
        object.__setattr__(
            self,
            "permanent",
            tuple(sorted(dead.items())),
        )
        object.__setattr__(
            self,
            "outages",
            _normalize_outages(tuple(self.outages), dead),
        )
        object.__setattr__(
            self,
            "slowdowns",
            _normalize_slowdowns(tuple(self.slowdowns), dead),
        )
        windows: dict[str, list[tuple[float, float]]] = {}
        for lane, start, end in self.outages:
            windows.setdefault(lane, []).append((start, end))
        object.__setattr__(
            self,
            "_windows",
            {lane: tuple(spans) for lane, spans in windows.items()},
        )
        object.__setattr__(self, "_dead", dict(self.permanent))
        slow: dict[str, list[tuple[float, float, float]]] = {}
        for window in self.slowdowns:
            slow.setdefault(window.lane, []).append(
                (window.start, window.end, window.factor)
            )
        object.__setattr__(
            self,
            "_slow",
            {lane: tuple(spans) for lane, spans in slow.items()},
        )
        if self.shock_groups is not None:
            object.__setattr__(
                self,
                "shock_groups",
                tuple(
                    tuple(str(lane) for lane in group)
                    for group in self.shock_groups
                ),
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when the plan carries no fault events at all."""
        return not self.outages and not self.permanent and not self.slowdowns

    @property
    def lanes(self) -> frozenset[str]:
        """All lanes with at least one fault event (slowdowns included)."""
        return (
            frozenset(self._windows)
            | frozenset(self._dead)
            | frozenset(self._slow)
        )

    def affects(self, lanes) -> bool:
        """True when any of ``lanes`` carries a fault event — an outage
        window, a permanent death, or a slowdown window.  This is the
        executor's routing predicate: an affected shard must run on the
        fault-aware engine path."""
        windows = self._windows
        dead = self._dead
        slow = self._slow
        return any(
            lane in windows or lane in dead or lane in slow for lane in lanes
        )

    def affects_lethally(self, lanes) -> bool:
        """True when any of ``lanes`` carries a *job-killing* event (an
        outage window or a permanent death).  Slowdown-only lanes
        inflate services but never fail them — the distinction picks
        which named reason the replay backends decline with."""
        windows = self._windows
        dead = self._dead
        return any(lane in windows or lane in dead for lane in lanes)

    def windows_for(self, lane: str) -> tuple[tuple[float, float], ...]:
        return self._windows.get(lane, ())

    def slowdowns_for(
        self, lane: str
    ) -> tuple[tuple[float, float, float], ...]:
        """The lane's ``(start, end, factor)`` slowdown spans, sorted
        and non-overlapping."""
        return self._slow.get(lane, ())

    def slowdown_lanes(self) -> frozenset[str]:
        """Lanes with at least one slowdown window."""
        return frozenset(self._slow)

    def dead_lanes(self) -> dict[str, float]:
        """Mapping of device lane -> permanent failure time."""
        return dict(self._dead)

    def event_times(self) -> tuple[float, ...]:
        """Sorted distinct fault event times (window starts + deaths).

        Job failures can only be triggered at these instants, which
        bounds the retry fixpoint iteration in the framework.  Slowdown
        boundaries are deliberately absent: a slowdown inflates a
        service but never kills it, so it cannot create a retry.
        """
        times = {start for _lane, start, _end in self.outages}
        times.update(self._dead.values())
        return tuple(sorted(times))

    def resolve_service(
        self, lane: str, grant: float, duration: float
    ) -> tuple[float, float, float | None, str | None]:
        """Resolve a task on ``lane`` granted at ``grant`` for ``duration``.

        Delegates to :func:`repro.hw.engine.resolve_degraded_service`;
        returns ``(service_start, wall_duration, fail_time_or_None,
        kind)`` — ``wall_duration`` is the slowdown-inflated service
        span (exactly ``duration`` when no slowdown overlaps).
        """
        return resolve_degraded_service(
            self._windows.get(lane, ()),
            self._slow.get(lane, ()),
            self._dead.get(lane),
            grant,
            duration,
        )

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def merge(self, other: "FaultPlan") -> "FaultPlan":
        """Union of two plans' fault timelines, re-normalized per lane.

        Outage windows concatenate and re-merge; permanent deaths keep
        the earliest per lane; slowdown windows concatenate (overlaps
        across the two plans are rejected, as within one plan).  This
        is how a correlated-shock plan (:func:`shock_fault_plan`)
        composes with independent :func:`poisson_fault_plan` windows.
        Provenance metadata survives only where unambiguous; the digest
        and JSON descriptor always describe the composed timeline.
        """
        return FaultPlan(
            outages=self.outages + other.outages,
            permanent=self.permanent + other.permanent,
            slowdowns=self.slowdowns + other.slowdowns,
            seed=_merged_meta(self.seed, other.seed),
            mtbf=_merged_meta(self.mtbf, other.mtbf),
            mttr=_merged_meta(self.mttr, other.mttr),
            horizon=_merged_meta(self.horizon, other.horizon),
            shock_rate=_merged_meta(self.shock_rate, other.shock_rate),
            shock_groups=_merged_meta(self.shock_groups, other.shock_groups),
        )

    # ------------------------------------------------------------------
    # Descriptors
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """Stable content hash of the normalized fault timeline.

        Slowdown-free plans hash exactly what they did before slowdowns
        existed, so pre-existing digests (committed benchmark
        descriptors) stay valid; any slowdown folds the normalized
        ``(lane, start, end, factor)`` spans into the payload.
        """
        timeline: tuple = (self.outages, self.permanent)
        if self.slowdowns:
            timeline = (
                self.outages,
                self.permanent,
                tuple(
                    (w.lane, w.start, w.end, w.factor)
                    for w in self.slowdowns
                ),
            )
        payload = repr(timeline).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()[:16]

    def to_json_dict(self) -> dict:
        """JSON-safe descriptor for benchmark reports.

        Two plans compare equal through this descriptor iff their
        normalized fault timelines match — ``bench_compare`` uses it to
        refuse trending across mismatched plans, and to gate
        availability/goodput only at matching descriptors.  A composed
        plan (:meth:`merge`) is fully described: the digest covers the
        merged timeline and the shock/slowdown fields say which shapes
        contributed.
        """
        return {
            "seed": self.seed,
            "mtbf": self.mtbf,
            "mttr": self.mttr,
            "horizon": self.horizon,
            "shock_rate": self.shock_rate,
            "shock_groups": (
                None
                if self.shock_groups is None
                else [list(group) for group in self.shock_groups]
            ),
            "lanes": sorted(self.lanes),
            "n_outages": len(self.outages),
            "n_permanent": len(self.permanent),
            "n_slowdowns": len(self.slowdowns),
            "slowdown_lanes": sorted(self.slowdown_lanes()),
            "digest": self.digest(),
        }


@dataclass(frozen=True)
class RetryPolicy:
    """What happens after a fault kills a job.

    A failed job re-enters the open queue at
    ``fail_time + backoff(attempt)`` where
    ``backoff(k) = backoff_base * backoff_factor ** (k - 1)`` (exponential
    backoff in *virtual* time), for up to ``max_attempts`` total attempts.
    ``backoff_max`` (optional) caps the delay: the uncapped geometric
    series grows without bound, so a large ``max_attempts`` would release
    late retries at absurd virtual times — or overflow the power to
    ``inf`` outright.  ``job_timeout`` (optional) abandons a job once its
    next attempt would start more than ``job_timeout`` seconds after its
    original arrival.  ``backoff_base`` must be strictly positive:
    retries releasing strictly after the failure that caused them is what
    makes the retry fixpoint converge.

    ``checkpoint=True`` turns retries into *resumes*: the frontier of
    stages the failed run had already completed is recorded at failure
    time, and the retry re-enters as the residual pipeline past that
    frontier (see :meth:`repro.core.framework.NdftFramework.run_many`),
    so finished work is never redone and ``job_timeout`` abandonment
    becomes far rarer.
    """

    max_attempts: int = 3
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_max: float | None = None
    job_timeout: float | None = None
    checkpoint: bool = False

    def __post_init__(self) -> None:
        if int(self.max_attempts) != self.max_attempts or self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be an integer >= 1, got {self.max_attempts!r}"
            )
        if not self.backoff_base > 0.0:
            raise ConfigError(
                f"backoff_base must be > 0 (retries must release strictly after "
                f"the failure), got {self.backoff_base!r}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if self.backoff_max is not None and not (
            self.backoff_max >= self.backoff_base
        ):
            raise ConfigError(
                f"backoff_max must be >= backoff_base "
                f"({self.backoff_base!r}) or None, got {self.backoff_max!r}"
            )
        if self.job_timeout is not None and not self.job_timeout > 0.0:
            raise ConfigError(
                f"job_timeout must be > 0 or None, got {self.job_timeout!r}"
            )

    def backoff(self, attempt: int) -> float:
        """Backoff delay after the ``attempt``-th (1-based) try failed,
        clamped at ``backoff_max`` when set (the clamp also absorbs a
        power that would otherwise overflow — CPython raises
        ``OverflowError`` for a float power past ~1e308 rather than
        returning ``inf``)."""
        try:
            delay = self.backoff_base * self.backoff_factor ** (attempt - 1)
        except OverflowError:
            delay = float("inf")
        if self.backoff_max is not None and delay > self.backoff_max:
            return self.backoff_max
        return delay

    def to_json_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "backoff_max": self.backoff_max,
            "job_timeout": self.job_timeout,
            "checkpoint": self.checkpoint,
        }


@dataclass(frozen=True)
class RunFailure:
    """One simulated run killed by a fault event.

    ``job`` is the run's position in the ``execute_many`` submission
    list; ``time`` is the virtual fail time (a window start or the lane's
    permanent death); ``kind`` is ``"outage"`` or ``"permanent"``.
    ``completed_stages`` is the sorted frontier of stages the run had
    fully finished before (or concurrently with) the failure — the
    checkpoint a ``RetryPolicy(checkpoint=True)`` resume starts past.
    """

    job: int
    time: float
    lane: str
    kind: str
    completed_stages: tuple[str, ...] = ()


@dataclass(frozen=True)
class AttemptRecord:
    """One attempt of one job in a resilient batch.

    ``frontier`` is the checkpointed completed-stage set this attempt
    resumed past (empty for a fresh run or without
    ``RetryPolicy(checkpoint=True)``); ``work_saved`` is the summed
    healthy solo duration of those skipped stages — virtual seconds of
    work the resume did not redo."""

    job_index: int
    attempt: int
    release: float
    completed: bool
    failure_time: float | None = None
    failure_lane: str | None = None
    failure_kind: str | None = None
    degraded: bool = False
    frontier: tuple[str, ...] = ()
    work_saved: float = 0.0


@dataclass(frozen=True)
class ResilienceReport:
    """Per-batch resilience summary (``NdftBatchResult.resilience``).

    ``attempts`` lists every simulated attempt of the final fixpoint
    round; ``end_to_end_latencies`` maps each submitted job to its
    original-arrival→final-completion latency (``None`` when abandoned);
    ``busy_span`` covers *all* attempts of the final round, so
    ``goodput`` (completed jobs over the span) is directly comparable to
    ``throughput_all_attempts`` (work attempted over the same span).
    """

    plan: FaultPlan
    retry: RetryPolicy
    attempts: tuple[AttemptRecord, ...] = ()
    submitted: int = 0
    abandoned_jobs: tuple[int, ...] = ()
    end_to_end_latencies: tuple[float | None, ...] = field(default=())
    busy_span: float = 0.0

    @property
    def completed(self) -> int:
        return self.submitted - len(self.abandoned_jobs)

    @property
    def abandoned(self) -> int:
        return len(self.abandoned_jobs)

    @property
    def total_attempts(self) -> int:
        return len(self.attempts)

    @property
    def failed_attempts(self) -> int:
        return sum(1 for record in self.attempts if not record.completed)

    @property
    def recovered(self) -> int:
        """Jobs that completed on a retry (attempt > 1)."""
        return sum(
            1 for record in self.attempts if record.completed and record.attempt > 1
        )

    @property
    def degraded_attempts(self) -> int:
        return sum(1 for record in self.attempts if record.degraded)

    @property
    def resumed_attempts(self) -> int:
        """Attempts that re-entered past a checkpointed frontier."""
        return sum(1 for record in self.attempts if record.frontier)

    @property
    def resumed_stages(self) -> int:
        """Total checkpointed stages skipped across the final round's
        resumed attempts (``RetryPolicy(checkpoint=True)``)."""
        return sum(len(record.frontier) for record in self.attempts)

    @property
    def work_saved_seconds(self) -> float:
        """Virtual seconds of completed-stage work the checkpoint
        resumes did not redo, summed over the final round's attempts."""
        return sum(record.work_saved for record in self.attempts)

    @property
    def availability(self) -> float:
        """Fraction of submitted jobs that eventually completed."""
        if self.submitted == 0:
            return 1.0
        return self.completed / self.submitted

    @property
    def goodput(self) -> float:
        """Completed jobs per second over the final round's busy span."""
        if self.busy_span <= 0.0:
            return 0.0
        return self.completed / self.busy_span

    @property
    def throughput_all_attempts(self) -> float:
        """All simulated attempts per second over the same busy span."""
        if self.busy_span <= 0.0:
            return 0.0
        return self.total_attempts / self.busy_span

    @property
    def post_fault_latencies(self) -> tuple[float, ...]:
        """End-to-end latencies of the jobs that completed."""
        return tuple(
            latency for latency in self.end_to_end_latencies if latency is not None
        )

    def _latency_percentile(self, q: float) -> float:
        latencies = self.post_fault_latencies
        if not latencies:
            return 0.0
        return percentile(latencies, q)

    @property
    def post_fault_p50(self) -> float:
        return self._latency_percentile(50.0)

    @property
    def post_fault_p99(self) -> float:
        return self._latency_percentile(99.0)

    def to_json_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "recovered": self.recovered,
            "abandoned": self.abandoned,
            "failed_attempts": self.failed_attempts,
            "total_attempts": self.total_attempts,
            "degraded_attempts": self.degraded_attempts,
            "resumed_attempts": self.resumed_attempts,
            "resumed_stages": self.resumed_stages,
            "work_saved_seconds": self.work_saved_seconds,
            "availability": self.availability,
            "goodput": self.goodput,
            "throughput_all_attempts": self.throughput_all_attempts,
            "post_fault_p50": self.post_fault_p50,
            "post_fault_p99": self.post_fault_p99,
        }


def poisson_fault_plan(
    lanes,
    mtbf: float,
    mttr: float,
    horizon: float,
    seed: int = 0,
    permanent_after: float | None = None,
) -> FaultPlan:
    """Draw a seeded fault plan from exponential failure/repair clocks.

    Per lane (in sorted order, so the draw is independent of input
    ordering), outage starts arrive with mean spacing ``mtbf`` and last
    ``Exp(mttr)`` each, truncated at ``horizon``.  ``permanent_after``
    (optional) additionally kills each *device* lane permanently at its
    first outage start past that time.  Deterministic given ``seed``.
    """
    if not mtbf > 0.0:
        raise ConfigError(f"mtbf must be > 0, got {mtbf!r}")
    if not mttr > 0.0:
        raise ConfigError(f"mttr must be > 0, got {mttr!r}")
    if not horizon > 0.0:
        raise ConfigError(f"horizon must be > 0, got {horizon!r}")
    generator = random.Random(seed)
    outages: list[tuple[str, float, float]] = []
    permanent: list[tuple[str, float]] = []
    for lane in sorted(str(lane) for lane in lanes):
        now = 0.0
        while True:
            now += generator.expovariate(1.0 / mtbf)
            if now >= horizon:
                break
            if (
                permanent_after is not None
                and now >= permanent_after
                and not lane.startswith(_WIRE_PREFIX)
            ):
                permanent.append((lane, now))
                break
            duration = generator.expovariate(1.0 / mttr)
            outages.append((lane, now, now + duration))
            now += duration
    return FaultPlan(
        outages=tuple(outages),
        permanent=tuple(permanent),
        seed=seed,
        mtbf=mtbf,
        mttr=mttr,
        horizon=horizon,
    )


def _normalize_groups(groups) -> tuple[tuple[str, ...], ...]:
    """Canonical shock-group form: per-group lanes deduplicated and
    sorted, groups sorted — so the seeded draw is independent of input
    ordering, like :func:`poisson_fault_plan`'s per-lane walk."""
    normalized = []
    for group in groups:
        if isinstance(group, str):
            group = (group,)
        lanes = tuple(sorted({str(lane) for lane in group}))
        if not lanes:
            raise ConfigError("shock groups must not be empty")
        normalized.append(lanes)
    if not normalized:
        raise ConfigError("shock_fault_plan needs at least one lane group")
    return tuple(sorted(normalized))


def shock_fault_plan(
    groups,
    rate: float,
    mttr: float,
    horizon: float,
    seed: int = 0,
) -> FaultPlan:
    """Draw a seeded *correlated-shock* fault plan.

    Unlike :func:`poisson_fault_plan`'s independent per-lane clocks,
    shocks arrive on **one shared clock** — fleet-level events with mean
    spacing ``1/rate`` (``rate`` shocks per virtual second) — and each
    shock strikes every lane of one *group* (chosen uniformly from
    ``groups``) with the **same** outage window: same start, same
    ``Exp(mttr)`` repair time.  That shared window is the correlation —
    a rack power event takes the whole NDP device+wire group down at
    once instead of each lane failing on its own schedule.

    ``groups`` is an iterable of lane groups (a bare string counts as a
    one-lane group); groups and their lanes are canonicalized (sorted,
    deduplicated) before the draw so the plan is independent of input
    ordering.  Deterministic given ``seed``.  Compose with independent
    background noise via :meth:`FaultPlan.merge`::

        plan = poisson_fault_plan(["ndp"], mtbf=20, mttr=1, horizon=60)
        plan = plan.merge(shock_fault_plan(
            [("ndp", "link:cpu-ndp")], rate=0.05, mttr=2, horizon=60))
    """
    if not rate > 0.0:
        raise ConfigError(f"shock rate must be > 0, got {rate!r}")
    if not mttr > 0.0:
        raise ConfigError(f"mttr must be > 0, got {mttr!r}")
    if not horizon > 0.0:
        raise ConfigError(f"horizon must be > 0, got {horizon!r}")
    group_list = _normalize_groups(groups)
    generator = random.Random(seed)
    outages: list[tuple[str, float, float]] = []
    now = 0.0
    while True:
        now += generator.expovariate(rate)
        if now >= horizon:
            break
        group = group_list[generator.randrange(len(group_list))]
        duration = generator.expovariate(1.0 / mttr)
        for lane in group:
            outages.append((lane, now, now + duration))
    return FaultPlan(
        outages=tuple(outages),
        seed=seed,
        mttr=mttr,
        horizon=horizon,
        shock_rate=rate,
        shock_groups=group_list,
    )


def slowdown_fault_plan(
    lanes,
    mtbf: float,
    mttr: float,
    horizon: float,
    factor: float,
    seed: int = 0,
) -> FaultPlan:
    """Draw a seeded *partial-degradation* plan: the same per-lane
    exponential failure/repair clocks as :func:`poisson_fault_plan`,
    but each drawn window is a :class:`SlowdownWindow` at ``factor``
    instead of an outage — the lane keeps serving, ``factor``× slower,
    and nothing is killed.  Deterministic given ``seed``; compose with
    outage plans via :meth:`FaultPlan.merge`.
    """
    if not mtbf > 0.0:
        raise ConfigError(f"mtbf must be > 0, got {mtbf!r}")
    if not mttr > 0.0:
        raise ConfigError(f"mttr must be > 0, got {mttr!r}")
    if not horizon > 0.0:
        raise ConfigError(f"horizon must be > 0, got {horizon!r}")
    if not factor > 1.0:
        raise ConfigError(
            f"slowdown factor must be > 1.0 (an inflation), got {factor!r}"
        )
    generator = random.Random(seed)
    slowdowns: list[SlowdownWindow] = []
    for lane in sorted(str(lane) for lane in lanes):
        now = 0.0
        while True:
            now += generator.expovariate(1.0 / mtbf)
            if now >= horizon:
                break
            duration = generator.expovariate(1.0 / mttr)
            slowdowns.append(SlowdownWindow(lane, now, now + duration, factor))
            now += duration
    return FaultPlan(
        slowdowns=tuple(slowdowns),
        seed=seed,
        mtbf=mtbf,
        mttr=mttr,
        horizon=horizon,
    )
