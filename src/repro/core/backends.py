"""Pluggable simulation backends for the batched DES executor.

Every contention shard of a batch (see
:meth:`repro.core.executor.PipelineExecutor.execute_many`) can be timed
by any simulator that reproduces the generator engine's floats exactly —
the engine itself, or one of the slim FIFO replays.  This module makes
that choice an explicit *backend layer* instead of shape checks
scattered through the executor:

- :class:`SimulationBackend` is the protocol — a capability query
  (:meth:`~SimulationBackend.supports`) plus
  :meth:`~SimulationBackend.simulate`, which returns per-job reports,
  the shard makespan and the super-job count, or ``None`` to decline a
  shard it only discovers to be ineligible while flattening it (e.g. a
  zero-duration task under a degenerate cost model).
- Four backends ship registered, in fallback-preference order:

  =================  ==================================================
  name               simulates
  =================  ==================================================
  ``chain_replay``   all-single-chain shards via
                     :func:`repro.hw.engine.replay_chain_batch` — one
                     cursor per job, the leanest event loop.
  ``dag_replay``     any DAG shard via
                     :func:`repro.hw.engine.replay_dag_batch` — per-
                     replica join counters on fan-in stages, so k-point
                     and other branching pipelines still get the
                     one-event-per-occupancy replay.
  ``vector_replay``  single-signature (fully coalesced) shards via
                     :func:`repro.hw.vector_replay.replay_vector_batch`
                     — the whole grant/finish timetable as numpy
                     recurrences over the (replica, stage-occupancy)
                     grid, no per-occupancy Python event at all.
                     Declines cross-signature shards, zero durations
                     and tie patterns that need the engine's banded
                     hop cascade.
  ``engine``         anything, through the generator
                     :class:`repro.hw.engine.Engine` — the universal
                     fallback and the reference the replays are
                     verified against.
  =================  ==================================================

The static walk takes the first backend that supports the shard and
does not decline it; results are bit-identical whichever backend runs
(property-tested in ``tests/core/test_coalesce_shard.py``,
``tests/core/test_dag_replay.py`` and
``tests/core/test_vector_replay.py``) — which is also why the
framework's measured auto-tuner
(:class:`repro.core.executor.BackendTuner`) may freely reorder the
walk by observed wall time: ``vector_replay`` sits *after*
``dag_replay`` in the static order, so it is reached by measurement
(or by forcing), never by default on an unmeasured shard.  Any trace
observer bypasses the registry entirely — trace consumers need the
uncollapsed engine's exact event stream.  Additional backends (e.g. a
C-accelerated calendar) plug in via :func:`register_backend`.

Backends may also expose ``unsupported_reason(executor, shard_jobs)``
returning a human-readable reason a shard cannot be simulated — the
executor quotes it in the forced-backend error so callers learn *why*
(non-chain shape, zero-duration task, cross-signature interleaving,
...) instead of getting a bare refusal.

Fault injection (:mod:`repro.core.faults`) extends the same contract:
a shard whose lanes carry fault-plan events is declined by *every*
replay backend with :data:`FAULTED_SHARD_REASON` — the replays model
the healthy machine only, and the decline-not-approximate rule means
they must never silently ignore an outage window.  A shard whose lanes
carry only *slowdown* windows (partial degradation, nothing killed) is
declined with its own :data:`SLOWDOWN_SHARD_REASON`: inflated service
times break the FIFO hop-cascade equivalence the replays rest on, so
they must not approximate those either.  Affected shards always run on
the fault-aware generator engine path; an *empty* fault plan never
triggers either decline, so it stays bit-identical to no plan across
all four backends.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.errors import SimulationError
from repro.hw.engine import replay_chain_batch, replay_dag_batch
from repro.hw.vector_replay import replay_vector_batch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executor import ExecutionReport, PipelineExecutor
    from repro.core.pipeline import Pipeline
    from repro.core.scheduler import Schedule

#: What ``simulate`` hands back: per-job reports in shard order, the
#: shard makespan, and the number of signature-coalesced super-jobs.
ShardResult = tuple[list["ExecutionReport"], float, int]


@runtime_checkable
class SimulationBackend(Protocol):
    """One way of timing a contention shard, bit-identical to the
    generator engine."""

    #: Registry key (also what ``BatchExecutionReport.backend_jobs`` and
    #: the ``serve-bench --backend`` override call it).
    name: str

    def supports(
        self,
        executor: "PipelineExecutor",
        shard_jobs: list[tuple["Pipeline", "Schedule"]],
    ) -> bool:
        """Cheap structural capability check (shape only — a backend may
        still decline in :meth:`simulate`)."""
        ...

    def simulate(
        self,
        executor: "PipelineExecutor",
        shard_jobs: list[tuple["Pipeline", "Schedule"]],
        shard_arrivals: list[float] | None,
        lane_log: dict[str, list[tuple[float, float]]],
    ) -> ShardResult | None:
        """Time the shard, or return ``None`` to decline it late.

        A backend that simulates the shard must also append every
        resource occupancy it grants — ``(start, end)`` in grant order
        — to ``lane_log`` under the lane's
        :func:`repro.core.executor.lane_name`; the intervals must be
        the engine's exact floats (``end = grant + duration``), which
        is what makes ``BatchExecutionReport.lane_occupancy``
        backend-independent.  A late decline must leave ``lane_log``
        untouched."""
        ...


def _superjob_groups(
    shard_jobs: list,
) -> tuple[list[list[int]], list[int]]:
    """Group shard positions into super-jobs by pipeline/schedule object
    identity (what the framework's signature caches hand out for
    duplicate jobs).  Returns the member lists per group and each
    position's group index."""
    group_index: dict[tuple[int, int], int] = {}
    group_members: list[list[int]] = []
    member_group: list[int] = []
    for position, (pipeline, schedule) in enumerate(shard_jobs):
        key = (id(pipeline), id(schedule))
        group = group_index.get(key)
        if group is None:
            group = group_index[key] = len(group_members)
            group_members.append([])
        group_members[group].append(position)
        member_group.append(group)
    return group_members, member_group


def _replay_shard(
    executor,
    shard_jobs,
    shard_arrivals,
    flatten,
    replay,
    lane_log,
) -> ShardResult | None:
    """The shared replay scaffold both slim backends run: coalesce the
    shard into super-jobs, ``flatten`` each group once into its replay
    input (returning ``(None, overhead)`` to decline the whole shard,
    e.g. on a zero-duration task), ``replay`` the per-replica input
    lists, rebuild per-job reports from the group templates, and file
    the replay's per-resource occupancy intervals into ``lane_log``
    under the interned resources' lane names."""
    group_members, member_group = _superjob_groups(shard_jobs)
    resource_ids: dict[object, int] = {}
    group_inputs: list = []
    group_template: list = []
    for members in group_members:
        pipeline, schedule = shard_jobs[members[0]]
        flattened, overhead_total = flatten(
            executor, pipeline, schedule, resource_ids
        )
        if flattened is None:  # degenerate zero-duration task
            return None
        group_inputs.append(flattened)
        group_template.append(
            executor._job_report(pipeline, schedule, overhead_total, 0.0)
        )
    n = len(shard_jobs)
    finish, makespan, occupancy = replay(
        [group_inputs[group] for group in member_group],
        [0.0] * n if shard_arrivals is None else shard_arrivals,
        len(resource_ids),
    )
    from repro.core.executor import lane_name

    for key, index in resource_ids.items():
        if occupancy[index]:
            lane_log.setdefault(lane_name(key), []).extend(occupancy[index])
    reports = [
        replace(group_template[member_group[position]], total_time=t)
        for position, t in enumerate(finish)
    ]
    return reports, makespan, len(group_members)


class EngineBackend:
    """The generator-engine reference path: supports everything.

    Lane accounting rides the executor's occupancy callback (the same
    hook the trace observer uses): every device/wire occupancy lands in
    ``lane_log`` with the engine's own start/end floats, which is the
    reference the replays' grant-time recording is verified against."""

    name = "engine"

    def supports(self, executor, shard_jobs) -> bool:
        return True

    def simulate(self, executor, shard_jobs, shard_arrivals, lane_log):
        def record(lane, _label, start, end):
            lane_log.setdefault(lane, []).append((start, end))

        reports, makespan = executor._execute_batch_engine(
            shard_jobs, range(len(shard_jobs)), record, shard_arrivals
        )
        return reports, makespan, 0


#: Why the slim replays decline degenerate shards — quoted verbatim in
#: the forced-backend error (and matched by the UX tests).
_ZERO_DURATION_REASON = (
    "a task has non-positive duration, which the replays' banded "
    "tie-handling cannot represent"
)

#: Why every replay backend declines a shard whose lanes carry
#: fault-plan events — quoted verbatim in the forced-backend error.
#: The replays model the healthy machine; under the
#: decline-not-approximate contract they must hand faulted shards to
#: the fault-aware engine rather than silently ignore outage windows.
FAULTED_SHARD_REASON = (
    "the shard's lanes carry fault-plan events, which only the "
    "fault-aware engine path can simulate"
)

#: Why every replay backend declines a shard whose lanes carry only
#: *slowdown* windows — quoted verbatim in the forced-backend error.
#: The replays' FIFO hop-cascade equivalence argument assumes every
#: occupancy's duration is the schedule's nominal one; a slowdown
#: window inflates services piecewise, so grant orders can differ from
#: the healthy timetable in ways the replays cannot prove equivalent.
#: Decline, never approximate.
SLOWDOWN_SHARD_REASON = (
    "the shard's lanes carry slowdown windows, whose piecewise-"
    "inflated service times break the replays' FIFO hop-cascade "
    "equivalence; only the fault-aware engine path can simulate them"
)


#: Why ``chain_replay`` declines shards with branching pipelines —
#: quoted verbatim in the forced-backend error.
NON_CHAIN_SHARD_REASON = (
    "the shard contains a non-chain pipeline and "
    "chain_replay only handles all-single-chain shards"
)

#: Why ``vector_replay`` declines multi-signature shards — formatted
#: with the shard's super-job count and quoted verbatim in the
#: forced-backend error.
CROSS_SIGNATURE_REASON_TEMPLATE = (
    "cross-signature interleaving: the shard coalesces "
    "into {count} super-jobs contending on "
    "shared lanes, and vector_replay needs exactly one "
    "signature"
)

#: Why ``vector_replay`` declines shards whose wave recurrence cannot
#: prove the engine's grant order — quoted verbatim in the
#: forced-backend error.
UNPROVABLE_TIE_REASON = (
    "a same-instant tie (across a wave boundary or a fan-in "
    "join) requires the engine's banded hop cascade, which "
    "the wave recurrence cannot reproduce"
)


class ChainReplayBackend:
    """Slim FIFO replay for shards of single connected chains."""

    name = "chain_replay"

    def supports(self, executor, shard_jobs) -> bool:
        return all(
            executor._is_single_chain(pipeline)
            for pipeline, _schedule in shard_jobs
        )

    def simulate(self, executor, shard_jobs, shard_arrivals, lane_log):
        return _replay_shard(
            executor,
            shard_jobs,
            shard_arrivals,
            flatten=lambda ex, p, s, ids: ex._chain_tasks(p, s, ids),
            replay=replay_chain_batch,
            lane_log=lane_log,
        )

    def unsupported_reason(self, executor, shard_jobs) -> str:
        if not self.supports(executor, shard_jobs):
            return NON_CHAIN_SHARD_REASON
        return _ZERO_DURATION_REASON


class DagReplayBackend:
    """Slim FIFO replay for arbitrary DAG shards: per-replica join
    counters on the fan-in stages keep branching pipelines (k-point
    DAGs, super-job replicas) on the one-event-per-occupancy loop."""

    name = "dag_replay"

    def supports(self, executor, shard_jobs) -> bool:
        return True

    def simulate(self, executor, shard_jobs, shard_arrivals, lane_log):
        return _replay_shard(
            executor,
            shard_jobs,
            shard_arrivals,
            flatten=self._dag_program,
            replay=replay_dag_batch,
            lane_log=lane_log,
        )

    @staticmethod
    def _dag_program(executor, pipeline, schedule, resource_ids):
        """Flatten one job into a :func:`repro.hw.engine.replay_dag_batch`
        program: per-stage task lists
        (:meth:`~repro.core.executor.PipelineExecutor._flatten_stage`,
        the same pricing/interning walk the chain replay uses) plus
        predecessor indices, all in topological order.  Returns
        ``(None, overhead)`` when any duration is non-positive: the
        replay's banded tie-handling assumes time strictly advances per
        occupancy, so zero-cost tasks fall back to the generator
        engine."""
        overhead_total = executor._eq1_overhead(pipeline, schedule)
        topo = pipeline.topological_order
        position_of = {name: i for i, name in enumerate(topo)}
        stage_tasks: list[list[tuple[int, float]]] = []
        stage_preds: list[tuple[int, ...]] = []
        for name in topo:
            tasks = executor._flatten_stage(
                pipeline, schedule, name, resource_ids
            )
            if any(duration <= 0.0 for _res, duration in tasks):
                return None, overhead_total
            stage_tasks.append(tasks)
            stage_preds.append(
                tuple(position_of[p] for p in pipeline.predecessors(name))
            )
        return (stage_tasks, stage_preds), overhead_total

    def unsupported_reason(self, executor, shard_jobs) -> str:
        return _ZERO_DURATION_REASON


class VectorReplayBackend:
    """Numpy wave replay for single-signature coalesced shards.

    When every job of a contention shard is a replica of *one*
    super-job template, :func:`repro.hw.vector_replay.
    replay_vector_batch` computes the entire FIFO timetable as
    recurrences over the (replica, stage-occupancy) grid — no
    per-occupancy Python event.  The backend supports exactly the
    single-signature shards (two signatures sharing a lane interleave
    in arrival order, which only the event-driven replays reproduce)
    and declines late when the wave recurrence cannot prove it matches
    the engine's grant order (zero durations, cross-wave or fan-in
    same-instant ties): bit-identical or fall back, never approximate.
    """

    name = "vector_replay"

    def supports(self, executor, shard_jobs) -> bool:
        group_members, _ = _superjob_groups(shard_jobs)
        return len(group_members) == 1

    def simulate(self, executor, shard_jobs, shard_arrivals, lane_log):
        if not self.supports(executor, shard_jobs):
            return None
        pipeline, schedule = shard_jobs[0]
        resource_ids: dict[object, int] = {}
        program, overhead_total = DagReplayBackend._dag_program(
            executor, pipeline, schedule, resource_ids
        )
        if program is None:  # degenerate zero-duration task
            return None
        n = len(shard_jobs)
        result = replay_vector_batch(
            program,
            [0.0] * n if shard_arrivals is None else shard_arrivals,
            len(resource_ids),
        )
        if result is None:  # wave order unprovable: tie/interleaving
            return None
        finish, makespan, occupancy = result
        from repro.core.executor import lane_name

        for key, index in resource_ids.items():
            if occupancy[index]:
                lane_log.setdefault(lane_name(key), []).extend(
                    occupancy[index]
                )
        template = executor._job_report(
            pipeline, schedule, overhead_total, 0.0
        )
        reports = [replace(template, total_time=t) for t in finish]
        return reports, makespan, 1

    def unsupported_reason(self, executor, shard_jobs) -> str:
        group_members, _ = _superjob_groups(shard_jobs)
        if len(group_members) != 1:
            return CROSS_SIGNATURE_REASON_TEMPLATE.format(
                count=len(group_members)
            )
        pipeline, schedule = shard_jobs[0]
        program, _overhead = DagReplayBackend._dag_program(
            executor, pipeline, schedule, {}
        )
        if program is None:
            return _ZERO_DURATION_REASON
        return UNPROVABLE_TIE_REASON


#: The registry, in selection-preference order.  ``engine`` must stay
#: last: it is the universal fallback every selection walk ends on.
_REGISTRY: dict[str, SimulationBackend] = {}


def register_backend(backend: SimulationBackend) -> None:
    """Add (or replace) a backend.  New backends are preferred over the
    ``engine`` fallback but tried after the existing replays."""
    if _REGISTRY and backend.name != "engine" and "engine" in _REGISTRY:
        engine = _REGISTRY.pop("engine")
        _REGISTRY[backend.name] = backend
        _REGISTRY["engine"] = engine
    else:
        _REGISTRY[backend.name] = backend


register_backend(ChainReplayBackend())
register_backend(DagReplayBackend())
register_backend(VectorReplayBackend())
register_backend(EngineBackend())


def backend_names() -> tuple[str, ...]:
    """Registered backend names in selection-preference order."""
    return tuple(_REGISTRY)


def get_backend(name: str) -> SimulationBackend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SimulationError(
            f"unknown simulation backend {name!r}; registered: "
            f"{', '.join(_REGISTRY)}"
        ) from None


def iter_backends() -> tuple[SimulationBackend, ...]:
    return tuple(_REGISTRY.values())
