"""Content-addressed job signatures for the serving fast path.

A production "DFT as a service" deployment sees the same problem shapes
over and over: a 1k-job batch typically contains a handful of distinct
system sizes.  Everything the framework derives per job — the cost-aware
:class:`~repro.core.scheduler.Schedule`, the SCA reports, the standalone
DES makespan — is a pure function of

1. the pipeline's structure (problem dimensions, stage workloads, edge
   bytes — folded into :attr:`repro.core.pipeline.Pipeline.structural_hash`),
2. the scheduling policy,
3. the registered execution targets, and
4. the offload cost model's link/CXT parameters,

so a frozen :class:`JobSignature` over exactly those four inputs is a
sound memoization key: two jobs with equal signatures provably produce
identical schedules, reports and solo makespans.  The framework
(:class:`repro.core.framework.NdftFramework`) keys its caches on it and
drops them whenever a target is (re)registered.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost_model import OffloadCostModel
from repro.core.pipeline import Pipeline
from repro.core.scheduler import CostAwareScheduler, SchedulingPolicy


def cost_model_fingerprint(cost_model: OffloadCostModel) -> tuple:
    """Hashable digest of every parameter Eq. 1 can observe: the default
    host link, the CXT constant, and each per-pair device link."""
    links = tuple(
        sorted(
            (
                tuple(sorted(str(p) for p in pair)),
                link.bandwidth,
                link.base_latency,
            )
            for pair, link in cost_model.device_links.items()
        )
    )
    return (
        cost_model.host_link.bandwidth,
        cost_model.host_link.base_latency,
        cost_model.context_switch,
        links,
    )


def target_registry_fingerprint(scheduler: CostAwareScheduler) -> tuple:
    """Hashable digest of the scheduler's target registry.

    The registered machine *objects* are not hashed (arbitrary machines
    plug in via ``register_target``); instead the scheduler's
    ``registry_version`` counter — bumped on every registration — stands
    in for their identity, so swapping a machine changes every signature
    minted afterwards.
    """
    return (
        scheduler.registry_version,
        tuple(str(p) for p in scheduler.targets),
    )


@dataclass(frozen=True)
class JobSignature:
    """The content-addressed identity of one schedulable job."""

    #: Human-readable anchor (not needed for soundness — the pipeline
    #: hash already covers the problem — but invaluable in cache dumps).
    n_atoms: int
    pipeline_hash: str
    policy: SchedulingPolicy
    registry_fingerprint: tuple
    cost_model_fingerprint: tuple


def job_signature(
    pipeline: Pipeline,
    policy: SchedulingPolicy,
    scheduler: CostAwareScheduler,
    cost_model: OffloadCostModel,
    *,
    registry_fp: tuple | None = None,
    cost_fp: tuple | None = None,
) -> JobSignature:
    """Mint the signature under which one job's derived artifacts are
    memoized.

    ``registry_fp`` / ``cost_fp`` accept fingerprints the caller has
    already derived (the framework memoizes them per registry version),
    so bulk minting doesn't re-walk the registry and link table per job.
    """
    if registry_fp is None:
        registry_fp = target_registry_fingerprint(scheduler)
    if cost_fp is None:
        cost_fp = cost_model_fingerprint(cost_model)
    return JobSignature(
        n_atoms=pipeline.problem.n_atoms,
        pipeline_hash=pipeline.structural_hash,
        policy=policy,
        registry_fingerprint=registry_fp,
        cost_model_fingerprint=cost_fp,
    )


def structure_signature(
    pipeline: Pipeline,
    policy: SchedulingPolicy,
    scheduler: CostAwareScheduler,
    cost_model: OffloadCostModel,
    *,
    registry_fp: tuple | None = None,
    cost_fp: tuple | None = None,
) -> tuple:
    """The size-blind sibling of :func:`job_signature`.

    Covers the pipeline's *shape* — stage count and edge topology with
    stages identified by topological position, not by name — plus
    everything else a placement decision depends on.  Name
    normalization is deliberate: two same-shape DAGs whose stages are
    merely labelled differently (k-point pipelines built under another
    naming convention, hand-assembled chains) share a signature, so the
    framework can warm-start the placement DP for one from the other's
    cached assignment (stored name-free via
    :meth:`~repro.core.scheduler.CostAwareScheduler.normalize_placements`).
    Unlike the job signature this is a *heuristic* key: it only seeds a
    bound, never a result, so collisions cost time, not correctness.
    """
    position = {
        name: index
        for index, name in enumerate(pipeline.topological_order)
    }
    if registry_fp is None:
        registry_fp = target_registry_fingerprint(scheduler)
    if cost_fp is None:
        cost_fp = cost_model_fingerprint(cost_model)
    return (
        len(position),
        tuple(
            (position[edge.src], position[edge.dst])
            for edge in pipeline.edges
        ),
        policy,
        registry_fp,
        cost_fp,
    )
