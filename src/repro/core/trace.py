"""Execution timeline: turn a schedule into trace events and ASCII Gantt.

The DES executor reports only totals; this module replays a schedule into
explicit ``(start, end, lane)`` events — one lane per device plus one for
the host link — which the examples render as an ASCII Gantt chart and the
tests use to check that the executor's serialization matches the timeline
(no overlapping occupancy on a lane, transfers strictly between producer
and consumer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost_model import OffloadCostModel
from repro.core.pipeline import Pipeline
from repro.core.scheduler import Placement, Schedule
from repro.errors import SimulationError


@dataclass(frozen=True)
class TraceEvent:
    """One occupancy interval on one lane."""

    lane: str          # "cpu", "ndp" or "link"
    label: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError(f"event {self.label} ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start


def build_timeline(
    pipeline: Pipeline, schedule: Schedule, cost_model: OffloadCostModel
) -> list[TraceEvent]:
    """Replay the chain schedule into trace events.

    The LR-TDDFT pipeline is a chain, so the timeline is sequential:
    each stage waits for its predecessor, pays its boundary transfer on
    the link lane, then occupies its device lane.
    """
    events: list[TraceEvent] = []
    clock = 0.0
    previous_placement: Placement | None = None
    for stage in pipeline.stages:
        placement = schedule.assignments[stage.name]
        if previous_placement is not None and placement is not previous_placement:
            crossing = sum(
                edge.nbytes
                for edge in pipeline.edges
                if edge.dst == stage.name
                and schedule.assignments[edge.src] is not placement
            )
            transfer = cost_model.boundary_cost(crossing)
            events.append(
                TraceEvent("link", f"{stage.name} in", clock, clock + transfer)
            )
            clock += transfer
        duration = schedule.stage_times[stage.name].total
        events.append(
            TraceEvent(str(placement), stage.name, clock, clock + duration)
        )
        clock += duration
        previous_placement = placement
    return events


def validate_timeline(events: list[TraceEvent]) -> None:
    """Raise :class:`SimulationError` if any lane double-books."""
    by_lane: dict[str, list[TraceEvent]] = {}
    for event in events:
        by_lane.setdefault(event.lane, []).append(event)
    for lane, lane_events in by_lane.items():
        ordered = sorted(lane_events, key=lambda e: e.start)
        for a, b in zip(ordered, ordered[1:]):
            if b.start < a.end - 1e-12:
                raise SimulationError(
                    f"lane {lane!r}: {a.label} and {b.label} overlap"
                )


def total_time(events: list[TraceEvent]) -> float:
    return max((e.end for e in events), default=0.0)


def render_gantt(events: list[TraceEvent], width: int = 72) -> str:
    """ASCII Gantt chart: one row per lane, one glyph per time bucket."""
    if not events:
        return "(empty timeline)"
    horizon = total_time(events)
    scale = width / horizon if horizon > 0 else 0.0
    lanes = sorted({e.lane for e in events})
    lines = [f"timeline: {horizon:.4f} s  ({width} cols)"]
    for lane in lanes:
        row = [" "] * width
        for event in events:
            if event.lane != lane:
                continue
            start = min(width - 1, int(event.start * scale))
            end = min(width, max(start + 1, int(event.end * scale)))
            glyph = event.label[0].upper()
            for column in range(start, end):
                row[column] = glyph
        lines.append(f"{lane:>5s} |{''.join(row)}|")
    legend = ", ".join(
        f"{e.label[0].upper()}={e.label}" for e in events
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
