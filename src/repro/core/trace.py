"""Execution timeline: turn a schedule into trace events and ASCII Gantt.

The DES executor reports only totals; this module captures its exact
occupancy intervals — one lane per device plus one per inter-device
wire — which the examples render as an ASCII Gantt chart and the tests
use to check the executor's serialization (no overlapping occupancy on a
lane, transfers strictly between producer and consumer).

Since the DAG generalization the timeline is no longer replayed by a
separate clock walk: :func:`build_timeline` runs the real executor with a
trace observer attached, so branch overlap, device contention and link
serialization appear in the events exactly as the DES resolved them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost_model import OffloadCostModel
from repro.core.executor import PipelineExecutor
from repro.core.pipeline import Pipeline
from repro.core.scheduler import Schedule
from repro.errors import SimulationError


@dataclass(frozen=True)
class TraceEvent:
    """One occupancy interval on one lane."""

    lane: str          # "cpu"/"ndp"/"gpu", or "link:<pair>" per wire
    label: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError(f"event {self.label} ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start


def build_timeline(
    pipeline: Pipeline, schedule: Schedule, cost_model: OffloadCostModel
) -> list[TraceEvent]:
    """Execute the schedule through the DES, recording every occupancy
    interval.  Works for any DAG: each stage waits for all predecessors,
    boundary transfers occupy the link lane, and independent branches on
    different devices show up as overlapping events on distinct lanes."""
    events: list[TraceEvent] = []
    executor = PipelineExecutor(cost_model=cost_model)
    executor.execute(
        pipeline,
        schedule,
        observer=lambda lane, label, start, end: events.append(
            TraceEvent(lane, label, start, end)
        ),
    )
    events.sort(key=lambda e: (e.start, e.end, e.lane))
    return events


def build_batch_timeline(
    jobs: list[tuple[Pipeline, Schedule]],
    cost_model: OffloadCostModel,
    arrivals: list[float] | None = None,
) -> list[TraceEvent]:
    """Execute a whole batch through the DES with tracing on.

    Passing an observer forces the executor's uncollapsed, unsharded
    engine — no super-job coalescing, no contention sharding — so the
    captured events are the exact occupancy intervals of one shared
    machine, with labels prefixed ``job<i>:`` by submission index.
    ``arrivals`` releases job ``i`` at that offset (the open-queue
    serving model); transfers and stages then include any queueing the
    shared devices impose."""
    events: list[TraceEvent] = []
    executor = PipelineExecutor(cost_model=cost_model)
    executor.execute_many(
        jobs,
        observer=lambda lane, label, start, end: events.append(
            TraceEvent(lane, label, start, end)
        ),
        arrivals=arrivals,
    )
    events.sort(key=lambda e: (e.start, e.end, e.lane, e.label))
    return events


def validate_timeline(events: list[TraceEvent]) -> None:
    """Raise :class:`SimulationError` if any lane double-books."""
    by_lane: dict[str, list[TraceEvent]] = {}
    for event in events:
        by_lane.setdefault(event.lane, []).append(event)
    for lane, lane_events in by_lane.items():
        ordered = sorted(lane_events, key=lambda e: e.start)
        for a, b in zip(ordered, ordered[1:]):
            if b.start < a.end - 1e-12:
                raise SimulationError(
                    f"lane {lane!r}: {a.label} and {b.label} overlap"
                )


def total_time(events: list[TraceEvent]) -> float:
    return max((e.end for e in events), default=0.0)


def render_gantt(events: list[TraceEvent], width: int = 72) -> str:
    """ASCII Gantt chart: one row per lane, one glyph per time bucket."""
    if not events:
        return "(empty timeline)"
    horizon = total_time(events)
    scale = width / horizon if horizon > 0 else 0.0
    lanes = sorted({e.lane for e in events})
    lane_width = max(5, max(len(lane) for lane in lanes))
    lines = [f"timeline: {horizon:.4f} s  ({width} cols)"]
    for lane in lanes:
        row = [" "] * width
        for event in events:
            if event.lane != lane:
                continue
            start = min(width - 1, int(event.start * scale))
            end = min(width, max(start + 1, int(event.end * scale)))
            glyph = event.label[0].upper()
            for column in range(start, end):
                row[column] = glyph
        lines.append(f"{lane:>{lane_width}s} |{''.join(row)}|")
    legend = ", ".join(
        f"{e.label[0].upper()}={e.label}" for e in events
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
