"""Shared performance-model vocabulary.

This module is deliberately leaf-level (imports nothing from the rest of
the package) because both the physics side (:mod:`repro.dft.workload`) and
the systems side (:mod:`repro.hw`, :mod:`repro.core`) speak in terms of the
types defined here.

A :class:`KernelWorkload` is the analytic double of an executable kernel:
how many FLOPs it performs, how many DRAM bytes it streams, how large its
per-task working set is, how its accesses look to a prefetcher, and how
many independent tasks it decomposes into.  The static code analyzer
(§IV-A of the paper) is modeled as producing exactly this record for each
function.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class AccessPattern(enum.Enum):
    """Memory-access shape of a kernel, as a prefetcher would see it."""

    SEQUENTIAL = "sequential"
    STRIDED = "strided"
    BLOCKED = "blocked"
    IRREGULAR = "irregular"


class PhaseName(str, enum.Enum):
    """The LR-TDDFT execution phases the paper's Fig. 7 breaks time into."""

    FACE_SPLIT = "face_split"
    FFT = "fft"
    GLOBAL_COMM = "global_comm"
    GEMM = "gemm"
    SYEVD = "syevd"
    PSEUDOPOTENTIAL = "pseudopotential"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Phases whose time is dominated by data movement on conventional CPUs.
MEMORY_BOUND_PHASES = (
    PhaseName.FACE_SPLIT,
    PhaseName.FFT,
    PhaseName.GLOBAL_COMM,
    PhaseName.PSEUDOPOTENTIAL,
)

#: Phases dominated by arithmetic on conventional CPUs (at large sizes).
COMPUTE_BOUND_PHASES = (PhaseName.GEMM, PhaseName.SYEVD)


@dataclass(frozen=True)
class KernelWorkload:
    """Analytic description of one kernel invocation (whole-machine totals).

    Attributes
    ----------
    name:
        Phase name (a :class:`PhaseName` value).
    flops:
        Total floating-point operations.
    bytes_read / bytes_written:
        DRAM traffic if the kernel streams from main memory (caches are
        applied by the machine models, which may discount this).
    comm_bytes:
        Payload bytes that must cross between processes/units (nonzero only
        for communication phases).
    working_set:
        Bytes one task touches repeatedly; decides cache/SPM residency.
    footprint:
        Distinct bytes the whole phase touches (its dataset size).  Decides
        device-memory residency for offload targets; defaults to
        ``bytes_total`` when left at 0.
    access_pattern:
        Qualitative access shape; machine models map it to bandwidth
        efficiency.
    parallel_tasks:
        Number of independent tasks the kernel decomposes into (its maximum
        useful degree of parallelism).
    """

    name: str
    flops: float
    bytes_read: float
    bytes_written: float
    comm_bytes: float = 0.0
    working_set: float = 0.0
    footprint: float = 0.0
    access_pattern: AccessPattern = AccessPattern.SEQUENTIAL
    parallel_tasks: int = 1

    def __post_init__(self) -> None:
        for attr in (
            "flops",
            "bytes_read",
            "bytes_written",
            "comm_bytes",
            "working_set",
            "footprint",
        ):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be non-negative")
        if self.parallel_tasks < 1:
            raise ValueError("parallel_tasks must be >= 1")

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    @property
    def dataset_bytes(self) -> float:
        """Distinct data touched; falls back to total traffic when the
        workload did not declare a footprint."""
        return self.footprint if self.footprint > 0 else self.bytes_total

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per DRAM byte — the roofline abscissa."""
        if self.bytes_total == 0:
            return float("inf")
        return self.flops / self.bytes_total

    def scaled(self, factor: float) -> "KernelWorkload":
        """A proportionally scaled copy (used to split work across units)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return replace(
            self,
            flops=self.flops * factor,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
            comm_bytes=self.comm_bytes * factor,
            parallel_tasks=max(1, round(self.parallel_tasks * factor)),
        )
