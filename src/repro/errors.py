"""Exception hierarchy for the NDFT reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
distinguish library failures from programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """A hardware or workload configuration is inconsistent."""


class OutOfMemoryError(ReproError):
    """A simulated memory (DRAM, SPM, GPU HBM) cannot satisfy an allocation.

    Mirrors the OOM failures the paper reports for replicated pseudopotential
    layouts on many-core NDP systems (§III-B).
    """

    def __init__(self, message: str, *, requested: int = 0, available: int = 0):
        super().__init__(message)
        self.requested = requested
        self.available = available


class AllocationError(ReproError):
    """A shared-memory allocation request was malformed (not capacity)."""


class SchedulingError(ReproError):
    """The offload scheduler was given an unsatisfiable problem."""


class CommunicationError(ReproError):
    """A simulated MPI or shared-memory communication primitive was misused."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class AnalysisError(ReproError):
    """The invariant analyzer (``python -m repro lint``) could not run
    — unreadable path, unparsable source, or malformed baseline."""


class PhysicsError(ReproError):
    """A DFT/LR-TDDFT computation produced an invalid result (e.g. a
    non-Hermitian response matrix or negative excitation energy)."""
