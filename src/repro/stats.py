"""Seed-free statistical helpers shared across the stack.

Foundation-layer home for :func:`percentile`, which both the arrival
process summaries (framework layer) and the fault-injection latency
accounting (simulation layer) need.  Keeping it here lets the
simulation layer use it without importing upward into
:mod:`repro.core.arrivals` — the invariant analyzer's layering rule
enforces exactly that.
"""

from __future__ import annotations

from collections.abc import Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction
