"""Repo-native invariant analyzer (``python -m repro lint``).

The paper's software half is a static analyzer deciding what is safe
to offload; this package points the same technique at the reproduction
itself.  Five AST/import-graph rules enforce the invariants the last
nine PRs established — bottom-up layering, seeded virtual-time
determinism, the backend decline contract, hot-loop ``__slots__``
hygiene, and the :mod:`repro.errors` exception discipline — on every
commit, the way ruff enforces style.

See :mod:`repro.analysis.rules` for the rule set and the explicit
allowlists, :mod:`repro.analysis.project` for the layer map, and
:mod:`repro.analysis.runner` for the CLI and baseline semantics.
"""

from repro.analysis.findings import Context, Finding, ModuleInfo, Rule
from repro.analysis.graph import ImportEdge, ImportGraph
from repro.analysis.project import LAYER_ORDER, ProjectModel
from repro.analysis.rules import (
    BackendContractRule,
    DeterminismRule,
    ErrorDisciplineRule,
    LayeringRule,
    RuleConfig,
    SlotsRule,
    default_rules,
)
from repro.analysis.runner import run_analysis

__all__ = [
    "BackendContractRule",
    "Context",
    "DeterminismRule",
    "ErrorDisciplineRule",
    "Finding",
    "ImportEdge",
    "ImportGraph",
    "LAYER_ORDER",
    "LayeringRule",
    "ModuleInfo",
    "ProjectModel",
    "Rule",
    "RuleConfig",
    "SlotsRule",
    "default_rules",
    "run_analysis",
]
