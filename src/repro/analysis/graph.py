"""Import graph extracted from module ASTs.

Unlike ``importlib``-based approaches, the graph is built purely from
source text, so it sees *every* import: module scope, function-local
("lazy") imports used to break cycles or defer heavy dependencies, and
``if TYPE_CHECKING:`` blocks.  Each edge records enough provenance for
rules to treat those categories differently — the layering rule, for
instance, ignores type-checking-only edges (they are erased at
runtime) but deliberately includes lazy imports, because a lazy upward
import is still an upward dependency once the function runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.findings import ModuleInfo


@dataclass(frozen=True, slots=True)
class ImportEdge:
    """One import statement, resolved to the deepest known module."""

    source: str
    target: str
    line: int
    lazy: bool
    type_checking: bool


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


@dataclass(slots=True)
class ImportGraph:
    """All import edges between the scanned modules."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    edges: dict[str, tuple[ImportEdge, ...]] = field(default_factory=dict)

    @classmethod
    def build(cls, modules: dict[str, ModuleInfo]) -> "ImportGraph":
        graph = cls(modules=dict(modules))
        known = set(graph.modules)
        for name, info in graph.modules.items():
            collector = _ImportCollector(info, known)
            collector.visit(info.tree)
            graph.edges[name] = tuple(collector.edges)
        return graph

    def imports_of(self, module: str) -> tuple[ImportEdge, ...]:
        return self.edges.get(module, ())

    def importers_of(self, module: str) -> tuple[str, ...]:
        """Modules with at least one runtime edge onto ``module``."""
        hits = []
        for source, edges in sorted(self.edges.items()):
            for edge in edges:
                if edge.type_checking:
                    continue
                if edge.target == module or edge.target.startswith(
                    module + "."
                ):
                    hits.append(source)
                    break
        return tuple(hits)


class _ImportCollector(ast.NodeVisitor):
    """Walk one module and record every import with provenance flags."""

    def __init__(self, info: ModuleInfo, known: set[str]) -> None:
        self.info = info
        self.known = known
        self.edges: list[ImportEdge] = []
        self._function_depth = 0
        self._type_checking_depth = 0
        is_package = info.path.endswith("__init__.py")
        parts = info.name.split(".") if info.name else []
        self._package_parts = parts if is_package else parts[:-1]

    # -- scope tracking -------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking_test(node.test):
            self._type_checking_depth += 1
            for child in node.body:
                self.visit(child)
            self._type_checking_depth -= 1
            for child in node.orelse:
                self.visit(child)
            return
        self.generic_visit(node)

    # -- imports --------------------------------------------------------
    def _add(self, target: str, line: int) -> None:
        self.edges.append(
            ImportEdge(
                source=self.info.name,
                target=target,
                line=line,
                lazy=self._function_depth > 0,
                type_checking=self._type_checking_depth > 0,
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._add(alias.name, node.lineno)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = self._resolve_base(node)
        if base is None:
            return
        for alias in node.names:
            candidate = f"{base}.{alias.name}" if base else alias.name
            if candidate in self.known:
                self._add(candidate, node.lineno)
            elif base:
                self._add(base, node.lineno)
            else:
                self._add(alias.name, node.lineno)

    def _resolve_base(self, node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module or ""
        parts = list(self._package_parts)
        drop = node.level - 1
        if drop > len(parts):
            return None
        if drop:
            parts = parts[:-drop]
        if node.module:
            parts.extend(node.module.split("."))
        return ".".join(parts)
