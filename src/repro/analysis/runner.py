"""Collection, baseline suppression, and CLI entry for the analyzer.

``python -m repro lint [paths...]`` parses every ``*.py`` file under
the given paths (default: ``src``), builds the import graph, runs the
rule set, subtracts baseline-suppressed findings, and prints the rest
as text or JSON.  Exit status is 0 when nothing (non-suppressed)
fired, 1 otherwise, 2 on usage errors.

The baseline (``.invariant-baseline.json``, committed) exists so a
rule can land before the last grandfathered violation is fixed; the
repo's own baseline is **empty** — the self-check test keeps it that
way.  Baseline entries match on ``(rule, path, message)``, not line
numbers, so unrelated edits do not un-suppress a grandfathered
finding.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path

from repro.analysis.findings import Context, Finding, ModuleInfo
from repro.analysis.graph import ImportGraph
from repro.analysis.project import ProjectModel
from repro.analysis.rules import RuleConfig, default_rules
from repro.errors import AnalysisError

BASELINE_NAME = ".invariant-baseline.json"


def collect_modules(
    root: Path, paths: list[Path], project: ProjectModel
) -> dict[str, ModuleInfo]:
    """Parse every ``*.py`` file under ``paths`` into :class:`ModuleInfo`."""
    files: list[Path] = []
    for path in paths:
        resolved = path if path.is_absolute() else root / path
        if resolved.is_dir():
            files.extend(
                p
                for p in sorted(resolved.rglob("*.py"))
                if "__pycache__" not in p.relative_to(resolved).parts
                and not any(
                    part.startswith(".")
                    for part in p.relative_to(resolved).parts
                )
            )
        elif resolved.is_file():
            files.append(resolved)
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    modules: dict[str, ModuleInfo] = {}
    for file in files:
        try:
            rel = file.relative_to(root)
        except ValueError:
            rel = Path(file.name)
        name = project.module_name(rel)
        try:
            tree = ast.parse(file.read_text(encoding="utf-8"))
        except SyntaxError as exc:
            raise AnalysisError(
                f"cannot parse {rel}: {exc.msg} (line {exc.lineno})"
            ) from exc
        modules[name] = ModuleInfo(
            name=name, path=rel.as_posix(), tree=tree
        )
    return modules


def run_analysis(
    root: Path,
    paths: list[Path] | None = None,
    rules: list[object] | None = None,
    config: RuleConfig | None = None,
) -> list[Finding]:
    """Run ``rules`` over the modules under ``paths`` and return all
    findings, sorted by location (baseline not applied)."""
    project = ProjectModel(root=root)
    modules = collect_modules(root, paths or [Path("src")], project)
    graph = ImportGraph.build(modules)
    context = Context(project=project, modules=modules)
    active = rules if rules is not None else default_rules(config)
    findings: list[Finding] = []
    for name in sorted(modules):
        for rule in active:
            findings.extend(rule.check(modules[name], graph, context))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings


# -- baseline ----------------------------------------------------------


def load_baseline(path: Path) -> set[tuple[str, str, str]]:
    if not path.exists():
        return set()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"malformed baseline {path}: {exc}") from exc
    entries = payload.get("suppressions", [])
    return {
        (entry["rule"], entry["path"], entry["message"])
        for entry in entries
    }


def write_baseline(path: Path, findings: list[Finding]) -> None:
    payload = {
        "version": 1,
        "suppressions": [
            {"rule": f.rule, "path": f.path, "message": f.message}
            for f in findings
        ],
    }
    path.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def apply_baseline(
    findings: list[Finding], baseline: set[tuple[str, str, str]]
) -> tuple[list[Finding], int]:
    """Split findings into (active, suppressed-count)."""
    active = [f for f in findings if f.key() not in baseline]
    return active, len(findings) - len(active)


# -- CLI ---------------------------------------------------------------


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description=(
            "Repo-native invariant analyzer: layering, determinism, "
            "backend contract, hot-loop hygiene, error discipline."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=BASELINE_NAME,
        help=f"baseline file (default: {BASELINE_NAME})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also write the report to this file",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root (default: current directory)",
    )
    return parser


def _render(
    findings: list[Finding],
    suppressed: int,
    fmt: str,
    rule_ids: list[str],
) -> str:
    if fmt == "json":
        return json.dumps(
            {
                "findings": [f.to_dict() for f in findings],
                "count": len(findings),
                "suppressed": suppressed,
                "rules": rule_ids,
            },
            indent=2,
        )
    lines = [f.render() for f in findings]
    summary = f"{len(findings)} finding(s)"
    if suppressed:
        summary += f", {suppressed} suppressed by baseline"
    lines.append(summary)
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    root = Path(args.root).resolve()
    config = RuleConfig()
    rules = default_rules(config)
    if args.rules:
        wanted = {r.strip() for r in args.rules.split(",") if r.strip()}
        known = {rule.id for rule in rules}
        unknown = wanted - known
        if unknown:
            print(
                "unknown rule id(s): "
                + ", ".join(sorted(unknown))
                + "; known: "
                + ", ".join(sorted(known)),
                file=sys.stderr,
            )
            return 2
        rules = [rule for rule in rules if rule.id in wanted]
    try:
        findings = run_analysis(
            root,
            [Path(p) for p in args.paths],
            rules=rules,
            config=config,
        )
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    baseline_path = Path(args.baseline)
    if not baseline_path.is_absolute():
        baseline_path = root / baseline_path
    if args.write_baseline:
        write_baseline(baseline_path, findings)
        print(
            f"wrote {len(findings)} suppression(s) to {baseline_path}"
        )
        return 0
    try:
        baseline = load_baseline(baseline_path)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    active, suppressed = apply_baseline(findings, baseline)
    report = _render(
        active, suppressed, args.format, [rule.id for rule in rules]
    )
    print(report)
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
    return 1 if active else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
