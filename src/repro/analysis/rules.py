"""The five repo-specific invariant rules.

Each rule encodes a guarantee earlier PRs established by construction
and tests enforce only where a test author remembered to look:

- :class:`LayeringRule` — the ROADMAP's bottom-up stack: imports only
  point downward (or sideways within a band).
- :class:`DeterminismRule` — virtual-time modules never read wall
  clocks or unseeded entropy; the few sanctioned wall-timing sites
  (backend auto-tuning, serving benchmarks) live in an explicit
  allowlist here, not in inline comments.
- :class:`BackendContractRule` — every simulation backend is reachable
  from the registry walk, declines with named reason constants, and
  never swallows errors in its ``simulate`` path.
- :class:`SlotsRule` — hot-loop classes declare ``__slots__``.
- :class:`ErrorDisciplineRule` — user-facing validation raises the
  :mod:`repro.errors` hierarchy, never bare ``ValueError``.

Adding a rule: implement :class:`repro.analysis.findings.Rule`, give
it a unique ``id``, and append an instance in :func:`default_rules`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.findings import Context, Finding, ModuleInfo
from repro.analysis.graph import ImportGraph


def _matches_scope(module: str, prefixes: tuple[str, ...]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


@dataclass(slots=True)
class RuleConfig:
    """Shared, explicit configuration for the default rule set.

    Everything the rules treat specially is named here — scopes,
    allowlists, hot-path modules — so sanctioned exceptions are one
    greppable declaration instead of scattered inline pragmas.
    """

    #: Top-level package the layering rule expects to find in the map.
    project_prefix: str = "repro"

    #: Modules that run on virtual (simulated) time and must stay
    #: bit-deterministic for a fixed seed.
    determinism_scope: tuple[str, ...] = (
        "repro.core",
        "repro.hw",
        "repro.fleet",
        "repro.experiments.scale_serving",
    )

    #: Sanctioned wall-clock sites: (module, dotted call).  These
    #: measure *host* wall time (backend auto-tuning, serving
    #: benchmarks) and never feed simulated timestamps.
    determinism_allowlist: frozenset[tuple[str, str]] = frozenset(
        {
            # BackendTuner shard measurement (ROADMAP: measured routing).
            ("repro.core.executor", "time.perf_counter"),
            # WorkerPool wall/sim speedup accounting.
            ("repro.fleet.pool", "time.perf_counter"),
            # Serving benchmark harness timing.
            ("repro.experiments.scale_serving", "time.perf_counter"),
        }
    )

    #: Seeded-constructor calls exempt from the entropy ban *when
    #: called with an explicit seed argument*.
    seeded_constructors: frozenset[str] = frozenset(
        {
            "random.Random",
            "random.SystemRandom",  # still flagged: no seed parameter
            "numpy.random.RandomState",
            "numpy.random.default_rng",
            "numpy.random.Generator",
            "numpy.random.SeedSequence",
        }
    )

    #: The registry module the backend-contract rule inspects.
    backend_module: str = "repro.core.backends"

    #: Hot-path modules whose classes must declare ``__slots__``.
    slots_modules: tuple[str, ...] = (
        "repro.hw.engine",
        "repro.hw.vector_replay",
        "repro.core.executor",
    )

    #: User-facing modules where validation must raise the
    #: :mod:`repro.errors` hierarchy.
    error_scope: tuple[str, ...] = (
        "repro.cli",
        "repro.core.framework",
        "repro.fleet",
    )


def _alias_map(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted origin they were imported as.

    ``import numpy as np`` maps ``np`` to ``numpy``; ``from time
    import perf_counter as pc`` maps ``pc`` to ``time.perf_counter``.
    Function-local imports are included — a lazy wall-clock import is
    still a wall-clock read.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{base}.{alias.name}" if base else alias.name
    return aliases


def _dotted(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Resolve an attribute chain to its imported dotted origin."""
    parts: list[str] = []
    probe = node
    while isinstance(probe, ast.Attribute):
        parts.append(probe.attr)
        probe = probe.value
    if not isinstance(probe, ast.Name):
        return None
    root = aliases.get(probe.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


@dataclass(slots=True)
class LayeringRule:
    """Imports only point downward through the ROADMAP's layer stack."""

    config: RuleConfig
    id: str = "layering"
    severity: str = "error"

    def check(
        self, module: ModuleInfo, graph: ImportGraph, context: Context
    ) -> list[Finding]:
        project = context.project
        findings: list[Finding] = []
        ordinal = project.ordinal_of(module.name)
        in_project = _matches_scope(
            module.name, (self.config.project_prefix,)
        )
        if in_project and ordinal is None:
            findings.append(
                Finding(
                    rule=self.id,
                    severity=self.severity,
                    path=module.path,
                    line=1,
                    message=(
                        f"module {module.name} is not assigned to a layer"
                    ),
                    hint=(
                        "add it to MODULE_LAYERS or PREFIX_LAYERS in "
                        "repro/analysis/project.py so the layering rule "
                        "covers it"
                    ),
                )
            )
            return findings
        if ordinal is None:
            return findings
        layer = project.layer_of(module.name)
        for edge in graph.imports_of(module.name):
            if edge.type_checking:
                continue  # erased at runtime; no layering pressure
            target_ordinal = project.ordinal_of(edge.target)
            if target_ordinal is None or target_ordinal <= ordinal:
                continue
            target_layer = project.layer_of(edge.target)
            lazy = " (lazy import)" if edge.lazy else ""
            findings.append(
                Finding(
                    rule=self.id,
                    severity=self.severity,
                    path=module.path,
                    line=edge.line,
                    message=(
                        f"{module.name} [{layer}] imports {edge.target} "
                        f"[{target_layer}] upward{lazy}"
                    ),
                    hint=(
                        "invert the dependency or move the shared code "
                        "into a band at or below "
                        f"{layer!r} (see ROADMAP architecture)"
                    ),
                )
            )
        return findings


#: Wall-clock and entropy callables that break seeded virtual-time
#: determinism.  Prefix entries (trailing dot) ban a whole namespace.
_BANNED_CALLS: frozenset[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)
_BANNED_PREFIXES: tuple[str, ...] = ("random.", "numpy.random.", "secrets.")


@dataclass(slots=True)
class DeterminismRule:
    """No wall clocks or unseeded entropy in virtual-time modules."""

    config: RuleConfig
    id: str = "determinism"
    severity: str = "error"

    def check(
        self, module: ModuleInfo, graph: ImportGraph, context: Context
    ) -> list[Finding]:
        if not _matches_scope(module.name, self.config.determinism_scope):
            return []
        aliases = _alias_map(module.tree)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func, aliases)
            if dotted is None:
                continue
            if not self._is_banned(dotted, node):
                continue
            if (module.name, dotted) in self.config.determinism_allowlist:
                continue
            findings.append(
                Finding(
                    rule=self.id,
                    severity=self.severity,
                    path=module.path,
                    line=node.lineno,
                    message=(
                        f"call to {dotted} in virtual-time module "
                        f"{module.name}"
                    ),
                    hint=(
                        "derive time from the simulation clock and "
                        "entropy from an explicit seed; a sanctioned "
                        "wall-timing site belongs in "
                        "RuleConfig.determinism_allowlist "
                        "(repro/analysis/rules.py), not here"
                    ),
                )
            )
        return findings

    def _is_banned(self, dotted: str, node: ast.Call) -> bool:
        if dotted in self.config.seeded_constructors:
            if dotted == "random.SystemRandom":
                return True  # OS entropy; cannot be seeded
            return not (node.args or node.keywords)  # unseeded
        if dotted in _BANNED_CALLS:
            return True
        return any(dotted.startswith(p) for p in _BANNED_PREFIXES)


@dataclass(slots=True)
class BackendContractRule:
    """Registry reachability + named decline reasons + no swallowed
    errors in ``simulate``."""

    config: RuleConfig
    id: str = "backend-contract"
    severity: str = "error"

    def check(
        self, module: ModuleInfo, graph: ImportGraph, context: Context
    ) -> list[Finding]:
        if module.name != self.config.backend_module:
            return []
        tree = module.tree
        findings: list[Finding] = []
        reason_constants = self._reason_constants(tree)
        registered = self._registered_classes(tree)
        for node in tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if self._is_protocol(node):
                continue
            if not node.name.endswith("Backend"):
                continue
            if node.name not in registered:
                findings.append(
                    Finding(
                        rule=self.id,
                        severity=self.severity,
                        path=module.path,
                        line=node.lineno,
                        message=(
                            f"backend class {node.name} is never passed "
                            "to register_backend() at module level"
                        ),
                        hint=(
                            "register it (engine must stay last) or "
                            "delete the dead backend"
                        ),
                    )
                )
            findings.extend(self._check_methods(module, node, reason_constants))
        return findings

    @staticmethod
    def _is_protocol(node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = base.id if isinstance(base, ast.Name) else getattr(base, "attr", "")
            if name == "Protocol":
                return True
        return False

    @staticmethod
    def _reason_constants(tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for node in tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and "REASON" in target.id
                        and target.id.upper() == target.id
                    ):
                        names.add(target.id)
        return names

    @staticmethod
    def _registered_classes(tree: ast.Module) -> set[str]:
        registered: set[str] = set()
        for node in tree.body:
            if not (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)
                and node.value.func.id == "register_backend"
            ):
                continue
            for arg in node.value.args:
                if isinstance(arg, ast.Call) and isinstance(
                    arg.func, ast.Name
                ):
                    registered.add(arg.func.id)
                elif isinstance(arg, ast.Name):
                    registered.add(arg.id)
        return registered

    def _check_methods(
        self,
        module: ModuleInfo,
        klass: ast.ClassDef,
        reason_constants: set[str],
    ) -> list[Finding]:
        findings: list[Finding] = []
        methods = {
            item.name: item
            for item in klass.body
            if isinstance(item, ast.FunctionDef)
        }
        simulate = methods.get("simulate")
        declines = False
        if simulate is not None:
            for node in ast.walk(simulate):
                if isinstance(node, ast.ExceptHandler):
                    bare = node.type is None
                    swallows = any(
                        isinstance(inner, ast.Return)
                        for inner in ast.walk(node)
                    )
                    if bare or swallows:
                        what = (
                            "a bare except"
                            if bare
                            else "an except handler that returns"
                        )
                        findings.append(
                            Finding(
                                rule=self.id,
                                severity=self.severity,
                                path=module.path,
                                line=node.lineno,
                                message=(
                                    f"{klass.name}.simulate contains "
                                    f"{what} (silent fallback)"
                                ),
                                hint=(
                                    "decline explicitly by returning "
                                    "None with a named reason in "
                                    "unsupported_reason, or let the "
                                    "error propagate"
                                ),
                            )
                        )
                if isinstance(node, ast.Return) and (
                    node.value is None
                    or (
                        isinstance(node.value, ast.Constant)
                        and node.value.value is None
                    )
                ):
                    declines = True
        if declines and "unsupported_reason" not in methods:
            findings.append(
                Finding(
                    rule=self.id,
                    severity=self.severity,
                    path=module.path,
                    line=simulate.lineno,
                    message=(
                        f"{klass.name}.simulate declines shards but the "
                        "class defines no unsupported_reason"
                    ),
                    hint=(
                        "add unsupported_reason(executor, shard_jobs) "
                        "returning a named *_REASON constant so forced-"
                        "backend errors can explain the decline"
                    ),
                )
            )
        reason = methods.get("unsupported_reason")
        if reason is not None:
            for node in ast.walk(reason):
                if not isinstance(node, ast.Return) or node.value is None:
                    continue
                if isinstance(node.value, ast.Constant) and (
                    node.value.value is None
                ):
                    continue
                names = {
                    inner.id
                    for inner in ast.walk(node.value)
                    if isinstance(inner, ast.Name)
                }
                if names & reason_constants:
                    continue
                findings.append(
                    Finding(
                        rule=self.id,
                        severity=self.severity,
                        path=module.path,
                        line=node.lineno,
                        message=(
                            f"{klass.name}.unsupported_reason returns an "
                            "inline reason instead of a named *_REASON "
                            "constant"
                        ),
                        hint=(
                            "hoist the text to a module-level UPPER_CASE "
                            "*_REASON constant (templates may use "
                            ".format) so errors and docs quote one "
                            "source of truth"
                        ),
                    )
                )
        return findings


@dataclass(slots=True)
class SlotsRule:
    """Classes in hot-loop modules declare ``__slots__``."""

    config: RuleConfig
    id: str = "slots"
    severity: str = "error"

    def check(
        self, module: ModuleInfo, graph: ImportGraph, context: Context
    ) -> list[Finding]:
        if module.name not in self.config.slots_modules:
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if self._exempt(node) or self._has_slots(node):
                continue
            findings.append(
                Finding(
                    rule=self.id,
                    severity=self.severity,
                    path=module.path,
                    line=node.lineno,
                    message=(
                        f"class {node.name} in hot-path module "
                        f"{module.name} does not declare __slots__"
                    ),
                    hint=(
                        "add __slots__ (or slots=True on the dataclass "
                        "decorator) to keep per-instance dicts out of "
                        "the event loop"
                    ),
                )
            )
        return findings

    @staticmethod
    def _exempt(node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = base.id if isinstance(base, ast.Name) else getattr(base, "attr", "")
            if name == "Protocol" or name.endswith(("Exception", "Error")):
                return True
        return False

    @staticmethod
    def _has_slots(node: ast.ClassDef) -> bool:
        for item in node.body:
            if isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name) and (
                        target.id == "__slots__"
                    ):
                        return True
            if isinstance(item, ast.AnnAssign) and (
                isinstance(item.target, ast.Name)
                and item.target.id == "__slots__"
            ):
                return True
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            func = decorator.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
            if name != "dataclass":
                continue
            for keyword in decorator.keywords:
                if keyword.arg == "slots" and (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return True
        return False


@dataclass(slots=True)
class ErrorDisciplineRule:
    """User-facing validation raises the repro.errors hierarchy."""

    config: RuleConfig
    id: str = "error-discipline"
    severity: str = "error"

    def check(
        self, module: ModuleInfo, graph: ImportGraph, context: Context
    ) -> list[Finding]:
        if not _matches_scope(module.name, self.config.error_scope):
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name != "ValueError":
                continue
            findings.append(
                Finding(
                    rule=self.id,
                    severity=self.severity,
                    path=module.path,
                    line=node.lineno,
                    message=(
                        f"raise ValueError in user-facing module "
                        f"{module.name}"
                    ),
                    hint=(
                        "raise ConfigError (bad input) or "
                        "SimulationError (runtime contract) from "
                        "repro.errors so callers can catch ReproError"
                    ),
                )
            )
        return findings


def default_rules(
    config: RuleConfig | None = None,
) -> list[object]:
    """The shipped rule set, in documentation order."""
    config = config or RuleConfig()
    return [
        LayeringRule(config),
        DeterminismRule(config),
        BackendContractRule(config),
        SlotsRule(config),
        ErrorDisciplineRule(config),
    ]


DEFAULT_CONFIG = RuleConfig()
