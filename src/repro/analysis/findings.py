"""Finding and rule framework for the repo-native invariant analyzer.

The analyzer turns the paper's static-analysis idea inward: the same
repository that reproduces an SCA for offload safety checks its *own*
invariants (layering, determinism, backend contract, hot-loop hygiene,
error discipline) with an AST walk instead of relying on test authors
to remember each one.

A rule is any object satisfying :class:`Rule`: it exposes a stable
``id``, a ``severity`` (``"error"`` or ``"warning"``), and a
``check(module, graph, context)`` hook returning :class:`Finding`
objects.  Rules never mutate the module or the graph; the runner owns
collection, baseline suppression, and output formatting.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:
    from repro.analysis.graph import ImportGraph
    from repro.analysis.project import ProjectModel

SEVERITIES = ("error", "warning")


@dataclass(frozen=True, slots=True)
class Finding:
    """One invariant violation at a concrete source location."""

    rule: str
    severity: str
    path: str
    line: int
    message: str
    hint: str

    def key(self) -> tuple[str, str, str]:
        """Stable identity used for baseline suppression.

        Line numbers are deliberately excluded so an unrelated edit
        above a grandfathered finding does not un-suppress it.
        """
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: [{self.rule}] {self.message}"
            f"\n    hint: {self.hint}"
        )


@dataclass(frozen=True, slots=True)
class ModuleInfo:
    """One parsed source file handed to every rule."""

    name: str
    path: str
    tree: ast.Module


@dataclass(slots=True)
class Context:
    """Shared analysis state each rule receives alongside the module."""

    project: "ProjectModel"
    modules: dict[str, ModuleInfo] = field(default_factory=dict)

    def module(self, name: str) -> ModuleInfo | None:
        return self.modules.get(name)


@runtime_checkable
class Rule(Protocol):
    """Contract every invariant rule implements."""

    id: str
    severity: str

    def check(
        self,
        module: ModuleInfo,
        graph: "ImportGraph",
        context: Context,
    ) -> list[Finding]: ...
