"""Project model: map repository files onto the ROADMAP's layer stack.

The ROADMAP describes the reproduction as a bottom-up stack — model/IR
at the bottom, then DFT workloads, pipeline, machine models, scheduler,
simulation backends, the user-facing framework, the fleet serving
layer, and the experiment/CLI harness on top.  The layering rule
enforces that imports only point downward (or sideways within one
band).

The assignment below is file-granular because ``core/`` and ``hw/``
each straddle several bands: ``core/ir.py`` is foundation material
while ``core/framework.py`` sits near the top, and ``hw/config.py`` is
a passive machine description while ``hw/engine.py`` is the discrete
event simulator itself.  Facade ``__init__`` modules live at the band
of the highest module they re-export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

#: Ordered bottom-up band names; the index is the ordinal used by the
#: layering rule (imports may only target an equal or lower ordinal).
LAYER_ORDER: tuple[str, ...] = (
    "foundation",
    "workloads",
    "pipeline",
    "machines",
    "scheduler",
    "simulation",
    "framework",
    "fleet",
    "harness",
)

#: Exact module -> band.  Consulted before the prefix table.
MODULE_LAYERS: dict[str, str] = {
    "repro.errors": "foundation",
    "repro.units": "foundation",
    "repro.model": "foundation",
    "repro.stats": "foundation",
    "repro.core.ir": "foundation",
    "repro.core.pipeline": "pipeline",
    "repro.core.cost_model": "scheduler",
    "repro.core.scheduler": "scheduler",
    "repro.core.sca": "scheduler",
    "repro.hw.engine": "simulation",
    "repro.hw.vector_replay": "simulation",
    "repro.hw": "simulation",
    "repro.core.backends": "simulation",
    "repro.core.executor": "simulation",
    "repro.core.trace": "simulation",
    "repro.core.faults": "simulation",
    "repro.core.framework": "framework",
    "repro.core.signature": "framework",
    "repro.core.lru": "framework",
    "repro.core.arrivals": "framework",
    "repro.core.baselines": "framework",
    "repro.core": "framework",
    "repro": "framework",
    "repro.cli": "harness",
    "repro.__main__": "harness",
}

#: Package prefix -> band, for subtrees that live in one band entirely.
PREFIX_LAYERS: dict[str, str] = {
    "repro.dft": "workloads",
    "repro.workloads": "workloads",
    "repro.parallel": "workloads",
    "repro.hw": "machines",
    "repro.shmem": "machines",
    "repro.fleet": "fleet",
    "repro.experiments": "harness",
    "repro.analysis": "harness",
}


@dataclass(slots=True)
class ProjectModel:
    """Resolve file paths to module names and modules to layer bands."""

    root: Path
    layer_order: tuple[str, ...] = LAYER_ORDER
    module_layers: dict[str, str] = field(
        default_factory=lambda: dict(MODULE_LAYERS)
    )
    prefix_layers: dict[str, str] = field(
        default_factory=lambda: dict(PREFIX_LAYERS)
    )

    def module_name(self, path: Path | str) -> str:
        """Dotted module name for ``path``, relative to the repo root.

        ``src/`` is treated as a source root (``src/repro/hw/engine.py``
        -> ``repro.hw.engine``); other trees keep their directory name
        as the top-level package (``tests/core/test_x.py`` ->
        ``tests.core.test_x``) so non-package files still get a stable,
        unique name.
        """
        rel = Path(path)
        if rel.is_absolute():
            try:
                rel = rel.relative_to(self.root)
            except ValueError:
                rel = Path(rel.name)
        parts = list(rel.with_suffix("").parts)
        if parts and parts[0] == "src":
            parts = parts[1:]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def layer_of(self, module: str) -> str | None:
        """Band name for ``module``, or ``None`` when out of scope.

        Exact entries win over prefix entries, and only for the exact
        module: ``repro.hw`` (a facade that re-exports the engine) sits
        in ``simulation`` while ``repro.hw.config`` falls through to
        the ``repro.hw`` *prefix* entry in ``machines``.
        """
        if module in self.module_layers:
            return self.module_layers[module]
        probe = module
        while probe:
            if probe in self.prefix_layers:
                return self.prefix_layers[probe]
            probe = probe.rpartition(".")[0]
        return None

    def ordinal_of(self, module: str) -> int | None:
        layer = self.layer_of(module)
        if layer is None:
            return None
        return self.layer_order.index(layer)
