"""Interconnect models: the 4x4 stack mesh and the CPU <-> NDP link.

The paper's memory network is a mesh of HBM2 stacks (Table III).  We model
XY dimension-ordered routing, per-link bandwidth, per-hop latency, and the
two collective shapes the workload needs:

- uniform **all-to-all** (the Global Comm phase when LR-TDDFT ranks live on
  NDP units): bisection-limited; half of all traffic crosses the middle of
  the mesh.
- **point-to-point** remote reads (the hierarchical pseudopotential scheme
  of §IV-C): average-hop-count latency plus per-link serialization.

The host link carries offload traffic between the CPU and the memory
network; its cost is the DT term of the paper's Eq. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.errors import ConfigError


@dataclass(frozen=True)
class MeshNetwork:
    """A 2D mesh of memory stacks with XY routing."""

    stacks_x: int
    stacks_y: int
    link_bandwidth: float      # bytes/s, per link per direction
    hop_latency: float         # seconds per hop (router + SerDes)

    def __post_init__(self) -> None:
        if self.stacks_x < 1 or self.stacks_y < 1:
            raise ConfigError("mesh dimensions must be >= 1")
        if self.link_bandwidth <= 0 or self.hop_latency < 0:
            raise ConfigError("invalid mesh link parameters")

    @property
    def n_stacks(self) -> int:
        return self.stacks_x * self.stacks_y

    def coordinates(self, stack_id: int) -> tuple[int, int]:
        if not 0 <= stack_id < self.n_stacks:
            raise ConfigError(
                f"stack id {stack_id} out of range [0, {self.n_stacks})"
            )
        return stack_id % self.stacks_x, stack_id // self.stacks_x

    def hops(self, src: int, dst: int) -> int:
        """XY-routing hop count between two stacks."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    @property
    def average_hops(self) -> float:
        """Mean hop count over distinct (src, dst) pairs."""
        if self.n_stacks == 1:
            return 0.0
        total = 0
        for src, dst in product(range(self.n_stacks), repeat=2):
            if src != dst:
                total += self.hops(src, dst)
        return total / (self.n_stacks * (self.n_stacks - 1))

    @property
    def bisection_bandwidth(self) -> float:
        """One-way bandwidth across the narrower middle cut of the mesh."""
        cut_links = min(self.stacks_x, self.stacks_y)
        return cut_links * self.link_bandwidth

    def point_to_point_time(self, nbytes: float, src: int, dst: int) -> float:
        """Seconds to move ``nbytes`` between two specific stacks."""
        if nbytes < 0:
            raise ConfigError("byte count must be non-negative")
        hop_count = self.hops(src, dst)
        if hop_count == 0:
            return 0.0
        return hop_count * self.hop_latency + nbytes / self.link_bandwidth

    def alltoall_time(self, total_bytes: float) -> float:
        """Seconds for a uniform all-to-all moving ``total_bytes`` of
        remote payload across the mesh.

        Under uniform traffic, half the bytes cross the bisection in each
        direction, so the serialization term is ``(bytes / 2) /
        bisection``; the latency term uses the average hop count once
        (messages pipeline behind each other).
        """
        if total_bytes < 0:
            raise ConfigError("byte count must be non-negative")
        if total_bytes == 0 or self.n_stacks == 1:
            return 0.0
        serialization = (total_bytes / 2.0) / self.bisection_bandwidth
        return self.average_hops * self.hop_latency + serialization


@dataclass(frozen=True)
class HostLink:
    """The serial link(s) between the host CPU and the memory network."""

    bandwidth: float           # bytes/s aggregate, each direction
    base_latency: float = 250e-9

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.base_latency < 0:
            raise ConfigError("invalid host link parameters")

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` between host and NDP memory.  This is
        the DT(i, j) term of the paper's Eq. 1."""
        if nbytes < 0:
            raise ConfigError("byte count must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.base_latency + nbytes / self.bandwidth
