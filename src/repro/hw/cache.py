"""Working-set cache model.

Instead of simulating individual cache lines (zsim territory), we estimate
the fraction of a kernel's nominal traffic that actually reaches DRAM from
the relation between the kernel's per-task working set and the cache
hierarchy's capacities: working sets that fit in L2 are almost entirely
absorbed, L3-resident sets mostly absorbed, and sets much larger than L3
stream at full traffic.  Between the anchor points the factor is
interpolated log-linearly in the working-set size, which reproduces the
smooth miss-curve shape of set-associative caches without tracking state.

This is the standard analytic treatment used in first-order architecture
models, and it is all the paper's observations need: whether SYEVD's
matrix fits in cache is exactly what flips it between memory- and
compute-bound across system sizes (Fig. 4, observation 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.hw.config import CacheConfig
from repro.model import AccessPattern

#: DRAM-traffic fraction when the working set fits each anchor level.
TRAFFIC_AT_L1 = 0.02
TRAFFIC_AT_L2 = 0.10
TRAFFIC_AT_L3 = 0.30
TRAFFIC_BEYOND = 1.00
#: Working sets larger than this multiple of L3 get no cache relief.
L3_HEADROOM = 8.0


@dataclass(frozen=True)
class CacheHierarchy:
    """Three-level private/shared cache hierarchy of one machine."""

    l1: CacheConfig
    l2: CacheConfig
    l3: CacheConfig

    def __post_init__(self) -> None:
        if not self.l1.capacity <= self.l2.capacity <= self.l3.capacity:
            raise ConfigError(
                "cache capacities must be monotone: "
                f"{self.l1.capacity} <= {self.l2.capacity} <= {self.l3.capacity}"
            )

    def dram_traffic_factor(
        self, working_set: float, pattern: AccessPattern
    ) -> float:
        """Fraction of nominal kernel traffic that reaches DRAM.

        ``working_set`` is the bytes one task re-touches.  Streaming kernels
        should pass a working set equal to their reuse window (often the
        grid slice), not their total footprint.  Irregular patterns get no
        cache relief: their reuse is not capturable by an LRU-like
        hierarchy.
        """
        if working_set < 0:
            raise ConfigError("working_set must be non-negative")
        if pattern is AccessPattern.IRREGULAR:
            return TRAFFIC_BEYOND
        if pattern is AccessPattern.BLOCKED:
            # Blocked dense kernels (GEMM/SYEVD) declare their traffic
            # *after* blocking: the workload's bytes already are DRAM
            # traffic, so no further discount applies.
            return TRAFFIC_BEYOND
        if working_set <= self.l1.capacity:
            return TRAFFIC_AT_L1
        anchors_x = np.log(
            [
                self.l1.capacity,
                self.l2.capacity,
                self.l3.capacity,
                self.l3.capacity * L3_HEADROOM,
            ]
        )
        anchors_y = [TRAFFIC_AT_L1, TRAFFIC_AT_L2, TRAFFIC_AT_L3, TRAFFIC_BEYOND]
        return float(
            np.interp(np.log(max(working_set, 1.0)), anchors_x, anchors_y)
        )

    def load_latency(self, working_set: float, frequency: float) -> float:
        """Average load latency (seconds) for a task with the given working
        set, from the level that can hold it."""
        if frequency <= 0:
            raise ConfigError("frequency must be positive")
        if working_set <= self.l1.capacity:
            cycles = self.l1.latency_cycles
        elif working_set <= self.l2.capacity:
            cycles = self.l2.latency_cycles
        else:
            cycles = self.l3.latency_cycles
        return cycles / frequency
