"""Machine configurations (the paper's Table III plus the two baselines).

Every number that appears in Table III appears here under the same name;
derived quantities (peak FLOP/s, aggregate bandwidths) are computed, never
hard-coded, so the tests can check them against the spec.

Microarchitectural parameters the paper does not state (FLOPs/cycle,
bandwidth efficiencies, link widths) are our modeling choices; each carries
a comment and DESIGN.md records the rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.units import GHZ, GiB, KiB, MHZ, MiB, GB


@dataclass(frozen=True)
class CacheConfig:
    """One cache level."""

    capacity: int
    latency_cycles: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.latency_cycles <= 0 or self.line_bytes <= 0:
            raise ConfigError(f"invalid cache config: {self}")


@dataclass(frozen=True)
class CpuConfig:
    """A conventional multicore CPU (host of the CPU-NDP system, or the
    standalone baseline)."""

    name: str
    cores: int
    frequency: float
    flops_per_cycle: int           # per core, double precision
    l1_data: CacheConfig
    l2: CacheConfig
    l3: CacheConfig
    memory_bandwidth: float        # peak, bytes/s
    memory_latency: float          # loaded DRAM latency, seconds
    memory_capacity: int           # bytes
    sockets: int = 1

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.sockets <= 0:
            raise ConfigError(f"invalid core/socket count in {self.name}")
        if self.frequency <= 0 or self.flops_per_cycle <= 0:
            raise ConfigError(f"invalid compute spec in {self.name}")
        if self.memory_bandwidth <= 0 or self.memory_capacity <= 0:
            raise ConfigError(f"invalid memory spec in {self.name}")

    @property
    def total_cores(self) -> int:
        return self.cores * self.sockets

    @property
    def peak_flops(self) -> float:
        return self.total_cores * self.frequency * self.flops_per_cycle


@dataclass(frozen=True)
class NdpConfig:
    """The near-data half of Table III: HBM2 stacks with wimpy in-order
    cores in each logic layer, plus a per-stack scratchpad shared memory."""

    name: str
    stacks_x: int                  # mesh dimensions (4 x 4 in the paper)
    stacks_y: int
    units_per_stack: int           # 8 NDP units per stack
    cores_per_unit: int            # 2 cores per NDP unit
    frequency: float               # 2 GHz, in-order
    flops_per_cycle: int           # per core; modest SIMD (model choice)
    l1_data: CacheConfig           # 32 KB L1I/D per core
    channels_per_stack: int        # 8 channels per stack
    bus_width_bits: int            # 128-bit bus
    bus_frequency: float           # 1000 MHz (DDR -> x2 in bandwidth)
    capacity_per_unit: int         # 512 MB per unit
    spm_per_core: int              # 16 KB per core
    spm_per_stack: int             # 256 KB per stack
    mesh_link_bandwidth: float     # bytes/s per mesh link per direction
    mesh_hop_latency: float        # seconds per hop
    host_link_bandwidth: float     # CPU <-> memory-network, bytes/s

    def __post_init__(self) -> None:
        if self.stacks_x <= 0 or self.stacks_y <= 0:
            raise ConfigError("mesh dimensions must be positive")
        if self.units_per_stack <= 0 or self.cores_per_unit <= 0:
            raise ConfigError("unit/core counts must be positive")

    @property
    def n_stacks(self) -> int:
        return self.stacks_x * self.stacks_y

    @property
    def n_units(self) -> int:
        return self.n_stacks * self.units_per_stack

    @property
    def n_cores(self) -> int:
        return self.n_units * self.cores_per_unit

    @property
    def total_capacity(self) -> int:
        return self.capacity_per_unit * self.n_units

    @property
    def stack_internal_bandwidth(self) -> float:
        """Peak internal bandwidth of one stack: channels x bus x DDR."""
        return (
            self.channels_per_stack
            * (self.bus_width_bits / 8)
            * self.bus_frequency
            * 2.0
        )

    @property
    def aggregate_internal_bandwidth(self) -> float:
        return self.stack_internal_bandwidth * self.n_stacks

    @property
    def peak_flops(self) -> float:
        return self.n_cores * self.frequency * self.flops_per_cycle

    @property
    def unit_bandwidth(self) -> float:
        """Internal bandwidth share of one NDP unit."""
        return self.stack_internal_bandwidth / self.units_per_stack


@dataclass(frozen=True)
class GpuConfig:
    """A discrete-GPU baseline (2x V100 in a DGX-1)."""

    name: str
    n_gpus: int
    peak_flops_per_gpu: float      # double precision
    memory_bandwidth_per_gpu: float
    memory_capacity_per_gpu: int
    pcie_bandwidth_per_gpu: float  # host <-> device, per direction
    nvlink_bandwidth: float        # GPU <-> GPU aggregate
    kernel_launch_overhead: float  # seconds per kernel launch

    def __post_init__(self) -> None:
        if self.n_gpus <= 0:
            raise ConfigError("n_gpus must be positive")

    @property
    def peak_flops(self) -> float:
        return self.n_gpus * self.peak_flops_per_gpu

    @property
    def aggregate_memory_bandwidth(self) -> float:
        return self.n_gpus * self.memory_bandwidth_per_gpu

    @property
    def total_memory(self) -> int:
        return self.n_gpus * self.memory_capacity_per_gpu

    @property
    def aggregate_pcie_bandwidth(self) -> float:
        return self.n_gpus * self.pcie_bandwidth_per_gpu


@dataclass(frozen=True)
class SystemConfig:
    """The full CPU-NDP system of Table III."""

    host: CpuConfig
    ndp: NdpConfig
    #: One-way CPU <-> NDP offload context-switch cost (the CXT of Eq. 1):
    #: draining in-flight work, synchronizing thread contexts and flushing
    #: dirty lines on the releasing side.
    context_switch_overhead: float = 5e-4

    @property
    def ranks(self) -> int:
        """MPI ranks when LR-TDDFT runs across the NDP units (one rank per
        unit, matching the paper's process-per-unit execution model)."""
        return self.ndp.n_units


def ndft_system_config() -> SystemConfig:
    """Table III: the CPU-NDP system NDFT runs on.

    CPU: 8 general-purpose cores, 3 GHz, 4-way superscalar, 32 KB L1I/D,
    256 KB L2, 2 MB L3.  NDP: 8 units/stack, 2 GHz in-order, 2 cores/unit,
    32 KB L1I/D, 512 MB/unit (64 GB total), SPM 16 KB/core / 256 KB/stack.
    Memory: HBM2, 4x4 stacks in a mesh, 8 channels/stack, 128-bit bus,
    1000 MHz.
    """
    host = CpuConfig(
        name="ndft-host",
        cores=8,
        frequency=3.0 * GHZ,
        # 4-way superscalar with two 512-bit FMA pipes -> 32 DP FLOPs/cycle
        # (model choice; gives the host ~768 GFLOP/s peak).
        flops_per_cycle=32,
        l1_data=CacheConfig(capacity=32 * KiB, latency_cycles=4),
        l2=CacheConfig(capacity=256 * KiB, latency_cycles=12),
        l3=CacheConfig(capacity=2 * MiB, latency_cycles=38),
        # The host reaches the HBM network through serial links; modeled at
        # 128 GB/s aggregate, comparable to a strong DDR4 host.
        memory_bandwidth=128 * GB,
        memory_latency=95e-9,
        memory_capacity=64 * GiB,
    )
    ndp = NdpConfig(
        name="ndft-ndp",
        stacks_x=4,
        stacks_y=4,
        units_per_stack=8,
        cores_per_unit=2,
        frequency=2.0 * GHZ,
        # In-order cores with two 128-bit FMA pipes -> 8 DP FLOPs/cycle
        # (Tesseract-class wimpy cores with short SIMD).
        flops_per_cycle=8,
        l1_data=CacheConfig(capacity=32 * KiB, latency_cycles=2),
        channels_per_stack=8,
        bus_width_bits=128,
        bus_frequency=1000 * MHZ,
        capacity_per_unit=512 * MiB,
        spm_per_core=16 * KiB,
        spm_per_stack=256 * KiB,
        # SerDes mesh links between stacks (model choice, HMC-class,
        # half-width links in a 4x4 mesh).
        mesh_link_bandwidth=24 * GB,
        mesh_hop_latency=40e-9,
        host_link_bandwidth=128 * GB,
    )
    return SystemConfig(host=host, ndp=ndp)


def cpu_baseline_config() -> CpuConfig:
    """The paper's CPU baseline: 2x Intel Xeon E5-2695 @ 2.40 GHz,
    12 cores/socket, 64 GB DDR4."""
    return CpuConfig(
        name="xeon-e5-2695-x2",
        cores=12,
        sockets=2,
        frequency=2.4 * GHZ,
        # AVX with FMA on this part: 16 DP FLOPs/cycle.
        flops_per_cycle=16,
        l1_data=CacheConfig(capacity=32 * KiB, latency_cycles=4),
        l2=CacheConfig(capacity=256 * KiB, latency_cycles=12),
        l3=CacheConfig(capacity=30 * MiB, latency_cycles=42),
        # 4 channels DDR4-2133 per socket: 2 x 68.3 GB/s.
        memory_bandwidth=136.6 * GB,
        memory_latency=90e-9,
        memory_capacity=64 * GiB,
    )


def gpu_baseline_config() -> GpuConfig:
    """The paper's GPU baseline: 2x NVIDIA V100 in a DGX-1 server."""
    return GpuConfig(
        name="dgx1-v100-x2",
        n_gpus=2,
        peak_flops_per_gpu=7.8e12,
        memory_bandwidth_per_gpu=900 * GB,
        memory_capacity_per_gpu=16 * GiB,
        pcie_bandwidth_per_gpu=16 * GB,
        nvlink_bandwidth=100 * GB,
        kernel_launch_overhead=8e-6,
    )
