"""Discrete-event simulation engine.

A compact generator-based DES in the simpy style: processes are Python
generators that yield *commands* (wait for time, acquire/release a
resource), the engine advances virtual time over a heap of pending events.
The pipeline executor (:mod:`repro.core.executor`) uses it to serialize
phases on execution units and to model contention on the host link when
several offloaded stages transfer concurrently.

Supported commands (yield values):

- ``Engine.timeout(dt)`` — resume after ``dt`` seconds of virtual time.
- ``resource.acquire()`` — resume once a unit of the resource is granted.
- ``resource.release()`` — give a unit back (resumes a waiter if any).
- another :class:`SimProcess` — resume when that process finishes.

The hot loop is deliberately allocation-lean: at serving scale
(:meth:`repro.core.executor.PipelineExecutor.execute_many` with hundreds
of jobs) the simulator itself, not the modeled hardware, becomes the
bottleneck, so

- every participant class uses ``__slots__`` (no per-instance dict),
- heap entries are plain ``(time, seq, process)`` tuples — no closure is
  allocated per event, and the ``seq`` tie-breaker doubles as the FIFO
  guarantee for same-time events,
- the run loop steps generators and handles all commands inline,
  dispatching on the yielded object's class instead of walking an
  ``isinstance`` chain through helper calls per yield.

Event *ordering* is part of the engine's contract: same-time events run
in schedule order (monotonic ``seq``), so resource grants are FIFO and
repeated runs of the same job set are bit-identical.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Generator

from repro.errors import SimulationError


class Timeout:
    """Command: suspend the process for ``delay`` virtual seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay!r})"


class Acquire:
    """Command: wait for one unit of ``resource``."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        self.resource = resource

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Acquire({self.resource.name!r})"


class Release:
    """Command: give one unit of ``resource`` back."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        self.resource = resource

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Release({self.resource.name!r})"


Command = Timeout | Acquire | Release


class Resource:
    """A counted resource (e.g. an execution unit or a link).

    Waiters are granted strictly FIFO: a release hands the unit to the
    longest-waiting process (``deque.popleft``), never to a later
    arrival.
    """

    __slots__ = ("engine", "capacity", "name", "in_use", "waiters", "usage_log")

    def __init__(
        self,
        engine: "Engine",
        capacity: int,
        name: str = "resource",
        log_usage: bool = True,
    ):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self.waiters: deque[SimProcess] = deque()
        #: (time, in_use) samples for utilization reporting, or ``None``
        #: when sampling is disabled (``log_usage=False``) — consumers
        #: that never read :meth:`busy_time` save one tuple + list append
        #: per acquire/release, which adds up at batch-serving scale.
        self.usage_log: list[tuple[float, int]] | None = (
            [] if log_usage else None
        )

    def acquire(self) -> Acquire:
        return Acquire(self)

    def release(self) -> Release:
        return Release(self)

    def busy_time(self) -> float:
        """Resource-seconds of occupancy integrated over the log.

        Raises :class:`SimulationError` when usage sampling was disabled
        at construction (there is nothing to integrate)."""
        if self.usage_log is None:
            raise SimulationError(
                f"resource {self.name!r} was created with log_usage=False"
            )
        total = 0.0
        for (t0, used), (t1, _unused) in zip(self.usage_log, self.usage_log[1:]):
            total += used * (t1 - t0)
        return total


class SimProcess:
    """One running generator inside the engine."""

    __slots__ = ("engine", "generator", "name", "finished", "finish_time", "watchers")

    _ids = itertools.count()

    def __init__(self, engine: "Engine", generator: Generator, name: str = ""):
        self.engine = engine
        self.generator = generator
        self.name = name or f"process-{next(self._ids)}"
        self.finished = False
        self.finish_time: float | None = None
        self.watchers: list[SimProcess] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.finished else "running"
        return f"SimProcess({self.name}, {state})"


class Engine:
    """The event loop: a heap of (time, seq, process) resumptions."""

    __slots__ = ("now", "_heap", "_seq", "_active")

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, SimProcess]] = []
        self._seq = itertools.count()
        self._active = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @staticmethod
    def timeout(delay: float) -> Timeout:
        return Timeout(delay)

    def resource(
        self, capacity: int, name: str = "resource", log_usage: bool = True
    ) -> Resource:
        return Resource(self, capacity, name, log_usage)

    def spawn(self, generator: Generator, name: str = "") -> SimProcess:
        """Register a process; it starts when :meth:`run` is (re)entered."""
        process = SimProcess(self, generator, name)
        self._active += 1
        heapq.heappush(self._heap, (self.now, next(self._seq), process))
        return process

    def run(self, until: float | None = None) -> float:
        """Drain the event heap; returns the final virtual time.

        Raises :class:`SimulationError` if processes remain blocked when
        the heap empties (a deadlock: someone waits on a resource nobody
        releases).

        The loop body handles every command inline rather than routing
        each event through per-command handler calls: at serving scale
        the engine takes tens of thousands of steps per batch, and call
        overhead is the dominant simulator cost.  Ordering contract:
        every resumption is pushed at the current time with a fresh
        monotonic ``seq``, so same-time events run in schedule order —
        resource grants are FIFO and repeated runs are bit-identical.
        """
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        seq = self._seq
        while heap:
            entry = pop(heap)
            time = entry[0]
            if until is not None and time > until:
                push(heap, entry)
                self.now = until
                return self.now
            if time < self.now - 1e-18:
                raise SimulationError("event scheduled in the past")
            self.now = time
            process = entry[2]
            try:
                command = process.generator.send(None)
            except StopIteration:
                self._finish(process)
                continue
            cls = command.__class__
            if cls is Timeout:
                push(heap, (time + command.delay, next(seq), process))
            elif cls is Acquire:
                resource = command.resource
                if resource.in_use < resource.capacity:
                    resource.in_use += 1
                    if resource.usage_log is not None:
                        resource.usage_log.append((time, resource.in_use))
                    push(heap, (time, next(seq), process))
                else:
                    resource.waiters.append(process)
            elif cls is Release:
                resource = command.resource
                if resource.in_use <= 0:
                    raise SimulationError(
                        f"release of idle resource {resource.name!r}"
                    )
                if resource.waiters:
                    waiter = resource.waiters.popleft()
                    if resource.usage_log is not None:
                        # occupancy unchanged; sample the handover time
                        resource.usage_log.append((time, resource.in_use))
                    push(heap, (time, next(seq), waiter))
                else:
                    resource.in_use -= 1
                    if resource.usage_log is not None:
                        resource.usage_log.append((time, resource.in_use))
                push(heap, (time, next(seq), process))
            elif isinstance(command, SimProcess):
                if command.finished:
                    push(heap, (time, next(seq), process))
                else:
                    command.watchers.append(process)
            else:
                raise SimulationError(
                    f"process {process.name!r} yielded unsupported command "
                    f"{command!r}"
                )
        if self._active:
            raise SimulationError(
                f"deadlock: {self._active} process(es) still blocked at "
                f"t={self.now:.3e}s"
            )
        return self.now

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _finish(self, process: SimProcess) -> None:
        process.finished = True
        process.finish_time = self.now
        self._active -= 1
        heap = self._heap
        seq = self._seq
        now = self.now
        for watcher in process.watchers:
            heapq.heappush(heap, (now, next(seq), watcher))
        process.watchers.clear()


# ---------------------------------------------------------------------------
# Array-based event calendar (shared by the slim replays)
# ---------------------------------------------------------------------------


class EventCalendar:
    """Array-backed event calendar: an index heap over parallel arrays.

    The generator engine's heap stores ``(time, seq, process)`` triples —
    one 3-tuple allocation per event.  At replay scale (one event per
    occupancy, 10k-job batches) the calendar trims that constant factor:
    the heap holds only ``(time, event_id)`` pairs and the event payload
    lives in a preallocated parallel array indexed by the id.  Event ids
    are the replay's monotonic ``seq`` counter, so the heap's tie-break
    on the second element *is* the engine's FIFO seq contract — no
    separate tie key is stored or compared.

    Replay loops know their exact event count up front (one arrival
    event per released entity plus exactly one completion per task), so
    the payload array is sized once and never reallocates; :meth:`push`
    still grows it on demand for open-ended consumers.

    The hot loops in :func:`replay_chain_batch` / :func:`replay_dag_batch`
    operate on :attr:`heap` / :attr:`payload` directly (bound to locals)
    rather than through these methods — the methods are the documented
    API for tests and lighter consumers.
    """

    __slots__ = ("heap", "payload", "seq")

    def __init__(self, capacity: int = 0):
        #: Min-heap of ``(time, event_id)`` pairs.
        self.heap: list[tuple[float, int]] = []
        #: ``payload[event_id]`` is the event's payload object.
        self.payload: list = [None] * capacity
        #: Next event id; monotone, doubles as the FIFO tie-breaker.
        self.seq = 0

    def seed(self, entries) -> None:
        """Bulk-load ``(time, payload)`` pairs pre-sorted by (time,
        arrival order).  Consecutive ids over nondecreasing times make
        the backing list a valid heap as-is — no sift needed."""
        heap = self.heap
        payload = self.payload
        seq = self.seq
        for time, item in entries:
            if seq < len(payload):
                payload[seq] = item
            else:
                payload.append(item)
            heap.append((time, seq))
            seq += 1
        self.seq = seq

    def push(self, time: float, item) -> None:
        eid = self.seq
        if eid < len(self.payload):
            self.payload[eid] = item
        else:
            self.payload.append(item)
        heapq.heappush(self.heap, (time, eid))
        self.seq = eid + 1

    def pop(self):
        """Remove and return the earliest ``(time, payload)`` event
        (FIFO among same-time events)."""
        time, eid = heapq.heappop(self.heap)
        return time, self.payload[eid]

    def __len__(self) -> int:
        return len(self.heap)

    def __bool__(self) -> bool:
        return bool(self.heap)


# ---------------------------------------------------------------------------
# Batch FIFO replays (the scale-out serving fast path)
# ---------------------------------------------------------------------------
#
# A batch of scheduled jobs exercises none of the engine's generality:
# every job is a fixed set of (resource, duration) tasks whose order is
# known, so the generator machinery (one process per stage, command
# objects per yield, 4-6 heap events per stage) only re-derives what
# FIFO semantics already determine.  The replays below compute the *same
# floats* the engine would — every occupancy start is either the task's
# own ready time or the previous holder's release time, and grants are
# FIFO with same-time ties broken by arrival order — with one calendar
# event per occupancy instead of the engine's per-yield event storm.
# :func:`replay_chain_batch` handles single-chain jobs with a per-job
# cursor; :func:`replay_dag_batch` generalizes to branching pipelines
# with per-replica join counters on the fan-in stages.  The simulation
# backends (:mod:`repro.core.backends`) cross-check the equivalence in
# tests and fall back to the full engine for any attached observer or
# zero-duration task.


#: Hop-queue actions (see :func:`replay_chain_batch`): START allocates a
#: completion event for an occupancy granted this instant; ACQUIRE
#: requests the job's current task's resource.
_START = 0
_ACQUIRE = 1


def replay_chain_batch(
    job_tasks: "list",
    arrivals: "list[float]",
    n_resources: int,
) -> tuple[list[float], float, list[list[tuple[float, float]]]]:
    """FIFO replay of a batch of single-chain jobs on shared resources.

    ``job_tasks[j]`` is job ``j``'s task list — ``(resource_index,
    duration, entry_hop)`` triples in chain order (boundary transfers
    interleaved with device occupancies); ``arrivals[j]`` is its release
    time.  Resources are capacity-1 and FIFO, exactly like
    :class:`Resource`, and every duration must be positive (the caller
    guarantees it).  Returns the per-job completion times, the makespan
    (the last completion), and per-resource occupancy intervals —
    ``occupancy[r]`` is resource ``r``'s ``(start, end)`` list in grant
    order, where ``end`` is the exact float pushed as the completion
    event (``start + duration``) — all bit-identical to spawning one
    engine process per stage (on a capacity-1 resource the grant order
    *is* the completion order, so the interval lists line up with the
    engine's occupancy stream entry for entry).

    Event discipline mirrors the engine's ordering contract exactly,
    including same-instant ties.  One heap entry per occupancy, pushed
    in the order the engine allocates the matching timeout's ``seq``.
    At each instant the engine drains a *cascade* of same-time events:
    completions resume first (in occupancy-start order), and a finishing
    process reaches its next ``acquire`` only after a number of
    intermediate events that depends on the transition — resuming
    mid-stage from a transfer takes one hop (release, then the acquire
    on the re-push), while crossing a stage boundary takes two (release,
    StopIteration + watcher wake-up, then the successor's acquire).
    ``entry_hop`` records that distance (0 for a job's very first task,
    requested directly at its release event; 1 within a stage; 2 across
    stages), and the replay processes each instant in banded hops —
    completions and arrivals, then hop-1 actions, then hop-2, ... — with
    grants scheduled ahead of the releasing job's own next request, so
    same-time contention resolves grant-for-grant like the engine.

    Even a batch of *identical* replicas is not the textbook pipelined
    flow shop: when consecutive stages share a device, a replica's
    next-stage request enqueues behind every replica already waiting, so
    service proceeds in stage waves (all stage-0 occupancies, then the
    stage-1s, ...).  That grant order is emergent — which is why the
    super-job fast path replays FIFO instead of using a closed form.
    """
    n = len(job_tasks)
    if len(arrivals) != n:
        raise SimulationError(
            f"{n} jobs but {len(arrivals)} arrival times"
        )
    # Exact event budget: one release event per job plus one completion
    # per task — the calendar's payload array never reallocates.
    calendar = EventCalendar(n + sum(len(tasks) for tasks in job_tasks))
    # Initial release events ordered by (arrival, submission index): the
    # engine spawns processes in submission order, so same-time releases
    # request in submission order.
    calendar.seed(sorted((arrivals[j], j) for j in range(n)))
    heap = calendar.heap
    payload = calendar.payload
    seq = calendar.seq
    busy = [False] * n_resources
    waiters: list[deque[int]] = [deque() for _ in range(n_resources)]
    occupancy: list[list[tuple[float, float]]] = [
        [] for _ in range(n_resources)
    ]
    cursor = [0] * n  # index of the task currently requested/running
    started = [False] * n  # False until the arrival event is consumed
    completions = [0.0] * n
    makespan = 0.0
    pop = heapq.heappop
    push = heapq.heappush
    while heap:
        time, first_eid = pop(heap)
        first_job = payload[first_eid]
        if not heap or heap[0][0] != time:
            # Tie-free instant — the overwhelmingly common case with
            # real (float) durations.  No other event shares the
            # cascade, so grant and next-request resolve inline; the
            # push order (grant's occupancy first, then this job's, if
            # any) matches the banded cascade's seq allocation exactly.
            job = first_job
            tasks = job_tasks[job]
            index = cursor[job]
            if started[job]:
                resource = tasks[index][0]
                queue = waiters[resource]
                if queue:
                    waiter = queue.popleft()
                    payload[seq] = waiter
                    end = time + job_tasks[waiter][cursor[waiter]][1]
                    occupancy[resource].append((time, end))
                    push(heap, (end, seq))
                    seq += 1
                else:
                    busy[resource] = False
                index += 1
                cursor[job] = index
                if index == len(tasks):
                    completions[job] = time
                    if time > makespan:
                        makespan = time
                    continue
            else:
                started[job] = True
            resource, duration = tasks[index][0], tasks[index][1]
            if busy[resource]:
                waiters[resource].append(job)
            else:
                busy[resource] = True
                payload[seq] = job
                end = time + duration
                occupancy[resource].append((time, end))
                push(heap, (end, seq))
                seq += 1
            continue
        # Same-instant collision: banded cascade emulation.
        band = [first_job]
        while heap and heap[0][0] == time:
            band.append(payload[pop(heap)[1]])
        hop_now: list[tuple[int, int]] = []
        hop_next: list[tuple[int, int]] = []
        # Band 0: every event at this instant, in start/arrival order.
        for job in band:
            tasks = job_tasks[job]
            index = cursor[job]
            if started[job]:
                # Completion: release the resource, handing it to the
                # longest waiter (FIFO) before this job's own next
                # request — the engine grants at release, ahead of the
                # finisher's resume cascade.
                resource = tasks[index][0]
                queue = waiters[resource]
                if queue:
                    hop_now.append((_START, queue.popleft()))
                else:
                    busy[resource] = False
                index += 1
                cursor[job] = index
                if index == len(tasks):
                    completions[job] = time
                    if time > makespan:
                        makespan = time
                    continue
                if tasks[index][2] == 1:
                    hop_now.append((_ACQUIRE, job))
                else:
                    hop_next.append((_ACQUIRE, job))
            else:
                # Release event: the first task is requested directly at
                # this pop (the engine handles the entry acquire inline).
                started[job] = True
                resource = tasks[index][0]
                if busy[resource]:
                    waiters[resource].append(job)
                else:
                    busy[resource] = True
                    hop_now.append((_START, job))
        # Hop bands: grants/acquires ripple outward exactly one cascade
        # step per band.  A successful ACQUIRE's occupancy event is
        # allocated one hop later (the engine's resume-then-timeout),
        # keeping completion-event order identical to engine seq order.
        while hop_now or hop_next:
            upcoming = hop_next
            hop_next = []
            for action, job in hop_now:
                if action == _START:
                    payload[seq] = job
                    resource, duration = (
                        job_tasks[job][cursor[job]][0],
                        job_tasks[job][cursor[job]][1],
                    )
                    end = time + duration
                    occupancy[resource].append((time, end))
                    push(heap, (end, seq))
                    seq += 1
                else:
                    resource = job_tasks[job][cursor[job]][0]
                    if busy[resource]:
                        waiters[resource].append(job)
                    else:
                        busy[resource] = True
                        upcoming.append((_START, job))
            hop_now = upcoming
    return completions, makespan, occupancy


# ---------------------------------------------------------------------------
# DAG-batch FIFO replay
# ---------------------------------------------------------------------------
#
# Hop-band action codes (see :func:`replay_dag_batch`), packed with the
# replica-stage index as ``(rs << 2) | code`` so the cascade bands hold
# plain ints instead of per-action tuples:
#
# - START:   allocate the completion event for an occupancy granted one
#            band earlier (the engine's resume-then-timeout).
# - ACQUIRE: request the replica-stage's current task's resource.
# - NOTIFY:  the stage process's StopIteration — mark it finished and
#            wake its watchers one band later.
# - WAIT:    one step of a stage's predecessor wait loop (the engine's
#            ``yield predecessor``): consume one predecessor per band,
#            park on the first unfinished one, or fall through to the
#            first task's acquire in the same band.
_A_START = 0
_A_ACQUIRE = 1
_A_NOTIFY = 2
_A_WAIT = 3


def replay_dag_batch(
    job_programs: "list",
    arrivals: "list[float]",
    n_resources: int,
) -> tuple[list[float], float, list[list[tuple[float, float]]]]:
    """FIFO replay of a batch of DAG-shaped jobs on shared resources.

    ``job_programs[j]`` describes job ``j`` as ``(stage_tasks,
    stage_preds)`` with stages indexed in topological order:
    ``stage_tasks[s]`` is stage ``s``'s task list — ``(resource_index,
    duration)`` pairs in execution order (boundary transfers in in-edge
    order, then the device occupancy) — and ``stage_preds[s]`` its
    predecessor stage indices in in-edge order.  ``arrivals[j]`` is the
    job's release time.  Resources are capacity-1 and FIFO, exactly like
    :class:`Resource`, and every duration must be positive (the caller
    guarantees it).  Returns per-job completion times, the makespan,
    and per-resource occupancy intervals in grant order (the same
    ``(start, start + duration)`` floats as
    :func:`replay_chain_batch`'s), bit-identical to spawning one engine
    process per stage.

    This generalizes :func:`replay_chain_batch` from one cursor per job
    to one cursor per *replica-stage* plus a join counter
    (``wait_index``) per fan-in: a stage requests its first task only
    after every predecessor stage of its own replica has finished, which
    is exactly the ``yield predecessor`` wait chain the engine's stage
    processes perform.  The calendar still carries one event per
    occupancy (plus one release event per entry stage); everything else
    — releases, grants, StopIteration fan-out wake-ups, finished-
    predecessor skips — is zero-duration and resolves inside the
    same-instant cascade.

    Every instant is processed in *hop bands* mirroring the engine's seq
    allocation order (the same argument as the chain replay's banded
    emulation, extended with two DAG-only transitions): a completion
    releases its resource and grants the longest waiter in the next band
    ahead of its own follow-up; a stage's last completion reaches
    StopIteration one band later (NOTIFY) and wakes its watchers one
    band after that, in watcher-registration order; each additional
    already-finished predecessor a woken stage skips over costs one more
    band (the engine re-pushes the process per ``yield``).  Same-time
    completions therefore grant, wake and re-request in exactly the
    order the generator engine's monotonic seq would produce.
    """
    n = len(job_programs)
    if len(arrivals) != n:
        raise SimulationError(
            f"{n} jobs but {len(arrivals)} arrival times"
        )
    # ------------------------------------------------------------------
    # Flatten (replica, stage) into rs indices.  The engine spawns one
    # process per stage, jobs in submission order and stages in topo
    # order; at t=0 every non-entry stage parks on its *first*
    # predecessor, so the initial watcher lists are a pure function of
    # the programs, registered here in that same spawn order.
    # ------------------------------------------------------------------
    rs_tasks: list = []  # task list per replica-stage
    rs_preds: list = []  # rs indices of predecessors, in-edge order
    rs_job: list[int] = []
    entry_events: list[tuple[float, int]] = []
    remaining = [0] * n  # unfinished stage count per job
    n_tasks_total = 0
    for j, (stage_tasks, stage_preds) in enumerate(job_programs):
        job_base = len(rs_tasks)
        release = arrivals[j]
        remaining[j] = len(stage_tasks)
        for s, tasks in enumerate(stage_tasks):
            rs_tasks.append(tasks)
            preds = stage_preds[s]
            rs_preds.append(tuple(job_base + p for p in preds))
            rs_job.append(j)
            n_tasks_total += len(tasks)
            if not preds:
                entry_events.append((release, job_base + s))
    total = len(rs_tasks)
    watchers: list[list[int]] = [[] for _ in range(total)]
    for rs in range(total):
        preds = rs_preds[rs]
        if preds:
            watchers[preds[0]].append(rs)

    cursor = [0] * total  # index of the stage's requested/running task
    wait_index = [0] * total  # predecessor currently being waited on
    started = [False] * total  # False until the first task is requested
    stage_done = [False] * total
    busy = [False] * n_resources
    waiters: list[deque[int]] = [deque() for _ in range(n_resources)]
    occupancy: list[list[tuple[float, float]]] = [
        [] for _ in range(n_resources)
    ]
    completions = [0.0] * n
    makespan = 0.0

    # Exact event budget: one release event per entry stage plus one
    # completion per task.  Entry releases are sorted by (arrival, rs) —
    # rs order is (job, topo) order, matching the seq order the engine
    # allocates the release timeouts in at spawn time.
    entry_events.sort()
    calendar = EventCalendar(len(entry_events) + n_tasks_total)
    calendar.seed(entry_events)
    heap = calendar.heap
    payload = calendar.payload
    seq = calendar.seq
    pop = heapq.heappop
    push = heapq.heappush

    while heap:
        time, eid = pop(heap)
        rs = payload[eid]
        if not heap or heap[0][0] != time:
            # Tie-free instant — the overwhelmingly common case with
            # real (float) durations.  Grant, cursor advance and
            # next-request resolve inline; the push order (grant's
            # occupancy first, then this stage's next, if any) matches
            # the banded cascade's seq allocation exactly.  Only a
            # stage end with parked watchers enters the hop bands: the
            # relative order in which same-instant watchers reach their
            # acquires depends on how many finished predecessors each
            # skips, which is precisely what the bands emulate.
            tasks = rs_tasks[rs]
            if started[rs]:
                index = cursor[rs]
                resource = tasks[index][0]
                queue = waiters[resource]
                if queue:
                    waiter = queue.popleft()
                    payload[seq] = waiter
                    end = time + rs_tasks[waiter][cursor[waiter]][1]
                    occupancy[resource].append((time, end))
                    push(heap, (end, seq))
                    seq += 1
                else:
                    busy[resource] = False
                index += 1
                cursor[rs] = index
                if index < len(tasks):
                    resource = tasks[index][0]
                    if busy[resource]:
                        waiters[resource].append(rs)
                    else:
                        busy[resource] = True
                        payload[seq] = rs
                        end = time + tasks[index][1]
                        occupancy[resource].append((time, end))
                        push(heap, (end, seq))
                        seq += 1
                    continue
                stage_done[rs] = True
                job = rs_job[rs]
                remaining[job] -= 1
                if not remaining[job]:
                    completions[job] = time
                    if time > makespan:
                        makespan = time
                parked = watchers[rs]
                if not parked:
                    continue
                watchers[rs] = []
                cur = [(watcher << 2) | _A_WAIT for watcher in parked]
            else:
                started[rs] = True
                resource = tasks[0][0]
                if busy[resource]:
                    waiters[resource].append(rs)
                else:
                    busy[resource] = True
                    payload[seq] = rs
                    end = time + tasks[0][1]
                    occupancy[resource].append((time, end))
                    push(heap, (end, seq))
                    seq += 1
                continue
        else:
            # Same-instant collision: full banded cascade emulation.
            band = [rs]
            while heap and heap[0][0] == time:
                band.append(payload[pop(heap)[1]])
            # Band 0: every calendar event at this instant in seq order.
            # Completions release first (grant ahead of the finisher's
            # own cascade); release events request their entry stage's
            # first task at this pop, like the engine's post-timeout
            # resume.
            nxt: list[int] = []
            for rs in band:
                tasks = rs_tasks[rs]
                if started[rs]:
                    index = cursor[rs]
                    resource = tasks[index][0]
                    queue = waiters[resource]
                    if queue:
                        nxt.append((queue.popleft() << 2) | _A_START)
                    else:
                        busy[resource] = False
                    index += 1
                    cursor[rs] = index
                    if index < len(tasks):
                        nxt.append((rs << 2) | _A_ACQUIRE)
                    else:
                        nxt.append((rs << 2) | _A_NOTIFY)
                else:
                    started[rs] = True
                    resource = tasks[0][0]
                    if busy[resource]:
                        waiters[resource].append(rs)
                    else:
                        busy[resource] = True
                        nxt.append((rs << 2) | _A_START)
            cur = nxt
        # Hop bands: actions ripple outward exactly one engine cascade
        # step per band (see the module comment above the action codes).
        while cur:
            nxt = []
            for action in cur:
                code = action & 3
                rs = action >> 2
                if code == _A_START:
                    payload[seq] = rs
                    resource, duration = rs_tasks[rs][cursor[rs]]
                    end = time + duration
                    occupancy[resource].append((time, end))
                    push(heap, (end, seq))
                    seq += 1
                elif code == _A_ACQUIRE:
                    resource = rs_tasks[rs][cursor[rs]][0]
                    if busy[resource]:
                        waiters[resource].append(rs)
                    else:
                        busy[resource] = True
                        nxt.append((rs << 2) | _A_START)
                elif code == _A_NOTIFY:
                    stage_done[rs] = True
                    job = rs_job[rs]
                    remaining[job] -= 1
                    if not remaining[job]:
                        completions[job] = time
                        if time > makespan:
                            makespan = time
                    parked = watchers[rs]
                    if parked:
                        for watcher in parked:
                            nxt.append((watcher << 2) | _A_WAIT)
                        watchers[rs] = []
                else:  # _A_WAIT: one predecessor-loop step
                    preds = rs_preds[rs]
                    index = wait_index[rs] + 1
                    wait_index[rs] = index
                    if index < len(preds):
                        pred = preds[index]
                        if stage_done[pred]:
                            nxt.append((rs << 2) | _A_WAIT)
                        else:
                            watchers[pred].append(rs)
                    else:
                        # All joins satisfied: request the first task at
                        # this pop (the engine falls straight through to
                        # the acquire yield).
                        started[rs] = True
                        resource = rs_tasks[rs][0][0]
                        if busy[resource]:
                            waiters[resource].append(rs)
                        else:
                            busy[resource] = True
                            nxt.append((rs << 2) | _A_START)
            cur = nxt
    return completions, makespan, occupancy


# ---------------------------------------------------------------------------
# Fault-window service resolution (shared by repro.core.faults)
# ---------------------------------------------------------------------------


def resolve_faulty_service(
    windows: tuple[tuple[float, float], ...],
    dead_at: float | None,
    grant: float,
    duration: float,
) -> tuple[float, float | None, str | None]:
    """Resolve one task's service against a lane's fault timeline.

    ``windows`` is the lane's transient-outage list, sorted by start,
    non-overlapping, and already clamped at ``dead_at`` (the lane's
    permanent failure time, or ``None`` if it never dies).  ``grant`` is
    when the task was granted the lane and ``duration`` its service time.

    The fault semantics are advance-knowledge and preemption-free: a task
    granted *inside* an outage window waits the window out before
    starting service (the lane is simply unavailable — no failure), while
    a window that *starts* mid-service kills the job at the window start.
    Returns ``(service_start, fail_time, kind)`` where ``fail_time`` is
    ``None`` on success, and ``kind`` is ``"outage"`` or ``"permanent"``
    when the task fails.  Occupancy for a failing task is
    ``[service_start, fail_time)``; for a success it is
    ``[service_start, service_start + duration)``.
    """
    service, _wall, fail_time, kind = resolve_degraded_service(
        windows, (), dead_at, grant, duration
    )
    return service, fail_time, kind


def inflate_service(
    slowdowns: tuple[tuple[float, float, float], ...],
    start: float,
    duration: float,
) -> float:
    """Wall-clock span of a service under partial-degradation windows.

    ``slowdowns`` is the lane's slowdown list — ``(start, end, factor)``
    half-open windows, sorted by start and non-overlapping — during
    which the lane runs at ``1/factor`` of its nominal rate.  A service
    beginning at ``start`` with ``duration`` nominal seconds of work
    accrues piecewise: full-rate segments between windows consume one
    nominal second per wall second, degraded segments consume
    ``1/factor``.  A service spanning a window boundary therefore
    splits deterministically at the boundary, in timeline order — the
    float-accrual order is fixed, so the same windows always produce
    the same wall span.

    When no window overlaps ``[start, start + wall)`` the return value
    is exactly ``duration`` (the accumulator stays untouched until the
    first overlapping window), which is what keeps no-overlap plans
    bit-identical to no plan.
    """
    remaining = duration  # nominal seconds of work still owed
    now = start
    wall = 0.0
    for win_start, win_end, factor in slowdowns:
        if win_end <= now:
            continue
        if win_start > now:
            # Full-rate segment up to the window (or completion).
            healthy = win_start - now
            if remaining <= healthy:
                return wall + remaining
            wall += healthy
            remaining -= healthy
            now = win_start
        # Degraded segment inside [now, win_end): 1/factor rate.
        capacity = (win_end - now) / factor
        if remaining <= capacity:
            return wall + remaining * factor
        wall += win_end - now
        remaining -= capacity
        now = win_end
    return wall + remaining


def resolve_degraded_service(
    windows: tuple[tuple[float, float], ...],
    slowdowns: tuple[tuple[float, float, float], ...],
    dead_at: float | None,
    grant: float,
    duration: float,
) -> tuple[float, float, float | None, str | None]:
    """The full advance-knowledge kernel: outages *and* slowdowns.

    Like :func:`resolve_faulty_service`, but the service's wall span is
    first inflated through the lane's ``slowdowns``
    (:func:`inflate_service`), and the kill checks — a window starting
    mid-service, an overrun past the permanent death — run against the
    *inflated* span: a slowdown can push a service into an outage
    window it would have cleared at full rate.  Returns
    ``(service_start, wall_duration, fail_time, kind)``; with no
    slowdowns ``wall_duration`` is exactly ``duration``.
    """
    service = grant
    wall = None
    for start, end in windows:
        if end <= service:
            continue
        if start <= service:
            # Granted while the lane is down: wait out the window.
            service = end
            continue
        wall = (
            inflate_service(slowdowns, service, duration)
            if slowdowns
            else duration
        )
        if start < service + wall:
            return service, wall, start, "outage"
        break
    if wall is None:
        wall = (
            inflate_service(slowdowns, service, duration)
            if slowdowns
            else duration
        )
    if dead_at is not None and service + wall > dead_at:
        return service, wall, max(grant, dead_at), "permanent"
    return service, wall, None, None
