"""Discrete-event simulation engine.

A compact generator-based DES in the simpy style: processes are Python
generators that yield *commands* (wait for time, acquire/release a
resource), the engine advances virtual time over a heap of pending events.
The pipeline executor (:mod:`repro.core.executor`) uses it to serialize
phases on execution units and to model contention on the host link when
several offloaded stages transfer concurrently.

Supported commands (yield values):

- ``Engine.timeout(dt)`` — resume after ``dt`` seconds of virtual time.
- ``resource.acquire()`` — resume once a unit of the resource is granted.
- ``resource.release()`` — give a unit back (resumes a waiter if any).
- another :class:`SimProcess` — resume when that process finishes.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Generator

from repro.errors import SimulationError


@dataclass(frozen=True)
class Timeout:
    """Command: suspend the process for ``delay`` virtual seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise SimulationError(f"negative timeout: {self.delay}")


@dataclass(frozen=True)
class Acquire:
    resource: "Resource"


@dataclass(frozen=True)
class Release:
    resource: "Resource"


Command = Timeout | Acquire | Release


class Resource:
    """A counted resource (e.g. an execution unit or a link)."""

    def __init__(self, engine: "Engine", capacity: int, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self.waiters: deque[SimProcess] = deque()
        #: (time, in_use) samples for utilization reporting.
        self.usage_log: list[tuple[float, int]] = []

    def acquire(self) -> Acquire:
        return Acquire(self)

    def release(self) -> Release:
        return Release(self)

    def _log(self) -> None:
        self.usage_log.append((self.engine.now, self.in_use))

    def busy_time(self) -> float:
        """Resource-seconds of occupancy integrated over the log."""
        total = 0.0
        for (t0, used), (t1, _unused) in zip(self.usage_log, self.usage_log[1:]):
            total += used * (t1 - t0)
        return total


class SimProcess:
    """One running generator inside the engine."""

    _ids = itertools.count()

    def __init__(self, engine: "Engine", generator: Generator, name: str = ""):
        self.engine = engine
        self.generator = generator
        self.name = name or f"process-{next(self._ids)}"
        self.finished = False
        self.finish_time: float | None = None
        self.watchers: list[SimProcess] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.finished else "running"
        return f"SimProcess({self.name}, {state})"


class Engine:
    """The event loop: a heap of (time, seq, callback)."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._active = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @staticmethod
    def timeout(delay: float) -> Timeout:
        return Timeout(delay)

    def resource(self, capacity: int, name: str = "resource") -> Resource:
        return Resource(self, capacity, name)

    def spawn(self, generator: Generator, name: str = "") -> SimProcess:
        """Register a process; it starts when :meth:`run` is (re)entered."""
        process = SimProcess(self, generator, name)
        self._active += 1
        self._schedule(0.0, lambda: self._step(process, None))
        return process

    def run(self, until: float | None = None) -> float:
        """Drain the event heap; returns the final virtual time.

        Raises :class:`SimulationError` if processes remain blocked when
        the heap empties (a deadlock: someone waits on a resource nobody
        releases).
        """
        while self._heap:
            time, _seq, callback = heapq.heappop(self._heap)
            if until is not None and time > until:
                heapq.heappush(self._heap, (time, _seq, callback))
                self.now = until
                return self.now
            if time < self.now - 1e-18:
                raise SimulationError("event scheduled in the past")
            self.now = time
            callback()
        if self._active:
            raise SimulationError(
                f"deadlock: {self._active} process(es) still blocked at "
                f"t={self.now:.3e}s"
            )
        return self.now

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _schedule(self, delay: float, callback: Callable[[], None]) -> None:
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), callback))

    def _step(self, process: SimProcess, value) -> None:
        """Advance one process until it blocks or finishes."""
        try:
            command = process.generator.send(value)
        except StopIteration:
            self._finish(process)
            return
        self._dispatch(process, command)

    def _dispatch(self, process: SimProcess, command) -> None:
        if isinstance(command, Timeout):
            self._schedule(command.delay, lambda: self._step(process, None))
        elif isinstance(command, Acquire):
            resource = command.resource
            if resource.in_use < resource.capacity:
                resource.in_use += 1
                resource._log()
                self._schedule(0.0, lambda: self._step(process, None))
            else:
                resource.waiters.append(process)
        elif isinstance(command, Release):
            resource = command.resource
            if resource.in_use <= 0:
                raise SimulationError(
                    f"release of idle resource {resource.name!r}"
                )
            if resource.waiters:
                waiter = resource.waiters.popleft()
                resource._log()  # occupancy unchanged, but sample the time
                self._schedule(0.0, lambda: self._step(waiter, None))
            else:
                resource.in_use -= 1
                resource._log()
            self._schedule(0.0, lambda: self._step(process, None))
        elif isinstance(command, SimProcess):
            if command.finished:
                self._schedule(0.0, lambda: self._step(process, None))
            else:
                command.watchers.append(process)
        else:
            raise SimulationError(
                f"process {process.name!r} yielded unsupported command "
                f"{command!r}"
            )

    def _finish(self, process: SimProcess) -> None:
        process.finished = True
        process.finish_time = self.now
        self._active -= 1
        for watcher in process.watchers:
            self._schedule(0.0, lambda w=watcher: self._step(w, None))
        process.watchers.clear()
