"""Discrete-event simulation engine.

A compact generator-based DES in the simpy style: processes are Python
generators that yield *commands* (wait for time, acquire/release a
resource), the engine advances virtual time over a heap of pending events.
The pipeline executor (:mod:`repro.core.executor`) uses it to serialize
phases on execution units and to model contention on the host link when
several offloaded stages transfer concurrently.

Supported commands (yield values):

- ``Engine.timeout(dt)`` — resume after ``dt`` seconds of virtual time.
- ``resource.acquire()`` — resume once a unit of the resource is granted.
- ``resource.release()`` — give a unit back (resumes a waiter if any).
- another :class:`SimProcess` — resume when that process finishes.

The hot loop is deliberately allocation-lean: at serving scale
(:meth:`repro.core.executor.PipelineExecutor.execute_many` with hundreds
of jobs) the simulator itself, not the modeled hardware, becomes the
bottleneck, so

- every participant class uses ``__slots__`` (no per-instance dict),
- heap entries are plain ``(time, seq, process)`` tuples — no closure is
  allocated per event, and the ``seq`` tie-breaker doubles as the FIFO
  guarantee for same-time events,
- the run loop steps generators and handles all commands inline,
  dispatching on the yielded object's class instead of walking an
  ``isinstance`` chain through helper calls per yield.

Event *ordering* is part of the engine's contract: same-time events run
in schedule order (monotonic ``seq``), so resource grants are FIFO and
repeated runs of the same job set are bit-identical.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Generator

from repro.errors import SimulationError


class Timeout:
    """Command: suspend the process for ``delay`` virtual seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay!r})"


class Acquire:
    """Command: wait for one unit of ``resource``."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        self.resource = resource

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Acquire({self.resource.name!r})"


class Release:
    """Command: give one unit of ``resource`` back."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        self.resource = resource

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Release({self.resource.name!r})"


Command = Timeout | Acquire | Release


class Resource:
    """A counted resource (e.g. an execution unit or a link).

    Waiters are granted strictly FIFO: a release hands the unit to the
    longest-waiting process (``deque.popleft``), never to a later
    arrival.
    """

    __slots__ = ("engine", "capacity", "name", "in_use", "waiters", "usage_log")

    def __init__(
        self,
        engine: "Engine",
        capacity: int,
        name: str = "resource",
        log_usage: bool = True,
    ):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self.waiters: deque[SimProcess] = deque()
        #: (time, in_use) samples for utilization reporting, or ``None``
        #: when sampling is disabled (``log_usage=False``) — consumers
        #: that never read :meth:`busy_time` save one tuple + list append
        #: per acquire/release, which adds up at batch-serving scale.
        self.usage_log: list[tuple[float, int]] | None = (
            [] if log_usage else None
        )

    def acquire(self) -> Acquire:
        return Acquire(self)

    def release(self) -> Release:
        return Release(self)

    def busy_time(self) -> float:
        """Resource-seconds of occupancy integrated over the log.

        Raises :class:`SimulationError` when usage sampling was disabled
        at construction (there is nothing to integrate)."""
        if self.usage_log is None:
            raise SimulationError(
                f"resource {self.name!r} was created with log_usage=False"
            )
        total = 0.0
        for (t0, used), (t1, _unused) in zip(self.usage_log, self.usage_log[1:]):
            total += used * (t1 - t0)
        return total


class SimProcess:
    """One running generator inside the engine."""

    __slots__ = ("engine", "generator", "name", "finished", "finish_time", "watchers")

    _ids = itertools.count()

    def __init__(self, engine: "Engine", generator: Generator, name: str = ""):
        self.engine = engine
        self.generator = generator
        self.name = name or f"process-{next(self._ids)}"
        self.finished = False
        self.finish_time: float | None = None
        self.watchers: list[SimProcess] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.finished else "running"
        return f"SimProcess({self.name}, {state})"


class Engine:
    """The event loop: a heap of (time, seq, process) resumptions."""

    __slots__ = ("now", "_heap", "_seq", "_active")

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, SimProcess]] = []
        self._seq = itertools.count()
        self._active = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @staticmethod
    def timeout(delay: float) -> Timeout:
        return Timeout(delay)

    def resource(
        self, capacity: int, name: str = "resource", log_usage: bool = True
    ) -> Resource:
        return Resource(self, capacity, name, log_usage)

    def spawn(self, generator: Generator, name: str = "") -> SimProcess:
        """Register a process; it starts when :meth:`run` is (re)entered."""
        process = SimProcess(self, generator, name)
        self._active += 1
        heapq.heappush(self._heap, (self.now, next(self._seq), process))
        return process

    def run(self, until: float | None = None) -> float:
        """Drain the event heap; returns the final virtual time.

        Raises :class:`SimulationError` if processes remain blocked when
        the heap empties (a deadlock: someone waits on a resource nobody
        releases).

        The loop body handles every command inline rather than routing
        each event through per-command handler calls: at serving scale
        the engine takes tens of thousands of steps per batch, and call
        overhead is the dominant simulator cost.  Ordering contract:
        every resumption is pushed at the current time with a fresh
        monotonic ``seq``, so same-time events run in schedule order —
        resource grants are FIFO and repeated runs are bit-identical.
        """
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        seq = self._seq
        while heap:
            entry = pop(heap)
            time = entry[0]
            if until is not None and time > until:
                push(heap, entry)
                self.now = until
                return self.now
            if time < self.now - 1e-18:
                raise SimulationError("event scheduled in the past")
            self.now = time
            process = entry[2]
            try:
                command = process.generator.send(None)
            except StopIteration:
                self._finish(process)
                continue
            cls = command.__class__
            if cls is Timeout:
                push(heap, (time + command.delay, next(seq), process))
            elif cls is Acquire:
                resource = command.resource
                if resource.in_use < resource.capacity:
                    resource.in_use += 1
                    if resource.usage_log is not None:
                        resource.usage_log.append((time, resource.in_use))
                    push(heap, (time, next(seq), process))
                else:
                    resource.waiters.append(process)
            elif cls is Release:
                resource = command.resource
                if resource.in_use <= 0:
                    raise SimulationError(
                        f"release of idle resource {resource.name!r}"
                    )
                if resource.waiters:
                    waiter = resource.waiters.popleft()
                    if resource.usage_log is not None:
                        # occupancy unchanged; sample the handover time
                        resource.usage_log.append((time, resource.in_use))
                    push(heap, (time, next(seq), waiter))
                else:
                    resource.in_use -= 1
                    if resource.usage_log is not None:
                        resource.usage_log.append((time, resource.in_use))
                push(heap, (time, next(seq), process))
            elif isinstance(command, SimProcess):
                if command.finished:
                    push(heap, (time, next(seq), process))
                else:
                    command.watchers.append(process)
            else:
                raise SimulationError(
                    f"process {process.name!r} yielded unsupported command "
                    f"{command!r}"
                )
        if self._active:
            raise SimulationError(
                f"deadlock: {self._active} process(es) still blocked at "
                f"t={self.now:.3e}s"
            )
        return self.now

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _finish(self, process: SimProcess) -> None:
        process.finished = True
        process.finish_time = self.now
        self._active -= 1
        heap = self._heap
        seq = self._seq
        now = self.now
        for watcher in process.watchers:
            heapq.heappush(heap, (now, next(seq), watcher))
        process.watchers.clear()


# ---------------------------------------------------------------------------
# Chain-batch FIFO replay (the scale-out serving fast path)
# ---------------------------------------------------------------------------
#
# A batch of single-chain jobs exercises none of the engine's generality:
# every job is a fixed linear sequence of (resource, duration) tasks, so
# the generator machinery (one process per stage, command objects per
# yield, 4-6 heap events per stage) only re-derives what FIFO semantics
# already determine.  The two replays below compute the *same floats* the
# engine would — every occupancy start is either the job's own ready time
# (a sum along its chain, accrued in the same order) or the previous
# holder's release time (``max`` picks one operand exactly), and grants
# are FIFO with same-time ties broken by arrival order — with one heap
# push/pop per task instead of the engine's per-yield event storm.
# :meth:`repro.core.executor.PipelineExecutor.execute_many` cross-checks
# the equivalence in tests and falls back to the full engine for any
# non-chain job or attached observer.


#: Hop-queue actions (see :func:`replay_chain_batch`): START allocates a
#: completion event for an occupancy granted this instant; ACQUIRE
#: requests the job's current task's resource.
_START = 0
_ACQUIRE = 1


def replay_chain_batch(
    job_tasks: "list",
    arrivals: "list[float]",
    n_resources: int,
) -> tuple[list[float], float]:
    """FIFO replay of a batch of single-chain jobs on shared resources.

    ``job_tasks[j]`` is job ``j``'s task list — ``(resource_index,
    duration, entry_hop)`` triples in chain order (boundary transfers
    interleaved with device occupancies); ``arrivals[j]`` is its release
    time.  Resources are capacity-1 and FIFO, exactly like
    :class:`Resource`, and every duration must be positive (the caller
    guarantees it).  Returns the per-job completion times and the
    makespan (the last completion), bit-identical to spawning one engine
    process per stage.

    Event discipline mirrors the engine's ordering contract exactly,
    including same-instant ties.  One heap entry per occupancy, pushed
    in the order the engine allocates the matching timeout's ``seq``.
    At each instant the engine drains a *cascade* of same-time events:
    completions resume first (in occupancy-start order), and a finishing
    process reaches its next ``acquire`` only after a number of
    intermediate events that depends on the transition — resuming
    mid-stage from a transfer takes one hop (release, then the acquire
    on the re-push), while crossing a stage boundary takes two (release,
    StopIteration + watcher wake-up, then the successor's acquire).
    ``entry_hop`` records that distance (0 for a job's very first task,
    requested directly at its release event; 1 within a stage; 2 across
    stages), and the replay processes each instant in banded hops —
    completions and arrivals, then hop-1 actions, then hop-2, ... — with
    grants scheduled ahead of the releasing job's own next request, so
    same-time contention resolves grant-for-grant like the engine.

    Even a batch of *identical* replicas is not the textbook pipelined
    flow shop: when consecutive stages share a device, a replica's
    next-stage request enqueues behind every replica already waiting, so
    service proceeds in stage waves (all stage-0 occupancies, then the
    stage-1s, ...).  That grant order is emergent — which is why the
    super-job fast path replays FIFO instead of using a closed form.
    """
    n = len(job_tasks)
    if len(arrivals) != n:
        raise SimulationError(
            f"{n} jobs but {len(arrivals)} arrival times"
        )
    # Initial release events ordered by (arrival, submission index): the
    # engine spawns processes in submission order, so same-time releases
    # request in submission order.  A list sorted by (time, seq) is
    # already a valid heap.
    heap: list[tuple[float, int, int]] = sorted(
        (arrivals[j], j, j) for j in range(n)
    )
    seq = n
    busy = [False] * n_resources
    waiters: list[deque[int]] = [deque() for _ in range(n_resources)]
    cursor = [0] * n  # index of the task currently requested/running
    started = [False] * n  # False until the arrival event is consumed
    completions = [0.0] * n
    makespan = 0.0
    pop = heapq.heappop
    push = heapq.heappush
    while heap:
        time, _tie, first_job = pop(heap)
        if not heap or heap[0][0] != time:
            # Tie-free instant — the overwhelmingly common case with
            # real (float) durations.  No other event shares the
            # cascade, so grant and next-request resolve inline; the
            # push order (grant's occupancy first, then this job's, if
            # any) matches the banded cascade's seq allocation exactly.
            job = first_job
            tasks = job_tasks[job]
            index = cursor[job]
            if started[job]:
                resource = tasks[index][0]
                queue = waiters[resource]
                if queue:
                    waiter = queue.popleft()
                    push(
                        heap,
                        (
                            time + job_tasks[waiter][cursor[waiter]][1],
                            seq,
                            waiter,
                        ),
                    )
                    seq += 1
                else:
                    busy[resource] = False
                index += 1
                cursor[job] = index
                if index == len(tasks):
                    completions[job] = time
                    if time > makespan:
                        makespan = time
                    continue
            else:
                started[job] = True
            resource, duration = tasks[index][0], tasks[index][1]
            if busy[resource]:
                waiters[resource].append(job)
            else:
                busy[resource] = True
                push(heap, (time + duration, seq, job))
                seq += 1
            continue
        # Same-instant collision: banded cascade emulation.
        band = [first_job]
        while heap and heap[0][0] == time:
            band.append(pop(heap)[2])
        hop_now: list[tuple[int, int]] = []
        hop_next: list[tuple[int, int]] = []
        # Band 0: every event at this instant, in start/arrival order.
        for job in band:
            tasks = job_tasks[job]
            index = cursor[job]
            if started[job]:
                # Completion: release the resource, handing it to the
                # longest waiter (FIFO) before this job's own next
                # request — the engine grants at release, ahead of the
                # finisher's resume cascade.
                resource = tasks[index][0]
                queue = waiters[resource]
                if queue:
                    hop_now.append((_START, queue.popleft()))
                else:
                    busy[resource] = False
                index += 1
                cursor[job] = index
                if index == len(tasks):
                    completions[job] = time
                    if time > makespan:
                        makespan = time
                    continue
                if tasks[index][2] == 1:
                    hop_now.append((_ACQUIRE, job))
                else:
                    hop_next.append((_ACQUIRE, job))
            else:
                # Release event: the first task is requested directly at
                # this pop (the engine handles the entry acquire inline).
                started[job] = True
                resource = tasks[index][0]
                if busy[resource]:
                    waiters[resource].append(job)
                else:
                    busy[resource] = True
                    hop_now.append((_START, job))
        # Hop bands: grants/acquires ripple outward exactly one cascade
        # step per band.  A successful ACQUIRE's occupancy event is
        # allocated one hop later (the engine's resume-then-timeout),
        # keeping completion-event order identical to engine seq order.
        while hop_now or hop_next:
            upcoming = hop_next
            hop_next = []
            for action, job in hop_now:
                if action == _START:
                    push(
                        heap,
                        (time + job_tasks[job][cursor[job]][1], seq, job),
                    )
                    seq += 1
                else:
                    resource = job_tasks[job][cursor[job]][0]
                    if busy[resource]:
                        waiters[resource].append(job)
                    else:
                        busy[resource] = True
                        upcoming.append((_START, job))
            hop_now = upcoming
    return completions, makespan
