"""Discrete-event simulation engine.

A compact generator-based DES in the simpy style: processes are Python
generators that yield *commands* (wait for time, acquire/release a
resource), the engine advances virtual time over a heap of pending events.
The pipeline executor (:mod:`repro.core.executor`) uses it to serialize
phases on execution units and to model contention on the host link when
several offloaded stages transfer concurrently.

Supported commands (yield values):

- ``Engine.timeout(dt)`` — resume after ``dt`` seconds of virtual time.
- ``resource.acquire()`` — resume once a unit of the resource is granted.
- ``resource.release()`` — give a unit back (resumes a waiter if any).
- another :class:`SimProcess` — resume when that process finishes.

The hot loop is deliberately allocation-lean: at serving scale
(:meth:`repro.core.executor.PipelineExecutor.execute_many` with hundreds
of jobs) the simulator itself, not the modeled hardware, becomes the
bottleneck, so

- every participant class uses ``__slots__`` (no per-instance dict),
- heap entries are plain ``(time, seq, process)`` tuples — no closure is
  allocated per event, and the ``seq`` tie-breaker doubles as the FIFO
  guarantee for same-time events,
- the run loop steps generators and handles all commands inline,
  dispatching on the yielded object's class instead of walking an
  ``isinstance`` chain through helper calls per yield.

Event *ordering* is part of the engine's contract: same-time events run
in schedule order (monotonic ``seq``), so resource grants are FIFO and
repeated runs of the same job set are bit-identical.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Generator

from repro.errors import SimulationError


class Timeout:
    """Command: suspend the process for ``delay`` virtual seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay!r})"


class Acquire:
    """Command: wait for one unit of ``resource``."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        self.resource = resource

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Acquire({self.resource.name!r})"


class Release:
    """Command: give one unit of ``resource`` back."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        self.resource = resource

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Release({self.resource.name!r})"


Command = Timeout | Acquire | Release


class Resource:
    """A counted resource (e.g. an execution unit or a link).

    Waiters are granted strictly FIFO: a release hands the unit to the
    longest-waiting process (``deque.popleft``), never to a later
    arrival.
    """

    __slots__ = ("engine", "capacity", "name", "in_use", "waiters", "usage_log")

    def __init__(
        self,
        engine: "Engine",
        capacity: int,
        name: str = "resource",
        log_usage: bool = True,
    ):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self.waiters: deque[SimProcess] = deque()
        #: (time, in_use) samples for utilization reporting, or ``None``
        #: when sampling is disabled (``log_usage=False``) — consumers
        #: that never read :meth:`busy_time` save one tuple + list append
        #: per acquire/release, which adds up at batch-serving scale.
        self.usage_log: list[tuple[float, int]] | None = (
            [] if log_usage else None
        )

    def acquire(self) -> Acquire:
        return Acquire(self)

    def release(self) -> Release:
        return Release(self)

    def busy_time(self) -> float:
        """Resource-seconds of occupancy integrated over the log.

        Raises :class:`SimulationError` when usage sampling was disabled
        at construction (there is nothing to integrate)."""
        if self.usage_log is None:
            raise SimulationError(
                f"resource {self.name!r} was created with log_usage=False"
            )
        total = 0.0
        for (t0, used), (t1, _unused) in zip(self.usage_log, self.usage_log[1:]):
            total += used * (t1 - t0)
        return total


class SimProcess:
    """One running generator inside the engine."""

    __slots__ = ("engine", "generator", "name", "finished", "finish_time", "watchers")

    _ids = itertools.count()

    def __init__(self, engine: "Engine", generator: Generator, name: str = ""):
        self.engine = engine
        self.generator = generator
        self.name = name or f"process-{next(self._ids)}"
        self.finished = False
        self.finish_time: float | None = None
        self.watchers: list[SimProcess] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.finished else "running"
        return f"SimProcess({self.name}, {state})"


class Engine:
    """The event loop: a heap of (time, seq, process) resumptions."""

    __slots__ = ("now", "_heap", "_seq", "_active")

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, SimProcess]] = []
        self._seq = itertools.count()
        self._active = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @staticmethod
    def timeout(delay: float) -> Timeout:
        return Timeout(delay)

    def resource(
        self, capacity: int, name: str = "resource", log_usage: bool = True
    ) -> Resource:
        return Resource(self, capacity, name, log_usage)

    def spawn(self, generator: Generator, name: str = "") -> SimProcess:
        """Register a process; it starts when :meth:`run` is (re)entered."""
        process = SimProcess(self, generator, name)
        self._active += 1
        heapq.heappush(self._heap, (self.now, next(self._seq), process))
        return process

    def run(self, until: float | None = None) -> float:
        """Drain the event heap; returns the final virtual time.

        Raises :class:`SimulationError` if processes remain blocked when
        the heap empties (a deadlock: someone waits on a resource nobody
        releases).

        The loop body handles every command inline rather than routing
        each event through per-command handler calls: at serving scale
        the engine takes tens of thousands of steps per batch, and call
        overhead is the dominant simulator cost.  Ordering contract:
        every resumption is pushed at the current time with a fresh
        monotonic ``seq``, so same-time events run in schedule order —
        resource grants are FIFO and repeated runs are bit-identical.
        """
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        seq = self._seq
        while heap:
            entry = pop(heap)
            time = entry[0]
            if until is not None and time > until:
                push(heap, entry)
                self.now = until
                return self.now
            if time < self.now - 1e-18:
                raise SimulationError("event scheduled in the past")
            self.now = time
            process = entry[2]
            try:
                command = process.generator.send(None)
            except StopIteration:
                self._finish(process)
                continue
            cls = command.__class__
            if cls is Timeout:
                push(heap, (time + command.delay, next(seq), process))
            elif cls is Acquire:
                resource = command.resource
                if resource.in_use < resource.capacity:
                    resource.in_use += 1
                    if resource.usage_log is not None:
                        resource.usage_log.append((time, resource.in_use))
                    push(heap, (time, next(seq), process))
                else:
                    resource.waiters.append(process)
            elif cls is Release:
                resource = command.resource
                if resource.in_use <= 0:
                    raise SimulationError(
                        f"release of idle resource {resource.name!r}"
                    )
                if resource.waiters:
                    waiter = resource.waiters.popleft()
                    if resource.usage_log is not None:
                        # occupancy unchanged; sample the handover time
                        resource.usage_log.append((time, resource.in_use))
                    push(heap, (time, next(seq), waiter))
                else:
                    resource.in_use -= 1
                    if resource.usage_log is not None:
                        resource.usage_log.append((time, resource.in_use))
                push(heap, (time, next(seq), process))
            elif isinstance(command, SimProcess):
                if command.finished:
                    push(heap, (time, next(seq), process))
                else:
                    command.watchers.append(process)
            else:
                raise SimulationError(
                    f"process {process.name!r} yielded unsupported command "
                    f"{command!r}"
                )
        if self._active:
            raise SimulationError(
                f"deadlock: {self._active} process(es) still blocked at "
                f"t={self.now:.3e}s"
            )
        return self.now

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _finish(self, process: SimProcess) -> None:
        process.finished = True
        process.finish_time = self.now
        self._active -= 1
        heap = self._heap
        seq = self._seq
        now = self.now
        for watcher in process.watchers:
            heapq.heappush(heap, (now, next(seq), watcher))
        process.watchers.clear()
