"""CPU machine model (the standalone baseline and the CPU-NDP host).

Kernel time follows the overlap (roofline) rule:

    time = max(flops / effective_flops, dram_bytes / effective_bandwidth)
           + dispatch overhead

where effective FLOP rate folds in per-pattern issue efficiency and thread
utilization, and DRAM traffic is the nominal kernel traffic discounted by
the working-set cache model.  Intra-node MPI collectives (the CPU
baseline's Global Comm) are memcpy-shaped: the payload crosses the memory
system ~3 times (pack, move, unpack), which the ``MEMCPY_PASSES`` constant
captures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.hw.cache import CacheHierarchy
from repro.hw.config import CpuConfig
from repro.hw.dram import DramModel, ddr4_memory
from repro.hw.timing import PhaseTime
from repro.model import AccessPattern, KernelWorkload

#: Fraction of peak FLOP rate a tuned kernel sustains, per access pattern.
CPU_COMPUTE_EFFICIENCY = {
    AccessPattern.SEQUENTIAL: 0.60,
    AccessPattern.STRIDED: 0.50,
    AccessPattern.BLOCKED: 0.85,   # GEMM-class blocked kernels
    AccessPattern.IRREGULAR: 0.30,
}

#: Memory-system passes an intra-node alltoall pays (pack+move or
#: move+unpack, overlapped): each payload byte is read and written.
MEMCPY_PASSES = 2.0

#: memcpy-shaped traffic sustains this fraction of peak bandwidth
#: (better than IRREGULAR: the copies themselves are sequential).
MEMCPY_EFFICIENCY = 0.70

#: Fixed parallel-region dispatch cost per kernel invocation.
CPU_DISPATCH_OVERHEAD = 2.0e-5


@dataclass
class CpuModel:
    """Analytic timing model for one CPU machine."""

    config: CpuConfig
    memory: DramModel = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.memory is None:
            self.memory = ddr4_memory(
                peak_bandwidth=self.config.memory_bandwidth,
                latency=self.config.memory_latency,
            )
        self.caches = CacheHierarchy(
            l1=self.config.l1_data, l2=self.config.l2, l3=self.config.l3
        )

    # ------------------------------------------------------------------
    # Derived rates
    # ------------------------------------------------------------------
    def effective_flops(self, workload: KernelWorkload) -> float:
        utilization = min(1.0, workload.parallel_tasks / self.config.total_cores)
        return (
            self.config.peak_flops
            * CPU_COMPUTE_EFFICIENCY[workload.access_pattern]
            * utilization
        )

    def effective_bandwidth(self, pattern: AccessPattern) -> float:
        return self.memory.effective_bandwidth(pattern)

    def dram_traffic(self, workload: KernelWorkload) -> float:
        """Nominal traffic discounted by the cache model."""
        factor = self.caches.dram_traffic_factor(
            workload.working_set, workload.access_pattern
        )
        return workload.bytes_total * factor

    # ------------------------------------------------------------------
    # Kernel execution
    # ------------------------------------------------------------------
    def execute(self, workload: KernelWorkload) -> PhaseTime:
        """Time one kernel on this CPU (all cores cooperating)."""
        compute_time = (
            workload.flops / self.effective_flops(workload)
            if workload.flops
            else 0.0
        )
        traffic = self.dram_traffic(workload)
        memory_time = (
            traffic / self.effective_bandwidth(workload.access_pattern)
            if traffic
            else 0.0
        )
        if workload.comm_bytes:
            # Intra-node collective: the payload makes MEMCPY_PASSES trips
            # through the memory system (sequential copies) instead of
            # crossing a network.  This *replaces* the nominal traffic
            # estimate: the workload's bytes_read/written describe the same
            # payload from the application's perspective.
            memory_time = (workload.comm_bytes * MEMCPY_PASSES) / (
                self.memory.peak_bandwidth * MEMCPY_EFFICIENCY
            )
        return PhaseTime(
            name=str(workload.name),
            compute_time=compute_time,
            memory_time=memory_time,
            overhead_time=CPU_DISPATCH_OVERHEAD,
        )

    def ridge_point(self) -> float:
        """Arithmetic intensity where this CPU turns compute-bound
        (peak FLOP/s over peak sequential bandwidth)."""
        return self.config.peak_flops / self.memory.effective_bandwidth(
            AccessPattern.SEQUENTIAL
        )

    def validate(self) -> None:
        """Raise :class:`ConfigError` if the configuration is inconsistent."""
        if self.config.peak_flops <= 0:
            raise ConfigError("CPU peak FLOP/s must be positive")
