"""DRAM channel timing models (the Ramulator substitute).

We model a channel as peak bandwidth derated by an access-pattern
efficiency, plus a loaded base latency.  That is deliberately coarser than
a cycle-accurate DRAM simulator, but it preserves what the paper's
conclusions rest on: the *ratio* between a CPU's external DDR4 bandwidth
and the internal bandwidth an NDP unit sees inside an HBM2 stack, and the
penalty irregular access patterns pay on both.

Efficiency values are the standard achievable fractions of peak for each
pattern class (sequential streams hit ~75-90% of peak on real parts;
irregular gather/scatter 25-45%), with HBM-internal accesses slightly
better than DDR because bank-level parallelism is higher relative to the
request rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.model import AccessPattern
from repro.units import GB

#: Achievable fraction of peak bandwidth per access pattern: DDR-attached.
DDR_PATTERN_EFFICIENCY = {
    AccessPattern.SEQUENTIAL: 0.78,
    AccessPattern.STRIDED: 0.55,
    AccessPattern.BLOCKED: 0.70,
    AccessPattern.IRREGULAR: 0.32,
}

#: Achievable fraction of peak bandwidth per access pattern: HBM-internal
#: (near-bank accesses from NDP units in the logic layer).  Strided
#: patterns fare relatively better than on DDR because each unit talks to
#: its own vault with far more bank parallelism per requester; sequential
#: streams from 128 concurrent units interleave at the vault level, which
#: costs some of the efficiency a single sequential stream would get.
HBM_INTERNAL_PATTERN_EFFICIENCY = {
    AccessPattern.SEQUENTIAL: 0.65,
    AccessPattern.STRIDED: 0.72,
    AccessPattern.BLOCKED: 0.78,
    AccessPattern.IRREGULAR: 0.48,
}

#: GPU HBM2 through the full L2/TLB path.
GPU_HBM_PATTERN_EFFICIENCY = {
    AccessPattern.SEQUENTIAL: 0.80,
    AccessPattern.STRIDED: 0.60,
    AccessPattern.BLOCKED: 0.72,
    AccessPattern.IRREGULAR: 0.38,
}


@dataclass(frozen=True)
class DramModel:
    """A bandwidth/latency model of one memory system."""

    name: str
    peak_bandwidth: float
    base_latency: float
    pattern_efficiency: dict[AccessPattern, float] = field(
        default_factory=lambda: dict(DDR_PATTERN_EFFICIENCY)
    )

    def __post_init__(self) -> None:
        if self.peak_bandwidth <= 0:
            raise ConfigError(f"{self.name}: bandwidth must be positive")
        if self.base_latency < 0:
            raise ConfigError(f"{self.name}: latency must be non-negative")
        missing = [p for p in AccessPattern if p not in self.pattern_efficiency]
        if missing:
            raise ConfigError(f"{self.name}: missing efficiencies for {missing}")
        for pattern, eff in self.pattern_efficiency.items():
            if not 0.0 < eff <= 1.0:
                raise ConfigError(
                    f"{self.name}: efficiency for {pattern} must be in (0, 1]"
                )

    def effective_bandwidth(self, pattern: AccessPattern) -> float:
        return self.peak_bandwidth * self.pattern_efficiency[pattern]

    def access_time(self, nbytes: float, pattern: AccessPattern) -> float:
        """Seconds to move ``nbytes`` with the given pattern (streaming,
        latency amortized except the initial access)."""
        if nbytes < 0:
            raise ConfigError("byte count must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.base_latency + nbytes / self.effective_bandwidth(pattern)


def ddr4_memory(peak_bandwidth: float = 136.6 * GB, latency: float = 90e-9) -> DramModel:
    """A dual-socket DDR4 memory system (the CPU baseline's)."""
    return DramModel(
        name="ddr4",
        peak_bandwidth=peak_bandwidth,
        base_latency=latency,
        pattern_efficiency=dict(DDR_PATTERN_EFFICIENCY),
    )


def hbm2_stack_internal(peak_bandwidth: float, latency: float = 55e-9) -> DramModel:
    """The internal view of one HBM2 stack from its logic-layer NDP units.

    Latency is lower than a DDR round trip because requests never leave
    the package (no board trace, no host memory controller queue).
    """
    return DramModel(
        name="hbm2-internal",
        peak_bandwidth=peak_bandwidth,
        base_latency=latency,
        pattern_efficiency=dict(HBM_INTERNAL_PATTERN_EFFICIENCY),
    )


def gpu_hbm(peak_bandwidth: float, latency: float = 120e-9) -> DramModel:
    """A discrete GPU's HBM2 as seen by its SMs."""
    return DramModel(
        name="gpu-hbm2",
        peak_bandwidth=peak_bandwidth,
        base_latency=latency,
        pattern_efficiency=dict(GPU_HBM_PATTERN_EFFICIENCY),
    )
