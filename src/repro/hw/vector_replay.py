"""Vectorized wave replay for signature-coalesced super-job shards.

A contention shard whose jobs are all *one* super-job — identical
replicas of a single pipeline/schedule pair, which is exactly what the
framework's signature caches hand :meth:`~repro.core.executor.
PipelineExecutor.execute_many` for duplicate jobs — has far more
structure than the general FIFO replays exploit.  Every replica runs
the same template of occupancies (transfers and device stays, in the
same order, with the same durations), so under FIFO each capacity-1
resource serves the replicas in *wave groups* over adjacent template
occupancies: either one occupancy at a time (all replicas' occurrence
of template slot ``t``, then all replicas' next slot on that
resource), or several adjacent occupancies *fused* per replica
(``r0``'s fan-out pair, then ``r1``'s, ...) when each replica's later
requests arrive before its successors' earlier ones.  Either way the
full grant/finish timetable is a closed recurrence over a ``(replica,
stage-occupancy)`` grid:

- the *ready* vector of an occupancy is the predecessor occupancy's
  end vector (within a stage/chain), the elementwise join-``max``
  across the predecessor stages' last ends (fan-in), or the sorted
  arrival vector (entry stages);
- FIFO grants along a group's interleaved request sequence are a
  running max-plus scan, ``end[i] = max(request[i], end[i-1]) +
  duration[i]``, which this module evaluates as numpy
  ``add.accumulate`` runs over the queue-bound segments (one
  sequential float addition per grant — the engine's exact accrual
  order, so the floats are bit-identical) stitched at the
  request-bound restarts.

One numpy pass per template occupancy replaces one heap event per
*replica* occupancy — the per-occupancy Python cost of the slim
replays (heap push/pop, deque rotation, tuple dispatch) collapses into
a handful of vector operations per wave group.

Bit-identity contract and the decline rule
------------------------------------------

The recurrence reproduces the generator engine only while the assumed
grant order *is* the engine's FIFO grant order.  The replay verifies
that from the computed request times themselves: within a wave group
the interleaved request sequence must be nondecreasing with only
provably-safe ties (same replica, same ready source — where the
engine's wake order is the template's stage order by construction; or
across replicas in a one-slot group with a single ready source, where
wakes enqueue in grant order), and on every resource all requests of
one group must strictly precede all requests of the next.  When the
checks pass, the schedule built here is the unique FIFO execution,
float for float.  Shards where they fail — requests overtaking a
non-adjacent earlier wave, or same-instant ties straddling a replica
boundary or a fan-in join, where grant order falls to the engine's
banded hop cascade (:func:`~repro.hw.engine.replay_dag_batch`) that a
closed recurrence cannot reproduce — are *declined* by returning
``None`` so the backend walk falls back to the event-driven replays.
Never silently approximate: every schedule this module does return is
the engine's, including the per-resource occupancy intervals in grant
order.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

__all__ = ["replay_vector_batch"]

_NEG_INF = float("-inf")

#: Ready-source signature of an entry-stage occupancy (the sorted
#: arrival vector); every other signature is a tuple of occupancy
#: indices.
_ARRIVAL_SOURCE = ("arrival",)


def _busy_period(
    ext: np.ndarray,
    durations: np.ndarray,
    start: int,
    prev_end: float,
    ends: np.ndarray,
) -> int:
    """Service one FIFO busy period starting at flat position
    ``start``: sequential accrual ``end[i] = end[i-1] + duration[i]``
    (one float addition per grant, the engine's exact order) from
    ``max(ext[start], prev_end)`` until the first position whose
    external request catches up with the running end (a genuine idle
    restart) or the end of the sequence.  Internal positions
    (``ext == -inf``) never restart.  Writes ``ends[start:stop]`` and
    returns ``stop``.  Chunked with doubling so a long saturated
    period costs one pass and an early restart never pays for the
    whole suffix."""
    total = ext.shape[0]
    first = ext[start]
    if first < prev_end:
        first = prev_end
    running = float(first)
    pos = start
    chunk = 64
    at_first = True
    while pos < total:
        if not at_first and ext[pos] >= running:
            return pos
        stop = min(pos + chunk, total)
        segment = durations[pos:stop].copy()
        segment[0] = running + segment[0]
        np.add.accumulate(segment, out=segment)
        if stop - pos > 1:
            restarts = ext[pos + 1 : stop] >= segment[:-1]
            hit = int(np.argmax(restarts))
            if restarts[hit]:
                cut = pos + 1 + hit
                ends[pos:cut] = segment[: hit + 1]
                return cut
        ends[pos:stop] = segment
        running = float(segment[-1])
        pos = stop
        at_first = False
        chunk <<= 1
    return total


def _service_grid(
    ext_grid: np.ndarray, durations: np.ndarray, carry: float
) -> np.ndarray:
    """End times of a wave group's FIFO grants on the ``(replica,
    slot)`` grid of a capacity-1 resource.

    ``ext_grid[r, j]`` is the externally-known request time of replica
    ``r``'s slot ``j`` (``-inf`` for internal slots, which re-request
    the instant the replica's previous slot ends), ``durations`` the
    per-slot service times and ``carry`` the end of the resource's
    previous grant.  The grant sequence is replica-major, so a
    replica's positions after slot 0 chain only off its *own* previous
    slot — cross-replica coupling enters a row exclusively through
    slot 0.  Two regimes cover the sequence:

    - *independent runs*: when a replica's slot 0 starts idle, its
      whole row is the independent-row solution, computed for every
      replica at once with ``k`` vectorized column steps (each element
      one ``max`` pick plus one addition — the engine's accrual) and
      assigned per run as a slice;
    - *busy periods*: backlogged stretches accrue sequentially via
      :func:`_busy_period`, which hands control back at the first
      genuine idle restart.

    Either way every grant's float is produced by the same scalar
    operation DAG as the generator engine, so the results are
    bit-identical."""
    n, k = ext_grid.shape
    total = n * k
    independent = np.empty((n, k))
    column = ext_grid[:, 0] + durations[0]
    independent[:, 0] = column
    for j in range(1, k):
        column = np.maximum(ext_grid[:, j], column) + durations[j]
        independent[:, j] = column
    # ``ok[r]``: replica ``r``'s slot 0 would start idle if replica
    # ``r - 1``'s row were independent.  The actual end is never below
    # the independent candidate, so False means slot 0 queues no
    # matter what; True is re-checked against the actual running end
    # when an independent run is extended.
    ok = np.empty(n, dtype=bool)
    ok[0] = True
    if n > 1:
        ok[1:] = ext_grid[1:, 0] >= independent[:-1, k - 1]
    indep_stop = np.flatnonzero(~ok)
    ext_flat = ext_grid.reshape(total)
    dur_flat = np.tile(durations, n)
    ends_flat = np.empty(total)
    ends = ends_flat.reshape(n, k)
    r = 0
    prev_end = carry
    while r < n:
        if ext_grid[r, 0] >= prev_end:
            # Independent run: this replica and every following ``ok``
            # replica start their rows idle.
            nxt = indep_stop[np.searchsorted(indep_stop, r + 1) :]
            stop = int(nxt[0]) if nxt.size else n
            ends[r:stop] = independent[r:stop]
            prev_end = float(ends[stop - 1, k - 1])
            r = stop
        else:
            # Backlog: serve busy periods until one drains at a row
            # boundary, then let the independent regime take over.
            pos = r * k
            while True:
                pos = _busy_period(ext_flat, dur_flat, pos, prev_end, ends_flat)
                if pos == total:
                    r = n
                    break
                prev_end = float(ends_flat[pos - 1])
                if pos % k == 0:
                    r = pos // k
                    break
                # Genuine mid-row restart: the next busy period opens
                # idle at this very position.
    return ends


class _Declined(Exception):
    """Internal control flow: the shard's grant order is not provably
    the wave order — fall back to the event-driven replays."""


class _WaveGroup:
    """One wave group: adjacent template occupancies on one resource
    whose grants interleave replica-major (a single occupancy is the
    degenerate one-slot group).  Slots are either *external* (request
    times known before the group runs: a ready vector plus its source
    signature for tie checking) or *internal* (the replica re-requests
    the instant its previous slot in this group ends)."""

    __slots__ = ("resource", "occs", "durations", "ext", "sigs", "n")

    def __init__(self, resource: int, n: int) -> None:
        self.resource = resource
        self.occs: list[int] = []
        self.durations: list[float] = []
        #: Per slot: the external ready vector, or None for internal.
        self.ext: list[np.ndarray | None] = []
        #: Per slot: the ready-source signature, or None for internal.
        self.sigs: list[tuple | None] = []
        self.n = n

    def add(
        self,
        occ: int,
        duration: float,
        ready: np.ndarray | None,
        sig: tuple | None,
    ) -> None:
        self.occs.append(occ)
        self.durations.append(duration)
        self.ext.append(ready)
        self.sigs.append(sig)

    def compute(
        self, carry: float, seen: bool
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        """Solve the group's FIFO schedule and verify the assumed grant
        order; raises :class:`_Declined` when the order is unprovable
        (once a group's request sequence inverts, appending further
        slots only pushes the offending request later, so failure is
        final — no larger fusion can repair it).  Returns the
        interleaved start/end sequences, the per-slot end matrix
        (replica-sorted rows) and the group's last request time."""
        n, k = self.n, len(self.occs)
        total = n * k
        ext_grid = np.full((n, k), _NEG_INF)
        for slot, ready in enumerate(self.ext):
            if ready is not None:
                ext_grid[:, slot] = ready
        ext_seq = ext_grid.reshape(total)
        ends = _service_grid(
            ext_grid, np.asarray(self.durations), carry
        ).reshape(total)
        previous = np.empty(total)
        previous[0] = carry if seen else _NEG_INF
        previous[1:] = ends[:-1]
        # Request times: external slots request at their ready time,
        # internal slots the instant their previous slot ends.
        internal_seq = np.tile(
            np.asarray([ready is None for ready in self.ext]), n
        )
        requests = np.where(internal_seq, previous, ext_seq)
        if total > 1:
            later, earlier = requests[1:], requests[:-1]
            if bool(np.any(later < earlier)):
                raise _Declined
            ties = later == earlier
            if bool(np.any(ties)):
                allowed = np.tile(self._tie_allowance(), n)[1:]
                if bool(np.any(ties & ~allowed)):
                    raise _Declined
        starts = np.maximum(requests, previous)
        return starts, ends, ends.reshape(n, k), float(requests[-1])

    def _tie_allowance(self) -> np.ndarray:
        """Per slot: may a same-instant request tie with the preceding
        position be reproduced without the engine's hop cascade?

        - slot 0 (the preceding position is another replica's last
          slot): only in a one-slot group whose single ready source
          wakes every replica through the identical cascade distance —
          source completions pop in grant order, so the wakes enqueue
          in replica order;
        - later slots (same replica): only when both slots are
          external with the *same* source signature — one completion
          wakes both watchers, and the engine walks watchers in
          template stage order, which is this group's slot order.
        """
        k = len(self.occs)
        allowance = np.zeros(k, dtype=bool)
        allowance[0] = (
            k == 1 and self.sigs[0] is not None and len(self.sigs[0]) == 1
        )
        for slot in range(1, k):
            allowance[slot] = (
                self.ext[slot] is not None
                and self.ext[slot - 1] is not None
                and self.sigs[slot] == self.sigs[slot - 1]
            )
        return allowance


def replay_vector_batch(
    program: "tuple",
    arrivals: "list[float]",
    n_resources: int,
) -> tuple[list[float], float, list[list[tuple[float, float]]]] | None:
    """Wave-replay a batch of identical replicas of one DAG program.

    ``program`` is the coalesced template in
    :func:`repro.hw.engine.replay_dag_batch`'s per-job form —
    ``(stage_tasks, stage_preds)`` with stages in topological order,
    every duration positive — shared by *all* ``len(arrivals)``
    replicas; ``arrivals[j]`` is replica ``j``'s release time.
    Returns the same ``(completions, makespan, occupancy)`` triple as
    the event-driven replays, bit-identical to the generator engine,
    or ``None`` to decline a shard whose grant order is not provably
    the wave order (see the module docstring) — a declined call has no
    side effects.
    """
    stage_tasks, stage_preds = program
    n = len(arrivals)
    if n < 1:
        raise SimulationError("vector replay needs at least one replica")
    arrival_array = np.asarray(arrivals, dtype=np.float64)
    # The engine releases same-time arrivals in submission order: a
    # stable argsort on the arrival key is exactly (arrival, j) order.
    order = np.argsort(arrival_array, kind="stable")
    sorted_arrivals = arrival_array[order]

    # Flatten the template into the stage-occupancy axis.
    occ_resource: list[int] = []
    occ_duration: list[float] = []
    first_occ: list[int] = []  # per stage: its first occupancy index
    last_occ: list[int] = []  # per stage: its last occupancy index
    for tasks in stage_tasks:
        first_occ.append(len(occ_resource))
        for resource, duration in tasks:
            occ_resource.append(resource)
            occ_duration.append(duration)
        last_occ.append(len(occ_resource) - 1)
    occ_stage_first = {first_occ[s]: s for s in range(len(stage_tasks))}
    n_occs = len(occ_resource)

    has_successor = [False] * len(stage_tasks)
    for preds in stage_preds:
        for p in preds:
            has_successor[p] = True

    ends: list[np.ndarray | None] = [None] * n_occs
    carry = [_NEG_INF] * n_resources
    seen = [False] * n_resources
    last_request = [0.0] * n_resources
    occupancy: list[list[tuple[float, float]]] = [
        [] for _ in range(n_resources)
    ]

    def sources_of(occ: int) -> tuple[tuple, list[int] | None]:
        """The occupancy's ready sources: its tie signature plus the
        source occupancy indices (None for entry stages, which ready
        at the sorted arrivals)."""
        stage = occ_stage_first.get(occ)
        if stage is None:  # mid-stage: chained off the previous task
            return (occ - 1,), [occ - 1]
        preds = stage_preds[stage]
        if not preds:
            return _ARRIVAL_SOURCE, None
        source = tuple(last_occ[p] for p in preds)
        return source, list(source)

    def commit(closing: _WaveGroup, computed: tuple) -> None:
        """Finalize a verified group: file its grant-order intervals
        and per-occupancy end vectors, advance the resource state."""
        resource = closing.resource
        starts, seq_ends, end_matrix, last_req = computed
        occupancy[resource].extend(zip(starts.tolist(), seq_ends.tolist()))
        for slot, occ in enumerate(closing.occs):
            ends[occ] = end_matrix[:, slot]
        carry[resource] = float(seq_ends[-1])
        last_request[resource] = last_req
        seen[resource] = True

    group: _WaveGroup | None = None
    try:
        for occ in range(n_occs):
            resource = occ_resource[occ]
            duration = occ_duration[occ]
            sig, source_occs = sources_of(occ)
            if group is not None and group.resource != resource:
                # Run boundary: adjacent fusion is no longer possible.
                commit(group, group.compute(carry[group.resource],
                                            seen[group.resource]))
                group = None
            if group is None:
                # Sources are all in committed groups (an occupancy's
                # sources precede it, and a run boundary just closed
                # anything open).
                if source_occs is None:
                    ready = sorted_arrivals
                else:
                    ready = ends[source_occs[0]]
                    for source in source_occs[1:]:
                        ready = np.maximum(ready, ends[source])
                if seen[resource] and not (
                    last_request[resource] < float(ready[0])
                ):
                    # Overtakes a non-adjacent earlier wave on this
                    # resource: the FIFO order is not a wave order.
                    raise _Declined
                group = _WaveGroup(resource, n)
                group.add(occ, duration, ready, sig)
                continue
            # Same resource as the open group: solve the group as it
            # stands (failure is final — see compute) and test whether
            # this occupancy's requests all come strictly after it.
            computed = group.compute(carry[resource], seen[resource])
            end_matrix = computed[2]
            slot_of = {o: s for s, o in enumerate(group.occs)}
            if source_occs is None:
                ready = sorted_arrivals
            else:
                vectors = [
                    end_matrix[:, slot_of[s]] if s in slot_of else ends[s]
                    for s in source_occs
                ]
                ready = vectors[0]
                for vector in vectors[1:]:
                    ready = np.maximum(ready, vector)
            if computed[3] < float(ready[0]):
                # Strict separation: the group is a complete wave.
                commit(group, computed)
                group = _WaveGroup(resource, n)
                group.add(occ, duration, ready, sig)
                continue
            # Fuse: the replicas' requests interleave with the open
            # group's.  An in-group source is expressible only as the
            # group's last slot (the replica re-requests the instant
            # that slot ends — the scan's lookback-one case); fan-in
            # on an in-group sibling or a deeper in-group source would
            # need general lookback and falls back to the engine.
            in_group = source_occs is not None and any(
                s in slot_of for s in source_occs
            )
            if in_group:
                if len(source_occs) != 1 or source_occs[0] != group.occs[-1]:
                    raise _Declined
                group.add(occ, duration, None, None)
            else:
                group.add(occ, duration, ready, sig)
    except _Declined:
        return None
    try:
        if group is not None:
            commit(group, group.compute(carry[group.resource],
                                        seen[group.resource]))
    except _Declined:
        return None

    finish = None
    for s in range(len(stage_tasks)):
        if has_successor[s]:
            continue
        stage_end = ends[last_occ[s]]
        finish = (
            stage_end if finish is None else np.maximum(finish, stage_end)
        )
    assert finish is not None  # a DAG has at least one exit stage
    completions = np.empty(n)
    completions[order] = finish
    makespan = float(np.max(finish))
    return completions.tolist(), makespan, occupancy
