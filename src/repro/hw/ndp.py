"""NDP system model: wimpy cores in the logic layers of an HBM2 stack mesh.

The defining properties (§II-B/II-C of the paper):

- each NDP unit sees its stack's *internal* bandwidth share — an order of
  magnitude more aggregate bandwidth than any external interface;
- the cores are simple and in-order, so compute efficiency is modest;
- work must spread over many units (128 in Table III), so small problems
  underutilize the system — both because task counts drop below the core
  count and because short per-unit streams cannot amortize DRAM burst
  setup.  The ``ramp_bytes`` parameter models the latter and is what bends
  the Fig. 8 speedup curve at small system sizes;
- traffic that crosses stacks rides the mesh (:class:`MeshNetwork`), which
  is what limits the Global Comm phase's speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.hw.config import NdpConfig
from repro.hw.dram import DramModel, hbm2_stack_internal
from repro.hw.interconnect import MeshNetwork
from repro.hw.spm import ScratchpadSpec
from repro.hw.timing import PhaseTime
from repro.model import AccessPattern, KernelWorkload

#: In-order issue efficiency per access pattern (no OoO latency hiding).
#: BLOCKED is poor on purpose: register-blocked GEMM/SYEVD kernels need
#: the deep register files and OoO scheduling wimpy in-order cores lack,
#: which is exactly why the paper schedules compute-bound kernels on the
#: host CPU.
NDP_COMPUTE_EFFICIENCY = {
    AccessPattern.SEQUENTIAL: 0.65,
    AccessPattern.STRIDED: 0.50,
    AccessPattern.BLOCKED: 0.18,
    AccessPattern.IRREGULAR: 0.40,
}

#: Per-unit bytes needed to reach full streaming efficiency; below this the
#: burst setup and task dispatch dominate (small-system underutilization).
#: Calibrated so the face-splitting product speeds up ~2x at Si_64 and the
#: Fig. 8 curve rises from ~1.2x at Si_16 toward saturation at Si_2048.
NDP_RAMP_BYTES = 1.0e7

#: Offload dispatch cost per kernel invocation on the NDP side: runtime
#: launch plus a barrier across all 128 NDP units.
NDP_DISPATCH_OVERHEAD = 5.0e-4

#: Router arbitration + protocol cost per alltoall message; an alltoall
#: among R ranks exchanges R^2 personalized messages, so this term is what
#: keeps small-system Global Comm from scaling down with the payload.
ALLTOALL_MESSAGE_OVERHEAD = 0.25e-6

#: Fraction of an NDP-resident alltoall that is stack-local when ranks are
#: spread uniformly over S stacks: 1/S stays inside the stack.
def _local_fraction(n_stacks: int) -> float:
    return 1.0 / n_stacks


@dataclass
class NdpSystemModel:
    """Analytic timing model for the whole NDP side (all stacks)."""

    config: NdpConfig
    memory: DramModel = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.memory is None:
            self.memory = hbm2_stack_internal(
                peak_bandwidth=self.config.stack_internal_bandwidth
            )
        self.mesh = MeshNetwork(
            stacks_x=self.config.stacks_x,
            stacks_y=self.config.stacks_y,
            link_bandwidth=self.config.mesh_link_bandwidth,
            hop_latency=self.config.mesh_hop_latency,
        )
        self.stack_spm = ScratchpadSpec(capacity=self.config.spm_per_stack)
        self.core_spm = ScratchpadSpec(capacity=self.config.spm_per_core)

    # ------------------------------------------------------------------
    # Utilization model
    # ------------------------------------------------------------------
    def unit_utilization(self, workload: KernelWorkload) -> float:
        """Fraction of NDP units doing useful work.

        Combines wave quantization (tasks round up to unit-count waves)
        with the short-stream bandwidth ramp.
        """
        units = self.config.n_units
        tasks = workload.parallel_tasks
        waves = -(-tasks // units)  # ceil
        wave_utilization = tasks / (waves * units)
        bytes_per_unit = workload.bytes_total / units if units else 0.0
        ramp = (
            bytes_per_unit / (bytes_per_unit + NDP_RAMP_BYTES)
            if workload.bytes_total
            else 1.0
        )
        return wave_utilization * ramp

    # ------------------------------------------------------------------
    # Kernel execution
    # ------------------------------------------------------------------
    def execute(self, workload: KernelWorkload) -> PhaseTime:
        """Time one kernel spread across every NDP unit."""
        utilization = self.unit_utilization(workload)
        effective_flops = (
            self.config.peak_flops
            * NDP_COMPUTE_EFFICIENCY[workload.access_pattern]
            * utilization
        )
        compute_time = workload.flops / effective_flops if workload.flops else 0.0

        # NDP cores have no deep cache hierarchy: traffic is nominal, but
        # it is served by the aggregate internal bandwidth of all stacks.
        aggregate_bw = (
            self.config.aggregate_internal_bandwidth
            * self.memory.pattern_efficiency[workload.access_pattern]
            * utilization
        )
        memory_time = workload.bytes_total / aggregate_bw if workload.bytes_total else 0.0

        transfer_time = 0.0
        if workload.comm_bytes:
            remote = workload.comm_bytes * (
                1.0 - _local_fraction(self.config.n_stacks)
            )
            ranks = self.config.n_units
            message_overhead = ALLTOALL_MESSAGE_OVERHEAD * ranks * ranks
            transfer_time = self.mesh.alltoall_time(remote) + message_overhead

        return PhaseTime(
            name=str(workload.name),
            compute_time=compute_time,
            memory_time=memory_time,
            transfer_time=transfer_time,
            overhead_time=NDP_DISPATCH_OVERHEAD,
        )

    def ridge_point(self) -> float:
        """Aggregate arithmetic intensity where the NDP side turns
        compute-bound."""
        return self.config.peak_flops / (
            self.config.aggregate_internal_bandwidth
            * self.memory.pattern_efficiency[AccessPattern.SEQUENTIAL]
        )

    def validate(self) -> None:
        if self.config.peak_flops <= 0:
            raise ConfigError("NDP peak FLOP/s must be positive")
        if self.config.spm_per_core * self.config.cores_per_unit * self.config.units_per_stack < self.config.spm_per_stack:
            # Table III: 16 KB/core x 2 x 8 = 256 KB/stack; keep them tied.
            raise ConfigError("per-core SPM does not add up to per-stack SPM")
