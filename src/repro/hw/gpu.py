"""GPU baseline model: 2x V100 in a DGX-1, PCIe-attached.

The paper's GPU critique (§I, §II-A) is that heterogeneous offload
round-trips data between host memory and device memory.  The model makes
that explicit with a residency-aware transfer charge per phase:

- dataset **fits** in device memory: the phase pays PCIe for the fraction
  of its dataset that was evicted/re-staged between phases
  (``RESIDENT_REFRESH``), serialized with execution (an offload pipeline
  cannot start the kernel before its inputs land);
- dataset **exceeds** device memory: the whole dataset streams through
  PCIe in tiles with refetch amplification, but tiles pipeline against
  compute, hiding ``STREAM_OVERLAP`` of the transfer;
- **communication phases** (nonzero ``comm_bytes``) pay NVLink for the
  device-to-device half and PCIe for the host-staged half instead of a
  dataset charge — the movement *is* the phase.

Blocked dense kernels (GEMM/SYEVD) get a size-ramped efficiency: the
modest response-kernel GEMMs of LR-TDDFT, launched once per iteration
against PCIe-fed operands, sustain only a few percent of 2x V100 DP peak,
which is why the paper sees GPU GEMM beat NDFT's host GEMM by only
~22-36 % rather than the raw FLOP-rate ratio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.hw.config import GpuConfig
from repro.hw.dram import DramModel, gpu_hbm
from repro.hw.timing import PhaseTime
from repro.model import AccessPattern, KernelWorkload

#: SM compute efficiency per access pattern (non-blocked kernels).
GPU_COMPUTE_EFFICIENCY = {
    AccessPattern.SEQUENTIAL: 0.55,
    AccessPattern.STRIDED: 0.45,
    AccessPattern.BLOCKED: 0.75,   # ceiling; see blocked ramp below
    AccessPattern.IRREGULAR: 0.25,
}

#: Fraction of a resident dataset re-staged over PCIe between phases.
RESIDENT_REFRESH = 0.15

#: Tile refetch amplification when streaming past device memory.
STREAM_REFETCH = 1.10

#: Fraction of streaming transfer hidden behind compute (tile pipelining).
STREAM_OVERLAP = 0.50

#: Occupancy curve for blocked dense kernels (cuBLAS/cuSOLVER DP at
#: LR-TDDFT problem shapes, launched per iteration against host-fed
#: operands): attained fraction of 2x V100 peak vs kernel FLOP volume,
#: log-interpolated.  The low plateau at small volumes reflects launch +
#: handle synchronization; the rise reflects occupancy filling.
GPU_BLOCKED_EFF_CURVE = (
    (1e8, 0.035),
    (1e9, 0.042),
    (1e11, 0.055),
    (1e12, 0.075),
    (1e13, 0.20),
    (1e14, 0.50),
    (1e15, 0.75),
)

#: Short phases cannot saturate aggregate HBM bandwidth across two devices;
#: effective bandwidth ramps with the phase's traffic volume.
GPU_STREAM_RAMP_BYTES = 2.0e9


@dataclass
class GpuModel:
    """Analytic timing model for the discrete-GPU baseline."""

    config: GpuConfig
    memory: DramModel = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.memory is None:
            self.memory = gpu_hbm(
                peak_bandwidth=self.config.aggregate_memory_bandwidth
            )

    # ------------------------------------------------------------------
    # Efficiency models
    # ------------------------------------------------------------------
    def compute_efficiency(self, workload: KernelWorkload) -> float:
        if workload.access_pattern is AccessPattern.BLOCKED:
            xs = [math.log10(f) for f, _eff in GPU_BLOCKED_EFF_CURVE]
            ys = [eff for _f, eff in GPU_BLOCKED_EFF_CURVE]
            x = math.log10(max(workload.flops, GPU_BLOCKED_EFF_CURVE[0][0]))
            if x >= xs[-1]:
                return ys[-1]
            for (x0, y0), (x1, y1) in zip(
                zip(xs, ys), zip(xs[1:], ys[1:])
            ):
                if x0 <= x <= x1:
                    return y0 + (y1 - y0) * (x - x0) / (x1 - x0)
            return ys[0]
        return GPU_COMPUTE_EFFICIENCY[workload.access_pattern]

    def bandwidth_ramp(self, workload: KernelWorkload) -> float:
        """Fraction of aggregate HBM bandwidth short phases can use.

        Applies to streaming patterns only: blocked dense kernels run out
        of on-chip tiles (L2/shared memory), so HBM ramp-up is not what
        limits them.
        """
        if workload.bytes_total <= 0:
            return 1.0
        if workload.access_pattern is AccessPattern.BLOCKED:
            return 1.0
        return workload.bytes_total / (
            workload.bytes_total + GPU_STREAM_RAMP_BYTES
        )

    def dataset_fits(self, workload: KernelWorkload) -> bool:
        return workload.dataset_bytes <= self.config.total_memory

    # ------------------------------------------------------------------
    # Kernel execution
    # ------------------------------------------------------------------
    def execute(self, workload: KernelWorkload) -> PhaseTime:
        compute_time = (
            workload.flops
            / (self.config.peak_flops * self.compute_efficiency(workload))
            if workload.flops
            else 0.0
        )
        memory_time = (
            workload.bytes_total
            / (
                self.memory.effective_bandwidth(workload.access_pattern)
                * self.bandwidth_ramp(workload)
            )
            if workload.bytes_total
            else 0.0
        )

        if workload.comm_bytes:
            # The alltoall phase: half device-to-device over NVLink, half
            # staged through host memory over PCIe, pipelined.
            nvlink_time = (workload.comm_bytes / 2) / self.config.nvlink_bandwidth
            staged_time = (
                workload.comm_bytes / 2
            ) / self.config.aggregate_pcie_bandwidth
            exposed = (nvlink_time + staged_time) * (1.0 - STREAM_OVERLAP)
            return PhaseTime(
                name=str(workload.name),
                compute_time=compute_time,
                memory_time=memory_time,
                transfer_time=exposed,
                overhead_time=self.config.kernel_launch_overhead,
            )

        if self.dataset_fits(workload):
            # Serial re-staging before launch: not overlappable, so it adds
            # to the phase rather than racing it.
            staging = (
                workload.dataset_bytes
                * RESIDENT_REFRESH
                / self.config.aggregate_pcie_bandwidth
            )
            return PhaseTime(
                name=str(workload.name),
                compute_time=compute_time,
                memory_time=memory_time,
                transfer_time=0.0,
                overhead_time=self.config.kernel_launch_overhead + staging,
            )

        streamed = (
            workload.dataset_bytes
            * STREAM_REFETCH
            / self.config.aggregate_pcie_bandwidth
        )
        exposed = streamed * (1.0 - STREAM_OVERLAP)
        return PhaseTime(
            name=str(workload.name),
            compute_time=compute_time,
            memory_time=memory_time,
            transfer_time=exposed,
            overhead_time=self.config.kernel_launch_overhead,
        )

    def validate(self) -> None:
        if self.config.peak_flops <= 0:
            raise ConfigError("GPU peak FLOP/s must be positive")
