"""Hardware simulation substrate (the zsim + Ramulator substitute).

The paper evaluates NDFT on a simulated CPU-NDP system (Table III) against
real CPU and GPU baselines.  This package models all three machines at the
functional/cycle-model level: analytic streaming-time kernels layered over
explicit DRAM-channel, cache, scratchpad and interconnect models, with a
discrete-event engine for pipeline-level contention.

Entry points:

- :func:`repro.hw.config.ndft_system_config` — the Table III CPU-NDP system.
- :func:`repro.hw.config.cpu_baseline_config` — 2x Xeon E5-2695.
- :func:`repro.hw.config.gpu_baseline_config` — 2x V100 (DGX-1).
- :class:`repro.hw.cpu.CpuModel`, :class:`repro.hw.ndp.NdpSystemModel`,
  :class:`repro.hw.gpu.GpuModel` — per-machine kernel timing.
- :class:`repro.hw.roofline.RooflineModel` — Fig. 4 analysis.
- :class:`repro.hw.engine.Engine` — discrete-event simulation core.
"""

from repro.hw.config import (
    CpuConfig,
    GpuConfig,
    NdpConfig,
    SystemConfig,
    cpu_baseline_config,
    gpu_baseline_config,
    ndft_system_config,
)
from repro.hw.cpu import CpuModel
from repro.hw.ndp import NdpSystemModel
from repro.hw.gpu import GpuModel
from repro.hw.roofline import RooflineModel, RooflinePoint
from repro.hw.engine import Engine, SimProcess
from repro.hw.timing import PhaseTime

__all__ = [
    "CpuConfig",
    "GpuConfig",
    "NdpConfig",
    "SystemConfig",
    "cpu_baseline_config",
    "gpu_baseline_config",
    "ndft_system_config",
    "CpuModel",
    "NdpSystemModel",
    "GpuModel",
    "RooflineModel",
    "RooflinePoint",
    "Engine",
    "SimProcess",
    "PhaseTime",
]
