"""Scratchpad-memory (SPM) device model.

The paper's co-design places an SPM in each stack's logic layer and builds
the pseudopotential shared memory on it (§IV-C).  This module models the
device: capacity, access latency and bandwidth.  Allocation policy lives in
:mod:`repro.shmem.allocator`; processes go through the ``NDFT_*`` APIs in
:mod:`repro.shmem.api`.

SPM access is modeled as SRAM: fixed low latency, high bandwidth, no
pattern sensitivity (scratchpads have no tags or prefetchers to defeat).
The numbers follow the Banakar et al. scratchpad literature the paper
cites: ~1-2 ns access, several hundred GB/s per stack-level SPM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import GB


@dataclass(frozen=True)
class ScratchpadSpec:
    """One scratchpad instance (per NDP core or per stack)."""

    capacity: int
    latency: float = 1.5e-9
    bandwidth: float = 400 * GB

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigError("SPM capacity must be positive")
        if self.latency < 0 or self.bandwidth <= 0:
            raise ConfigError("SPM latency/bandwidth invalid")

    def access_time(self, nbytes: float) -> float:
        """Seconds to read or write ``nbytes`` from this SPM."""
        if nbytes < 0:
            raise ConfigError("byte count must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.latency + nbytes / self.bandwidth
