"""Roofline analysis (the paper's Fig. 4 machinery).

A roofline chart plots attained FLOP rate against arithmetic intensity
under two ceilings: the machine's peak FLOP rate and the bandwidth slope
``AI * peak_bandwidth``.  Kernels left of the ridge point are memory-bound,
right of it compute-bound.  The paper derives its scheduling policy from
exactly this classification, so the roofline model is also what our SCA
substitute consults.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.model import KernelWorkload


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position on a roofline chart."""

    name: str
    arithmetic_intensity: float
    attained_flops: float
    attainable_flops: float
    bound: str  # "memory" or "compute"

    @property
    def efficiency(self) -> float:
        """Attained fraction of the attainable ceiling."""
        if self.attainable_flops == 0:
            return 0.0
        return self.attained_flops / self.attainable_flops


@dataclass(frozen=True)
class RooflineModel:
    """The two-ceiling roofline of one machine."""

    name: str
    peak_flops: float
    peak_bandwidth: float

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.peak_bandwidth <= 0:
            raise ConfigError("roofline ceilings must be positive")

    @property
    def ridge_point(self) -> float:
        """Arithmetic intensity where bandwidth and compute ceilings meet."""
        return self.peak_flops / self.peak_bandwidth

    def attainable(self, arithmetic_intensity: float) -> float:
        """The roofline ceiling at a given arithmetic intensity."""
        if arithmetic_intensity < 0:
            raise ConfigError("arithmetic intensity must be non-negative")
        return min(self.peak_flops, arithmetic_intensity * self.peak_bandwidth)

    def classify(self, arithmetic_intensity: float) -> str:
        return (
            "memory" if arithmetic_intensity < self.ridge_point else "compute"
        )

    def analyze(
        self, workload: KernelWorkload, measured_time: float | None = None
    ) -> RooflinePoint:
        """Place one workload on this roofline.

        With ``measured_time`` the attained rate is flops/time; without it
        the kernel is assumed to run exactly at the ceiling (useful for
        drawing the chart before any machine model has run).
        """
        ai = workload.arithmetic_intensity
        ceiling = self.attainable(ai if ai != float("inf") else self.ridge_point)
        if measured_time is not None:
            if measured_time <= 0:
                raise ConfigError("measured_time must be positive")
            attained = workload.flops / measured_time
        else:
            attained = ceiling
        return RooflinePoint(
            name=str(workload.name),
            arithmetic_intensity=ai,
            attained_flops=attained,
            attainable_flops=ceiling,
            bound=self.classify(ai),
        )
