"""Phase-timing record shared by every machine model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class PhaseTime:
    """Where the time of one kernel/phase execution went.

    ``total`` is not necessarily the sum of the parts: compute and memory
    streams overlap (the roofline max), and transfer may partially overlap
    both.  The machine model that produced the record decides; this type
    just carries the result.
    """

    name: str
    compute_time: float
    memory_time: float
    transfer_time: float = 0.0
    overhead_time: float = 0.0
    total: float = 0.0

    def __post_init__(self) -> None:
        for attr in (
            "compute_time",
            "memory_time",
            "transfer_time",
            "overhead_time",
            "total",
        ):
            if getattr(self, attr) < 0:
                raise SimulationError(f"negative {attr} in phase {self.name}")
        if self.total == 0.0:
            object.__setattr__(
                self,
                "total",
                max(self.compute_time, self.memory_time, self.transfer_time)
                + self.overhead_time,
            )

    @property
    def bound(self) -> str:
        """Which stream dominated: 'compute', 'memory' or 'transfer'."""
        dominant = max(
            ("compute", self.compute_time),
            ("memory", self.memory_time),
            ("transfer", self.transfer_time),
            key=lambda item: item[1],
        )
        return dominant[0]

    def plus_overhead(self, extra: float) -> "PhaseTime":
        """A copy with ``extra`` seconds of overhead added to the total."""
        if extra < 0:
            raise SimulationError("overhead must be non-negative")
        return PhaseTime(
            name=self.name,
            compute_time=self.compute_time,
            memory_time=self.memory_time,
            transfer_time=self.transfer_time,
            overhead_time=self.overhead_time + extra,
            total=self.total + extra,
        )
