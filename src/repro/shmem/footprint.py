"""Memory-footprint model for pseudopotential data (paper Table I).

The paper profiles the pseudopotential footprint of LR-TDDFT on isolated
CPU (24 ranks: 2 x 12-core Xeon) and NDP (128 ranks: one per NDP unit)
systems for Si_64 ("small") and Si_1024 ("large").  The observed structure
decomposes into:

- a **shared** component stored once per node regardless of rank count
  (real-space projector grids + global workspaces, OS-shared read-only
  tables), linear in atom count; and
- a **per-rank replicated** component (radial tables + per-atom
  Kleinman-Bylander coefficient matrices and integer index arrays),
  also linear in atom count,

so ``footprint(N, R) = (c + d N) + R (a + b N)``.  The four constants
below are calibrated *exactly once* against the paper's four Table I
measurements (two system sizes x two machines = four equations, four
unknowns).  Everything else — the NDFT-optimized footprint, the 57.8 %
reduction, the 1.08x-of-CPU ratio, and the OOM prediction for Si_2048 —
then *follows from the model*, and matching the paper's §VI-A numbers is a
genuine consistency check rather than a fit.

All values in decimal gigabytes, matching Table I's units; percentages are
of the 64 GB system memory both machines carry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

# Calibrated against Table I (see module docstring).  Units: GB.
RANK_BASE_GB = 0.0127817          # a: per-rank radial tables
RANK_PER_ATOM_GB = 1.8940e-4      # b: per-rank per-atom coefficient matrices
SHARED_BASE_GB = 0.7358974        # c: global workspaces, stored once
SHARED_PER_ATOM_GB = 7.9127e-3    # d: real-space projector grids, stored once

# NDFT optimization parameters: the per-atom coefficient part becomes one
# copy per *stack* (shared blocks in SPM-backed shared memory); each rank
# keeps the radial tables plus a descriptor index of ~10.3 KB per atom.
NDFT_INDEX_PER_ATOM_GB = 1.0085e-5

#: Rank counts of the paper's profiled systems.
CPU_RANKS = 24
NDP_RANKS = 128
NDP_STACKS = 16

#: Total system memory both profiled machines carry (Table III / §V), GB.
SYSTEM_MEMORY_GB = 64.0


@dataclass(frozen=True)
class FootprintReport:
    """Footprint of one (machine, system) combination."""

    label: str
    n_atoms: int
    n_ranks: int
    gigabytes: float

    @property
    def percent_of_memory(self) -> float:
        return 100.0 * self.gigabytes / SYSTEM_MEMORY_GB

    @property
    def oom(self) -> bool:
        """Does the pseudopotential alone exceed system memory?"""
        return self.gigabytes > SYSTEM_MEMORY_GB


def _check(n_atoms: int, n_ranks: int) -> None:
    if n_atoms < 1:
        raise ConfigError(f"n_atoms must be >= 1, got {n_atoms}")
    if n_ranks < 1:
        raise ConfigError(f"n_ranks must be >= 1, got {n_ranks}")


def shared_component_gb(n_atoms: int) -> float:
    """The once-per-node component (projector grids + workspaces)."""
    if n_atoms < 1:
        raise ConfigError(f"n_atoms must be >= 1, got {n_atoms}")
    return SHARED_BASE_GB + SHARED_PER_ATOM_GB * n_atoms


def replicated_rank_component_gb(n_atoms: int) -> float:
    """The per-rank component under the baseline replicated layout."""
    if n_atoms < 1:
        raise ConfigError(f"n_atoms must be >= 1, got {n_atoms}")
    return RANK_BASE_GB + RANK_PER_ATOM_GB * n_atoms


def footprint_replicated(n_atoms: int, n_ranks: int) -> float:
    """Total pseudopotential footprint (GB) with per-rank replication —
    the layout Table I profiles."""
    _check(n_atoms, n_ranks)
    return shared_component_gb(n_atoms) + n_ranks * replicated_rank_component_gb(
        n_atoms
    )


def footprint_ndft(
    n_atoms: int, n_ranks: int = NDP_RANKS, n_stacks: int = NDP_STACKS
) -> float:
    """Total footprint (GB) with the NDFT shared-block layout: per-atom
    matrices stored once per stack, ranks keep radial tables + indices."""
    _check(n_atoms, n_ranks)
    if n_stacks < 1:
        raise ConfigError(f"n_stacks must be >= 1, got {n_stacks}")
    return (
        shared_component_gb(n_atoms)
        + n_stacks * RANK_PER_ATOM_GB * n_atoms
        + n_ranks * (RANK_BASE_GB + NDFT_INDEX_PER_ATOM_GB * n_atoms)
    )


def table1_rows(
    small_atoms: int = 64, large_atoms: int = 1024
) -> list[FootprintReport]:
    """Regenerate the four rows of Table I."""
    return [
        FootprintReport(
            "NDP in Small system", small_atoms, NDP_RANKS,
            footprint_replicated(small_atoms, NDP_RANKS),
        ),
        FootprintReport(
            "CPU in Small system", small_atoms, CPU_RANKS,
            footprint_replicated(small_atoms, CPU_RANKS),
        ),
        FootprintReport(
            "NDP in Large system", large_atoms, NDP_RANKS,
            footprint_replicated(large_atoms, NDP_RANKS),
        ),
        FootprintReport(
            "CPU in Large system", large_atoms, CPU_RANKS,
            footprint_replicated(large_atoms, CPU_RANKS),
        ),
    ]


def ndft_reduction_percent(n_atoms: int = 1024) -> float:
    """NDFT footprint reduction vs the replicated NDP layout (§VI-A
    reports 57.8 % for the large system)."""
    baseline = footprint_replicated(n_atoms, NDP_RANKS)
    optimized = footprint_ndft(n_atoms)
    return 100.0 * (1.0 - optimized / baseline)


def ndft_vs_cpu_ratio(n_atoms: int = 1024) -> float:
    """NDFT footprint over the CPU replicated footprint (§VI-A: 1.08x)."""
    return footprint_ndft(n_atoms) / footprint_replicated(n_atoms, CPU_RANKS)
