"""First-fit free-list allocator over a scratchpad's address space.

``NDFT_Alloc_Shared`` needs contiguous regions inside a stack's SPM-backed
shared memory (Algorithm 1 line 8: "allocate a continuous space in shared
memory").  This allocator provides that with explicit invariants the
property-based tests exercise:

- allocated regions never overlap;
- free + allocated bytes always equal capacity;
- adjacent free regions coalesce on free (no permanent fragmentation from
  alloc/free cycles of equal sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocationError, OutOfMemoryError


@dataclass(frozen=True)
class Region:
    offset: int
    length: int

    @property
    def end(self) -> int:
        return self.offset + self.length


@dataclass
class SpmAllocator:
    """First-fit allocator over ``capacity`` bytes with ``alignment``."""

    capacity: int
    alignment: int = 8
    _free: list[Region] = field(default_factory=list)
    _allocated: dict[int, Region] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise AllocationError("allocator capacity must be positive")
        if self.alignment <= 0 or self.alignment & (self.alignment - 1):
            raise AllocationError("alignment must be a positive power of two")
        if not self._free:
            self._free = [Region(0, self.capacity)]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def free_bytes(self) -> int:
        return sum(r.length for r in self._free)

    @property
    def allocated_bytes(self) -> int:
        return sum(r.length for r in self._allocated.values())

    @property
    def largest_free_region(self) -> int:
        return max((r.length for r in self._free), default=0)

    def fragmentation(self) -> float:
        """1 - largest_free/total_free; 0 when free space is contiguous."""
        free = self.free_bytes
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_region / free

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def _round_up(self, size: int) -> int:
        return (size + self.alignment - 1) & ~(self.alignment - 1)

    def allocate(self, size: int) -> int:
        """Reserve ``size`` bytes; returns the region offset.

        Raises :class:`OutOfMemoryError` when no free region fits — the
        failure mode the paper's replicated pseudopotential layout hits on
        large systems (§III-B).
        """
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        needed = self._round_up(size)
        for index, region in enumerate(self._free):
            if region.length >= needed:
                allocated = Region(region.offset, needed)
                remainder = Region(region.offset + needed, region.length - needed)
                if remainder.length:
                    self._free[index] = remainder
                else:
                    del self._free[index]
                self._allocated[allocated.offset] = allocated
                return allocated.offset
        raise OutOfMemoryError(
            f"cannot allocate {needed} bytes "
            f"(free={self.free_bytes}, largest region={self.largest_free_region})",
            requested=needed,
            available=self.largest_free_region,
        )

    def free(self, offset: int) -> None:
        """Release the region starting at ``offset``; coalesces neighbors."""
        region = self._allocated.pop(offset, None)
        if region is None:
            raise AllocationError(f"no allocation at offset {offset}")
        merged = region
        keep: list[Region] = []
        for free_region in self._free:
            if free_region.end == merged.offset:
                merged = Region(free_region.offset, free_region.length + merged.length)
            elif merged.end == free_region.offset:
                merged = Region(merged.offset, merged.length + free_region.length)
            else:
                keep.append(free_region)
        keep.append(merged)
        keep.sort(key=lambda r: r.offset)
        self._free = keep

    def check_invariants(self) -> None:
        """Raise :class:`AllocationError` on any broken invariant."""
        regions = sorted(
            list(self._allocated.values()) + self._free, key=lambda r: r.offset
        )
        cursor = 0
        for region in regions:
            if region.offset != cursor:
                raise AllocationError(
                    f"gap or overlap at offset {cursor} (next region at "
                    f"{region.offset})"
                )
            cursor = region.end
        if cursor != self.capacity:
            raise AllocationError(
                f"regions cover {cursor} bytes of {self.capacity}"
            )
