"""The ``sharedBL`` shared-block data structure (paper Algorithm 1, Fig. 5).

A shared block packages one atom's pseudopotential payload — integer index
arrays plus double-precision projector matrices — into a single contiguous
buffer placed in a stack's shared memory.  Every process keeps only the
*descriptor* (id, owning stack, offset, length); the payload itself exists
once per stack instead of once per process, which is the entire point of
the optimization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dft.pseudopotential import AtomPseudoBlock
from repro.errors import AllocationError


@dataclass(frozen=True)
class SharedBlock:
    """Descriptor of one shared block (what ``NDFT_Alloc_Shared`` returns).

    The descriptor is what ranks exchange and store in their index tables;
    it is a few dozen bytes regardless of the payload size.
    """

    block_id: int
    atom_index: int
    stack_id: int
    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise AllocationError(f"shared block length must be positive, got {self.length}")
        if self.offset < 0:
            raise AllocationError(f"shared block offset must be non-negative")

    @property
    def descriptor_bytes(self) -> int:
        """Size of the descriptor itself (5 x int64)."""
        return 5 * 8


def pack_atom_block(block: AtomPseudoBlock) -> np.ndarray:
    """Serialize one atom's pseudopotential payload into a flat float64
    buffer (Algorithm 1 line 9: "write local pseudopotential information as
    a block into shared memory").

    Layout: [n_proj, n_pw, atom_index, coupling..., pw_index..., re..., im...]
    """
    n_proj, n_pw = block.projectors_re.shape
    header = np.array([n_proj, n_pw, block.atom_index], dtype=np.float64)
    return np.concatenate(
        [
            header,
            block.coupling.astype(np.float64),
            block.pw_index.astype(np.float64),
            block.projectors_re.ravel(),
            block.projectors_im.ravel(),
        ]
    )


def unpack_atom_block(buffer: np.ndarray) -> AtomPseudoBlock:
    """Inverse of :func:`pack_atom_block`."""
    buffer = np.asarray(buffer, dtype=np.float64)
    if buffer.size < 3:
        raise AllocationError("shared block buffer too short for a header")
    n_proj = int(buffer[0])
    n_pw = int(buffer[1])
    atom_index = int(buffer[2])
    expected = 3 + n_proj + n_pw + 2 * n_proj * n_pw
    if buffer.size != expected:
        raise AllocationError(
            f"shared block buffer has {buffer.size} elements, expected {expected}"
        )
    cursor = 3
    coupling = buffer[cursor : cursor + n_proj].copy()
    cursor += n_proj
    pw_index = buffer[cursor : cursor + n_pw].astype(np.int64)
    cursor += n_pw
    re = buffer[cursor : cursor + n_proj * n_pw].reshape(n_proj, n_pw).copy()
    cursor += n_proj * n_pw
    im = buffer[cursor : cursor + n_proj * n_pw].reshape(n_proj, n_pw).copy()
    return AtomPseudoBlock(
        atom_index=atom_index,
        pw_index=pw_index,
        projectors_re=re,
        projectors_im=im,
        coupling=coupling,
    )


@dataclass
class SharedBlockTable:
    """Per-rank index of shared blocks (Algorithm 1 lines 12-14: "obtain
    the address of the shared block").

    Maps atom index -> :class:`SharedBlock` descriptor.  The table is the
    only per-rank state the optimized layout keeps for remote atoms, so its
    size is what the footprint model charges per rank.
    """

    blocks: dict[int, SharedBlock] = field(default_factory=dict)

    def register(self, block: SharedBlock) -> None:
        if block.atom_index in self.blocks:
            raise AllocationError(
                f"atom {block.atom_index} already has a shared block"
            )
        self.blocks[block.atom_index] = block

    def lookup(self, atom_index: int) -> SharedBlock:
        try:
            return self.blocks[atom_index]
        except KeyError:
            raise AllocationError(
                f"no shared block registered for atom {atom_index}"
            ) from None

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def index_bytes(self) -> int:
        """Exact size of this rank's index table."""
        return sum(b.descriptor_bytes for b in self.blocks.values())
