"""Shared-memory runtime for pseudopotential data (the paper's §IV-B/IV-C).

This package implements the NDFT hardware/software co-design:

- :mod:`repro.shmem.shared_block` — the ``sharedBL`` descriptor of
  Algorithm 1 (one atom's pseudopotential payload reorganized into a
  contiguous shared-memory block).
- :mod:`repro.shmem.allocator` — a first-fit allocator over a stack's SPM.
- :mod:`repro.shmem.api` — the ``NDFT_*`` programming interfaces of
  Table II (Alloc_Shared, Read, Write, Read_Remote, Write_Remote,
  Broadcast) with exact traffic accounting.
- :mod:`repro.shmem.arbiter` — the per-stack communication arbiter and the
  hierarchical (intra-stack first) communication scheme of Fig. 6.
- :mod:`repro.shmem.pseudo_layout` — replicated vs shared-block functional
  layouts of the Kleinman-Bylander payload; both produce bit-identical
  physics.
- :mod:`repro.shmem.footprint` — the Table I memory-footprint model and
  the OOM check for replicated layouts on many-core NDP systems.
"""

from repro.shmem.shared_block import SharedBlock, SharedBlockTable
from repro.shmem.allocator import SpmAllocator
from repro.shmem.api import NdftSharedMemory
from repro.shmem.arbiter import CommArbiter, HierarchicalComm
from repro.shmem.pseudo_layout import ReplicatedLayout, SharedBlockLayout
from repro.shmem.footprint import (
    FootprintReport,
    footprint_ndft,
    footprint_replicated,
    table1_rows,
)

__all__ = [
    "SharedBlock",
    "SharedBlockTable",
    "SpmAllocator",
    "NdftSharedMemory",
    "CommArbiter",
    "HierarchicalComm",
    "ReplicatedLayout",
    "SharedBlockLayout",
    "FootprintReport",
    "footprint_ndft",
    "footprint_replicated",
    "table1_rows",
]
