"""The ``NDFT_*`` programming interfaces (paper Table II).

:class:`NdftSharedMemory` is the runtime a simulated NDP process calls:

===============================  =========================================
Paper API                        Method here
===============================  =========================================
``NDFT_Alloc_Shared(info, id)``  :meth:`NdftSharedMemory.alloc_shared`
``NDFT_Read(bl, addr, len)``     :meth:`NdftSharedMemory.read`
``NDFT_Write(bl, addr, len)``    :meth:`NdftSharedMemory.write`
``NDFT_Read_Remote(...)``        :meth:`NdftSharedMemory.read_remote`
``NDFT_Write_Remote(...)``       :meth:`NdftSharedMemory.write_remote`
``NDFT_Broadcast(bl)``           :meth:`NdftSharedMemory.broadcast`
===============================  =========================================

The runtime is functional (payloads are real numpy buffers; reads return
exactly what was written) and accounted (every call charges SPM/mesh time
and traffic, which the ablation benchmarks aggregate).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.dft.pseudopotential import AtomPseudoBlock
from repro.errors import AllocationError, CommunicationError
from repro.hw.interconnect import MeshNetwork
from repro.hw.spm import ScratchpadSpec
from repro.shmem.allocator import SpmAllocator
from repro.shmem.arbiter import HierarchicalComm
from repro.shmem.shared_block import (
    SharedBlock,
    SharedBlockTable,
    pack_atom_block,
    unpack_atom_block,
)


@dataclass
class _StackStore:
    """Backing store of one stack's shared memory region."""

    allocator: SpmAllocator
    buffers: dict[int, np.ndarray] = field(default_factory=dict)


class NdftSharedMemory:
    """Shared-memory runtime spanning every stack of the NDP system.

    Parameters
    ----------
    n_stacks, units_per_stack:
        System shape (Table III: 16 stacks x 8 units).
    capacity_per_stack:
        Bytes of shared region per stack.  The SPM caches the hot blocks;
        capacity beyond the SPM spills into the stack's DRAM, which only
        changes access latency, not semantics.
    spm, mesh:
        Device models used for time accounting; defaults follow Table III.
    """

    def __init__(
        self,
        n_stacks: int,
        units_per_stack: int,
        capacity_per_stack: int,
        spm: ScratchpadSpec | None = None,
        mesh: MeshNetwork | None = None,
    ):
        if n_stacks < 1 or units_per_stack < 1:
            raise CommunicationError("system shape must be positive")
        self.n_stacks = n_stacks
        self.units_per_stack = units_per_stack
        self.spm = spm or ScratchpadSpec(capacity=capacity_per_stack)
        side = max(1, int(round(n_stacks**0.5)))
        if mesh is None and side * side != n_stacks:
            raise CommunicationError(
                f"cannot infer a square mesh for {n_stacks} stacks; pass one"
            )
        self.mesh = mesh or MeshNetwork(
            stacks_x=side, stacks_y=side, link_bandwidth=48e9, hop_latency=40e-9
        )
        self.comm = HierarchicalComm(mesh=self.mesh)
        self._stores = [
            _StackStore(allocator=SpmAllocator(capacity=capacity_per_stack))
            for _ in range(n_stacks)
        ]
        self._tables = [
            SharedBlockTable() for _ in range(n_stacks * units_per_stack)
        ]
        self._block_ids = itertools.count()
        self._blocks: dict[int, SharedBlock] = {}
        self.local_bytes = 0
        self.elapsed_time = 0.0

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    @property
    def n_units(self) -> int:
        return self.n_stacks * self.units_per_stack

    def stack_of(self, unit_id: int) -> int:
        if not 0 <= unit_id < self.n_units:
            raise CommunicationError(
                f"unit id {unit_id} out of range [0, {self.n_units})"
            )
        return unit_id // self.units_per_stack

    def table_of(self, unit_id: int) -> SharedBlockTable:
        self.stack_of(unit_id)  # range check
        return self._tables[unit_id]

    # ------------------------------------------------------------------
    # Table II APIs
    # ------------------------------------------------------------------
    def alloc_shared(
        self, pseu_info: AtomPseudoBlock, unit_id: int
    ) -> SharedBlock:
        """``NDFT_Alloc_Shared``: pack one atom's payload into the calling
        unit's stack and return the descriptor."""
        stack_id = self.stack_of(unit_id)
        payload = pack_atom_block(pseu_info)
        nbytes = payload.nbytes
        store = self._stores[stack_id]
        offset = store.allocator.allocate(nbytes)
        store.buffers[offset] = payload
        block = SharedBlock(
            block_id=next(self._block_ids),
            atom_index=pseu_info.atom_index,
            stack_id=stack_id,
            offset=offset,
            length=nbytes,
        )
        self._blocks[block.block_id] = block
        self._tables[unit_id].register(block)
        self.elapsed_time += self.spm.access_time(nbytes)
        self.local_bytes += nbytes
        return block

    def _payload(self, block: SharedBlock) -> np.ndarray:
        store = self._stores[block.stack_id]
        if block.offset not in store.buffers:
            raise AllocationError(
                f"shared block {block.block_id} has no backing buffer"
            )
        return store.buffers[block.offset]

    def read(self, block: SharedBlock, unit_id: int) -> AtomPseudoBlock:
        """``NDFT_Read``: intra-stack read of a shared block."""
        if self.stack_of(unit_id) != block.stack_id:
            raise CommunicationError(
                f"unit {unit_id} is not in stack {block.stack_id}; "
                "use read_remote"
            )
        self.elapsed_time += self.spm.access_time(block.length)
        self.local_bytes += block.length
        return unpack_atom_block(self._payload(block))

    def write(
        self, block: SharedBlock, data: AtomPseudoBlock, unit_id: int
    ) -> None:
        """``NDFT_Write``: intra-stack overwrite of a shared block."""
        if self.stack_of(unit_id) != block.stack_id:
            raise CommunicationError(
                f"unit {unit_id} is not in stack {block.stack_id}; "
                "use write_remote"
            )
        payload = pack_atom_block(data)
        if payload.nbytes != block.length:
            raise AllocationError(
                f"payload size {payload.nbytes} != block length {block.length}"
            )
        self._stores[block.stack_id].buffers[block.offset] = payload
        self.elapsed_time += self.spm.access_time(block.length)
        self.local_bytes += block.length

    def read_remote(self, block: SharedBlock, unit_id: int) -> AtomPseudoBlock:
        """``NDFT_Read_Remote``: fetch a block owned by another stack via
        the hierarchical arbiters; repeated fetches are filtered locally."""
        dst_stack = self.stack_of(unit_id)
        self.elapsed_time += self.comm.transfer(
            block.block_id, block.length, block.stack_id, dst_stack
        )
        self.elapsed_time += self.spm.access_time(block.length)
        return unpack_atom_block(self._payload(block))

    def write_remote(
        self, block: SharedBlock, data: AtomPseudoBlock, unit_id: int
    ) -> None:
        """``NDFT_Write_Remote``: update a block owned by another stack.

        Writes invalidate any staged copies of the block (the arbiters'
        filter must not serve stale data)."""
        src_stack = self.stack_of(unit_id)
        payload = pack_atom_block(data)
        if payload.nbytes != block.length:
            raise AllocationError(
                f"payload size {payload.nbytes} != block length {block.length}"
            )
        self.elapsed_time += self.comm.transfer(
            block.block_id, block.length, src_stack, block.stack_id
        )
        self._stores[block.stack_id].buffers[block.offset] = payload
        for arbiter in self.comm.arbiters:
            arbiter.staged_blocks.pop(block.block_id, None)

    def broadcast(self, block: SharedBlock) -> None:
        """``NDFT_Broadcast``: register a block's descriptor with every
        unit's index table (descriptor-only: the payload stays put)."""
        for unit_id, table in enumerate(self._tables):
            if block.atom_index not in table.blocks:
                table.register(block)
        # Descriptor distribution rides the mesh once per remote stack.
        for stack in range(self.n_stacks):
            if stack != block.stack_id:
                self.elapsed_time += self.mesh.point_to_point_time(
                    block.descriptor_bytes, block.stack_id, stack
                )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def shared_bytes_by_stack(self) -> list[int]:
        return [s.allocator.allocated_bytes for s in self._stores]

    def index_bytes_by_unit(self) -> list[int]:
        return [t.index_bytes for t in self._tables]
