"""Per-stack communication arbiters and the hierarchical scheme (Fig. 6).

One NDP unit per stack runs a *comm process* that owns all inter-stack
traffic: a requester never talks to a remote stack directly, it submits the
request to its local arbiter, which exchanges data with the destination
stack's arbiter over the mesh, deposits the payload into local shared
memory and hands back the index.  The paper's point is that this design
"acts as a filter, maximizing intra-stack communication and only
transmitting essential data across stacks"; we implement that filter as a
per-stack cache of remote blocks, so each remote block crosses the mesh at
most once per stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CommunicationError
from repro.hw.interconnect import MeshNetwork


@dataclass
class CommArbiter:
    """The comm process of one stack: request counters + remote-block cache."""

    stack_id: int
    requests_served: int = 0
    bytes_forwarded: int = 0
    #: block_id -> payload size, for remote blocks already staged locally.
    staged_blocks: dict[int, int] = field(default_factory=dict)

    def has_staged(self, block_id: int) -> bool:
        return block_id in self.staged_blocks

    def stage(self, block_id: int, nbytes: int) -> None:
        if nbytes <= 0:
            raise CommunicationError("staged payload must be positive")
        self.staged_blocks[block_id] = nbytes

    def record_request(self, nbytes: int) -> None:
        self.requests_served += 1
        self.bytes_forwarded += nbytes


@dataclass
class HierarchicalComm:
    """The two-level communication fabric: SPM within a stack, arbiters +
    mesh between stacks."""

    mesh: MeshNetwork
    arbiters: list[CommArbiter] = field(default_factory=list)
    intra_stack_bytes: int = 0
    inter_stack_bytes: int = 0
    filtered_requests: int = 0

    def __post_init__(self) -> None:
        if not self.arbiters:
            self.arbiters = [
                CommArbiter(stack_id=s) for s in range(self.mesh.n_stacks)
            ]
        if len(self.arbiters) != self.mesh.n_stacks:
            raise CommunicationError(
                f"{len(self.arbiters)} arbiters for {self.mesh.n_stacks} stacks"
            )

    def transfer(
        self, block_id: int, nbytes: int, src_stack: int, dst_stack: int
    ) -> float:
        """Move a block payload from ``src_stack`` to ``dst_stack``.

        Returns the modeled transfer time.  Intra-stack requests cost SPM
        bandwidth only (charged by the caller); inter-stack requests route
        through both arbiters, unless the destination arbiter already
        staged this block (the hierarchical filter), in which case the
        request is served locally for free.
        """
        if nbytes <= 0:
            raise CommunicationError("transfer size must be positive")
        if src_stack == dst_stack:
            self.intra_stack_bytes += nbytes
            return 0.0
        arbiter = self.arbiters[dst_stack]
        if arbiter.has_staged(block_id):
            self.filtered_requests += 1
            self.intra_stack_bytes += nbytes
            return 0.0
        time = self.mesh.point_to_point_time(nbytes, src_stack, dst_stack)
        self.arbiters[src_stack].record_request(nbytes)
        arbiter.record_request(nbytes)
        arbiter.stage(block_id, nbytes)
        self.inter_stack_bytes += nbytes
        return time

    @property
    def total_bytes(self) -> int:
        return self.intra_stack_bytes + self.inter_stack_bytes

    def locality_fraction(self) -> float:
        """Fraction of traffic that stayed inside a stack — the quantity
        the hierarchical design maximizes."""
        total = self.total_bytes
        if total == 0:
            return 1.0
        return self.intra_stack_bytes / total
