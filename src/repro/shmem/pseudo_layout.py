"""Pseudopotential data layouts: replicated vs shared-block (Algorithm 1).

Both layouts implement the same operation — apply the nonlocal
pseudopotential to a batch of wavefunctions — with different data
organizations:

- :class:`ReplicatedLayout` is the baseline the paper criticizes: every
  rank holds a private copy of every atom's payload.  No communication,
  maximal memory.
- :class:`SharedBlockLayout` is Algorithm 1: each rank packs the atoms it
  owns into shared blocks (``NDFT_Alloc_Shared`` + ``NDFT_Broadcast``),
  keeps only an index table for the rest, and pulls remote payloads
  through the hierarchical runtime on use.

The integration tests assert the two layouts produce *identical*
wavefunction updates, and the benchmarks compare their memory and traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dft.pseudopotential import AtomPseudoBlock, apply_nonlocal
from repro.errors import ConfigError
from repro.shmem.api import NdftSharedMemory
from repro.shmem.shared_block import SharedBlock


@dataclass
class ReplicatedLayout:
    """Every rank keeps a full private copy of all pseudopotential blocks."""

    blocks: tuple[AtomPseudoBlock, ...]
    n_ranks: int

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ConfigError("n_ranks must be >= 1")
        self.blocks = tuple(self.blocks)

    @property
    def bytes_per_rank(self) -> int:
        return sum(b.nbytes for b in self.blocks)

    @property
    def total_bytes(self) -> int:
        return self.bytes_per_rank * self.n_ranks

    def apply(self, coeffs: np.ndarray, rank: int = 0) -> np.ndarray:
        """Apply the nonlocal pseudopotential (identical on every rank)."""
        if not 0 <= rank < self.n_ranks:
            raise ConfigError(f"rank {rank} out of range [0, {self.n_ranks})")
        return apply_nonlocal(list(self.blocks), coeffs)


@dataclass
class SharedBlockLayout:
    """Algorithm 1: one shared copy per stack + per-rank index tables."""

    blocks: tuple[AtomPseudoBlock, ...]
    runtime: NdftSharedMemory
    _descriptors: list[SharedBlock] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.blocks = tuple(self.blocks)
        if not self.blocks:
            raise ConfigError("at least one pseudopotential block required")
        # Algorithm 1, lines 4-16: the owner of each atom packs its payload
        # into shared memory; everyone else records the address.
        for index, block in enumerate(self.blocks):
            owner_unit = index % self.runtime.n_units
            descriptor = self.runtime.alloc_shared(block, owner_unit)
            self.runtime.broadcast(descriptor)
            self._descriptors.append(descriptor)

    @property
    def n_ranks(self) -> int:
        return self.runtime.n_units

    def owner_unit(self, atom_index: int) -> int:
        return atom_index % self.runtime.n_units

    def bytes_per_rank(self, rank: int) -> int:
        """A rank's private footprint: its owned payloads + its index table."""
        if not 0 <= rank < self.n_ranks:
            raise ConfigError(f"rank {rank} out of range [0, {self.n_ranks})")
        owned = sum(
            b.nbytes
            for i, b in enumerate(self.blocks)
            if self.owner_unit(i) == rank
        )
        return owned + self.runtime.table_of(rank).index_bytes

    @property
    def total_bytes(self) -> int:
        """System-wide footprint: one payload copy + every index table."""
        payload = sum(
            store.allocator.allocated_bytes for store in self.runtime._stores
        )
        indexes = sum(self.runtime.index_bytes_by_unit())
        return payload + indexes

    def apply(self, coeffs: np.ndarray, rank: int = 0) -> np.ndarray:
        """Algorithm 1, lines 17-21: update wavefunctions by pulling each
        atom's payload through the shared-memory APIs."""
        if not 0 <= rank < self.n_ranks:
            raise ConfigError(f"rank {rank} out of range [0, {self.n_ranks})")
        table = self.runtime.table_of(rank)
        my_stack = self.runtime.stack_of(rank)
        fetched: list[AtomPseudoBlock] = []
        for atom_index in range(len(self.blocks)):
            descriptor = table.lookup(atom_index)
            if descriptor.stack_id == my_stack:
                fetched.append(self.runtime.read(descriptor, rank))
            else:
                fetched.append(self.runtime.read_remote(descriptor, rank))
        return apply_nonlocal(fetched, coeffs)
