"""Fig. 7: execution-time comparison and per-kernel breakdown.

The paper's Fig. 7 shows stacked-bar breakdowns (FFT, point-point
multiplication, Global Comm, SYEVD, ...) for CPU, GPU and NDFT on the
small (Si_64) and large (Si_1024) systems, from which the text quotes:

- NDFT over CPU: 1.9x (small), 5.2x (large);
- NDFT over GPU: 1.6x (small), 2.5x (large);
- FFT 11.2x over CPU in the large system;
- face-splitting product 1.99x over CPU in the small system;
- GPU GEMM ahead of NDFT's by 35.9 % (small) / 22.2 % (large);
- memory-bound kernels: NDFT 2.1x / 5.2x over GPU.

This driver produces the three bars per system plus those derived ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.baselines import run_cpu_baseline, run_gpu_baseline
from repro.core.executor import ExecutionReport
from repro.core.framework import NdftFramework
from repro.dft.workload import problem_size
from repro.experiments.report import Comparison
from repro.model import MEMORY_BOUND_PHASES, PhaseName
from repro.workloads.silicon import LARGE_SYSTEM, SMALL_SYSTEM

#: §VI-A quoted numbers used in comparisons.
PAPER_SPEEDUP_VS_CPU = {SMALL_SYSTEM: 1.9, LARGE_SYSTEM: 5.2}
PAPER_SPEEDUP_VS_GPU = {SMALL_SYSTEM: 1.6, LARGE_SYSTEM: 2.5}
PAPER_FFT_SPEEDUP_LARGE = 11.2
PAPER_FACE_SPLIT_SPEEDUP_SMALL = 1.99
PAPER_GPU_GEMM_ADVANTAGE = {SMALL_SYSTEM: 35.9, LARGE_SYSTEM: 22.2}
PAPER_MEM_KERNEL_SPEEDUP_VS_GPU = {SMALL_SYSTEM: 2.1, LARGE_SYSTEM: 5.2}


@dataclass(frozen=True)
class BreakdownStudy:
    """The three Fig. 7 bars for one physical system."""

    n_atoms: int
    cpu: ExecutionReport
    gpu: ExecutionReport
    ndft_breakdown: dict[str, float]
    ndft_total: float
    scheduling_overhead: float

    @property
    def speedup_vs_cpu(self) -> float:
        return self.cpu.total_time / self.ndft_total

    @property
    def speedup_vs_gpu(self) -> float:
        return self.gpu.total_time / self.ndft_total

    def kernel_speedup_vs_cpu(self, phase: PhaseName) -> float:
        return self.cpu.phase_seconds[str(phase)] / self.ndft_breakdown[str(phase)]

    def gpu_gemm_advantage_percent(self) -> float:
        """How much faster the GPU runs GEMM than NDFT's host CPU does."""
        ndft = self.ndft_breakdown[str(PhaseName.GEMM)]
        gpu = self.gpu.phase_seconds[str(PhaseName.GEMM)]
        return 100.0 * (ndft / gpu - 1.0)

    def memory_kernel_speedup_vs_gpu(self) -> float:
        names = [str(p) for p in MEMORY_BOUND_PHASES]
        ndft = sum(self.ndft_breakdown[n] for n in names)
        gpu = sum(self.gpu.phase_seconds[n] for n in names)
        return gpu / ndft


def run_breakdown(
    n_atoms: int, framework: NdftFramework | None = None
) -> BreakdownStudy:
    """Produce the Fig. 7 bars for Si_{n_atoms}."""
    framework = framework or NdftFramework()
    problem = problem_size(n_atoms)
    ndft = framework.run(problem=problem)
    return BreakdownStudy(
        n_atoms=n_atoms,
        cpu=run_cpu_baseline(problem),
        gpu=run_gpu_baseline(problem),
        ndft_breakdown=ndft.report.phase_seconds,
        ndft_total=ndft.total_time,
        scheduling_overhead=ndft.report.scheduling_overhead,
    )


def breakdown_comparisons(study: BreakdownStudy) -> list[Comparison]:
    """Every §VI-A quoted number this system size supports."""
    n = study.n_atoms
    comparisons = [
        Comparison(
            f"Si_{n}: NDFT speedup vs CPU",
            PAPER_SPEEDUP_VS_CPU.get(n),
            round(study.speedup_vs_cpu, 2),
            "x",
        ),
        Comparison(
            f"Si_{n}: NDFT speedup vs GPU",
            PAPER_SPEEDUP_VS_GPU.get(n),
            round(study.speedup_vs_gpu, 2),
            "x",
        ),
        Comparison(
            f"Si_{n}: memory-bound kernels vs GPU",
            PAPER_MEM_KERNEL_SPEEDUP_VS_GPU.get(n),
            round(study.memory_kernel_speedup_vs_gpu(), 2),
            "x",
        ),
        Comparison(
            f"Si_{n}: GPU GEMM advantage over NDFT",
            PAPER_GPU_GEMM_ADVANTAGE.get(n),
            round(study.gpu_gemm_advantage_percent(), 1),
            "%",
        ),
    ]
    if n == LARGE_SYSTEM:
        comparisons.append(
            Comparison(
                f"Si_{n}: FFT speedup vs CPU",
                PAPER_FFT_SPEEDUP_LARGE,
                round(study.kernel_speedup_vs_cpu(PhaseName.FFT), 2),
                "x",
            )
        )
    if n == SMALL_SYSTEM:
        comparisons.append(
            Comparison(
                f"Si_{n}: face-split speedup vs CPU",
                PAPER_FACE_SPLIT_SPEEDUP_SMALL,
                round(study.kernel_speedup_vs_cpu(PhaseName.FACE_SPLIT), 2),
                "x",
            )
        )
    return comparisons


def format_breakdown(study: BreakdownStudy) -> str:
    """The stacked-bar data as text rows."""
    lines = [
        f"Fig. 7 - execution breakdown, Si_{study.n_atoms}",
        f"{'phase':<18s} {'CPU (s)':>10s} {'GPU (s)':>10s} {'NDFT (s)':>10s}",
    ]
    for name in study.cpu.phase_seconds:
        lines.append(
            f"{name:<18s} {study.cpu.phase_seconds[name]:10.4f} "
            f"{study.gpu.phase_seconds[name]:10.4f} "
            f"{study.ndft_breakdown[name]:10.4f}"
        )
    lines.append(
        f"{'scheduling':<18s} {0.0:10.4f} {0.0:10.4f} "
        f"{study.scheduling_overhead:10.4f}"
    )
    lines.append(
        f"{'TOTAL':<18s} {study.cpu.total_time:10.4f} "
        f"{study.gpu.total_time:10.4f} {study.ndft_total:10.4f}"
    )
    return "\n".join(lines)
