"""Table I: memory footprint of pseudopotentials in CPU and NDP systems.

Regenerates the four rows (NDP/CPU x small/large) from the mechanistic
footprint model and pairs them with the paper's published values.
"""

from __future__ import annotations

from repro.experiments.report import Comparison, format_table
from repro.shmem.footprint import FootprintReport, table1_rows
from repro.workloads.silicon import LARGE_SYSTEM, SMALL_SYSTEM

#: The paper's Table I: label -> (GB, percent of system memory).
PAPER_TABLE1 = {
    "NDP in Small system": (4.43, 6.92),
    "CPU in Small system": (1.84, 2.88),
    "NDP in Large system": (35.3, 55.15),
    "CPU in Large system": (13.8, 21.56),
}


def run_table1(
    small: int = SMALL_SYSTEM, large: int = LARGE_SYSTEM
) -> list[FootprintReport]:
    """The four Table I rows, measured from the footprint model."""
    return table1_rows(small_atoms=small, large_atoms=large)


def table1_comparisons() -> list[Comparison]:
    """Paper-vs-measured for every cell of Table I."""
    comparisons = []
    for row in run_table1():
        paper_gb, paper_pct = PAPER_TABLE1[row.label]
        comparisons.append(
            Comparison(
                metric=f"{row.label} (GB)", paper=paper_gb,
                measured=round(row.gigabytes, 2), unit="GB",
            )
        )
        comparisons.append(
            Comparison(
                metric=f"{row.label} (%)", paper=paper_pct,
                measured=round(row.percent_of_memory, 2), unit="%",
            )
        )
    return comparisons


def format_table1() -> str:
    return format_table(
        "Table I - pseudopotential memory footprint", table1_comparisons()
    )
