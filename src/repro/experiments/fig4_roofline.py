"""Fig. 4: roofline analysis of LR-TDDFT kernels on two system sizes.

The paper plots FFT, face-splitting product, GEMM and SYEVD for Si_64
("small") and Si_1024 ("large") on the CPU baseline's roofline and draws
three observations:

1. LR-TDDFT is fundamentally memory-bound (most kernels left of the ridge);
2. kernels divide cleanly: FFT/face-split memory-bound, GEMM compute-bound;
3. boundedness is size-dependent: SYEVD is memory-bound in the small
   system and compute-bound in the large one; GEMM grows more
   compute-bound with size.

This driver regenerates the chart's data points and re-derives the three
observations programmatically so the tests can assert them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.baselines import run_cpu_baseline
from repro.dft.workload import problem_size, stage_workloads
from repro.hw.config import cpu_baseline_config
from repro.hw.cpu import CpuModel
from repro.hw.roofline import RooflineModel, RooflinePoint
from repro.model import AccessPattern, PhaseName
from repro.workloads.silicon import LARGE_SYSTEM, SMALL_SYSTEM

#: The kernels Fig. 4 plots (Global Comm has no FLOPs, so no roofline point).
FIG4_KERNELS = (
    PhaseName.FFT,
    PhaseName.FACE_SPLIT,
    PhaseName.GEMM,
    PhaseName.SYEVD,
)


@dataclass(frozen=True)
class RooflineStudy:
    """All Fig. 4 data points plus the machine roofline."""

    roofline: RooflineModel
    points: dict[tuple[str, int], RooflinePoint]

    def point(self, kernel: PhaseName, n_atoms: int) -> RooflinePoint:
        return self.points[(str(kernel), n_atoms)]

    def observation_memory_bound_majority(self) -> bool:
        """Observation 1: most kernels sit in the memory-bound region."""
        memory = sum(1 for p in self.points.values() if p.bound == "memory")
        return memory > len(self.points) / 2

    def observation_kernel_split(self) -> bool:
        """Observation 2: FFT/face-split memory-bound, GEMM compute-bound,
        at both sizes."""
        return all(
            self.point(PhaseName.FFT, n).bound == "memory"
            and self.point(PhaseName.FACE_SPLIT, n).bound == "memory"
            and self.point(PhaseName.GEMM, n).bound == "compute"
            for n in (SMALL_SYSTEM, LARGE_SYSTEM)
        )

    def observation_size_dependence(self) -> bool:
        """Observation 3: SYEVD flips memory -> compute with system size."""
        return (
            self.point(PhaseName.SYEVD, SMALL_SYSTEM).bound == "memory"
            and self.point(PhaseName.SYEVD, LARGE_SYSTEM).bound == "compute"
        )


def run_roofline_study(
    small: int = SMALL_SYSTEM, large: int = LARGE_SYSTEM
) -> RooflineStudy:
    """Regenerate the Fig. 4 data points on the CPU baseline."""
    machine = CpuModel(cpu_baseline_config())
    roofline = RooflineModel(
        name=machine.config.name,
        peak_flops=machine.config.peak_flops,
        peak_bandwidth=machine.memory.effective_bandwidth(
            AccessPattern.SEQUENTIAL
        ),
    )
    points: dict[tuple[str, int], RooflinePoint] = {}
    for n_atoms in (small, large):
        problem = problem_size(n_atoms)
        workloads = stage_workloads(problem)
        report = run_cpu_baseline(problem)
        for kernel in FIG4_KERNELS:
            workload = workloads[kernel]
            # A memory-side roofline (what VTune reports) uses *DRAM*
            # traffic, so apply the machine's cache model to the nominal
            # byte counts before computing arithmetic intensity.
            dram_bytes = machine.dram_traffic(workload)
            effective = replace(
                workload,
                bytes_read=dram_bytes * 0.5,
                bytes_written=dram_bytes * 0.5,
            )
            measured = report.phase_seconds[str(kernel)]
            points[(str(kernel), n_atoms)] = roofline.analyze(
                effective, measured_time=measured
            )
    return RooflineStudy(roofline=roofline, points=points)


def format_roofline(study: RooflineStudy) -> str:
    """Fig. 4 as text: one row per (kernel, size) point."""
    lines = [
        "Fig. 4 - roofline of LR-TDDFT kernels (CPU baseline)",
        f"ridge point: {study.roofline.ridge_point:.2f} FLOP/byte",
        f"{'kernel':<20s} {'system':>8s} {'AI':>8s} {'GFLOP/s':>10s} {'bound':>8s}",
    ]
    for (kernel, n_atoms), point in sorted(study.points.items()):
        lines.append(
            f"{kernel:<20s} {'Si_' + str(n_atoms):>8s} "
            f"{point.arithmetic_intensity:8.2f} "
            f"{point.attained_flops / 1e9:10.2f} {point.bound:>8s}"
        )
    return "\n".join(lines)
