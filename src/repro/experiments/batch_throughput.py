"""Batched-serving study (extension beyond the paper).

DFT-as-a-service deployments push many independent DFT jobs through one
machine; the interesting question for the CPU-NDP system is how much of
that load the heterogeneous placement absorbs for free.  Because the
cost-aware schedule alternates devices along each job's chain (memory
phases on NDP, dense algebra on the host), two concurrent jobs naturally
interleave: one occupies the CPU while the other streams on the NDP side.

This driver runs a mixed batch through
:meth:`repro.core.framework.NdftFramework.run_many` (one shared DES
engine, shared device and link resources) and reports:

- per-job completion times inside the batch (queueing included);
- the aggregate makespan and throughput;
- the batching speedup over running the same jobs back to back.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.framework import NdftBatchResult, NdftFramework

#: Default mixed batch: two small interactive jobs sharing the machine
#: with one mid-size and one large job.
DEFAULT_BATCH_SIZES = (64, 64, 512, 1024)


@dataclass(frozen=True)
class BatchStudy:
    """Shared-machine batch vs one-at-a-time serial execution."""

    sizes: tuple[int, ...]
    result: NdftBatchResult

    @property
    def makespan(self) -> float:
        return self.result.makespan

    @property
    def serial_time(self) -> float:
        return self.result.serial_time

    @property
    def throughput(self) -> float:
        return self.result.throughput

    @property
    def batching_speedup(self) -> float:
        return self.result.batching_speedup

    def job_rows(self) -> list[tuple[str, float, float]]:
        """(label, solo seconds, in-batch completion seconds) per job."""
        return [
            (job.problem.label, solo, job.report.total_time)
            for job, solo in zip(self.result.jobs, self.result.solo_times)
        ]


def run_batch_study(
    sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES,
    framework: NdftFramework | None = None,
) -> BatchStudy:
    """Schedule + execute the batch on one shared machine."""
    framework = framework or NdftFramework()
    return BatchStudy(
        sizes=tuple(sizes), result=framework.run_many(list(sizes))
    )


def format_batch(study: BatchStudy) -> str:
    lines = [
        f"Batched serving - {len(study.sizes)} concurrent jobs, shared CPU-NDP machine",
        f"{'job':<10s} {'solo (s)':>10s} {'in-batch (s)':>13s}",
    ]
    for label, solo, batched in study.job_rows():
        lines.append(f"{label:<10s} {solo:10.4f} {batched:13.4f}")
    lines.append(
        f"{'serial':<10s} {study.serial_time:10.4f}   (jobs back to back)"
    )
    lines.append(
        f"{'batch':<10s} {study.makespan:10.4f}   "
        f"(makespan; {study.batching_speedup:.2f}x vs serial, "
        f"{study.throughput:.2f} jobs/s)"
    )
    return "\n".join(lines)
