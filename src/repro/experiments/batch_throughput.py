"""Batched-serving study (extension beyond the paper).

DFT-as-a-service deployments push many independent DFT jobs through one
machine; the interesting question for the CPU-NDP system is how much of
that load the heterogeneous placement absorbs for free.  Because the
cost-aware schedule alternates devices along each job's chain (memory
phases on NDP, dense algebra on the host), two concurrent jobs naturally
interleave: one occupies the CPU while the other streams on the NDP side.

This driver runs a mixed batch through
:meth:`repro.core.framework.NdftFramework.run_many` (one shared DES
engine, shared device and link resources) and reports:

- per-job completion times inside the batch (queueing included);
- the aggregate makespan and throughput;
- the batching speedup over running the same jobs back to back.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.arrivals import AdmissionPolicy, poisson_arrivals
from repro.core.framework import NdftBatchResult, NdftFramework

#: Default mixed batch: two small interactive jobs sharing the machine
#: with one mid-size and one large job.
DEFAULT_BATCH_SIZES = (64, 64, 512, 1024)


@dataclass(frozen=True)
class BatchStudy:
    """Shared-machine batch vs one-at-a-time serial execution."""

    sizes: tuple[int, ...]
    result: NdftBatchResult

    @property
    def open_queue(self) -> bool:
        return self.result.arrivals is not None

    @property
    def makespan(self) -> float:
        return self.result.makespan

    @property
    def serial_time(self) -> float:
        return self.result.serial_time

    @property
    def throughput(self) -> float:
        return self.result.throughput

    @property
    def batching_speedup(self) -> float:
        return self.result.batching_speedup

    def job_rows(self) -> list[tuple[str, float, float]]:
        """(label, solo seconds, in-batch completion seconds) per job."""
        return [
            (job.problem.label, solo, job.report.total_time)
            for job, solo in zip(self.result.jobs, self.result.solo_times)
        ]


def run_batch_study(
    sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES,
    framework: NdftFramework | None = None,
    arrival_rate: float | None = None,
    arrival_seed: int = 0,
    admission: AdmissionPolicy | None = None,
) -> BatchStudy:
    """Schedule + execute the batch on one shared machine.

    ``arrival_rate`` switches the closed t=0 batch to an open queue:
    jobs are released by a seeded Poisson process at that offered load
    (jobs per second of virtual time), and the study reports completion
    latency and queueing delay per job.  ``admission`` applies an
    SLO-driven admission policy to the open queue (it requires an
    arrival process)."""
    framework = framework or NdftFramework()
    arrivals = None
    if arrival_rate is not None and arrival_rate > 0:
        arrivals = poisson_arrivals(len(sizes), arrival_rate, seed=arrival_seed)
    return BatchStudy(
        sizes=tuple(sizes),
        result=framework.run_many(
            list(sizes), arrivals=arrivals, admission=admission
        ),
    )


def format_batch(study: BatchStudy) -> str:
    result = study.result
    if study.open_queue:
        lines = [
            f"Open-queue serving - {len(study.sizes)} jobs, Poisson "
            "arrivals, shared CPU-NDP machine",
            f"{'job':<10s} {'arrival (s)':>12s} {'done (s)':>10s} "
            f"{'latency (s)':>12s} {'queued (s)':>11s}",
        ]
        for job, arrival, latency, queued in zip(
            result.jobs,
            result.arrivals,
            result.completion_latencies,
            result.queueing_delays,
        ):
            lines.append(
                f"{job.problem.label:<10s} {arrival:12.4f} "
                f"{job.report.total_time:10.4f} {latency:12.4f} "
                f"{queued:11.4f}"
            )
        lines.append(
            f"latency p50 {result.p50_latency:.4f} s, "
            f"p99 {result.p99_latency:.4f} s, "
            f"mean queueing delay {result.mean_queueing_delay:.4f} s"
        )
        if result.admission is not None:
            admission = result.admission
            shed = (
                f" ({', '.join(admission.shed_labels)})"
                if admission.shed_labels
                else ""
            )
            lines.append(
                f"admission ({admission.policy.mode}): "
                f"{admission.admitted} admitted, {admission.shed} shed"
                f"{shed}, {admission.deferred} deferred; "
                f"post-shed p99 {result.slo_p99_latency:.4f} s"
            )
        if result.lane_utilization:
            lanes = ", ".join(
                f"{lane} {value:.0%}"
                for lane, value in sorted(
                    result.lane_utilization.items(),
                    key=lambda item: -item[1],
                )
            )
            lines.append(f"lane utilization: {lanes}")
        return "\n".join(lines)
    lines = [
        f"Batched serving - {len(study.sizes)} concurrent jobs, shared CPU-NDP machine",
        f"{'job':<10s} {'solo (s)':>10s} {'in-batch (s)':>13s}",
    ]
    for label, solo, batched in study.job_rows():
        lines.append(f"{label:<10s} {solo:10.4f} {batched:13.4f}")
    lines.append(
        f"{'serial':<10s} {study.serial_time:10.4f}   (jobs back to back)"
    )
    lines.append(
        f"{'batch':<10s} {study.makespan:10.4f}   "
        f"(makespan; {study.batching_speedup:.2f}x vs serial, "
        f"{study.throughput:.2f} jobs/s)"
    )
    return "\n".join(lines)
