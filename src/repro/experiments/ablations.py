"""Design-point ablations for the choices §IV calls out.

1. **Offload granularity** (§IV-A1): Eq. 1 overhead at instruction, basic
   block, function and whole-kernel granularity.  Function granularity
   should carry negligible overhead while instruction/block granularity
   pays orders of magnitude more — the paper's justification for
   function-level offloading.
2. **Scheduling policy**: cost-aware vs naive (transfer-blind) vs all-CPU
   vs all-NDP.  Cost-aware must dominate.
3. **Shared memory / hierarchical comm** (§IV-B/C): replicated layout vs
   shared blocks with and without the arbiter filter, measured on the
   functional runtime (memory, inter-stack traffic, locality).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.framework import NdftFramework
from repro.core.pipeline import build_pipeline
from repro.core.scheduler import SchedulingPolicy, granularity_overheads
from repro.dft.basis import PlaneWaveBasis
from repro.dft.lattice import silicon_supercell
from repro.dft.pseudopotential import build_projectors
from repro.dft.workload import problem_size
from repro.hw.interconnect import MeshNetwork
from repro.shmem.api import NdftSharedMemory
from repro.shmem.pseudo_layout import ReplicatedLayout, SharedBlockLayout
from repro.units import MiB


@dataclass(frozen=True)
class PolicyAblation:
    """Predicted totals per scheduling policy for one system size."""

    n_atoms: int
    totals: dict[str, float]

    @property
    def cost_aware_wins(self) -> bool:
        best = min(self.totals.values())
        return self.totals[SchedulingPolicy.COST_AWARE.value] <= best * 1.0001


def run_granularity_ablation(
    n_atoms: int, framework: NdftFramework | None = None
) -> dict[str, float]:
    """Eq. 1 overhead per offload granularity (§IV-A1)."""
    framework = framework or NdftFramework()
    pipeline = build_pipeline(problem_size(n_atoms))
    return granularity_overheads(pipeline, framework.scheduler)


def run_policy_ablation(
    n_atoms: int, framework: NdftFramework | None = None
) -> PolicyAblation:
    """Predicted pipeline totals under each scheduling policy."""
    framework = framework or NdftFramework()
    pipeline = build_pipeline(problem_size(n_atoms))
    totals = {
        policy.value: framework.scheduler.schedule(pipeline, policy).predicted_total
        for policy in SchedulingPolicy
    }
    return PolicyAblation(n_atoms=n_atoms, totals=totals)


@dataclass(frozen=True)
class SharedMemoryAblation:
    """Functional-runtime comparison of pseudopotential layouts."""

    n_atoms: int
    replicated_total_bytes: int
    shared_total_bytes: int
    inter_stack_bytes_first_pass: int
    inter_stack_bytes_second_pass: int
    locality_after_two_passes: float

    @property
    def memory_reduction_percent(self) -> float:
        return 100.0 * (1.0 - self.shared_total_bytes / self.replicated_total_bytes)

    @property
    def filter_effective(self) -> bool:
        """The hierarchical arbiter should eliminate repeat mesh crossings."""
        return self.inter_stack_bytes_second_pass == 0


def run_shared_memory_ablation(
    n_atoms: int = 16,
    n_ranks: int = 8,
    n_stacks: int = 4,
    ecut: float = 1.5,
) -> SharedMemoryAblation:
    """Exercise both layouts on a real (scaled-down) silicon system."""
    cell = silicon_supercell(n_atoms)
    basis = PlaneWaveBasis(cell, ecut=ecut)
    blocks = tuple(build_projectors(cell, basis))

    replicated = ReplicatedLayout(blocks=blocks, n_ranks=n_ranks)
    side = int(round(n_stacks**0.5))
    mesh = MeshNetwork(
        stacks_x=max(side, 1),
        stacks_y=max(n_stacks // max(side, 1), 1),
        link_bandwidth=24e9,
        hop_latency=40e-9,
    )
    runtime = NdftSharedMemory(
        n_stacks=mesh.n_stacks,
        units_per_stack=max(1, n_ranks // mesh.n_stacks),
        capacity_per_stack=256 * MiB,
        mesh=mesh,
    )
    shared = SharedBlockLayout(blocks=blocks, runtime=runtime)

    rng = np.random.default_rng(7)
    psi = rng.normal(size=(4, basis.n_pw)) + 1j * rng.normal(size=(4, basis.n_pw))

    reference = replicated.apply(psi)
    first = shared.apply(psi, rank=runtime.n_units - 1)
    inter_first = runtime.comm.inter_stack_bytes
    second = shared.apply(psi, rank=runtime.n_units - 1)
    inter_second = runtime.comm.inter_stack_bytes - inter_first

    if not np.allclose(reference, first) or not np.allclose(reference, second):
        raise AssertionError("shared-block layout diverged from replicated")

    return SharedMemoryAblation(
        n_atoms=n_atoms,
        replicated_total_bytes=replicated.total_bytes,
        shared_total_bytes=shared.total_bytes,
        inter_stack_bytes_first_pass=inter_first,
        inter_stack_bytes_second_pass=inter_second,
        locality_after_two_passes=runtime.comm.locality_fraction(),
    )
