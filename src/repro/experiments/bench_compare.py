"""CI trend gate for the serving benchmark.

``BENCH_serving.json`` anchors the serving performance trajectory: the
committed file is the previous PR's measurement, and CI regenerates a
fresh one on every run.  This module compares the two at matching batch
sizes and fails (exit code 1) when the fresh cached throughput regresses
by more than the tolerance at *any* shared batch size — the tripwire
that keeps "the simulator got slower" from sliding in unnoticed.

Two trend signals, because wall-clock numbers are host-specific:

- **wall_speedup** (uncached wall over cached wall, measured within one
  run) is host-relative, so it is gated *unconditionally* — a fast path
  that lost ground against its own baseline fails CI no matter which
  machine committed the reference;
- **absolute cached throughput** (jobs/s) only trends within one host
  class, so it is gated only when the two files' hosts are comparable
  (same Python major.minor, architecture and CPU count — not the exact
  kernel build, which churns with runner images); on a mismatch the
  deltas are printed as advisory context instead.

The open-queue block is gated too: **p99 completion latency** (virtual
seconds, from each point's ``arrival`` measurement) fails CI when the
fresh p99 *grows* beyond the tolerance at any shared batch size — but
only when the two measurements are actually comparable: same host class
(the throughput gate's refusal rules) and the same offered load and
arrival seed (a different Poisson process is a different experiment,
not a regression).

Fault-injected files trend their resilience numbers the same way: when
both reports carry *matching* fault descriptors (a mismatch refuses the
whole comparison, see below), **availability** and **goodput** fail CI
when the fresh value *drops* beyond the tolerance at any shared batch
size, under the same host-class and same-arrival-process rules as
throughput — the tripwire that keeps "recovery got worse under the
same fault plan" from sliding in unnoticed.

The arrival sweep's **knee dominant lane** is pinned as well: when both
files swept the same load grid (same seed, batch size and rates) and
both located a knee at the same rate, the most-utilized device/wire
lane at the knee must not silently change identity — "the NDP units saturate first"
turning into "the CXL link saturates first" is a modeling regression
even when every latency still passes.  Lane utilization is virtual-time
accounting, so this gate applies across host classes.

Fields added by later PRs — the per-point ``backend_jobs``,
``backend_wall_seconds`` and the extended batch axis — are *advisory*:
comparisons run over the shared batch sizes only, every lookup is
``dict.get``-based, and a committed baseline predating a field (or a
point whose uncached comparison was skipped past
``UNCACHED_COMPARE_MAX``, leaving ``wall_speedup`` ``null``) simply
skips that gate rather than failing — absent is never a regression.

Structural problems — a baseline-only (``--no-cache``) file, no shared
batch sizes, files measured under *different admission policies* or
*different fault plans* (shed rates, post-shed latencies, availability
and retry-inflated latencies from one regime cannot be trended against
another's, mirroring the forced-backend refusal; a missing ``faults``
key reads as faults-off), or files measured with *different fleet
sizes* (``--replicas``: a 4-replica aggregate is legitimately several
times the single-process throughput, so trending the two against each
other produces spurious verdicts in both directions; a missing
``replicas`` key reads as 1) — are refused outright regardless of host
metadata.  When both files carry the *same* replica count, the fleet
aggregate throughput rides the ordinary ``jobs_per_second_cached``
host-class gate.  The comparison is deliberately
coarse (default: 30 % regression, on best-of-N minima) and the verdict
prints both files' host metadata.

Usage::

    python -m repro.experiments.bench_compare COMMITTED.json FRESH.json
    python -m repro.experiments.bench_compare a.json b.json --max-regression 0.5
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Maximum tolerated drop of ``jobs_per_second_cached``: fresh must be
#: at least ``(1 - MAX_REGRESSION) * committed`` at every shared size.
DEFAULT_MAX_REGRESSION = 0.30


def _points_by_batch_size(report: dict) -> dict[int, dict]:
    return {point["batch_size"]: point for point in report.get("points", ())}


def _version_minor(version: str | None) -> str | None:
    if version is None:
        return None
    return ".".join(str(version).split(".")[:2])


def hosts_comparable(committed: dict, fresh: dict) -> bool:
    """Whether absolute jobs/s can be trended between the two reports.

    Comparable means same Python major.minor, machine architecture and
    CPU count — deliberately *not* the exact platform string, whose
    kernel build changes with every runner-image update.  Files without
    metadata (older format) are treated as comparable, keeping the gate
    conservative."""
    meta_a = committed.get("metadata") or {}
    meta_b = fresh.get("metadata") or {}
    if not meta_a or not meta_b:
        return True
    return (
        _version_minor(meta_a.get("python")) == _version_minor(meta_b.get("python"))
        and meta_a.get("machine") == meta_b.get("machine")
        and meta_a.get("cpu_count") == meta_b.get("cpu_count")
    )


def compare_serving_reports(
    committed: dict,
    fresh: dict,
    max_regression: float = DEFAULT_MAX_REGRESSION,
    hosts_match: bool | None = None,
) -> list[str]:
    """Regression messages, empty when the fresh run passes.

    Only batch sizes present in *both* reports are compared (CI sweeps a
    subset of the committed sizes).  ``wall_speedup`` — host-relative —
    is gated unconditionally; absolute cached throughput is gated only
    when ``hosts_match`` (default: derived via :func:`hosts_comparable`).
    A baseline-only (``--no-cache``) file or a sweep with no shared
    sizes is always a failure: the gate is misconfigured, not passing."""
    if not 0.0 <= max_regression < 1.0:
        raise ValueError(
            f"max_regression must be in [0, 1), got {max_regression}"
        )
    if hosts_match is None:
        hosts_match = hosts_comparable(committed, fresh)
    for name, report in (("committed", committed), ("fresh", fresh)):
        if report.get("fast_path") is False:
            return [
                f"{name} report was measured with --no-cache (baseline "
                "only); its throughput columns hold baseline numbers and "
                "cannot be trended"
            ]
    # A forced simulation backend (--backend) is a different experiment:
    # an engine-forced sweep is legitimately several times slower than
    # the auto-selected replays, so trending the two against each other
    # produces spurious verdicts in both directions.  Files predating
    # the field (no "backend" key) read as auto-selected.
    backend_committed = committed.get("backend")
    backend_fresh = fresh.get("backend")
    if backend_committed != backend_fresh:
        return [
            "committed and fresh reports were measured under different "
            f"simulation backends ({backend_committed or 'auto'} vs "
            f"{backend_fresh or 'auto'}) and cannot be trended against "
            "each other"
        ]
    # Mirror of the forced-backend refusal for admission control: shed
    # rates, lane utilization and post-shed latencies measured under one
    # policy are a different experiment from another's (or from no
    # policy at all).  Files predating the field (no "admission" key)
    # read as admission-off.
    admission_committed = committed.get("admission")
    admission_fresh = fresh.get("admission")
    if admission_committed != admission_fresh:
        return [
            "committed and fresh reports were measured under different "
            f"admission policies ({admission_committed or 'off'} vs "
            f"{admission_fresh or 'off'}) and cannot be trended against "
            "each other"
        ]
    # Same refusal for fault injection: availability, goodput and
    # post-fault latencies measured under one fault plan (or none) are a
    # different experiment from another's — a retried batch is
    # legitimately slower than a healthy one.  The descriptor carries
    # the plan's seed/mtbf/mttr and a digest of its normalized fault
    # timeline, so two explicit plans compare by content.  Files
    # predating the field (no "faults" key) read as faults-off.
    faults_committed = committed.get("faults")
    faults_fresh = fresh.get("faults")
    if faults_committed != faults_fresh:

        def _plan_label(descriptor):
            if not descriptor:
                return "off"
            digest = (descriptor.get("plan") or {}).get("digest")
            return f"plan {digest}" if digest else "on"

        return [
            "committed and fresh reports were measured under different "
            f"fault plans ({_plan_label(faults_committed)} vs "
            f"{_plan_label(faults_fresh)}) and cannot be trended against "
            "each other"
        ]
    # Same refusal for the fleet size: an N-replica aggregate throughput
    # is legitimately a multiple of the single-process number, so
    # trending files with different --replicas counts produces spurious
    # verdicts in both directions.  Files predating the field (no
    # "replicas" key) read as a single replica.
    replicas_committed = committed.get("replicas") or 1
    replicas_fresh = fresh.get("replicas") or 1
    if replicas_committed != replicas_fresh:
        return [
            "committed and fresh reports were measured with different "
            f"fleet sizes ({replicas_committed} vs {replicas_fresh} "
            "replicas) and cannot be trended against each other"
        ]
    failures = []
    knee_lanes = _comparable_knee_lanes(committed, fresh)
    if knee_lanes is not None and knee_lanes[0] != knee_lanes[1]:
        failures.append(
            "the saturation knee's dominant lane changed from "
            f"{knee_lanes[0]!r} to {knee_lanes[1]!r} at matching sweep "
            "conditions — the bottleneck silently changed class"
        )
    committed_points = _points_by_batch_size(committed)
    fresh_points = _points_by_batch_size(fresh)
    shared = sorted(set(committed_points) & set(fresh_points))
    if not shared:
        return ["no shared batch sizes between committed and fresh reports"]
    for batch_size in shared:
        point_before = committed_points[batch_size]
        point_after = fresh_points[batch_size]
        speedup_before = point_before.get("wall_speedup")
        speedup_after = point_after.get("wall_speedup")
        if speedup_before is not None and speedup_after is not None:
            if speedup_after < speedup_before * (1.0 - max_regression):
                failures.append(
                    f"batch {batch_size}: fast-path speedup over the "
                    f"uncached baseline regressed {speedup_before:.2f}x -> "
                    f"{speedup_after:.2f}x "
                    f"({speedup_after / speedup_before - 1.0:+.1%}, "
                    f"tolerance -{max_regression:.0%})"
                )
        if not hosts_match:
            continue
        before = point_before.get("jobs_per_second_cached")
        after = point_after.get("jobs_per_second_cached")
        if before is not None and after is not None:
            if after < before * (1.0 - max_regression):
                failures.append(
                    f"batch {batch_size}: cached throughput regressed "
                    f"{before:.1f} -> {after:.1f} jobs/s "
                    f"({after / before - 1.0:+.1%}, "
                    f"tolerance -{max_regression:.0%})"
                )
        p99_pair = _comparable_p99(point_before, point_after)
        if p99_pair is not None:
            p99_before, p99_after = p99_pair
            if p99_after > p99_before * (1.0 + max_regression):
                failures.append(
                    f"batch {batch_size}: open-queue p99 latency regressed "
                    f"{p99_before:.4f} -> {p99_after:.4f} s "
                    f"({p99_after / p99_before - 1.0:+.1%}, "
                    f"tolerance +{max_regression:.0%})"
                )
        resilience_pair = _comparable_resilience(point_before, point_after)
        if resilience_pair is not None:
            res_before, res_after = resilience_pair
            for metric, label, unit in (
                ("availability", "availability", ""),
                ("goodput", "goodput", " jobs/s"),
            ):
                before_value = res_before.get(metric)
                after_value = res_after.get(metric)
                if (
                    before_value is None
                    or after_value is None
                    or not before_value > 0
                ):
                    continue
                if after_value < before_value * (1.0 - max_regression):
                    failures.append(
                        f"batch {batch_size}: fault-injected {label} "
                        f"regressed {before_value:.4g} -> "
                        f"{after_value:.4g}{unit} "
                        f"({after_value / before_value - 1.0:+.1%}, "
                        f"tolerance -{max_regression:.0%})"
                    )
    return failures


def _comparable_knee_lanes(
    committed: dict, fresh: dict
) -> tuple[str, str] | None:
    """Both files' knee dominant lanes, when their arrival sweeps can be
    trended against each other: both present, both located a knee with
    a recorded dominant lane, the same seed, batch size and rate grid
    (a different sweep is a different experiment), and the *same knee
    rate* — two knees at different rates are different operating
    points, so their dominant lanes are not comparable.  Lane identity
    is virtual-time accounting, so host class does not matter."""
    sweep_before = committed.get("arrival_sweep") or {}
    sweep_after = fresh.get("arrival_sweep") or {}
    before = sweep_before.get("knee_dominant_lane")
    after = sweep_after.get("knee_dominant_lane")
    if before is None or after is None:
        return None
    if sweep_before.get("seed") != sweep_after.get("seed") or sweep_before.get(
        "batch_size"
    ) != sweep_after.get("batch_size"):
        return None
    if sweep_before.get("knee_rate_jobs_per_second") != sweep_after.get(
        "knee_rate_jobs_per_second"
    ):
        return None
    rates_before = [
        p.get("rate_jobs_per_second") for p in sweep_before.get("points", ())
    ]
    rates_after = [
        p.get("rate_jobs_per_second") for p in sweep_after.get("points", ())
    ]
    if rates_before != rates_after:
        return None
    return before, after


def _comparable_p99(
    point_before: dict, point_after: dict
) -> tuple[float, float] | None:
    """The two points' p99 latencies, when their open-queue measurements
    can be trended against each other: both present, positive baseline,
    and the same offered load and arrival seed (a changed rate or seed
    is a different experiment)."""
    arrival_before = point_before.get("arrival") or {}
    arrival_after = point_after.get("arrival") or {}
    before = arrival_before.get("p99_latency_seconds")
    after = arrival_after.get("p99_latency_seconds")
    if before is None or after is None or before <= 0:
        return None
    if arrival_before.get("rate_jobs_per_second") != arrival_after.get(
        "rate_jobs_per_second"
    ) or arrival_before.get("seed") != arrival_after.get("seed"):
        return None
    return before, after


def _comparable_resilience(
    point_before: dict, point_after: dict
) -> tuple[dict, dict] | None:
    """The two points' resilience blocks, when their fault-injected
    measurements can be trended against each other: both present and
    the same offered load and arrival seed.  The top-level fault
    descriptor already matched (a mismatch refuses the whole
    comparison), so the two blocks measure the same fault plan."""
    arrival_before = point_before.get("arrival") or {}
    arrival_after = point_after.get("arrival") or {}
    before = arrival_before.get("resilience")
    after = arrival_after.get("resilience")
    if before is None or after is None:
        return None
    if arrival_before.get("rate_jobs_per_second") != arrival_after.get(
        "rate_jobs_per_second"
    ) or arrival_before.get("seed") != arrival_after.get("seed"):
        return None
    return before, after


def format_comparison(
    committed: dict, fresh: dict, failures: list[str]
) -> str:
    hosts_match = hosts_comparable(committed, fresh)
    lines = ["serving benchmark trend check"]
    for name, report in (("committed", committed), ("fresh", fresh)):
        meta = report.get("metadata") or {}
        context = ", ".join(
            f"{key}={meta[key]}"
            for key in ("python", "platform", "cpu_count")
            if key in meta
        )
        lines.append(f"  {name}: {context or 'no host metadata recorded'}")
    if not hosts_match:
        lines.append(
            "  hosts differ: absolute jobs/s shown for context only; "
            "gating on wall_speedup (host-relative)"
        )
    committed_points = _points_by_batch_size(committed)
    fresh_points = _points_by_batch_size(fresh)
    for batch_size in sorted(set(committed_points) & set(fresh_points)):
        before = committed_points[batch_size].get("jobs_per_second_cached")
        after = fresh_points[batch_size].get("jobs_per_second_cached")
        speedup_before = committed_points[batch_size].get("wall_speedup")
        speedup_after = fresh_points[batch_size].get("wall_speedup")
        if before and after:
            speedups = ""
            if speedup_before and speedup_after:
                speedups = (
                    f", speedup {speedup_before:.2f}x -> {speedup_after:.2f}x"
                )
            p99_pair = _comparable_p99(
                committed_points[batch_size], fresh_points[batch_size]
            )
            p99_note = ""
            if p99_pair is not None:
                p99_note = (
                    f", p99 {p99_pair[0]:.4f} -> {p99_pair[1]:.4f} s"
                )
            resilience_note = ""
            resilience_pair = _comparable_resilience(
                committed_points[batch_size], fresh_points[batch_size]
            )
            if resilience_pair is not None:
                res_before, res_after = resilience_pair
                resilience_note = (
                    f", avail {res_before.get('availability', 0):.0%} -> "
                    f"{res_after.get('availability', 0):.0%}, goodput "
                    f"{res_before.get('goodput', 0):.2f} -> "
                    f"{res_after.get('goodput', 0):.2f}"
                )
            lines.append(
                f"  batch {batch_size:5d}: {before:10.1f} -> {after:10.1f} "
                f"jobs/s ({after / before - 1.0:+.1%}{speedups}{p99_note}"
                f"{resilience_note})"
            )
    if failures:
        lines.append("FAIL:")
        lines.extend(f"  {failure}" for failure in failures)
    else:
        lines.append("OK: no serving regression beyond tolerance")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when the fresh serving benchmark regresses "
        "against the committed one."
    )
    parser.add_argument("committed", type=Path, help="previous BENCH_serving.json")
    parser.add_argument("fresh", type=Path, help="freshly measured BENCH_serving.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help="tolerated fractional throughput drop (default: 0.30)",
    )
    args = parser.parse_args(argv)
    committed = json.loads(args.committed.read_text())
    fresh = json.loads(args.fresh.read_text())
    failures = compare_serving_reports(
        committed, fresh, max_regression=args.max_regression
    )
    print(format_comparison(committed, fresh, failures))
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
