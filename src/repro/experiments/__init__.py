"""Experiment drivers: one module per table/figure of the paper.

==========  =============================================  =================
Artifact    Paper content                                   Module
==========  =============================================  =================
Fig. 4      roofline of LR-TDDFT kernels, Si_64 + Si_1024  ``fig4_roofline``
Table I     pseudopotential memory footprint               ``table1_footprint``
Fig. 7      CPU/GPU/NDFT time breakdown, small + large     ``fig7_breakdown``
Fig. 8      speedup over CPU, Si_16 .. Si_2048             ``fig8_scalability``
§VI-A       scheduling overhead / footprint / comm deltas  ``discussion``
§IV ablns   granularity + shared-memory design points      ``ablations``
(extension) batched serving on one shared machine          ``batch_throughput``
==========  =============================================  =================

Every driver returns plain dataclasses/dicts and has a ``format_*`` helper
producing the rows the paper reports, alongside the paper's own numbers
where the text states them (``paper`` fields), so benchmarks can print
paper-vs-measured directly.
"""

from repro.experiments.report import Comparison, format_table
from repro.experiments.fig4_roofline import RooflineStudy, run_roofline_study
from repro.experiments.table1_footprint import run_table1
from repro.experiments.fig7_breakdown import BreakdownStudy, run_breakdown
from repro.experiments.fig8_scalability import ScalabilityStudy, run_scalability
from repro.experiments.discussion import DiscussionNumbers, run_discussion
from repro.experiments.ablations import (
    run_granularity_ablation,
    run_policy_ablation,
    run_shared_memory_ablation,
)
from repro.experiments.batch_throughput import BatchStudy, run_batch_study

__all__ = [
    "BatchStudy",
    "run_batch_study",
    "Comparison",
    "format_table",
    "RooflineStudy",
    "run_roofline_study",
    "run_table1",
    "BreakdownStudy",
    "run_breakdown",
    "ScalabilityStudy",
    "run_scalability",
    "DiscussionNumbers",
    "run_discussion",
    "run_granularity_ablation",
    "run_policy_ablation",
    "run_shared_memory_ablation",
]
