"""§VI-A "Other Discussion" numbers.

Three quantities the text reports outside the figures:

1. the scheduling overhead is only 3.8 % (small) / 4.9 % (large) of NDFT's
   runtime;
2. NDFT cuts the large-system pseudopotential footprint by 57.8 % vs the
   replicated NDP layout, landing within 1.08x of CPU execution;
3. Global Comm grows only 3.2 % (the price of synchronizing the
   shared-block pseudopotentials, §IV-B): we charge the one-time mesh
   broadcast that stages each stack's copy of the per-atom coefficient
   payload and report it relative to the Global Comm phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.framework import NdftFramework
from repro.dft.workload import problem_size
from repro.experiments.report import Comparison
from repro.model import PhaseName
from repro.shmem.footprint import ndft_reduction_percent, ndft_vs_cpu_ratio
from repro.workloads.silicon import LARGE_SYSTEM, SMALL_SYSTEM

PAPER_SCHED_OVERHEAD = {SMALL_SYSTEM: 3.8, LARGE_SYSTEM: 4.9}
PAPER_FOOTPRINT_REDUCTION = 57.8
PAPER_FOOTPRINT_VS_CPU = 1.08
PAPER_GLOBAL_COMM_DELTA = 3.2


@dataclass(frozen=True)
class DiscussionNumbers:
    sched_overhead_small_pct: float
    sched_overhead_large_pct: float
    footprint_reduction_pct: float
    footprint_vs_cpu_ratio: float
    global_comm_delta_pct: float

    def comparisons(self) -> list[Comparison]:
        return [
            Comparison(
                "scheduling overhead, small system",
                PAPER_SCHED_OVERHEAD[SMALL_SYSTEM],
                round(self.sched_overhead_small_pct, 2), "%",
            ),
            Comparison(
                "scheduling overhead, large system",
                PAPER_SCHED_OVERHEAD[LARGE_SYSTEM],
                round(self.sched_overhead_large_pct, 2), "%",
            ),
            Comparison(
                "NDFT footprint reduction vs NDP",
                PAPER_FOOTPRINT_REDUCTION,
                round(self.footprint_reduction_pct, 2), "%",
            ),
            Comparison(
                "NDFT footprint vs CPU",
                PAPER_FOOTPRINT_VS_CPU,
                round(self.footprint_vs_cpu_ratio, 3), "x",
            ),
            Comparison(
                "Global Comm increase (shared-block sync)",
                PAPER_GLOBAL_COMM_DELTA,
                round(self.global_comm_delta_pct, 2), "%",
            ),
        ]


def shared_block_sync_time(framework: NdftFramework, n_atoms: int) -> float:
    """One-time mesh cost of staging each stack's shared-block copy of the
    per-atom coefficient payload (the traffic Algorithm 1 introduces)."""
    from repro.shmem.footprint import RANK_PER_ATOM_GB

    n_stacks = framework.system.ndp.n_stacks
    payload_bytes = RANK_PER_ATOM_GB * n_atoms * 1e9
    received = payload_bytes * (n_stacks - 1)
    return framework.ndp.mesh.alltoall_time(received)


def run_discussion(framework: NdftFramework | None = None) -> DiscussionNumbers:
    framework = framework or NdftFramework()
    small = framework.run(problem=problem_size(SMALL_SYSTEM))
    large = framework.run(problem=problem_size(LARGE_SYSTEM))

    comm = str(PhaseName.GLOBAL_COMM)
    ndft_comm = large.report.phase_seconds[comm]
    sync = shared_block_sync_time(framework, LARGE_SYSTEM)
    return DiscussionNumbers(
        sched_overhead_small_pct=100.0 * small.scheduling_overhead_fraction,
        sched_overhead_large_pct=100.0 * large.scheduling_overhead_fraction,
        footprint_reduction_pct=ndft_reduction_percent(LARGE_SYSTEM),
        footprint_vs_cpu_ratio=ndft_vs_cpu_ratio(LARGE_SYSTEM),
        global_comm_delta_pct=100.0 * sync / ndft_comm,
    )
