"""Design-space sensitivity studies (extensions beyond the paper).

The paper fixes one CPU-NDP design point (Table III).  These sweeps vary
the co-design parameters DESIGN.md calls out and report how the headline
speedup responds — the studies an architect would run next:

- **mesh link bandwidth**: Global Comm is the least-accelerated phase; how
  much headroom do faster SerDes links buy?
- **stack count**: does the 4x4 mesh saturate, or would 5x5 keep scaling?
- **host link bandwidth**: the DT term of Eq. 1 scales with it; when does
  scheduling overhead stop mattering?
- **NDP units per stack**: wimpy-core count vs per-unit bandwidth share.

Each sweep rebuilds the full framework at the modified design point, so
scheduling decisions are allowed to change (and sometimes do — that is the
point of a cost-aware scheduler).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.baselines import run_cpu_baseline
from repro.core.framework import NdftFramework
from repro.dft.workload import ProblemSize, problem_size
from repro.errors import ConfigError
from repro.hw.config import SystemConfig, ndft_system_config


@dataclass(frozen=True)
class SensitivityPoint:
    """One design point of a sweep."""

    parameter: str
    value: float
    speedup_vs_cpu: float
    scheduling_overhead_pct: float
    ndp_phase_count: int


def _run_point(
    system: SystemConfig, problem: ProblemSize, parameter: str, value: float
) -> SensitivityPoint:
    framework = NdftFramework(system=system)
    result = framework.run(problem=problem)
    cpu_total = run_cpu_baseline(problem).total_time
    ndp_phases = sum(
        1 for placement in result.schedule.assignments.values()
        if str(placement) == "ndp"
    )
    return SensitivityPoint(
        parameter=parameter,
        value=value,
        speedup_vs_cpu=cpu_total / result.total_time,
        scheduling_overhead_pct=100.0 * result.scheduling_overhead_fraction,
        ndp_phase_count=ndp_phases,
    )


def sweep_mesh_link_bandwidth(
    n_atoms: int = 1024,
    bandwidths: tuple[float, ...] = (12e9, 24e9, 48e9, 96e9, 192e9),
) -> list[SensitivityPoint]:
    """Vary the per-link SerDes bandwidth of the 4x4 stack mesh."""
    if not bandwidths:
        raise ConfigError("at least one bandwidth required")
    base = ndft_system_config()
    problem = problem_size(n_atoms)
    points = []
    for bandwidth in bandwidths:
        system = SystemConfig(
            host=base.host,
            ndp=replace(base.ndp, mesh_link_bandwidth=bandwidth),
            context_switch_overhead=base.context_switch_overhead,
        )
        points.append(
            _run_point(system, problem, "mesh_link_bandwidth", bandwidth)
        )
    return points


def sweep_stack_count(
    n_atoms: int = 1024,
    mesh_sides: tuple[int, ...] = (2, 3, 4, 5, 6),
) -> list[SensitivityPoint]:
    """Vary the mesh from 2x2 to 6x6 stacks (capacity and bandwidth scale
    with the stack count; per-stack resources stay at Table III values)."""
    base = ndft_system_config()
    problem = problem_size(n_atoms)
    points = []
    for side in mesh_sides:
        if side < 1:
            raise ConfigError("mesh side must be >= 1")
        system = SystemConfig(
            host=base.host,
            ndp=replace(base.ndp, stacks_x=side, stacks_y=side),
            context_switch_overhead=base.context_switch_overhead,
        )
        points.append(_run_point(system, problem, "stacks", side * side))
    return points


def sweep_host_link_bandwidth(
    n_atoms: int = 1024,
    bandwidths: tuple[float, ...] = (32e9, 64e9, 128e9, 256e9, 512e9),
) -> list[SensitivityPoint]:
    """Vary the CPU <-> memory-network link (the DT denominator of Eq. 1)."""
    base = ndft_system_config()
    problem = problem_size(n_atoms)
    points = []
    for bandwidth in bandwidths:
        system = SystemConfig(
            host=base.host,
            ndp=replace(base.ndp, host_link_bandwidth=bandwidth),
            context_switch_overhead=base.context_switch_overhead,
        )
        points.append(
            _run_point(system, problem, "host_link_bandwidth", bandwidth)
        )
    return points


def sweep_units_per_stack(
    n_atoms: int = 1024,
    unit_counts: tuple[int, ...] = (2, 4, 8, 16),
) -> list[SensitivityPoint]:
    """Vary NDP units per stack.  More units add cores but split the same
    per-stack internal bandwidth into thinner shares."""
    base = ndft_system_config()
    problem = problem_size(n_atoms)
    points = []
    for units in unit_counts:
        if units < 1:
            raise ConfigError("units per stack must be >= 1")
        ndp = replace(
            base.ndp,
            units_per_stack=units,
            # Keep Table III's per-stack SPM budget: re-derive per-core.
            spm_per_core=base.ndp.spm_per_stack // (units * base.ndp.cores_per_unit),
        )
        system = SystemConfig(
            host=base.host,
            ndp=ndp,
            context_switch_overhead=base.context_switch_overhead,
        )
        points.append(_run_point(system, problem, "units_per_stack", units))
    return points


def format_sweep(title: str, points: list[SensitivityPoint]) -> str:
    lines = [
        title,
        f"{'value':>14s} {'speedup':>9s} {'sched %':>9s} {'NDP phases':>11s}",
    ]
    for point in points:
        lines.append(
            f"{point.value:>14.3g} {point.speedup_vs_cpu:>9.2f} "
            f"{point.scheduling_overhead_pct:>9.2f} {point.ndp_phase_count:>11d}"
        )
    return "\n".join(lines)
