"""Scale-serving benchmark: wall-clock simulator throughput vs batch size.

The paper's framework is a per-run co-design pipeline; the serving
extension (:meth:`repro.core.framework.NdftFramework.run_many`) pushes
whole batches through one shared machine.  At serving scale the limiting
factor is no longer the modeled hardware but the simulator itself — how
many jobs per *wall-clock* second the scheduling + DES stack can turn
around.  This driver measures exactly that:

- sweep batch sizes (16 → 65536 by default, ``--batch-sizes`` to
  override) over a mixed job population (a handful of distinct Si_N
  sizes, round-robin);
- time ``run_many`` wall-clock with the serving fast path on (signature
  memoization + analytic solo runs) and, for comparison, with
  ``memoize=False`` — the "before" path that re-schedules, re-analyzes
  and re-solo-times every job (skipped above
  :data:`UNCACHED_COMPARE_MAX` jobs, where the baseline would dominate
  the sweep's wall clock);
- cross-check that both paths produce *identical* batch results (same
  makespan, same solo times, same per-job reports) — the fast path is an
  optimization, never an approximation;
- measure each point once more as an *open queue* (seeded Poisson
  arrivals at ``--arrival-rate`` jobs of virtual time per second) and
  record the p50/p99 completion latency and mean queueing delay — the
  serving-model metrics;
- record the per-point simulation-backend breakdown (who actually timed
  the batch — chain replay, DAG replay, wave replay or the generator
  engine; see :mod:`repro.core.backends`) and the per-backend wall
  seconds (``backend_wall_seconds`` — the signal the measured backend
  auto-tuner routes on), with ``--backend`` forcing one backend for
  every measurement (the replay-vs-engine A/B switch);
- optionally sweep offered load (``--arrival-sweep``): the same mix at
  each rate of a grid, recording the latency-vs-load curve, per-point
  per-lane utilization (which device or wire the load saturates), the
  shed rate under the requested admission policy (0.0 when admission is
  off), and the saturation knee with its dominant lane
  (:func:`run_arrival_sweep`);
- emit the measurements as ``BENCH_serving.json`` — tagged with host
  metadata (Python version, platform, CPU count) so CI trend
  comparisons (:mod:`repro.experiments.bench_compare`) are
  interpretable — to anchor the serving performance trajectory across
  PRs.

Every measurement uses a fresh framework (cold caches), so the reported
speedup is what one ``run_many`` call gains from intra-batch
deduplication alone; caches composing across calls only improve on it.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.core.arrivals import AdmissionPolicy, poisson_arrivals
from repro.core.faults import FaultPlan, RetryPolicy
from repro.core.framework import NdftBatchResult, NdftFramework
from repro.fleet import FleetResult, WorkerPool

#: Default batch-size sweep (jobs per ``run_many`` call).  The top end
#: (65536) is two orders of magnitude past the pre-``vector_replay``
#: practical ceiling (~1k): the wave-replay backend keeps the closed
#: t=0 points tractable at fleet scale.
DEFAULT_BATCH_SIZES = (16, 64, 256, 1024, 4096, 16384, 65536)
#: Largest batch size whose memoization-free baseline is still measured
#: for the cached-vs-uncached comparison.  The uncached path
#: re-schedules and re-analyzes every job, so above this it would
#: dominate the whole sweep's wall clock; larger points report
#: ``wall_seconds_uncached``/``results_identical`` as ``None``.
UNCACHED_COMPARE_MAX = 4096
#: Default job-size mix: small interactive jobs alongside mid/large ones.
DEFAULT_MIX = (64, 128, 512, 1024)
#: Default offered load for the open-queue (arrival-process) point, in
#: jobs per second of *virtual* time — a bit over half the simulated
#: capacity of the default mix (~3.8 jobs/s), so queues form without
#: saturating.
DEFAULT_ARRIVAL_RATE = 2.0
#: Default offered-load grid for ``--arrival-sweep``: from comfortably
#: under the default mix's simulated capacity (~3.8 jobs/s) to past it,
#: so the latency-vs-load curve shows both the flat region and the
#: saturation blow-up.
DEFAULT_SWEEP_RATES = (1.0, 2.0, 3.0, 3.5, 4.0, 5.0)
#: Jobs per sweep point (one mid-sized batch keeps the sweep quick).
DEFAULT_SWEEP_BATCH = 256
#: A sweep point is past the saturation knee once its p99 latency
#: exceeds this multiple of the lowest-rate point's p99.
KNEE_LATENCY_FACTOR = 2.0
def _repo_root() -> Path:
    """The checkout root (where pyproject.toml lives) when running from
    a source tree; the current directory for installed copies, where
    ``__file__`` sits inside site-packages and walking up would land in
    the interpreter's installation."""
    for parent in Path(__file__).resolve().parents:
        if (parent / "pyproject.toml").exists():
            return parent
    return Path.cwd()


#: Default JSON artifact, at the repo root next to benchmarks_report.txt.
BENCH_JSON_PATH = _repo_root() / "BENCH_serving.json"


def job_mix(batch_size: int, mix: tuple[int, ...] = DEFAULT_MIX) -> list[int]:
    """The batch served at one sweep point: ``mix`` repeated round-robin."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    return [mix[i % len(mix)] for i in range(batch_size)]


def host_metadata() -> dict:
    """Python/platform context recorded next to the wall-clock numbers,
    so CI trend comparisons can tell a real regression from a host or
    interpreter change."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def measure_run_many(
    sizes: list[int],
    memoize: bool,
    repeats: int = 3,
    arrivals: Sequence[float] | None = None,
    backend: str | None = None,
    admission: AdmissionPolicy | None = None,
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
) -> tuple[float, NdftBatchResult]:
    """Best-of-``repeats`` wall-clock seconds for one cold ``run_many``.

    A fresh framework per repeat keeps every measurement cold-cache; the
    minimum over repeats is the standard noise filter for wall-clock
    micro-measurements.  ``arrivals`` forwards release offsets (the
    open-queue serving mode), ``backend`` forces one simulation backend
    (:mod:`repro.core.backends`) — the serve-bench A/B switch —
    ``admission`` applies an SLO-driven admission policy to the open
    queue, and ``faults``/``retry`` inject a deterministic fault plan
    (:mod:`repro.core.faults`)."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    result: NdftBatchResult | None = None
    for _ in range(repeats):
        framework = NdftFramework(memoize=memoize)
        start = time.perf_counter()
        result = framework.run_many(
            sizes,
            arrivals=arrivals,
            backend=backend,
            admission=admission,
            faults=faults,
            retry=retry,
        )
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    assert result is not None
    return best, result


def dominant_lane(lane_utilization: dict) -> str | None:
    """The most-utilized device/wire lane — the saturation suspect.
    Ties break on the lane name so the verdict is deterministic;
    ``None`` for an empty (fully shed) measurement."""
    if not lane_utilization:
        return None
    return max(sorted(lane_utilization), key=lambda lane: lane_utilization[lane])


def _shed_stats(result: NdftBatchResult) -> tuple[float, int, int]:
    """(shed rate, admitted count, shed count) of one measurement —
    zeros/full-batch when admission was off."""
    if result.admission is None:
        return 0.0, result.n_jobs, 0
    report = result.admission
    return report.shed_rate, report.admitted, report.shed


def _resilience_dict(result: NdftBatchResult) -> dict | None:
    """The measurement's resilience summary (availability, goodput,
    recovered/abandoned counts, post-fault percentiles), or ``None``
    when no fault plan ran."""
    if result.resilience is None:
        return None
    return result.resilience.to_json_dict()


@dataclass(frozen=True)
class ArrivalPoint:
    """The open-queue measurement at one sweep point: the same job mix
    released by a seeded Poisson process instead of all at t=0.

    ``lane_utilization`` is the per-device/per-wire busy fraction over
    the busy span; ``shed_rate``/``admitted``/``shed`` describe the
    admission outcome (rate 0.0 and a full batch when admission is
    off).  Latency percentiles are the SLO-counted (post-shed) ones
    when a policy ran: identical to the executed-batch percentiles in
    ``shed`` mode, excluding deferred jobs in ``deprioritize`` mode —
    a deferred job's latency is measured from its *deferred* release,
    so folding it into the tail would deflate the curve exactly where
    the backlog is worst."""

    rate: float
    seed: int
    wall_seconds: float
    makespan: float
    p50_latency: float
    p99_latency: float
    mean_queueing_delay: float
    lane_utilization: dict = None  # type: ignore[assignment]
    shed_rate: float = 0.0
    admitted: int | None = None
    shed: int = 0
    #: Resilience summary under fault injection (availability, goodput,
    #: recovered/abandoned, post-fault percentiles); ``None`` when no
    #: fault plan ran.
    resilience: dict | None = None

    def to_json_dict(self) -> dict:
        return {
            "rate_jobs_per_second": self.rate,
            "seed": self.seed,
            "wall_seconds": self.wall_seconds,
            "makespan_seconds": self.makespan,
            "p50_latency_seconds": self.p50_latency,
            "p99_latency_seconds": self.p99_latency,
            "mean_queueing_delay_seconds": self.mean_queueing_delay,
            "lane_utilization": self.lane_utilization,
            "dominant_lane": dominant_lane(self.lane_utilization or {}),
            "shed_rate": self.shed_rate,
            "admitted": self.admitted,
            "shed": self.shed,
            "resilience": self.resilience,
        }


@dataclass(frozen=True)
class FleetPoint:
    """The fleet (multi-process) breakdown of one sweep point.

    Wall numbers are *sustained-serving* measurements: each serve call
    repeats the identical simulation ``rounds`` times inside one
    measured wall on a warm pool, so process start-up and dispatch
    overhead amortize the way a long-running service amortizes them.
    ``replica_jobs``/``replica_utilization`` are the router's load split
    and each replica's share of the fleet busy span; virtual-time
    numbers are bit-identical to a single-process run of the same
    assignment."""

    replicas: int
    rounds: int
    wall_seconds: float
    jobs_per_second_wall: float
    virtual_throughput: float
    imbalance_ratio: float
    replica_jobs: tuple[int, ...]
    replica_utilization: tuple[float, ...]
    merged_entries: int

    def to_json_dict(self) -> dict:
        return {
            "replicas": self.replicas,
            "rounds": self.rounds,
            "wall_seconds": self.wall_seconds,
            "jobs_per_second_wall": self.jobs_per_second_wall,
            "virtual_throughput_jobs_per_second": self.virtual_throughput,
            "imbalance_ratio": self.imbalance_ratio,
            "replica_jobs": list(self.replica_jobs),
            "replica_utilization": list(self.replica_utilization),
            "merged_entries": self.merged_entries,
        }


@dataclass(frozen=True)
class ServePoint:
    """One sweep point: a batch of ``batch_size`` mixed-size jobs."""

    batch_size: int
    n_distinct: int
    wall_seconds_cached: float
    #: ``None`` when the uncached baseline was skipped (``--no-cache``
    #: runs only the baseline, cached-only sweeps skip the comparison).
    wall_seconds_uncached: float | None
    makespan: float
    simulated_throughput: float
    results_identical: bool | None
    #: Open-queue companion measurement (``None`` when disabled).
    arrival: ArrivalPoint | None = None
    #: Jobs per simulation backend in the reference run — the
    #: per-backend breakdown of who actually timed the batch.
    backend_jobs: dict | None = None
    #: Wall seconds per simulation backend in the reference run
    #: (summed over shards; see
    #: :attr:`repro.core.executor.BatchExecutionReport.backend_wall_seconds`)
    #: — where the simulator's own time went, the signal the measured
    #: backend auto-tuner routes on.
    backend_wall_seconds: dict | None = None
    #: Multi-process breakdown (``serve-bench --replicas N``); ``None``
    #: for single-process sweeps.
    fleet: FleetPoint | None = None

    @property
    def jobs_per_second_cached(self) -> float:
        return self.batch_size / self.wall_seconds_cached

    @property
    def jobs_per_second_uncached(self) -> float | None:
        if self.wall_seconds_uncached is None:
            return None
        return self.batch_size / self.wall_seconds_uncached

    @property
    def wall_speedup(self) -> float | None:
        """Fast-path gain: uncached wall time over cached wall time."""
        if self.wall_seconds_uncached is None:
            return None
        return self.wall_seconds_uncached / self.wall_seconds_cached


@dataclass(frozen=True)
class ArrivalSweepPoint:
    """One offered-load point of the latency-vs-load sweep, with the
    per-lane utilization that explains *where* the load goes and the
    admission outcome at this rate (shed rate 0.0 when admission is
    off).  Latency percentiles follow :class:`ArrivalPoint`'s
    convention: the SLO-counted (post-shed) ones when a policy ran."""

    rate: float
    wall_seconds: float
    makespan: float
    p50_latency: float
    p99_latency: float
    mean_queueing_delay: float
    lane_utilization: dict = None  # type: ignore[assignment]
    shed_rate: float = 0.0
    admitted: int | None = None
    shed: int = 0
    #: Resilience summary under fault injection; ``None`` when no fault
    #: plan ran.
    resilience: dict | None = None

    @property
    def dominant_lane(self) -> str | None:
        return dominant_lane(self.lane_utilization or {})

    def to_json_dict(self) -> dict:
        return {
            "rate_jobs_per_second": self.rate,
            "wall_seconds": self.wall_seconds,
            "makespan_seconds": self.makespan,
            "p50_latency_seconds": self.p50_latency,
            "p99_latency_seconds": self.p99_latency,
            "mean_queueing_delay_seconds": self.mean_queueing_delay,
            "lane_utilization": self.lane_utilization,
            "dominant_lane": self.dominant_lane,
            "shed_rate": self.shed_rate,
            "admitted": self.admitted,
            "shed": self.shed,
            "resilience": self.resilience,
        }


@dataclass(frozen=True)
class ArrivalSweep:
    """Latency vs offered load over a rate grid, plus the saturation
    knee: the lowest swept rate whose p99 latency exceeds
    :data:`KNEE_LATENCY_FACTOR` times the baseline p99 — the lowest
    swept rate with a *positive* p99, so a degenerate 0.0 baseline
    cannot declare every later point a knee (``None`` while every point
    stays under it).  ``knee_dominant_lane`` is the most-utilized lane
    at the knee point — which device or wire the knee comes from — and
    what the CI trend gate pins (a silently changed bottleneck class is
    a modeling regression even when the latencies still pass)."""

    batch_size: int
    seed: int
    points: tuple[ArrivalSweepPoint, ...]
    knee_rate: float | None
    knee_dominant_lane: str | None = None

    def to_json_dict(self) -> dict:
        return {
            "batch_size": self.batch_size,
            "seed": self.seed,
            "knee_latency_factor": KNEE_LATENCY_FACTOR,
            "knee_rate_jobs_per_second": self.knee_rate,
            "knee_dominant_lane": self.knee_dominant_lane,
            "points": [p.to_json_dict() for p in self.points],
        }


def find_saturation_knee(
    points: Sequence[ArrivalSweepPoint],
    factor: float = KNEE_LATENCY_FACTOR,
) -> float | None:
    """The lowest swept rate whose p99 latency exceeds ``factor`` times
    the baseline p99 — the point the latency-vs-load curve turns the
    corner.  ``None`` when no point exceeds it (the sweep never reached
    saturation).

    The baseline is the lowest-rate point with a *positive* p99.  A
    0.0 baseline (a degenerate sweep where the lowest-rate batch saw no
    latency at all — single-job batches, or everything shed by an
    aggressive admission policy) used to make ``factor * baseline == 0``
    and every later point "knee"; such points now merely advance the
    baseline search, and a sweep whose every p99 is 0.0 has no knee."""
    if not points:
        return None
    ordered = sorted(points, key=lambda p: p.rate)
    baseline = next(
        (p.p99_latency for p in ordered if p.p99_latency > 0.0), None
    )
    if baseline is None:
        return None
    for point in ordered:
        if point.p99_latency > factor * baseline:
            return point.rate
    return None


def run_arrival_sweep(
    rates: Sequence[float] = DEFAULT_SWEEP_RATES,
    batch_size: int = DEFAULT_SWEEP_BATCH,
    mix: tuple[int, ...] = DEFAULT_MIX,
    repeats: int = 3,
    seed: int = 0,
    memoize: bool = True,
    backend: str | None = None,
    admission: AdmissionPolicy | None = None,
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
) -> ArrivalSweep:
    """Sweep offered load over ``rates``: the same ``batch_size``-job mix
    released by a seeded Poisson process at each rate, recording the
    latency-vs-load curve (with per-lane utilization and, under
    ``admission``, the shed rate per point) and the saturation knee
    with its dominant lane.  ``faults``/``retry`` inject the same
    deterministic fault plan at every rate (availability and goodput
    land in each point's ``resilience`` record)."""
    if not rates:
        raise ValueError("arrival sweep needs at least one rate")
    if any(rate <= 0 for rate in rates):
        raise ValueError(f"arrival rates must be positive, got {rates!r}")
    sizes = job_mix(batch_size, mix)
    points = []
    for rate in sorted(rates):
        offsets = poisson_arrivals(len(sizes), rate, seed=seed)
        wall, result = measure_run_many(
            sizes,
            memoize=memoize,
            repeats=repeats,
            arrivals=offsets,
            backend=backend,
            admission=admission,
            faults=faults,
            retry=retry,
        )
        shed_rate, admitted, shed = _shed_stats(result)
        points.append(
            ArrivalSweepPoint(
                rate=rate,
                wall_seconds=wall,
                makespan=result.makespan,
                p50_latency=result.slo_p50_latency,
                p99_latency=result.slo_p99_latency,
                mean_queueing_delay=result.mean_queueing_delay,
                lane_utilization=dict(result.lane_utilization),
                shed_rate=shed_rate,
                admitted=admitted,
                shed=shed,
                resilience=_resilience_dict(result),
            )
        )
    knee_rate = find_saturation_knee(points)
    knee_dominant = None
    if knee_rate is not None:
        knee_dominant = next(
            point.dominant_lane
            for point in points
            if point.rate == knee_rate
        )
    return ArrivalSweep(
        batch_size=batch_size,
        seed=seed,
        points=tuple(points),
        knee_rate=knee_rate,
        knee_dominant_lane=knee_dominant,
    )


@dataclass(frozen=True)
class ServeBenchReport:
    """The whole sweep, ready to print or serialize."""

    mix: tuple[int, ...]
    repeats: int
    points: tuple[ServePoint, ...]
    #: False for a ``--no-cache`` sweep: the "cached" columns then hold
    #: baseline numbers, and trend comparisons must not consume them.
    fast_path: bool = True
    #: Forced simulation backend (``None`` = registry auto-selection).
    backend: str | None = None
    #: Latency-vs-load sweep (``--arrival-sweep``), when requested.
    arrival_sweep: ArrivalSweep | None = None
    #: Admission policy applied to every open-queue measurement
    #: (``None`` = admission off; recorded so trend comparisons refuse
    #: mixing files measured under different policies).
    admission: AdmissionPolicy | None = None
    #: Fault plan injected into every open-queue measurement (``None`` =
    #: faults off; recorded — with its retry policy — so trend
    #: comparisons refuse mixing files measured under different plans).
    faults: FaultPlan | None = None
    retry: RetryPolicy | None = None
    #: Worker-process replica count the sweep was measured with
    #: (``serve-bench --replicas N``); 1 = the classic single-process
    #: sweep.  Recorded so trend comparisons refuse mixing fleet sizes.
    replicas: int = 1

    def to_json_dict(self) -> dict:
        return {
            "benchmark": "scale_serving",
            "unit": "wall-clock seconds per run_many call (best of repeats)",
            "fast_path": self.fast_path,
            "replicas": self.replicas,
            "backend": self.backend,
            "admission": (
                None if self.admission is None else self.admission.to_json_dict()
            ),
            "faults": (
                None
                if self.faults is None
                else {
                    "plan": self.faults.to_json_dict(),
                    "retry": (self.retry or RetryPolicy()).to_json_dict(),
                }
            ),
            "metadata": host_metadata(),
            "mix": list(self.mix),
            "repeats": self.repeats,
            "points": [
                {
                    "batch_size": p.batch_size,
                    "n_distinct_signatures": p.n_distinct,
                    "wall_seconds_cached": p.wall_seconds_cached,
                    "jobs_per_second_cached": p.jobs_per_second_cached,
                    "wall_seconds_uncached": p.wall_seconds_uncached,
                    "jobs_per_second_uncached": p.jobs_per_second_uncached,
                    "wall_speedup": p.wall_speedup,
                    "makespan_seconds": p.makespan,
                    "simulated_throughput_jobs_per_second": p.simulated_throughput,
                    "results_identical": p.results_identical,
                    "backend_jobs": p.backend_jobs,
                    "backend_wall_seconds": p.backend_wall_seconds,
                    "fleet": (
                        None if p.fleet is None else p.fleet.to_json_dict()
                    ),
                    "arrival": (
                        None if p.arrival is None else p.arrival.to_json_dict()
                    ),
                }
                for p in self.points
            ],
            "arrival_sweep": (
                None
                if self.arrival_sweep is None
                else self.arrival_sweep.to_json_dict()
            ),
        }

    def write_json(self, path: Path | str = BENCH_JSON_PATH) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_json_dict(), indent=2) + "\n")
        return path


def _batch_results_equal(a: NdftBatchResult, b: NdftBatchResult) -> bool:
    """Full-value equality of two batch results: makespan, solo times and
    every per-job execution report (exact floats, no tolerance)."""
    return (
        a.makespan == b.makespan
        and a.solo_times == b.solo_times
        and len(a.jobs) == len(b.jobs)
        and all(
            ja.report == jb.report and ja.schedule == jb.schedule
            for ja, jb in zip(a.jobs, b.jobs)
        )
    )


def run_serve_bench(
    batch_sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES,
    mix: tuple[int, ...] = DEFAULT_MIX,
    repeats: int = 3,
    compare_uncached: bool = True,
    cached: bool = True,
    arrival_rate: float | None = DEFAULT_ARRIVAL_RATE,
    arrival_seed: int = 0,
    backend: str | None = None,
    arrival_sweep_rates: Sequence[float] | None = None,
    admission: AdmissionPolicy | None = None,
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
) -> ServeBenchReport:
    """Run the sweep.

    ``cached=False`` is the escape hatch (CLI ``--no-cache``): measure
    only the memoization-free baseline.  With ``cached=True`` and
    ``compare_uncached=True`` (the default) each point measures both
    paths and verifies their results are identical.

    ``arrival_rate`` additionally measures each point as an open queue —
    the same mix released by a seeded Poisson process — and records the
    p50/p99 completion latency, mean queueing delay, per-lane
    utilization and admission outcome (``None`` or ``<= 0`` disables
    the extra run).

    ``backend`` forces one registered simulation backend for every
    measured batch — the A/B switch for replay-vs-engine comparisons
    (``serve-bench --backend engine``).  ``arrival_sweep_rates``
    additionally runs the latency-vs-load sweep
    (:func:`run_arrival_sweep`) over those offered loads and records it
    (with its saturation knee and the knee's dominant lane) in the
    report.  ``admission`` applies an SLO-driven admission policy to
    every open-queue measurement (the closed t=0 batches are never
    subject to admission) and is recorded in the report so trend
    comparisons can refuse mixed-policy files.

    ``faults``/``retry`` inject a deterministic fault plan
    (:mod:`repro.core.faults`) into every *open-queue* measurement —
    like admission, the closed t=0 wall-clock points measure the
    healthy fast path — and record availability/goodput per point plus
    the plan descriptor at the report's top level, which
    ``bench_compare`` uses to refuse cross-fault-plan trending.
    """
    points = []
    for batch_size in batch_sizes:
        sizes = job_mix(batch_size, mix)
        n_distinct = len(set(sizes))
        uncached_wall = uncached_result = None
        compare_here = compare_uncached and batch_size <= UNCACHED_COMPARE_MAX
        if not cached or compare_here:
            uncached_wall, uncached_result = measure_run_many(
                sizes, memoize=False, repeats=repeats, backend=backend
            )
        if cached:
            cached_wall, cached_result = measure_run_many(
                sizes, memoize=True, repeats=repeats, backend=backend
            )
            identical = (
                _batch_results_equal(cached_result, uncached_result)
                if uncached_result is not None
                else None
            )
            reference = cached_result
        else:
            assert uncached_wall is not None and uncached_result is not None
            cached_wall, identical, reference = uncached_wall, None, uncached_result
            uncached_wall = None  # baseline-only: report it as the main column
        arrival = None
        if arrival_rate is not None and arrival_rate > 0:
            offsets = poisson_arrivals(
                len(sizes), arrival_rate, seed=arrival_seed
            )
            arrival_wall, arrival_result = measure_run_many(
                sizes,
                memoize=cached,
                repeats=repeats,
                arrivals=offsets,
                backend=backend,
                admission=admission,
                faults=faults,
                retry=retry,
            )
            shed_rate, admitted, shed = _shed_stats(arrival_result)
            arrival = ArrivalPoint(
                rate=arrival_rate,
                seed=arrival_seed,
                wall_seconds=arrival_wall,
                makespan=arrival_result.makespan,
                p50_latency=arrival_result.slo_p50_latency,
                p99_latency=arrival_result.slo_p99_latency,
                mean_queueing_delay=arrival_result.mean_queueing_delay,
                lane_utilization=dict(arrival_result.lane_utilization),
                shed_rate=shed_rate,
                admitted=admitted,
                shed=shed,
                resilience=_resilience_dict(arrival_result),
            )
        points.append(
            ServePoint(
                batch_size=batch_size,
                n_distinct=n_distinct,
                wall_seconds_cached=cached_wall,
                wall_seconds_uncached=uncached_wall,
                makespan=reference.makespan,
                simulated_throughput=reference.throughput,
                results_identical=identical,
                arrival=arrival,
                backend_jobs=dict(reference.batch_report.backend_jobs),
                backend_wall_seconds=dict(
                    reference.batch_report.backend_wall_seconds
                ),
            )
        )
    arrival_sweep = None
    if arrival_sweep_rates:
        arrival_sweep = run_arrival_sweep(
            rates=tuple(arrival_sweep_rates),
            mix=mix,
            repeats=repeats,
            seed=arrival_seed,
            memoize=cached,
            backend=backend,
            admission=admission,
            faults=faults,
            retry=retry,
        )
    return ServeBenchReport(
        mix=tuple(mix),
        repeats=repeats,
        points=tuple(points),
        fast_path=cached,
        backend=backend,
        arrival_sweep=arrival_sweep,
        admission=admission,
        faults=faults,
        retry=retry,
    )


#: Identical simulations per fleet serve call (sustained-serving
#: measurement): enough rounds that per-call routing/dispatch overhead
#: amortizes the way a long-running service amortizes it, few enough
#: that the smoke sweeps stay quick.
DEFAULT_FLEET_ROUNDS = 8


def _measure_fleet(
    pool: WorkerPool,
    sizes: list[int],
    repeats: int,
    rounds: int,
    arrivals: Sequence[float] | None = None,
    backend: str | None = None,
) -> FleetResult:
    """Best-of-``repeats`` fleet serve on a warm pool (the caller pays
    the pool's one-time warm-up first).  Virtual-time results are
    identical every repeat — only the measured wall varies — so the
    returned result is simply the fastest repeat's."""
    best: FleetResult | None = None
    for _ in range(repeats):
        result = pool.serve(
            sizes, arrivals=arrivals, backend=backend, rounds=rounds
        )
        if best is None or result.wall_seconds < best.wall_seconds:
            best = result
    assert best is not None
    return best


def run_fleet_bench(
    batch_sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES,
    mix: tuple[int, ...] = DEFAULT_MIX,
    repeats: int = 3,
    replicas: int = 2,
    arrival_rate: float | None = DEFAULT_ARRIVAL_RATE,
    arrival_seed: int = 0,
    backend: str | None = None,
    rounds: int = DEFAULT_FLEET_ROUNDS,
) -> ServeBenchReport:
    """The fleet (multi-process) sweep behind ``serve-bench --replicas``.

    Each point serves the same round-robin mix through a
    :class:`~repro.fleet.WorkerPool` of ``replicas`` worker processes:
    the deterministic router splits the stream, workers start warm from
    the shared cache snapshot, and the measured wall is sustained
    serving (``rounds`` identical simulations per call, best of
    ``repeats`` calls on a warm pool — the first serve, which pays
    process start-up and cold derivation, is a discarded warm-up).
    The classic single-process columns are reused so the trend gates
    apply unchanged: ``wall_seconds_cached`` is the per-round fleet
    wall, hence ``jobs_per_second_cached`` is the sustained aggregate
    fleet throughput; the uncached comparison is skipped (fleet workers
    are warm by construction — that is the point) and the per-point
    ``fleet`` record carries the replica breakdown.  The open-queue
    measurement feeds the whole fleet from one Poisson stream and
    reports fleet-wide p50/p99.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    points = []
    for batch_size in batch_sizes:
        sizes = job_mix(batch_size, mix)
        n_distinct = len(set(sizes))
        with WorkerPool(replicas) as pool:
            pool.serve(sizes)  # warm-up: spawn + derivation + snapshot
            closed = _measure_fleet(
                pool, sizes, repeats=repeats, rounds=rounds, backend=backend
            )
            arrival = None
            if arrival_rate is not None and arrival_rate > 0:
                offsets = poisson_arrivals(
                    len(sizes), arrival_rate, seed=arrival_seed
                )
                open_result = _measure_fleet(
                    pool,
                    sizes,
                    repeats=repeats,
                    rounds=rounds,
                    arrivals=offsets,
                    backend=backend,
                )
                solo_times, _lanes = pool.framework.job_estimates(sizes)
                latencies = open_result.completion_latencies
                queueing = sum(
                    latency - solo
                    for latency, solo in zip(latencies, solo_times)
                ) / len(latencies)
                arrival = ArrivalPoint(
                    rate=arrival_rate,
                    seed=arrival_seed,
                    wall_seconds=open_result.wall_seconds / rounds,
                    makespan=open_result.makespan,
                    p50_latency=open_result.p50_latency,
                    p99_latency=open_result.p99_latency,
                    mean_queueing_delay=queueing,
                    lane_utilization=dict(open_result.lane_utilization),
                    admitted=open_result.n_jobs,
                )
        points.append(
            ServePoint(
                batch_size=batch_size,
                n_distinct=n_distinct,
                wall_seconds_cached=closed.wall_seconds / rounds,
                wall_seconds_uncached=None,
                makespan=closed.makespan,
                simulated_throughput=closed.throughput,
                results_identical=None,
                arrival=arrival,
                backend_jobs=dict(closed.backend_jobs),
                backend_wall_seconds=None,
                fleet=FleetPoint(
                    replicas=replicas,
                    rounds=rounds,
                    wall_seconds=closed.wall_seconds,
                    jobs_per_second_wall=closed.jobs_per_second_wall,
                    virtual_throughput=closed.throughput,
                    imbalance_ratio=closed.imbalance_ratio,
                    replica_jobs=closed.plan.replica_job_counts,
                    replica_utilization=closed.replica_utilization,
                    merged_entries=closed.merged_entries,
                ),
            )
        )
    return ServeBenchReport(
        mix=tuple(mix),
        repeats=repeats,
        points=tuple(points),
        fast_path=True,
        backend=backend,
        replicas=replicas,
    )


def format_serve_bench(report: ServeBenchReport, cached: bool = True) -> str:
    mode = "fast path (memoized)" if cached else "baseline (--no-cache)"
    lines = [
        f"Scale serving - wall-clock simulator throughput, {mode}",
        f"job mix: {', '.join(f'Si_{n}' for n in report.mix)} (round-robin), "
        f"best of {report.repeats}",
    ]
    if report.backend is not None:
        lines.append(f"forced simulation backend: {report.backend}")
    fleet_points = [p for p in report.points if p.fleet is not None]
    if report.replicas != 1 or fleet_points:
        rounds = fleet_points[0].fleet.rounds if fleet_points else 1
        lines.append(
            f"fleet: {report.replicas} worker replicas, sustained over "
            f"{rounds} rounds per measurement (warm pool, shared snapshot)"
        )
    lines.append(
        f"{'batch':>6s} {'wall (s)':>10s} {'jobs/s':>10s} "
        f"{'no-cache (s)':>13s} {'speedup':>8s} {'identical':>10s} "
        f"{'backends':>20s}"
    )
    for p in report.points:
        uncached = (
            f"{p.wall_seconds_uncached:13.4f}"
            if p.wall_seconds_uncached is not None
            else f"{'-':>13s}"
        )
        speedup = (
            f"{p.wall_speedup:7.2f}x" if p.wall_speedup is not None else f"{'-':>8s}"
        )
        identical = (
            {True: "yes", False: "NO"}[p.results_identical]
            if p.results_identical is not None
            else "-"
        )
        backends = (
            "-"
            if not p.backend_jobs
            else ",".join(
                f"{name}:{count}" for name, count in sorted(p.backend_jobs.items())
            )
        )
        lines.append(
            f"{p.batch_size:6d} {p.wall_seconds_cached:10.4f} "
            f"{p.jobs_per_second_cached:10.1f} {uncached} {speedup} "
            f"{identical:>10s} {backends:>20s}"
        )
    if fleet_points:
        lines.append("\nfleet breakdown (closed batches):")
        lines.append(
            f"{'batch':>6s} {'wall jobs/s':>12s} {'virtual jobs/s':>15s} "
            f"{'imbalance':>10s} {'replica jobs':>20s} {'merged':>7s}"
        )
        for p in fleet_points:
            f = p.fleet
            split = "/".join(str(count) for count in f.replica_jobs)
            lines.append(
                f"{p.batch_size:6d} {f.jobs_per_second_wall:12.1f} "
                f"{f.virtual_throughput:15.1f} {f.imbalance_ratio:9.3f} "
                f"{split:>20s} {f.merged_entries:7d}"
            )
    arrivals = [p for p in report.points if p.arrival is not None]
    if arrivals:
        rate = arrivals[0].arrival.rate
        lines.append(
            f"\nopen queue (Poisson arrivals at {rate:g} jobs/s, "
            f"seed {arrivals[0].arrival.seed}):"
        )
        if report.admission is not None:
            policy = report.admission
            criteria = []
            if policy.slo_p99 is not None:
                criteria.append(f"slo_p99 {policy.slo_p99:g} s")
            if policy.max_queue_depth is not None:
                criteria.append(f"max_queue_depth {policy.max_queue_depth}")
            lines.append(
                f"admission: {policy.mode} past {', '.join(criteria)}"
            )
        checkpointing = False
        if report.faults is not None:
            plan = report.faults
            retry = report.retry or RetryPolicy()
            checkpointing = retry.checkpoint
            shapes = [
                f"{len(plan.outages)} outage window(s)",
                f"{len(plan.permanent)} permanent failure(s)",
            ]
            if plan.shock_rate is not None:
                shapes.append(
                    f"correlated shocks at {plan.shock_rate:g}/s over "
                    f"{len(plan.shock_groups)} group(s)"
                )
            if plan.slowdowns:
                shapes.append(
                    f"{len(plan.slowdowns)} slowdown window(s) "
                    f"({', '.join(sorted(plan.slowdown_lanes()))})"
                )
            lines.append(
                f"faults: {', '.join(shapes)} on "
                f"{', '.join(sorted(plan.lanes)) or 'no lanes'} "
                f"(seed {plan.seed}, digest {plan.digest()}); retry up to "
                f"{retry.max_attempts} attempts, backoff "
                f"{retry.backoff_base:g}s x{retry.backoff_factor:g}"
                + (", checkpoint/resume on" if checkpointing else "")
            )
        fault_cols = (
            "" if report.faults is None else f" {'avail':>6s} {'goodput':>9s}"
        )
        if checkpointing:
            fault_cols += f" {'resumed':>8s} {'saved (s)':>10s}"
        lines.append(
            f"{'batch':>6s} {'wall (s)':>10s} {'p50 lat (s)':>12s} "
            f"{'p99 lat (s)':>12s} {'queue delay':>12s} {'shed':>6s}"
            + fault_cols
        )
        for p in arrivals:
            a = p.arrival
            fault_cells = ""
            if a.resilience is not None:
                fault_cells = (
                    f" {a.resilience['availability']:5.0%} "
                    f"{a.resilience['goodput']:9.1f}"
                )
                if checkpointing:
                    fault_cells += (
                        f" {a.resilience['resumed_stages']:8d} "
                        f"{a.resilience['work_saved_seconds']:10.4f}"
                    )
            lines.append(
                f"{p.batch_size:6d} {a.wall_seconds:10.4f} "
                f"{a.p50_latency:12.4f} {a.p99_latency:12.4f} "
                f"{a.mean_queueing_delay:12.4f} {a.shed_rate:5.0%}"
                + fault_cells
            )
    sweep = report.arrival_sweep
    if sweep is not None:
        lines.append(
            f"\nlatency vs offered load ({sweep.batch_size} jobs, "
            f"seed {sweep.seed}):"
        )
        lines.append(
            f"{'rate':>6s} {'p50 lat (s)':>12s} {'p99 lat (s)':>12s} "
            f"{'queue delay':>12s} {'makespan (s)':>13s} {'shed':>6s} "
            f"{'busiest lane':>18s}"
        )
        for point in sweep.points:
            busiest = point.dominant_lane
            utilization = (
                "-"
                if busiest is None
                else f"{busiest} {point.lane_utilization[busiest]:.0%}"
            )
            lines.append(
                f"{point.rate:6.2f} {point.p50_latency:12.4f} "
                f"{point.p99_latency:12.4f} "
                f"{point.mean_queueing_delay:12.4f} {point.makespan:13.3f} "
                f"{point.shed_rate:5.0%} {utilization:>18s}"
            )
        if sweep.knee_rate is None:
            lines.append(
                "saturation knee: not reached "
                f"(p99 stayed within {KNEE_LATENCY_FACTOR:g}x of baseline)"
            )
        else:
            lines.append(
                f"saturation knee: ~{sweep.knee_rate:g} jobs/s "
                f"(first rate with p99 > {KNEE_LATENCY_FACTOR:g}x baseline; "
                f"dominant lane: {sweep.knee_dominant_lane})"
            )
    return "\n".join(lines)
