"""Fig. 8: NDFT and GPU speedup over the CPU baseline across system sizes.

The paper sweeps Si_16 through Si_2048 and reports that NDFT's advantage
grows with the system ("up to 5.33x at Si_2048"), while the GPU curve
stays flat around 2x.  This driver regenerates both series.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.baselines import run_cpu_baseline, run_gpu_baseline
from repro.core.framework import NdftFramework
from repro.dft.workload import problem_size
from repro.experiments.report import Comparison
from repro.workloads.silicon import PAPER_ATOM_COUNTS

#: §VI-B quotes the peak of the NDFT series.
PAPER_PEAK_SPEEDUP = 5.33
PAPER_PEAK_SYSTEM = 2048


@dataclass(frozen=True)
class ScalabilityStudy:
    """Speedup-over-CPU series for NDFT and GPU."""

    atom_counts: tuple[int, ...]
    ndft_speedup: dict[int, float]
    gpu_speedup: dict[int, float]

    @property
    def peak_ndft_speedup(self) -> float:
        return max(self.ndft_speedup.values())

    @property
    def peak_system(self) -> int:
        return max(self.ndft_speedup, key=self.ndft_speedup.__getitem__)

    def ndft_series(self) -> list[tuple[int, float]]:
        return [(n, self.ndft_speedup[n]) for n in self.atom_counts]

    def is_monotone_from(self, start: int = 32) -> bool:
        """NDFT advantage grows with size beyond ``start`` atoms, allowing
        a few percent of saturation wobble at the top end (the paper's
        curve also flattens between Si_1024 and Si_2048)."""
        values = [
            self.ndft_speedup[n] for n in self.atom_counts if n >= start
        ]
        return all(b >= a * 0.95 for a, b in zip(values, values[1:]))


def run_scalability(
    atom_counts: tuple[int, ...] = PAPER_ATOM_COUNTS,
    framework: NdftFramework | None = None,
) -> ScalabilityStudy:
    """Sweep the Fig. 8 x-axis and collect both speedup series."""
    framework = framework or NdftFramework()
    ndft_speedup: dict[int, float] = {}
    gpu_speedup: dict[int, float] = {}
    for n_atoms in atom_counts:
        problem = problem_size(n_atoms)
        cpu_total = run_cpu_baseline(problem).total_time
        gpu_total = run_gpu_baseline(problem).total_time
        ndft_total = framework.run(problem=problem).total_time
        ndft_speedup[n_atoms] = cpu_total / ndft_total
        gpu_speedup[n_atoms] = cpu_total / gpu_total
    return ScalabilityStudy(
        atom_counts=tuple(atom_counts),
        ndft_speedup=ndft_speedup,
        gpu_speedup=gpu_speedup,
    )


def scalability_comparisons(study: ScalabilityStudy) -> list[Comparison]:
    comparisons = [
        Comparison(
            f"peak NDFT speedup (Si_{study.peak_system})",
            PAPER_PEAK_SPEEDUP,
            round(study.peak_ndft_speedup, 2),
            "x",
        )
    ]
    if PAPER_PEAK_SYSTEM in study.ndft_speedup:
        comparisons.append(
            Comparison(
                f"NDFT speedup at Si_{PAPER_PEAK_SYSTEM}",
                PAPER_PEAK_SPEEDUP,
                round(study.ndft_speedup[PAPER_PEAK_SYSTEM], 2),
                "x",
            )
        )
    return comparisons


def format_scalability(study: ScalabilityStudy) -> str:
    lines = [
        "Fig. 8 - speedup over CPU baseline",
        f"{'system':<10s} {'NDFT':>8s} {'GPU':>8s}",
    ]
    for n in study.atom_counts:
        lines.append(
            f"{'Si_' + str(n):<10s} {study.ndft_speedup[n]:8.2f} "
            f"{study.gpu_speedup[n]:8.2f}"
        )
    return "\n".join(lines)
