"""Paper-vs-measured reporting helpers shared by all experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Comparison:
    """One reported quantity next to the paper's value."""

    metric: str
    paper: float | None
    measured: float
    unit: str = ""

    @property
    def ratio(self) -> float | None:
        """measured / paper, or None when the paper gives no number."""
        if self.paper in (None, 0):
            return None
        return self.measured / self.paper

    def row(self) -> str:
        paper_text = f"{self.paper:.3g}" if self.paper is not None else "(figure)"
        ratio = self.ratio
        ratio_text = f"{ratio:.2f}" if ratio is not None else "  - "
        return (
            f"{self.metric:<46s} {paper_text:>9s} {self.measured:>9.3g} "
            f"{ratio_text:>6s} {self.unit}"
        )


def format_table(title: str, comparisons: list[Comparison]) -> str:
    """Render a paper-vs-measured table as monospace text."""
    header = (
        f"{'metric':<46s} {'paper':>9s} {'measured':>9s} {'m/p':>6s}"
    )
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    lines.extend(c.row() for c in comparisons)
    lines.append(rule)
    return "\n".join(lines)
