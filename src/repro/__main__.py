"""Module entry point: ``python -m repro <artifact>``."""

import sys

from repro.cli import main

sys.exit(main())
