"""Data layouts and the alltoall transposes between them.

LR-TDDFT alternates between two distributions of the pair-density matrix
``P`` (shape n_pairs x n_grid):

- **pair-parallel**: each rank owns a contiguous block of pairs and the full
  grid for those pairs.  FFTs are rank-local in this layout.
- **grid-parallel**: each rank owns every pair but only a slice of grid
  points (or G vectors).  Kernel application and the GEMM contraction over
  G are rank-local in this layout.

Switching between them is exactly the ``MPI_Alltoall`` transposition of the
paper's Fig. 1, and is implemented here on top of
:class:`repro.parallel.mpi.SimCommunicator`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CommunicationError
from repro.parallel.mpi import SimCommunicator


def partition_sizes(n: int, parts: int) -> list[int]:
    """Sizes of a balanced block partition of ``n`` items into ``parts``
    (first ``n % parts`` blocks get one extra item)."""
    if parts < 1:
        raise CommunicationError(f"parts must be >= 1, got {parts}")
    if n < 0:
        raise CommunicationError(f"n must be >= 0, got {n}")
    base, extra = divmod(n, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def block_partition(n: int, parts: int) -> list[slice]:
    """Balanced contiguous slices covering ``range(n)``."""
    sizes = partition_sizes(n, parts)
    slices = []
    start = 0
    for size in sizes:
        slices.append(slice(start, start + size))
        start += size
    return slices


def pairs_to_grid_layout(
    comm: SimCommunicator, local_pairs: list[np.ndarray]
) -> list[np.ndarray]:
    """Transpose pair-parallel blocks into grid-parallel blocks.

    ``local_pairs[r]`` is rank r's (n_pairs_r, n_grid) block.  Returns
    ``local_grid`` where ``local_grid[r]`` is (n_pairs_total, n_grid_r),
    with grid columns block-partitioned across ranks.
    """
    if len(local_pairs) != comm.size:
        raise CommunicationError(
            f"expected {comm.size} pair blocks, got {len(local_pairs)}"
        )
    blocks = [np.atleast_2d(np.asarray(b)) for b in local_pairs]
    widths = {b.shape[1] for b in blocks}
    if len(widths) != 1:
        raise CommunicationError(f"inconsistent grid widths: {widths}")
    n_grid = widths.pop()
    grid_slices = block_partition(n_grid, comm.size)

    send = [[block[:, s] for s in grid_slices] for block in blocks]
    recv = comm.alltoall(send)
    return [
        np.concatenate([recv[rank][src] for src in range(comm.size)], axis=0)
        for rank in range(comm.size)
    ]


def grid_to_pairs_layout(
    comm: SimCommunicator,
    local_grid: list[np.ndarray],
    pair_counts: list[int],
) -> list[np.ndarray]:
    """Inverse of :func:`pairs_to_grid_layout`.

    ``local_grid[r]`` is (n_pairs_total, n_grid_r); ``pair_counts`` gives
    each rank's pair-block height in the pair-parallel layout.  Returns the
    rank-local (n_pairs_r, n_grid) blocks.
    """
    if len(local_grid) != comm.size:
        raise CommunicationError(
            f"expected {comm.size} grid blocks, got {len(local_grid)}"
        )
    if len(pair_counts) != comm.size:
        raise CommunicationError(
            f"expected {comm.size} pair counts, got {len(pair_counts)}"
        )
    blocks = [np.atleast_2d(np.asarray(b)) for b in local_grid]
    total_pairs = sum(pair_counts)
    heights = {b.shape[0] for b in blocks}
    if heights != {total_pairs}:
        raise CommunicationError(
            f"grid blocks have heights {heights}, expected {total_pairs}"
        )
    pair_slices = []
    start = 0
    for count in pair_counts:
        pair_slices.append(slice(start, start + count))
        start += count

    send = [[block[s, :] for s in pair_slices] for block in blocks]
    recv = comm.alltoall(send)
    return [
        np.concatenate([recv[rank][src] for src in range(comm.size)], axis=1)
        for rank in range(comm.size)
    ]
