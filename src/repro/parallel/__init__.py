"""Simulated message-passing substrate.

The paper's LR-TDDFT implementation is an MPI code whose transposes
(``MPI_Alltoall``) are a first-class kernel in the Fig. 1 flowchart.  This
package provides a single-process functional simulation of that layer:
rank-local numpy arrays, collective operations that really move the data,
and byte accounting that feeds the communication models in
:mod:`repro.hw` and :mod:`repro.core`.
"""

from repro.parallel.mpi import CommEvent, SimCommunicator
from repro.parallel.layouts import (
    block_partition,
    partition_sizes,
    pairs_to_grid_layout,
    grid_to_pairs_layout,
)

__all__ = [
    "CommEvent",
    "SimCommunicator",
    "block_partition",
    "partition_sizes",
    "pairs_to_grid_layout",
    "grid_to_pairs_layout",
]
