"""Functional single-process simulation of the MPI collectives LR-TDDFT uses.

A :class:`SimCommunicator` owns ``size`` simulated ranks.  Collectives take
per-rank inputs (lists indexed by rank), return per-rank outputs, and append
a :class:`CommEvent` with exact byte counts to :attr:`SimCommunicator.log`.
The byte counts are what the hardware models later turn into time; the data
movement itself is real (numpy copies), so functional results are exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CommunicationError


@dataclass(frozen=True)
class CommEvent:
    """One collective operation's traffic record.

    ``bytes_moved`` counts payload bytes that crossed between two distinct
    ranks (self-sends are excluded: they stay in local memory on a real
    machine and the paper's communication phases do not pay for them).
    """

    op: str
    bytes_moved: int
    max_rank_bytes: int


class SimCommunicator:
    """A simulated MPI communicator with ``size`` ranks."""

    def __init__(self, size: int):
        if size < 1:
            raise CommunicationError(f"communicator size must be >= 1, got {size}")
        self.size = size
        self.log: list[CommEvent] = []

    # ------------------------------------------------------------------
    # Accounting helpers
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(event.bytes_moved for event in self.log)

    def bytes_by_op(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for event in self.log:
            totals[event.op] = totals.get(event.op, 0) + event.bytes_moved
        return totals

    def _check_per_rank(self, values: list, what: str) -> None:
        if len(values) != self.size:
            raise CommunicationError(
                f"{what} must supply one entry per rank "
                f"({self.size}), got {len(values)}"
            )

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def alltoall(self, send: list[list[np.ndarray]]) -> list[list[np.ndarray]]:
        """Personalized all-to-all: ``send[i][j]`` goes from rank i to rank j.

        Returns ``recv`` with ``recv[j][i] = send[i][j]``.  This is the
        ``MPI_Alltoall(v)`` of the paper's Global Comm phase.
        """
        self._check_per_rank(send, "alltoall send")
        for rank, row in enumerate(send):
            if len(row) != self.size:
                raise CommunicationError(
                    f"rank {rank} supplies {len(row)} buffers, need {self.size}"
                )
        moved = 0
        per_rank = [0] * self.size
        recv: list[list[np.ndarray]] = [[None] * self.size for _ in range(self.size)]  # type: ignore[list-item]
        for src in range(self.size):
            for dst in range(self.size):
                payload = np.asarray(send[src][dst])
                recv[dst][src] = payload.copy()
                if src != dst:
                    moved += payload.nbytes
                    per_rank[src] += payload.nbytes
        self.log.append(
            CommEvent("alltoall", moved, max(per_rank) if per_rank else 0)
        )
        return recv

    def allreduce(self, values: list[np.ndarray]) -> list[np.ndarray]:
        """Sum-reduction to all ranks (ring-allreduce byte accounting:
        each rank sends ~2 * payload * (size-1)/size bytes)."""
        self._check_per_rank(values, "allreduce")
        arrays = [np.asarray(v) for v in values]
        shapes = {a.shape for a in arrays}
        if len(shapes) != 1:
            raise CommunicationError(f"allreduce shape mismatch: {shapes}")
        total = np.zeros_like(arrays[0])
        for a in arrays:
            total = total + a
        payload = arrays[0].nbytes
        per_rank = 2 * payload * (self.size - 1) // max(self.size, 1)
        self.log.append(
            CommEvent("allreduce", per_rank * self.size, per_rank)
        )
        return [total.copy() for _ in range(self.size)]

    def allgather(self, values: list[np.ndarray]) -> list[list[np.ndarray]]:
        """Every rank receives every rank's array."""
        self._check_per_rank(values, "allgather")
        arrays = [np.asarray(v) for v in values]
        moved = sum(a.nbytes for a in arrays) * (self.size - 1)
        self.log.append(
            CommEvent(
                "allgather",
                moved,
                max((a.nbytes for a in arrays), default=0) * (self.size - 1),
            )
        )
        return [[a.copy() for a in arrays] for _ in range(self.size)]

    def bcast(self, value: np.ndarray, root: int = 0) -> list[np.ndarray]:
        """Broadcast ``value`` from ``root`` to every rank."""
        if not 0 <= root < self.size:
            raise CommunicationError(f"root {root} out of range for size {self.size}")
        payload = np.asarray(value)
        self.log.append(
            CommEvent("bcast", payload.nbytes * (self.size - 1), payload.nbytes)
        )
        return [payload.copy() for _ in range(self.size)]

    def scatter(self, chunks: list[np.ndarray], root: int = 0) -> list[np.ndarray]:
        """Rank ``root`` distributes ``chunks[i]`` to rank i."""
        if not 0 <= root < self.size:
            raise CommunicationError(f"root {root} out of range for size {self.size}")
        self._check_per_rank(chunks, "scatter")
        arrays = [np.asarray(c) for c in chunks]
        moved = sum(a.nbytes for i, a in enumerate(arrays) if i != root)
        self.log.append(CommEvent("scatter", moved, moved))
        return [a.copy() for a in arrays]
