"""Workload definitions: the paper's physical systems."""

from repro.workloads.silicon import (
    LARGE_SYSTEM,
    PAPER_SYSTEMS,
    SMALL_SYSTEM,
    SiliconWorkload,
    paper_systems,
    silicon_workload,
)

__all__ = [
    "SiliconWorkload",
    "silicon_workload",
    "paper_systems",
    "PAPER_SYSTEMS",
    "SMALL_SYSTEM",
    "LARGE_SYSTEM",
]
