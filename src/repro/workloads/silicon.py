"""The paper's physical systems: Si_16 ... Si_2048 (§V).

A :class:`SiliconWorkload` bundles the three views of one system that the
rest of the package consumes:

- its *name and atom count* (the evaluation axis of Fig. 8);
- its analytic :class:`~repro.dft.workload.ProblemSize` (performance
  models at paper resolution);
- optionally, an *executable* scaled-down configuration (crystal + basis
  cutoff) small enough to run the functional LR-TDDFT implementation —
  available for Si_8 through Si_64.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dft.basis import PlaneWaveBasis
from repro.dft.lattice import Crystal, silicon_supercell
from repro.dft.workload import ProblemSize, problem_size
from repro.errors import ConfigError

#: Atom counts evaluated in the paper (Fig. 8 x-axis).
PAPER_ATOM_COUNTS = (16, 32, 64, 128, 256, 1024, 2048)

#: The two systems Fig. 4 / Fig. 7 / Table I single out.
SMALL_SYSTEM = 64
LARGE_SYSTEM = 1024

#: Largest system the functional numpy path runs comfortably in tests.
MAX_EXECUTABLE_ATOMS = 64

#: Default cutoff (Hartree) for executable scaled-down runs; low enough to
#: keep eigh tractable, high enough to include the EPM form-factor shells.
EXECUTABLE_ECUT = 2.5


@dataclass(frozen=True)
class SiliconWorkload:
    """One Si_N evaluation point."""

    n_atoms: int
    problem: ProblemSize

    @property
    def label(self) -> str:
        return f"Si_{self.n_atoms}"

    @property
    def is_executable(self) -> bool:
        """Can the functional numpy LR-TDDFT run this system (scaled)?"""
        return self.n_atoms <= MAX_EXECUTABLE_ATOMS

    def build_cell(self) -> Crystal:
        """The actual supercell (any size; cheap to construct)."""
        return silicon_supercell(self.n_atoms)

    def build_basis(self, ecut: float = EXECUTABLE_ECUT) -> PlaneWaveBasis:
        """A scaled-down executable basis.  Refuses sizes that would make
        the dense ground-state solve intractable in a test environment."""
        if not self.is_executable:
            raise ConfigError(
                f"{self.label} is analytic-only; executable runs support up "
                f"to Si_{MAX_EXECUTABLE_ATOMS}"
            )
        return PlaneWaveBasis(self.build_cell(), ecut=ecut)


def silicon_workload(n_atoms: int) -> SiliconWorkload:
    """Build the evaluation point for Si_{n_atoms}."""
    return SiliconWorkload(n_atoms=n_atoms, problem=problem_size(n_atoms))


def paper_systems() -> list[SiliconWorkload]:
    """All systems of the paper's scalability study, in size order."""
    return [silicon_workload(n) for n in PAPER_ATOM_COUNTS]


PAPER_SYSTEMS = PAPER_ATOM_COUNTS
