"""Command-line interface: ``python -m repro <artifact>``.

Regenerates any of the paper's artifacts from a shell:

    python -m repro fig4          # roofline study
    python -m repro table1        # footprint table
    python -m repro fig7 --atoms 1024
    python -m repro fig8
    python -m repro discussion
    python -m repro ablations
    python -m repro sensitivity   # design-space sweeps (extension)
    python -m repro batch --atoms 64 64 512 1024   # batched serving (extension)
    python -m repro batch --policy all_cpu         # ... under another scheduler
    python -m repro batch --arrival-rate 2.0       # ... as an open queue
    python -m repro batch --arrival-rate 5.0 --slo-p99 2.0  # ... with admission
    python -m repro serve-bench   # wall-clock serving throughput sweep
    python -m repro serve-bench --backend engine  # force one sim backend (A/B)
    python -m repro serve-bench --arrival-sweep   # latency-vs-load + knee
    python -m repro serve-bench --arrival-sweep --slo-p99 2.0  # ... shedding
    python -m repro serve-bench --mtbf 10 --mttr 1 --fault-seed 7  # ... faults
    python -m repro serve-bench --shock-rate 0.1 --slowdown-factor 2 --checkpoint
    python -m repro serve-bench --replicas 4      # multi-process fleet serving
    python -m repro all           # everything, in paper order
    python -m repro lint          # repo-native invariant analyzer
    python -m repro lint src tests benchmarks --format json

``serve-bench`` is excluded from ``all``: it measures wall-clock time of
this machine rather than a paper artifact, so its output is not
reproducible across hosts.

``lint`` is not an artifact either: it runs the
:mod:`repro.analysis` invariant analyzer (layering, determinism,
backend contract, ``__slots__`` hygiene, error discipline) and exits
non-zero on findings — see the README's "Invariant lint" section.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.framework import NdftFramework
from repro.core.scheduler import SchedulingPolicy


def _backend_choices() -> list[str]:
    from repro.core.backends import backend_names

    return list(backend_names())


def _admission_policy(args):
    """The AdmissionPolicy the --slo-p99 / --max-queue-depth /
    --admission-mode flags describe, or ``None`` when neither criterion
    was given (admission off — the pre-admission behavior)."""
    if args.slo_p99 is None and args.max_queue_depth is None:
        return None
    from repro.core.arrivals import AdmissionPolicy

    return AdmissionPolicy(
        slo_p99=args.slo_p99,
        max_queue_depth=args.max_queue_depth,
        mode=args.admission_mode,
    )


def _check_fault_lanes(lanes, framework, flag: str) -> None:
    """Reject lane names the configured system does not expose: a fault
    window on an unknown lane silently never fires, which reads as a
    suspiciously-perfect availability number."""
    from repro.errors import ConfigError

    valid = framework.fault_lanes()
    for lane in lanes:
        if lane not in valid:
            raise ConfigError(
                f"{flag}: unknown lane {lane!r}; this system exposes "
                f"{list(valid)}"
            )


def _fault_setup(args, framework):
    """The (FaultPlan, RetryPolicy) pair the fault flags describe.

    Three independent seeded processes compose via
    :meth:`FaultPlan.merge`: per-lane Poisson outages (``--mtbf``),
    correlated group shocks (``--shock-rate``/``--shock-groups``), and
    non-lethal slowdowns (``--slowdown-factor``, drawn at the outage
    MTBF — default 10.0 when --mtbf is off — under ``seed + 1`` so the
    windows decorrelate from the outage draw).  Returns ``(None, None)``
    when no fault flag was given (faults off — the pre-fault behavior).
    """
    from repro.core.faults import (
        RetryPolicy,
        poisson_fault_plan,
        shock_fault_plan,
        slowdown_fault_plan,
    )
    from repro.errors import ConfigError

    plan = None

    def compose(part):
        return part if plan is None else plan.merge(part)

    if args.mtbf is not None or args.slowdown_factor is not None:
        _check_fault_lanes(args.fault_lanes, framework, "--fault-lanes")
    if args.mtbf is not None:
        plan = compose(
            poisson_fault_plan(
                lanes=args.fault_lanes,
                mtbf=args.mtbf,
                mttr=args.mttr,
                horizon=args.fault_horizon,
                seed=args.fault_seed,
            )
        )
    if args.shock_rate is not None:
        groups = (
            [tuple(spec.split(",")) for spec in args.shock_groups]
            if args.shock_groups
            else [framework.fault_lanes()]
        )
        for group in groups:
            _check_fault_lanes(group, framework, "--shock-groups")
        plan = compose(
            shock_fault_plan(
                groups=groups,
                rate=args.shock_rate,
                mttr=args.mttr,
                horizon=args.fault_horizon,
                seed=args.fault_seed,
            )
        )
    if args.slowdown_factor is not None:
        plan = compose(
            slowdown_fault_plan(
                lanes=args.fault_lanes,
                mtbf=args.mtbf if args.mtbf is not None else 10.0,
                mttr=args.mttr,
                horizon=args.fault_horizon,
                factor=args.slowdown_factor,
                seed=args.fault_seed + 1,
            )
        )
    if plan is None:
        if args.checkpoint:
            raise ConfigError(
                "--checkpoint needs fault injection: pass --mtbf, "
                "--shock-rate or --slowdown-factor alongside it"
            )
        return None, None
    retry = RetryPolicy(checkpoint=True) if args.checkpoint else None
    return plan, retry


def _fig4(_args, _framework) -> str:
    from repro.experiments.fig4_roofline import format_roofline, run_roofline_study

    return format_roofline(run_roofline_study())


def _table1(_args, _framework) -> str:
    from repro.experiments.table1_footprint import format_table1

    return format_table1()


def _fig7(args, framework) -> str:
    from repro.experiments.fig7_breakdown import (
        breakdown_comparisons,
        format_breakdown,
        run_breakdown,
    )
    from repro.experiments.report import format_table

    sections = []
    for n_atoms in args.atoms or (64, 1024):
        study = run_breakdown(n_atoms, framework)
        sections.append(format_breakdown(study))
        sections.append(
            format_table(
                f"Fig. 7 quoted numbers, Si_{n_atoms}",
                breakdown_comparisons(study),
            )
        )
    return "\n\n".join(sections)


def _fig8(_args, framework) -> str:
    from repro.experiments.fig8_scalability import (
        format_scalability,
        run_scalability,
        scalability_comparisons,
    )
    from repro.experiments.report import format_table

    study = run_scalability(framework=framework)
    return (
        format_scalability(study)
        + "\n\n"
        + format_table("Fig. 8 quoted numbers", scalability_comparisons(study))
    )


def _discussion(_args, framework) -> str:
    from repro.experiments.discussion import run_discussion
    from repro.experiments.report import format_table

    return format_table(
        "§VI-A discussion numbers", run_discussion(framework).comparisons()
    )


def _ablations(args, framework) -> str:
    from repro.experiments.ablations import (
        run_granularity_ablation,
        run_policy_ablation,
        run_shared_memory_ablation,
    )

    n_atoms = (args.atoms or [1024])[0]
    lines = [f"Offload-granularity Eq. 1 overhead (Si_{n_atoms}):"]
    for name, seconds in run_granularity_ablation(n_atoms, framework).items():
        lines.append(f"  {name:<12s} {seconds:12.6f} s")
    lines.append(f"\nScheduling-policy totals (Si_{n_atoms}):")
    for name, seconds in run_policy_ablation(n_atoms, framework).totals.items():
        lines.append(f"  {name:<12s} {seconds:10.4f} s")
    shmem = run_shared_memory_ablation()
    lines.append(
        "\nShared-memory functional ablation (Si_16): "
        f"-{shmem.memory_reduction_percent:.1f}% memory, "
        f"filter effective: {shmem.filter_effective}"
    )
    return "\n".join(lines)


def _sensitivity(args, _framework) -> str:
    from repro.experiments.sensitivity import (
        format_sweep,
        sweep_host_link_bandwidth,
        sweep_mesh_link_bandwidth,
        sweep_stack_count,
        sweep_units_per_stack,
    )

    n_atoms = (args.atoms or [1024])[0]
    return "\n\n".join(
        [
            format_sweep(
                "Mesh link bandwidth sweep (B/s):",
                sweep_mesh_link_bandwidth(n_atoms),
            ),
            format_sweep("Stack count sweep:", sweep_stack_count(n_atoms)),
            format_sweep(
                "Host link bandwidth sweep (B/s):",
                sweep_host_link_bandwidth(n_atoms),
            ),
            format_sweep(
                "NDP units per stack sweep:", sweep_units_per_stack(n_atoms)
            ),
        ]
    )


def _batch(args, framework) -> str:
    from repro.experiments.batch_throughput import (
        DEFAULT_BATCH_SIZES,
        format_batch,
        run_batch_study,
    )

    policy = SchedulingPolicy(args.policy)
    if policy is not framework.policy:
        framework = NdftFramework(policy=policy)
    sizes = tuple(args.atoms) if args.atoms else DEFAULT_BATCH_SIZES
    header = f"scheduling policy: {policy.value}\n"
    return header + format_batch(
        run_batch_study(
            sizes,
            framework,
            arrival_rate=args.arrival_rate,
            arrival_seed=args.arrival_seed,
            admission=_admission_policy(args),
        )
    )


def _serve_bench(args, framework) -> str:
    from repro.experiments.scale_serving import (
        DEFAULT_ARRIVAL_RATE,
        DEFAULT_BATCH_SIZES,
        DEFAULT_MIX,
        DEFAULT_SWEEP_RATES,
        format_serve_bench,
        run_fleet_bench,
        run_serve_bench,
    )

    batch_sizes = (
        tuple(args.batch_sizes) if args.batch_sizes else DEFAULT_BATCH_SIZES
    )
    mix = tuple(args.atoms) if args.atoms else DEFAULT_MIX
    cached = not args.no_cache
    arrival_rate = (
        DEFAULT_ARRIVAL_RATE if args.arrival_rate is None else args.arrival_rate
    )
    arrival_sweep_rates = None
    if args.arrival_sweep is not None:
        arrival_sweep_rates = (
            tuple(args.arrival_sweep) if args.arrival_sweep else DEFAULT_SWEEP_RATES
        )
    faults, retry = _fault_setup(args, framework)
    if args.replicas is not None:
        from repro.errors import ConfigError

        if args.replicas < 1:
            raise ConfigError(
                f"--replicas needs a positive fleet size, got {args.replicas}"
            )
        incompatible = [
            flag
            for flag, given in (
                ("--no-cache", args.no_cache),
                ("--arrival-sweep", arrival_sweep_rates is not None),
                ("--slo-p99/--max-queue-depth", _admission_policy(args)),
                ("fault injection", faults is not None or args.checkpoint),
            )
            if given
        ]
        if incompatible:
            raise ConfigError(
                "--replicas measures the fleet fast path only; "
                f"incompatible with {', '.join(incompatible)}"
            )
        report = run_fleet_bench(
            batch_sizes=batch_sizes,
            mix=mix,
            repeats=args.repeats,
            replicas=args.replicas,
            arrival_rate=arrival_rate,
            arrival_seed=args.arrival_seed,
            backend=args.backend,
        )
        path = report.write_json(args.json) if args.json else report.write_json()
        return format_serve_bench(report) + f"\nwrote {path}"
    report = run_serve_bench(
        batch_sizes=batch_sizes,
        mix=mix,
        repeats=args.repeats,
        cached=cached,
        arrival_rate=arrival_rate,
        arrival_seed=args.arrival_seed,
        backend=args.backend,
        arrival_sweep_rates=arrival_sweep_rates,
        admission=_admission_policy(args),
        faults=faults,
        retry=retry,
    )
    path = report.write_json(args.json) if args.json else report.write_json()
    return format_serve_bench(report, cached=cached) + f"\nwrote {path}"


_COMMANDS = {
    "fig4": _fig4,
    "table1": _table1,
    "fig7": _fig7,
    "fig8": _fig8,
    "discussion": _discussion,
    "ablations": _ablations,
    "sensitivity": _sensitivity,
    "batch": _batch,
    "serve-bench": _serve_bench,
}

#: Wall-clock measurements of the host machine, not paper artifacts:
#: excluded from ``all`` so the paper regeneration stays reproducible.
_EXCLUDED_FROM_ALL = frozenset({"serve-bench"})


def main(argv: list[str] | None = None) -> int:
    arguments = sys.argv[1:] if argv is None else argv
    if arguments and arguments[0] == "lint":
        # The invariant analyzer has its own flag set (paths, --format,
        # --rules, --baseline, ...); hand the rest of argv straight to
        # its parser instead of threading it through the artifact one.
        from repro.analysis.runner import main as lint_main

        return lint_main(arguments[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the NDFT paper's tables and figures.",
    )
    parser.add_argument(
        "artifact",
        choices=[*sorted(_COMMANDS), "all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--atoms",
        type=int,
        nargs="*",
        help=(
            "system size(s) for fig7/ablations/sensitivity; for batch, the "
            "full job mix to serve concurrently (repeats allowed, e.g. "
            "--atoms 64 64 512 1024); for serve-bench, the distinct sizes "
            "mixed round-robin into each batch"
        ),
    )
    parser.add_argument(
        "--policy",
        choices=[p.value for p in SchedulingPolicy],
        default=SchedulingPolicy.COST_AWARE.value,
        help="scheduling policy for batch (default: cost_aware)",
    )
    parser.add_argument(
        "--batch-sizes",
        type=int,
        nargs="*",
        help=(
            "serve-bench: batch sizes to sweep "
            "(default: 16 64 256 1024 4096 16384 65536)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=(
            "serve-bench: measure only the memoization-free baseline "
            "(the 'before' path) instead of fast-path-vs-baseline"
        ),
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="serve-bench: wall-clock repeats per point (best-of, default 3)",
    )
    parser.add_argument(
        "--arrival-rate",
        type=float,
        default=None,
        help=(
            "open-queue serving: release jobs by a seeded Poisson process "
            "at this offered load (jobs per second of virtual time). "
            "batch: off unless given; serve-bench: defaults to 2.0, "
            "pass 0 to disable the open-queue measurement"
        ),
    )
    parser.add_argument(
        "--arrival-seed",
        type=int,
        default=0,
        help="seed for the Poisson arrival process (default 0)",
    )
    parser.add_argument(
        "--arrival-sweep",
        type=float,
        nargs="*",
        default=None,
        help=(
            "serve-bench: sweep --arrival-rate over this grid of offered "
            "loads (jobs per second of virtual time), recording the "
            "latency-vs-load curve and the saturation knee in "
            "BENCH_serving.json; pass with no values for the default "
            "grid (1.0 2.0 3.0 3.5 4.0 5.0)"
        ),
    )
    parser.add_argument(
        "--slo-p99",
        type=float,
        default=None,
        help=(
            "batch/serve-bench admission control: shed (or deprioritize) "
            "open-queue arrivals whose predicted completion latency "
            "(solo-time estimate + lane backlog) exceeds this many "
            "seconds of virtual time; requires an arrival process"
        ),
    )
    parser.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help=(
            "batch/serve-bench admission control: bound on admitted "
            "in-flight jobs at any arrival instant"
        ),
    )
    parser.add_argument(
        "--admission-mode",
        choices=["shed", "deprioritize"],
        default="shed",
        help=(
            "what to do with over-SLO arrivals: shed (reject outright, "
            "default) or deprioritize (defer behind the backlog, "
            "excluded from the SLO percentiles)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=_backend_choices(),
        default=None,
        help=(
            "serve-bench: force one simulation backend for every shard "
            "(default: the registry picks the fastest supporting one "
            "per shard) — the replay-vs-engine A/B switch"
        ),
    )
    parser.add_argument(
        "--mtbf",
        type=float,
        default=None,
        help=(
            "serve-bench fault injection: mean virtual seconds between "
            "lane outages (off unless given; see repro.core.faults)"
        ),
    )
    parser.add_argument(
        "--mttr",
        type=float,
        default=1.0,
        help=(
            "serve-bench fault injection: mean outage duration in "
            "virtual seconds (default 1.0)"
        ),
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the fault plan's outage draw (default 0)",
    )
    parser.add_argument(
        "--fault-horizon",
        type=float,
        default=60.0,
        help=(
            "virtual-time horizon the fault plan covers (default 60.0 "
            "seconds; one plan is drawn once and applied to every "
            "open-queue measurement)"
        ),
    )
    parser.add_argument(
        "--fault-lanes",
        nargs="+",
        default=["ndp"],
        help=(
            "lanes the fault plan draws outages over (default: ndp; "
            "device lanes cpu/ndp/gpu or wire lanes like link:cpu-ndp; "
            "validated against the lanes the configured system exposes)"
        ),
    )
    parser.add_argument(
        "--shock-rate",
        type=float,
        default=None,
        help=(
            "serve-bench fault injection: mean correlated shocks per "
            "virtual second — each shock takes a whole lane group down "
            "at once (off unless given)"
        ),
    )
    parser.add_argument(
        "--shock-groups",
        nargs="+",
        default=None,
        help=(
            "lane groups a shock strikes, one comma-separated group per "
            "argument (e.g. 'ndp,link:cpu-ndp' cpu); default: one group "
            "of every lane the system exposes (a full-fleet shock)"
        ),
    )
    parser.add_argument(
        "--slowdown-factor",
        type=float,
        default=None,
        help=(
            "serve-bench fault injection: draw non-lethal slowdown "
            "windows (service times inflate by this factor, > 1.0) over "
            "--fault-lanes at the outage MTBF (off unless given)"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        action="store_true",
        help=(
            "serve-bench fault injection: record completed-stage "
            "frontiers at failure and resume retries as residual "
            "pipelines (RetryPolicy(checkpoint=True))"
        ),
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=None,
        help=(
            "serve-bench: serve each batch with a fleet of this many "
            "worker-process replicas behind the backlog-aware router "
            "(shared warm snapshot, sustained over several rounds); "
            "incompatible with --no-cache, --arrival-sweep, admission "
            "and fault flags"
        ),
    )
    parser.add_argument(
        "--json",
        help="serve-bench: output path for BENCH_serving.json "
        "(default: repo root)",
    )
    args = parser.parse_args(argv)

    framework = NdftFramework()
    names = (
        sorted(name for name in _COMMANDS if name not in _EXCLUDED_FROM_ALL)
        if args.artifact == "all"
        else [args.artifact]
    )
    for name in names:
        print(f"\n===== {name} =====")
        print(_COMMANDS[name](args, framework))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
