"""Physics scenario: compute a real silicon excitation spectrum.

This exercises the *functional* half of the library — the same LR-TDDFT
pipeline the performance models describe, executed with numpy on an
executable supercell (Si_8, the conventional diamond cell):

1. build the crystal and a plane-wave basis;
2. solve the empirical-pseudopotential ground state (the supercell gap
   converges near silicon's experimental 1.17 eV);
3. run TDA LR-TDDFT serially and on a simulated 4-rank communicator, and
   confirm both give identical excitation energies;
4. report the communication volume the Fig. 1 transposes generated.

Run:  python examples/excited_states_silicon.py
"""

import numpy as np

from repro import PlaneWaveBasis, run_lrtddft, silicon_supercell, solve_ground_state
from repro.units import HARTREE_TO_EV

cell = silicon_supercell(8)
basis = PlaneWaveBasis(cell, ecut=2.5)
print(f"Si_8 conventional cell: {basis.n_pw} plane waves, "
      f"FFT grid {basis.fft_shape}")

ground_state = solve_ground_state(cell, basis)
print(f"valence bands: {ground_state.n_valence}, "
      f"conduction bands: {ground_state.n_conduction}")
print(f"Kohn-Sham gap: {ground_state.band_gap * HARTREE_TO_EV:.3f} eV "
      f"(experimental Si gap: 1.17 eV)")

serial = run_lrtddft(ground_state, n_active_valence=6, n_active_conduction=4)
parallel = run_lrtddft(
    ground_state, n_active_valence=6, n_active_conduction=4, n_ranks=4
)

assert np.allclose(
    serial.excitation_energies, parallel.excitation_energies, atol=1e-8
), "simulated-MPI run must reproduce the serial spectrum"

print("\nlowest singlet (TDA) excitation energies, eV:")
for i, energy in enumerate(serial.excitation_energies[:8] * HARTREE_TO_EV):
    print(f"  S{i + 1}: {energy:7.3f}")

counters = serial.counters
print(f"\nkernel mix (serial run): {counters.calls}")
print(f"total FLOPs: {counters.flops:.3e}, "
      f"arithmetic intensity: {counters.arithmetic_intensity:.2f} FLOP/byte")
print(f"\n4-rank run moved {parallel.comm_bytes / 2**20:.1f} MiB through "
      f"collectives: {parallel.comm_bytes_by_op}")
