"""Timeline scenario: watch the scheduled pipeline occupy the machine.

Builds the cost-aware schedule for a chosen system size, replays it into
trace events and renders an ASCII Gantt chart: the NDP lane carries the
memory-bound phases, the CPU lane the dense linear algebra, and the link
lane the Eq. 1 handovers between them.

Run:  python examples/execution_timeline.py [n_atoms]
"""

import sys

from repro import NdftFramework
from repro.core.pipeline import build_pipeline
from repro.core.scheduler import SchedulingPolicy
from repro.core.trace import build_timeline, render_gantt, total_time, validate_timeline
from repro.dft.workload import problem_size

n_atoms = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
framework = NdftFramework()
pipeline = build_pipeline(problem_size(n_atoms))

for policy in (SchedulingPolicy.COST_AWARE, SchedulingPolicy.ALL_CPU):
    schedule = framework.scheduler.schedule(pipeline, policy)
    events = build_timeline(pipeline, schedule, framework.cost_model)
    validate_timeline(events)
    print(f"\n=== {policy.value} schedule, Si_{n_atoms} "
          f"({total_time(events):.3f} s) ===")
    print(render_gantt(events))
