"""Systems scenario: how the cost-aware scheduler makes its decisions.

Walks the §IV-A machinery explicitly for one system size:

1. the SCA's per-function verdicts (boundedness, intensity consistency —
   the evidence for function-level offload granularity);
2. the Eq. 1 overhead each offload granularity would pay;
3. all four scheduling policies side by side;
4. the chosen placement and the resulting Fig. 7-style breakdown.

Run:  python examples/scheduling_study.py [n_atoms]
"""

import sys

from repro import NdftFramework
from repro.core.pipeline import build_pipeline
from repro.core.scheduler import SchedulingPolicy, granularity_overheads
from repro.dft.workload import problem_size

n_atoms = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
framework = NdftFramework()
problem = problem_size(n_atoms)
pipeline = build_pipeline(problem)

print(f"=== static code analysis ({problem.label}) ===")
print(f"{'function':<18s}{'AI':>8s}{'bound':>10s}{'consistency':>13s}"
      f"{'prefers':>9s}")
for stage in pipeline.stages:
    report = framework.sca.analyze(stage.function)
    print(
        f"{report.function_name:<18s}{report.arithmetic_intensity:>8.2f}"
        f"{report.boundedness:>10s}{report.intensity_consistency:>13.2f}"
        f"{'NDP' if report.prefers_ndp else 'CPU':>9s}"
    )

print("\n=== offload granularity (Eq. 1 overhead) ===")
for granularity, overhead in granularity_overheads(pipeline, framework.scheduler).items():
    note = "  <- NDFT's choice" if granularity == "function" else ""
    print(f"  {granularity:<12s} {overhead:12.6f} s{note}")

print("\n=== scheduling policies ===")
for policy in SchedulingPolicy:
    schedule = framework.scheduler.schedule(pipeline, policy)
    print(
        f"  {policy.value:<12s} predicted {schedule.predicted_total:9.4f} s, "
        f"{schedule.n_boundaries} boundary crossing(s), "
        f"overhead {schedule.scheduling_overhead:.4f} s"
    )

print("\n=== chosen placement + executed breakdown ===")
result = framework.run(problem=problem, pipeline=pipeline)
for name, seconds in result.report.phase_seconds.items():
    placement = result.schedule.assignments[name]
    print(f"  {name:<18s} {seconds:9.4f} s on {placement}")
print(f"  {'scheduling':<18s} {result.report.scheduling_overhead:9.4f} s "
      f"({100 * result.scheduling_overhead_fraction:.1f}% of total)")
print(f"  {'TOTAL':<18s} {result.total_time:9.4f} s")
