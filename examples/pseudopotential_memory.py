"""Memory scenario: Algorithm 1's shared-block layout, both ways.

Part 1 uses the *analytic* Table I model at paper scale: the four Table I
rows, the Si_2048 OOM the replicated layout hits, and the 57.8 % saving of
the NDFT layout.

Part 2 runs the *functional* runtime at executable scale: builds real
Kleinman-Bylander blocks for Si_16, applies them through both layouts via
the NDFT_* APIs (Table II), verifies bit-identical physics, and shows the
hierarchical arbiter filtering repeat inter-stack traffic.

Run:  python examples/pseudopotential_memory.py
"""

import numpy as np

from repro.dft.basis import PlaneWaveBasis
from repro.dft.lattice import silicon_supercell
from repro.dft.pseudopotential import build_projectors
from repro.hw.interconnect import MeshNetwork
from repro.shmem import (
    NdftSharedMemory,
    ReplicatedLayout,
    SharedBlockLayout,
    footprint_ndft,
    footprint_replicated,
    table1_rows,
)
from repro.shmem.footprint import NDP_RANKS
from repro.units import MiB

print("=== Table I (analytic model, paper scale) ===")
for row in table1_rows():
    flag = "  <- OOM risk" if row.percent_of_memory > 50 else ""
    print(f"  {row.label:<24s} {row.gigabytes:6.2f} GB "
          f"({row.percent_of_memory:5.2f}% of 64 GB){flag}")

print("\n=== scaling to Si_2048 ===")
replicated = footprint_replicated(2048, NDP_RANKS)
optimized = footprint_ndft(2048)
print(f"  replicated on 128 NDP ranks: {replicated:6.2f} GB "
      f"-> {'OOM (exceeds 64 GB)' if replicated > 64 else 'fits'}")
print(f"  NDFT shared-block layout:    {optimized:6.2f} GB -> fits")

print("\n=== functional runtime (Si_16, 8 ranks on 4 stacks) ===")
cell = silicon_supercell(16)
basis = PlaneWaveBasis(cell, ecut=1.5)
blocks = tuple(build_projectors(cell, basis))

runtime = NdftSharedMemory(
    n_stacks=4,
    units_per_stack=2,
    capacity_per_stack=256 * MiB,
    mesh=MeshNetwork(2, 2, link_bandwidth=24e9, hop_latency=40e-9),
)
replicated_layout = ReplicatedLayout(blocks=blocks, n_ranks=runtime.n_units)
shared_layout = SharedBlockLayout(blocks=blocks, runtime=runtime)

rng = np.random.default_rng(0)
psi = rng.normal(size=(6, basis.n_pw)) + 1j * rng.normal(size=(6, basis.n_pw))

reference = replicated_layout.apply(psi)
first_pass = shared_layout.apply(psi, rank=7)
assert np.allclose(reference, first_pass, atol=1e-12)
print("  wavefunction updates identical across layouts: OK")

inter_first = runtime.comm.inter_stack_bytes
shared_layout.apply(psi, rank=7)
inter_second = runtime.comm.inter_stack_bytes - inter_first

print(f"  replicated memory, all ranks: "
      f"{replicated_layout.total_bytes / 2**20:7.2f} MiB")
print(f"  shared-block memory, system:  "
      f"{shared_layout.total_bytes / 2**20:7.2f} MiB "
      f"(-{100 * (1 - shared_layout.total_bytes / replicated_layout.total_bytes):.1f}%)")
print(f"  inter-stack traffic, 1st apply: {inter_first / 1024:.1f} KiB")
print(f"  inter-stack traffic, 2nd apply: {inter_second / 1024:.1f} KiB "
      f"(hierarchical arbiter filter)")
print(f"  intra-stack locality: {runtime.comm.locality_fraction():.2f}")
