"""Quickstart: the paper's headline result in ~20 lines.

Runs LR-TDDFT for the large physical system (Si_1024) on three machines —
the CPU baseline, the GPU baseline, and the NDFT CPU-NDP system — and
prints the speedups the paper's abstract claims (5.2x and 2.5x).

Run:  python examples/quickstart.py
"""

from repro import NdftFramework, problem_size, run_cpu_baseline, run_gpu_baseline

problem = problem_size(1024)  # the paper's "large system"
print(f"{problem.label}: {problem.n_pairs} response pairs on a "
      f"{problem.grid_side}^3 grid")

framework = NdftFramework()
ndft = framework.run(problem=problem)
cpu = run_cpu_baseline(problem)
gpu = run_gpu_baseline(problem)

print(f"\n{'phase':<18s}{'CPU (s)':>10s}{'GPU (s)':>10s}{'NDFT (s)':>10s}"
      f"{'placement':>12s}")
for name, seconds in ndft.report.phase_seconds.items():
    print(
        f"{name:<18s}{cpu.phase_seconds[name]:>10.3f}"
        f"{gpu.phase_seconds[name]:>10.3f}{seconds:>10.3f}"
        f"{str(ndft.schedule.assignments[name]):>12s}"
    )
print(f"{'scheduling':<18s}{'':>10s}{'':>10s}"
      f"{ndft.report.scheduling_overhead:>10.3f}")
print(f"{'TOTAL':<18s}{cpu.total_time:>10.3f}{gpu.total_time:>10.3f}"
      f"{ndft.total_time:>10.3f}")

print(f"\nNDFT speedup vs CPU: {cpu.total_time / ndft.total_time:.2f}x "
      f"(paper: 5.2x)")
print(f"NDFT speedup vs GPU: {gpu.total_time / ndft.total_time:.2f}x "
      f"(paper: 2.5x)")
print(f"scheduling overhead: {100 * ndft.scheduling_overhead_fraction:.1f}% "
      f"of runtime (paper: 4.9%)")
print(f"pseudopotential memory: {ndft.memory_footprint_gb:.1f} GB shared-block "
      f"vs {ndft.replicated_footprint_gb:.1f} GB replicated "
      f"(-{ndft.memory_reduction_percent:.1f}%, paper: -57.8%)")
