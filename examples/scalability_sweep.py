"""Evaluation scenario: the full Fig. 8 sweep plus the roofline chart data.

Regenerates the scalability study (Si_16 .. Si_2048) with an ASCII speedup
chart, then prints the Fig. 4 roofline points, mirroring the paper's
evaluation flow end to end.

Run:  python examples/scalability_sweep.py
"""

from repro import NdftFramework
from repro.experiments.fig4_roofline import format_roofline, run_roofline_study
from repro.experiments.fig8_scalability import run_scalability

framework = NdftFramework()
study = run_scalability(framework=framework)

print("=== Fig. 8: speedup over the CPU baseline ===")
scale = 10.0  # columns per 1x
for n in study.atom_counts:
    ndft = study.ndft_speedup[n]
    gpu = study.gpu_speedup[n]
    bar_n = "#" * round(ndft * scale)
    bar_g = "-" * round(gpu * scale)
    print(f"  Si_{n:<5d} NDFT {ndft:5.2f}x |{bar_n}")
    print(f"  {'':<8s} GPU  {gpu:5.2f}x |{bar_g}")
print(f"\n  peak NDFT speedup: {study.peak_ndft_speedup:.2f}x at "
      f"Si_{study.peak_system} (paper: up to 5.33x at Si_2048)")

print("\n=== Fig. 4: roofline points on the CPU baseline ===")
print(format_roofline(run_roofline_study()))
print("\nObservations (paper §III-A):")
roofline = run_roofline_study()
print(f"  1. most kernels memory-bound: "
      f"{roofline.observation_memory_bound_majority()}")
print(f"  2. FFT/face-split memory-bound, GEMM compute-bound: "
      f"{roofline.observation_kernel_split()}")
print(f"  3. SYEVD flips memory->compute with system size: "
      f"{roofline.observation_size_dependence()}")
