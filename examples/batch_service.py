"""Serving scenario: a mixed batch of DFT jobs on one shared machine.

Submits several Si_N jobs of different sizes to the framework at once.
Each job is scheduled by the cost-aware offloader, then all jobs execute
concurrently through one shared DES engine: while the large job's dense
algebra holds the host CPU, the small jobs' memory-bound phases stream on
the NDP side, so the batch finishes well before the back-to-back sum.

A second section shows intra-job parallelism: the k-point pipeline splits
the face-split/FFT section into independent branches the scheduler can
spread across devices.

Run:  python examples/batch_service.py [n_atoms ...]
"""

import sys

from repro import NdftFramework
from repro.core.pipeline import build_kpoint_pipeline
from repro.core.scheduler import Placement
from repro.dft.workload import problem_size

sizes = [int(arg) for arg in sys.argv[1:]] or [64, 64, 512, 1024]
framework = NdftFramework()

print(f"=== batched serving: {len(sizes)} concurrent jobs ===")
batch = framework.run_many(sizes)
print(f"{'job':<10s} {'solo (s)':>10s} {'in-batch (s)':>13s} {'devices':>16s}")
for job, solo in zip(batch.jobs, batch.solo_times):
    devices = "+".join(sorted(str(p) for p in job.schedule.placements_used))
    print(
        f"{job.problem.label:<10s} {solo:10.4f} "
        f"{job.report.total_time:13.4f} {devices:>16s}"
    )
print(
    f"\nserial (back to back): {batch.serial_time:10.4f} s"
    f"\nbatch makespan:        {batch.makespan:10.4f} s"
    f"\nbatching speedup:      {batch.batching_speedup:10.2f}x"
    f"\nthroughput:            {batch.throughput:10.2f} jobs/s"
)

n_atoms = sizes[-1]
print(f"\n=== k-point DAG, Si_{n_atoms}: branch placements ===")
pipeline = build_kpoint_pipeline(problem_size(n_atoms), n_kpoints=2)
result = framework.run(pipeline=pipeline)
for name in pipeline.topological_order:
    print(f"  {name:<22s} -> {result.schedule.assignments[name]}")
print(
    f"cost-aware: makespan {result.total_time:.4f} s vs serialized "
    f"{result.report.serial_time:.4f} s"
)

# The work-conserving scheduler keeps both k-point branches on the NDP
# (splitting adds transfers without removing work).  Hand-splitting them
# shows what the DAG executor does when branches *do* land on different
# devices: the shorter branch disappears into the longer one's shadow.
split = dict(result.schedule.assignments)
split["face_split[k1]"] = split["fft[k1]"] = Placement.CPU
overlap = framework.executor.execute(
    pipeline, framework.scheduler.evaluate(pipeline, split)
)
print(
    f"hand-split: makespan {overlap.total_time:.4f} s vs serialized "
    f"{overlap.serial_time:.4f} s "
    f"({overlap.serial_time - overlap.total_time:.4f} s hidden by overlap)"
)
