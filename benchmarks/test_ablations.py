"""Bench: the §IV design-point ablations (granularity, policy, shmem)."""

import pytest

from benchmarks.conftest import print_once
from repro.experiments.ablations import (
    run_granularity_ablation,
    run_policy_ablation,
    run_shared_memory_ablation,
)


def test_granularity_ablation(benchmark, framework):
    overheads = benchmark(run_granularity_ablation, 1024, framework)
    rows = "\n".join(
        f"  {name:<12s} {seconds:12.6f} s" for name, seconds in overheads.items()
    )
    print_once("abl-granularity", "Offload-granularity Eq. 1 overhead (Si_1024):\n" + rows)
    assert overheads["function"] < overheads["basic_block"] < overheads["instruction"]


@pytest.mark.parametrize("n_atoms", [64, 1024], ids=["si64", "si1024"])
def test_policy_ablation(benchmark, framework, n_atoms):
    result = benchmark(run_policy_ablation, n_atoms, framework)
    rows = "\n".join(
        f"  {name:<12s} {seconds:10.4f} s" for name, seconds in result.totals.items()
    )
    print_once(
        f"abl-policy-{n_atoms}",
        f"Scheduling-policy totals (Si_{n_atoms}):\n" + rows,
    )
    assert result.cost_aware_wins


def test_shared_memory_ablation(benchmark):
    result = benchmark.pedantic(
        run_shared_memory_ablation, rounds=3, iterations=1
    )
    print_once(
        "abl-shmem",
        "Shared-memory functional ablation (Si_16, 8 ranks, 4 stacks):\n"
        f"  replicated total: {result.replicated_total_bytes/2**20:8.2f} MiB\n"
        f"  shared-block total: {result.shared_total_bytes/2**20:6.2f} MiB "
        f"(-{result.memory_reduction_percent:.1f} %)\n"
        f"  inter-stack bytes, pass 1: {result.inter_stack_bytes_first_pass}\n"
        f"  inter-stack bytes, pass 2: {result.inter_stack_bytes_second_pass} "
        f"(arbiter filter)\n"
        f"  locality after two passes: {result.locality_after_two_passes:.2f}",
    )
    assert result.filter_effective
