"""Bench: regenerate Fig. 7 (CPU/GPU/NDFT breakdowns, small + large)."""

import pytest

from benchmarks.conftest import print_once
from repro.experiments.fig7_breakdown import (
    breakdown_comparisons,
    format_breakdown,
    run_breakdown,
)
from repro.experiments.report import format_table


@pytest.mark.parametrize("n_atoms", [64, 1024], ids=["small_si64", "large_si1024"])
def test_fig7_breakdown(benchmark, framework, n_atoms):
    study = benchmark(run_breakdown, n_atoms, framework)
    print_once(
        f"fig7-{n_atoms}",
        format_breakdown(study)
        + "\n"
        + format_table(
            f"Fig. 7 quoted numbers, Si_{n_atoms}", breakdown_comparisons(study)
        ),
    )
    assert study.speedup_vs_cpu > 1.0
    assert study.speedup_vs_gpu > 1.0
