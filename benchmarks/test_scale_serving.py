"""Bench: the serving fast path (signature memoization + slimmed DES).

Asserts the PR's headline acceptance criterion: on a 256-job mixed-size
batch, one cold ``run_many`` call with memoization is >= 5x faster
wall-clock than the uncached path, with *identical* batch results
(makespan, throughput, solo times, per-job reports).

Unlike the paper-artifact benchmarks this file does not append to
``benchmarks_report.txt`` — wall-clock numbers are host-specific, so the
pre-existing report sections stay byte-identical across machines.  The
measurements land in ``BENCH_serving.json`` instead, the start of the
serving performance trajectory.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.framework import NdftFramework
from repro.core.pipeline import build_kpoint_pipeline, build_pipeline
from repro.dft.workload import problem_size
from repro.experiments.scale_serving import (
    job_mix,
    measure_run_many,
    run_fleet_bench,
    run_serve_bench,
)
from repro.fleet import WorkerPool

#: The acceptance batch: 256 jobs over four distinct sizes.
ACCEPTANCE_BATCH = 256

#: The fleet acceptance batch and fleet size (the --replicas 4 target).
FLEET_BATCH = 1024
FLEET_REPLICAS = 4


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def comparison():
    """One cold cached-vs-uncached measurement of the acceptance batch."""
    sizes = job_mix(ACCEPTANCE_BATCH)
    # Best-of-5 per path: wall-clock minima are stable even on loaded CI
    # hosts, and the measured speedup (~6-8x) clears the 5x bar with
    # margin only when the noise floor is filtered out.
    uncached_wall, uncached = measure_run_many(sizes, memoize=False, repeats=5)
    cached_wall, cached = measure_run_many(sizes, memoize=True, repeats=5)
    return uncached_wall, uncached, cached_wall, cached


def test_fast_path_results_identical(comparison):
    """The fast path is an optimization, never an approximation: every
    number in the batch result matches the uncached path exactly."""
    _uw, uncached, _cw, cached = comparison
    assert cached.makespan == uncached.makespan
    assert cached.throughput == uncached.throughput
    assert cached.solo_times == uncached.solo_times
    assert len(cached.jobs) == len(uncached.jobs) == ACCEPTANCE_BATCH
    for job_c, job_u in zip(cached.jobs, uncached.jobs):
        assert job_c.report == job_u.report
        assert job_c.schedule == job_u.schedule
        assert job_c.sca_reports == job_u.sca_reports


def test_fast_path_wall_clock_speedup(comparison):
    """>= 5x wall-clock on the 256-job batch (measured ~6-8x)."""
    uncached_wall, _u, cached_wall, _c = comparison
    speedup = uncached_wall / cached_wall
    print(
        f"\nserving fast path: {ACCEPTANCE_BATCH} jobs, "
        f"uncached {uncached_wall*1e3:.1f} ms -> cached {cached_wall*1e3:.1f} ms "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 5.0


def test_batch_work_is_deduplicated():
    """256 jobs over 4 distinct signatures: exactly 4 schedules, 4 SCA
    passes and 4 solo runs; everything else is a cache hit."""
    framework = NdftFramework()
    framework.run_many(job_mix(ACCEPTANCE_BATCH))
    stats = framework.cache_stats
    n_distinct = len(set(job_mix(ACCEPTANCE_BATCH)))
    for kind in ("pipeline", "schedule", "solo", "sca"):
        assert stats[f"{kind}_misses"] == n_distinct
        assert stats[f"{kind}_hits"] == ACCEPTANCE_BATCH - n_distinct


def test_serving_sweep_emits_bench_json(tmp_path):
    """The batch-size sweep runs end to end and writes a BENCH_serving
    JSON with host metadata and the open-queue latency block.  (Written
    to a temp path: the committed repo-root BENCH_serving.json is the
    previous PR's record, regenerated deliberately, and the CI trend
    gate diffs fresh measurements against it.)"""
    report = run_serve_bench(batch_sizes=(16, 64, 256), repeats=2)
    assert all(p.results_identical for p in report.points)
    path = report.write_json(tmp_path / "BENCH_serving.json")
    assert path.exists()
    payload = json.loads(path.read_text())
    assert payload["metadata"]["python"]
    assert payload["metadata"]["platform"]
    for point in payload["points"]:
        # Per-backend breakdown: the all-chain default mix rides the
        # chain replay for every job (a fresh framework per repeat
        # means the tuner is always in its explore step, which walks
        # the static order).
        assert point["backend_jobs"] == {"chain_replay": point["batch_size"]}
        # Per-backend wall breakdown: same keys, positive seconds.
        assert set(point["backend_wall_seconds"]) == {"chain_replay"}
        assert point["backend_wall_seconds"]["chain_replay"] > 0.0
        arrival = point["arrival"]
        assert arrival["rate_jobs_per_second"] > 0
        assert arrival["p50_latency_seconds"] <= arrival["p99_latency_seconds"]
        assert arrival["mean_queueing_delay_seconds"] >= -1e-9
    # Throughput-oriented sanity: bigger batches amortize better, so
    # cached jobs/sec should not collapse as the batch grows.
    first, last = report.points[0], report.points[-1]
    assert last.jobs_per_second_cached > first.jobs_per_second_cached * 0.5


def test_scaleout_batch_des_speedup():
    """The tentpole: the signature-coalesced, sharded FIFO replay beats
    the uncollapsed generator DES on the executor's own 1024-job batch
    by >= 2x wall-clock (measured ~4-6x), with identical reports (the
    equivalence itself is asserted exactly in tests/core)."""
    framework = NdftFramework()
    jobs = []
    for n_atoms in job_mix(1024):
        pipeline = framework._build_pipeline(
            problem_size(n_atoms), build_pipeline
        )
        schedule = framework._schedule_for(
            pipeline, framework.job_signature(pipeline)
        )
        jobs.append((pipeline, schedule))

    def best_of(callable_, repeats=3):
        best, result = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()
            result = callable_()
            best = min(best, time.perf_counter() - start)
        return best, result

    fast_wall, fast = best_of(lambda: framework.executor.execute_many(jobs))
    slow_wall, slow = best_of(
        lambda: framework.executor.execute_many(
            jobs, coalesce=False, shard=False
        )
    )
    assert fast.job_reports == slow.job_reports
    assert fast.makespan == slow.makespan
    speedup = slow_wall / fast_wall
    print(
        f"\nscale-out batch DES: 1024 jobs, engine {slow_wall*1e3:.1f} ms "
        f"-> replay {fast_wall*1e3:.1f} ms ({speedup:.1f}x)"
    )
    assert speedup >= 2.0


def test_dag_batch_replay_speedup():
    """The backend-layer tentpole: a DAG-heavy (k-point) 512-job batch
    runs the slim DAG replay — not the generator engine — and beats the
    forced-engine path by >= 2x wall-clock (measured ~3-4x), with
    bit-identical reports (the equivalence itself is property-tested in
    tests/core/test_dag_replay.py)."""
    framework = NdftFramework()
    jobs = []
    for n_atoms in job_mix(512):
        pipeline = framework._build_pipeline(
            problem_size(n_atoms), build_kpoint_pipeline
        )
        schedule = framework._schedule_for(
            pipeline, framework.job_signature(pipeline)
        )
        jobs.append((pipeline, schedule))

    def best_of(callable_, repeats=3):
        best, result = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()
            result = callable_()
            best = min(best, time.perf_counter() - start)
        return best, result

    fast_wall, fast = best_of(lambda: framework.executor.execute_many(jobs))
    slow_wall, slow = best_of(
        lambda: framework.executor.execute_many(jobs, backend="engine")
    )
    assert fast.backend_jobs == {"dag_replay": 512}
    assert slow.backend_jobs == {"engine": 512}
    assert fast.job_reports == slow.job_reports
    assert fast.makespan == slow.makespan
    speedup = slow_wall / fast_wall
    print(
        f"\nDAG-batch replay: 512 k-point jobs, engine {slow_wall*1e3:.1f} ms "
        f"-> replay {fast_wall*1e3:.1f} ms ({speedup:.1f}x)"
    )
    assert speedup >= 2.0


def test_vector_replay_speedup():
    """The wave-replay tentpole: a 16384-job single-signature k-point
    shard runs the numpy wave recurrence >= 5x faster wall-clock than
    the slim DAG replay (measured ~7-9x), with bit-identical reports
    *and* lane occupancy (the equivalence itself is property-tested in
    tests/core/test_vector_replay.py)."""
    framework = NdftFramework()
    pipeline = framework._build_pipeline(
        problem_size(64), build_kpoint_pipeline
    )
    schedule = framework._schedule_for(
        pipeline, framework.job_signature(pipeline)
    )
    jobs = [(pipeline, schedule)] * 16384

    def best_of(callable_, repeats=3):
        best, result = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()
            result = callable_()
            best = min(best, time.perf_counter() - start)
        return best, result

    dag_wall, dag = best_of(
        lambda: framework.executor.execute_many(jobs, backend="dag_replay")
    )
    vector_wall, vector = best_of(
        lambda: framework.executor.execute_many(
            jobs, backend="vector_replay"
        )
    )
    assert vector.backend_jobs == {"vector_replay": 16384}
    assert dag.backend_jobs == {"dag_replay": 16384}
    results_identical = (
        vector.job_reports == dag.job_reports
        and vector.makespan == dag.makespan
        and vector.lane_occupancy == dag.lane_occupancy
    )
    assert results_identical
    speedup = dag_wall / vector_wall
    print(
        f"\nwave replay: 16384 k-point jobs, dag_replay "
        f"{dag_wall*1e3:.1f} ms -> vector_replay {vector_wall*1e3:.1f} ms "
        f"({speedup:.1f}x, results_identical={results_identical})"
    )
    assert speedup >= 5.0


def test_fleet_results_bit_identical_to_single_process():
    """The fleet tentpole's correctness half, asserted unconditionally:
    every per-job virtual completion time a 4-replica worker-process
    fleet reports is bit-identical to a single-process ``run_many`` of
    the same routed assignment."""
    sizes = job_mix(FLEET_BATCH)
    with WorkerPool(FLEET_REPLICAS) as pool:
        result = pool.serve(sizes)
    for summary in result.replicas:
        if not summary.job_indices:
            continue
        solo = NdftFramework().run_many(
            [sizes[i] for i in summary.job_indices]
        )
        assert summary.completion_times == tuple(
            job.report.total_time for job in solo.jobs
        )


@pytest.mark.skipif(
    _usable_cpus() < FLEET_REPLICAS,
    reason=f"fleet speedup needs >= {FLEET_REPLICAS} usable CPUs "
    f"(host has {_usable_cpus()}); the bit-identity half runs everywhere",
)
def test_fleet_wall_clock_speedup():
    """The fleet tentpole's throughput half: sustained serving of the
    1024-job mixed batch at --replicas 4 is >= 2.5x the single-process
    wall-clock jobs/s.  Measured on a warm pool over several rounds so
    per-serve dispatch overhead is amortized the way a serving loop
    amortizes it; best-of-3 filters scheduler noise."""
    sizes = job_mix(FLEET_BATCH)
    rounds = 8

    single = NdftFramework()
    single.run_many(sizes)  # warm caches: steady-state serving regime
    single_wall = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(rounds):
            single.run_many(sizes)
        single_wall = min(single_wall, time.perf_counter() - start)
    single_jps = (FLEET_BATCH * rounds) / single_wall

    with WorkerPool(FLEET_REPLICAS) as pool:
        pool.serve(sizes)  # warm-up: spawn workers, share the snapshot
        fleet_jps = 0.0
        for _ in range(3):
            result = pool.serve(sizes, rounds=rounds)
            fleet_jps = max(fleet_jps, result.jobs_per_second_wall)

    speedup = fleet_jps / single_jps
    print(
        f"\nfleet serving: {FLEET_BATCH} jobs x {rounds} rounds, "
        f"single-process {single_jps:.0f} jobs/s -> "
        f"{FLEET_REPLICAS} replicas {fleet_jps:.0f} jobs/s "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 2.5


def test_fleet_bench_emits_replica_breakdown(tmp_path):
    """serve-bench --replicas: the fleet sweep records the per-replica
    breakdown and the fleet size in BENCH_serving.json, and the closed
    measurement's throughput column carries the fleet aggregate."""
    report = run_fleet_bench(
        batch_sizes=(16, 64), repeats=1, replicas=2, rounds=2
    )
    assert report.replicas == 2
    path = report.write_json(tmp_path / "BENCH_serving.json")
    payload = json.loads(path.read_text())
    assert payload["replicas"] == 2
    for point in payload["points"]:
        fleet = point["fleet"]
        assert fleet["replicas"] == 2
        assert fleet["rounds"] == 2
        assert sum(fleet["replica_jobs"]) == point["batch_size"]
        assert len(fleet["replica_utilization"]) == 2
        assert fleet["imbalance_ratio"] >= 1.0
        assert fleet["jobs_per_second_wall"] > 0
        assert point["jobs_per_second_cached"] > 0
        arrival = point["arrival"]
        assert arrival["p50_latency_seconds"] <= arrival["p99_latency_seconds"]


def test_cached_run_many_throughput(benchmark):
    """pytest-benchmark timing of the fast path itself (warm caches —
    the steady-state serving regime)."""
    framework = NdftFramework()
    sizes = job_mix(64)
    framework.run_many(sizes)  # warm the signature caches
    result = benchmark(framework.run_many, sizes)
    assert result.n_jobs == 64
