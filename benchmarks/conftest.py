"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables/figures and prints
its rows (with the paper's values alongside) once per session, so
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction
report.  ``pytest-benchmark`` then times the regeneration itself.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.framework import NdftFramework

_printed: set[str] = set()

#: The reproduction report: every artifact's rows, written fresh each
#: benchmark session (pytest captures stdout, so a file is the reliable
#: place for the paper-vs-measured tables).
REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent / "benchmarks_report.txt"


def print_once(key: str, text: str) -> None:
    """Emit an artifact's rows once per session (benchmarks run their
    payload many times; the report should not repeat)."""
    if key not in _printed:
        if not _printed:
            REPORT_PATH.write_text("NDFT reproduction report\n")
        _printed.add(key)
        print("\n" + text + "\n")
        with REPORT_PATH.open("a") as report:
            report.write("\n" + text + "\n")


@pytest.fixture(scope="session")
def framework():
    return NdftFramework()
