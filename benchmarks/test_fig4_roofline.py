"""Bench: regenerate Fig. 4 (roofline of LR-TDDFT kernels)."""

from benchmarks.conftest import print_once
from repro.experiments.fig4_roofline import format_roofline, run_roofline_study


def test_fig4_roofline(benchmark):
    study = benchmark(run_roofline_study)
    print_once("fig4", format_roofline(study))
    assert study.observation_memory_bound_majority()
    assert study.observation_kernel_split()
    assert study.observation_size_dependence()
