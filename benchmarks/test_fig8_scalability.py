"""Bench: regenerate Fig. 8 (speedup over CPU, Si_16 .. Si_2048)."""

from benchmarks.conftest import print_once
from repro.experiments.fig8_scalability import (
    format_scalability,
    run_scalability,
    scalability_comparisons,
)
from repro.experiments.report import format_table


def test_fig8_scalability(benchmark, framework):
    study = benchmark(run_scalability, framework=framework)
    print_once(
        "fig8",
        format_scalability(study)
        + "\n"
        + format_table("Fig. 8 quoted numbers", scalability_comparisons(study)),
    )
    assert study.is_monotone_from(start=32)
    assert study.ndft_speedup[2048] > 4.5
