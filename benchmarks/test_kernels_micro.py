"""Microbenchmarks of the functional numpy kernels (executable substrate).

Not a paper artifact, but the performance sanity layer for the functional
implementation: times the five Fig. 1 operations on an executable Si_8
problem, so regressions in the physics substrate are visible.
"""

import numpy as np
import pytest

from repro.dft.basis import PlaneWaveBasis
from repro.dft.groundstate import solve_ground_state
from repro.dft.kernels import face_splitting_product, fft_3d, gemm, syevd
from repro.dft.lattice import silicon_supercell
from repro.dft.lrtddft import run_lrtddft
from repro.dft.pseudopotential import apply_nonlocal, build_projectors


@pytest.fixture(scope="module")
def setup():
    cell = silicon_supercell(8)
    basis = PlaneWaveBasis(cell, ecut=2.0)
    gs = solve_ground_state(cell, basis)
    rng = np.random.default_rng(1)
    return cell, basis, gs, rng


def test_bench_fft_batch(benchmark, setup):
    _cell, basis, _gs, rng = setup
    batch = rng.normal(size=(16, *basis.fft_shape)).astype(complex)
    benchmark(fft_3d, batch)


def test_bench_face_splitting(benchmark, setup):
    _cell, basis, gs, _rng = setup
    psi_v = basis.to_grid(gs.valence_orbitals()[:8]).reshape(8, -1)
    psi_c = basis.to_grid(gs.conduction_orbitals()[:4]).reshape(4, -1)
    benchmark(face_splitting_product, psi_v, psi_c)


def test_bench_gemm(benchmark, setup):
    _cell, _basis, _gs, rng = setup
    a = rng.normal(size=(64, 2048)).astype(complex)
    benchmark(gemm, a.conj(), a.T)


def test_bench_syevd(benchmark, setup):
    _cell, _basis, _gs, rng = setup
    m = rng.normal(size=(128, 128)) + 1j * rng.normal(size=(128, 128))
    h = m + m.conj().T
    benchmark(syevd, h)


def test_bench_pseudopotential_apply(benchmark, setup):
    cell, basis, _gs, rng = setup
    blocks = build_projectors(cell, basis)
    psi = rng.normal(size=(16, basis.n_pw)).astype(complex)
    benchmark(apply_nonlocal, blocks, psi)


def test_bench_lrtddft_end_to_end(benchmark, setup):
    _cell, _basis, gs, _rng = setup
    result = benchmark.pedantic(
        run_lrtddft,
        kwargs=dict(ground_state=gs, n_active_valence=4, n_active_conduction=4),
        rounds=3,
        iterations=1,
    )
    assert result.excitation_energies[0] > 0
