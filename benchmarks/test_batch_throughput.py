"""Bench: batched serving on the shared CPU-NDP machine (extension)."""

from benchmarks.conftest import print_once
from repro.experiments.batch_throughput import (
    DEFAULT_BATCH_SIZES,
    format_batch,
    run_batch_study,
)


def test_batch_throughput(benchmark, framework):
    study = benchmark(run_batch_study, DEFAULT_BATCH_SIZES, framework)
    print_once("batch", format_batch(study))
    # Sharing the machine must beat running the jobs back to back: the
    # cost-aware placement leaves each device idle part of the time, and
    # the batch executor fills those holes with other jobs' stages.
    assert study.batching_speedup > 1.0
    assert study.makespan < study.serial_time
