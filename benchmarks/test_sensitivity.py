"""Bench: design-space sensitivity sweeps (extension beyond the paper)."""

from benchmarks.conftest import print_once
from repro.experiments.sensitivity import (
    format_sweep,
    sweep_mesh_link_bandwidth,
    sweep_stack_count,
)


def test_mesh_bandwidth_sweep(benchmark):
    points = benchmark.pedantic(
        sweep_mesh_link_bandwidth, args=(1024,), rounds=3, iterations=1
    )
    print_once(
        "sens-mesh",
        format_sweep("Mesh link bandwidth sweep (Si_1024):", points),
    )
    speedups = [p.speedup_vs_cpu for p in points]
    assert speedups == sorted(speedups)


def test_stack_count_sweep(benchmark):
    points = benchmark.pedantic(
        sweep_stack_count, args=(1024,), rounds=3, iterations=1
    )
    print_once("sens-stacks", format_sweep("Stack count sweep (Si_1024):", points))
    assert points[-1].speedup_vs_cpu > points[0].speedup_vs_cpu
