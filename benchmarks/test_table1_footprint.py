"""Bench: regenerate Table I (pseudopotential memory footprint)."""

from benchmarks.conftest import print_once
from repro.experiments.table1_footprint import (
    format_table1,
    run_table1,
    table1_comparisons,
)


def test_table1_footprint(benchmark):
    rows = benchmark(run_table1)
    print_once("table1", format_table1())
    assert len(rows) == 4
    for comparison in table1_comparisons():
        assert comparison.ratio is not None
        assert abs(comparison.ratio - 1.0) < 0.01
