"""Bench: regenerate the §VI-A discussion numbers."""

from benchmarks.conftest import print_once
from repro.experiments.discussion import run_discussion
from repro.experiments.report import format_table


def test_discussion_numbers(benchmark, framework):
    numbers = benchmark(run_discussion, framework)
    print_once(
        "discussion",
        format_table("§VI-A discussion numbers", numbers.comparisons()),
    )
    assert abs(numbers.footprint_reduction_pct - 57.8) < 0.3
    assert abs(numbers.footprint_vs_cpu_ratio - 1.08) < 0.01
