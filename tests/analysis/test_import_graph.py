"""Import-graph extraction on a synthetic package.

Covers the provenance the rules rely on: module-scope vs lazy
(function-local) imports, ``if TYPE_CHECKING:`` blocks, relative
imports at every level, and ``from pkg import name`` resolving to the
deepest known module.
"""

from pathlib import Path

import pytest

from repro.analysis.graph import ImportGraph
from repro.analysis.project import ProjectModel
from repro.analysis.runner import collect_modules

SYNTHETIC = {
    "src/pkg/__init__.py": "from pkg import core\n",
    "src/pkg/core.py": (
        "import pkg.util\n"
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from pkg.top import Top\n"
        "def late():\n"
        "    from pkg.sub.leaf import leaf\n"
        "    return leaf\n"
    ),
    "src/pkg/util.py": "X = 1\n",
    "src/pkg/top.py": "from pkg.core import late\nclass Top: pass\n",
    "src/pkg/sub/__init__.py": "",
    "src/pkg/sub/leaf.py": (
        "from .. import util\n"
        "from ..core import late\n"
        "from . import helper\n"
        "def leaf():\n"
        "    return util.X\n"
    ),
    "src/pkg/sub/helper.py": "",
}


@pytest.fixture()
def graph(tmp_path: Path) -> ImportGraph:
    for rel, source in SYNTHETIC.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    project = ProjectModel(root=tmp_path)
    modules = collect_modules(tmp_path, [Path("src")], project)
    return ImportGraph.build(modules)


def edges_to(graph: ImportGraph, source: str) -> dict[str, object]:
    return {edge.target: edge for edge in graph.imports_of(source)}


class TestModuleNames:
    def test_src_root_is_stripped_and_init_collapses(self, graph):
        assert set(graph.modules) == {
            "pkg",
            "pkg.core",
            "pkg.util",
            "pkg.top",
            "pkg.sub",
            "pkg.sub.leaf",
            "pkg.sub.helper",
        }


class TestEdgeProvenance:
    def test_plain_import_is_not_lazy(self, graph):
        edge = edges_to(graph, "pkg.core")["pkg.util"]
        assert not edge.lazy
        assert not edge.type_checking

    def test_function_local_import_is_lazy(self, graph):
        edge = edges_to(graph, "pkg.core")["pkg.sub.leaf"]
        assert edge.lazy

    def test_type_checking_import_is_flagged(self, graph):
        edge = edges_to(graph, "pkg.core")["pkg.top"]
        assert edge.type_checking
        assert not edge.lazy

    def test_from_import_resolves_to_known_module(self, graph):
        # ``from pkg import core`` targets the submodule, not the package.
        assert "pkg.core" in edges_to(graph, "pkg")


class TestRelativeImports:
    def test_two_level_relative(self, graph):
        targets = edges_to(graph, "pkg.sub.leaf")
        assert "pkg.util" in targets
        assert "pkg.core" in targets

    def test_one_level_relative(self, graph):
        assert "pkg.sub.helper" in edges_to(graph, "pkg.sub.leaf")


class TestImportersOf:
    def test_reverse_lookup_skips_type_checking(self, graph):
        importers = graph.importers_of("pkg.top")
        # pkg.core only imports pkg.top under TYPE_CHECKING.
        assert importers == ()

    def test_reverse_lookup_sees_runtime_imports(self, graph):
        assert "pkg.top" in graph.importers_of("pkg.core")
