"""Each invariant rule fires on a violating snippet and stays quiet on
a conforming one."""

import ast
from pathlib import Path

import pytest

from repro.analysis.findings import Context, ModuleInfo
from repro.analysis.graph import ImportGraph
from repro.analysis.project import ProjectModel
from repro.analysis.rules import (
    BackendContractRule,
    DeterminismRule,
    ErrorDisciplineRule,
    LayeringRule,
    RuleConfig,
    SlotsRule,
    default_rules,
)


def make_module(name: str, source: str) -> ModuleInfo:
    path = "src/" + name.replace(".", "/") + ".py"
    return ModuleInfo(name=name, path=path, tree=ast.parse(source))


def run_rule(rule, *modules: ModuleInfo):
    table = {module.name: module for module in modules}
    graph = ImportGraph.build(table)
    context = Context(
        project=ProjectModel(root=Path(".")), modules=table
    )
    findings = []
    for module in modules:
        findings.extend(rule.check(module, graph, context))
    return findings


@pytest.fixture()
def config() -> RuleConfig:
    return RuleConfig()


class TestLayeringRule:
    def test_upward_import_fires(self, config):
        # pipeline (band 2) importing the framework (band 6) is upward.
        bad = make_module(
            "repro.core.pipeline", "from repro.core import framework\n"
        )
        top = make_module("repro.core.framework", "")
        findings = run_rule(LayeringRule(config), bad, top)
        assert [f.rule for f in findings] == ["layering"]
        assert "upward" in findings[0].message

    def test_lazy_upward_import_fires_and_is_labelled(self, config):
        bad = make_module(
            "repro.core.pipeline",
            "def f():\n    from repro.core import framework\n",
        )
        top = make_module("repro.core.framework", "")
        findings = run_rule(LayeringRule(config), bad, top)
        assert len(findings) == 1
        assert "(lazy import)" in findings[0].message

    def test_downward_import_passes(self, config):
        good = make_module(
            "repro.core.framework", "from repro.core import pipeline\n"
        )
        low = make_module("repro.core.pipeline", "")
        assert run_rule(LayeringRule(config), good, low) == []

    def test_type_checking_import_is_exempt(self, config):
        ok = make_module(
            "repro.core.pipeline",
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.core import framework\n",
        )
        top = make_module("repro.core.framework", "")
        assert run_rule(LayeringRule(config), ok, top) == []

    def test_unmapped_project_module_fires(self, config):
        stray = make_module("repro.newsubsystem.thing", "")
        findings = run_rule(LayeringRule(config), stray)
        assert len(findings) == 1
        assert "not assigned to a layer" in findings[0].message

    def test_foreign_module_is_out_of_scope(self, config):
        other = make_module("tests.core.test_x", "import repro\n")
        assert run_rule(LayeringRule(config), other) == []


class TestDeterminismRule:
    def test_wall_clock_fires(self, config):
        bad = make_module(
            "repro.hw.engine", "import time\nT = time.time()\n"
        )
        findings = run_rule(DeterminismRule(config), bad)
        assert [f.rule for f in findings] == ["determinism"]
        assert "time.time" in findings[0].message

    def test_aliased_from_import_fires(self, config):
        bad = make_module(
            "repro.core.trace",
            "from time import perf_counter as pc\nT = pc()\n",
        )
        findings = run_rule(DeterminismRule(config), bad)
        assert len(findings) == 1
        assert "time.perf_counter" in findings[0].message

    def test_unseeded_random_fires(self, config):
        bad = make_module(
            "repro.fleet.router", "import random\nX = random.random()\n"
        )
        assert len(run_rule(DeterminismRule(config), bad)) == 1

    def test_unseeded_constructor_fires(self, config):
        bad = make_module(
            "repro.core.faults",
            "import random\nGEN = random.Random()\n",
        )
        assert len(run_rule(DeterminismRule(config), bad)) == 1

    def test_seeded_constructor_passes(self, config):
        good = make_module(
            "repro.core.faults",
            "import random\nimport numpy as np\n"
            "GEN = random.Random(7)\n"
            "RS = np.random.RandomState(3)\n",
        )
        assert run_rule(DeterminismRule(config), good) == []

    def test_allowlisted_site_passes(self, config):
        # BackendTuner's wall measurement is sanctioned in the config.
        good = make_module(
            "repro.core.executor",
            "from time import perf_counter\nT = perf_counter()\n",
        )
        assert run_rule(DeterminismRule(config), good) == []

    def test_out_of_scope_module_passes(self, config):
        other = make_module(
            "repro.dft.basis", "import time\nT = time.time()\n"
        )
        assert run_rule(DeterminismRule(config), other) == []


BACKEND_OK = """
from typing import Protocol

class SimulationBackend(Protocol):
    name: str

FAILED_REASON = "it cannot"

class GoodBackend:
    name = "good"
    def simulate(self, executor, shard_jobs, arrivals, lane_log):
        if not shard_jobs:
            return None
        return [], 0.0, 0
    def unsupported_reason(self, executor, shard_jobs):
        return FAILED_REASON

def register_backend(backend):
    pass

register_backend(GoodBackend())
"""

BACKEND_BAD = """
REASON = "named"

class ForgottenBackend:
    name = "forgotten"
    def simulate(self, executor, shard_jobs, arrivals, lane_log):
        try:
            return [], 0.0, 0
        except Exception:
            return None
    def unsupported_reason(self, executor, shard_jobs):
        return "an inline reason"

class SilentBackend:
    name = "silent"
    def simulate(self, executor, shard_jobs, arrivals, lane_log):
        if not shard_jobs:
            return None
        return [], 0.0, 0

def register_backend(backend):
    pass

register_backend(SilentBackend())
"""


class TestBackendContractRule:
    def test_conforming_module_passes(self, config):
        good = make_module("repro.core.backends", BACKEND_OK)
        assert run_rule(BackendContractRule(config), good) == []

    def test_violations_fire(self, config):
        bad = make_module("repro.core.backends", BACKEND_BAD)
        findings = run_rule(BackendContractRule(config), bad)
        messages = "\n".join(f.message for f in findings)
        assert "ForgottenBackend is never passed" in messages
        assert "except handler that returns" in messages
        assert "inline reason" in messages
        assert "defines no unsupported_reason" in messages
        assert len(findings) == 4

    def test_other_modules_are_out_of_scope(self, config):
        other = make_module("repro.core.executor", BACKEND_BAD)
        assert run_rule(BackendContractRule(config), other) == []


class TestSlotsRule:
    def test_plain_class_fires(self, config):
        bad = make_module(
            "repro.hw.engine", "class Hot:\n    def __init__(self): pass\n"
        )
        findings = run_rule(SlotsRule(config), bad)
        assert [f.rule for f in findings] == ["slots"]
        assert "Hot" in findings[0].message

    def test_slots_and_slotted_dataclass_pass(self, config):
        good = make_module(
            "repro.core.executor",
            "from dataclasses import dataclass\n"
            "class A:\n    __slots__ = ('x',)\n"
            "@dataclass(frozen=True, slots=True)\n"
            "class B:\n    x: int\n",
        )
        assert run_rule(SlotsRule(config), good) == []

    def test_exceptions_and_protocols_exempt(self, config):
        good = make_module(
            "repro.hw.vector_replay",
            "from typing import Protocol\n"
            "class _Declined(Exception):\n    pass\n"
            "class Shape(Protocol):\n    x: int\n",
        )
        assert run_rule(SlotsRule(config), good) == []

    def test_other_modules_are_out_of_scope(self, config):
        other = make_module("repro.core.framework", "class Cold:\n    pass\n")
        assert run_rule(SlotsRule(config), other) == []


class TestErrorDisciplineRule:
    def test_value_error_fires(self, config):
        bad = make_module(
            "repro.fleet.pool",
            "def f(x):\n"
            "    if not x:\n"
            "        raise ValueError('no jobs')\n",
        )
        findings = run_rule(ErrorDisciplineRule(config), bad)
        assert [f.rule for f in findings] == ["error-discipline"]

    def test_config_error_passes(self, config):
        good = make_module(
            "repro.cli",
            "from repro.errors import ConfigError\n"
            "def f(x):\n"
            "    if not x:\n"
            "        raise ConfigError('no jobs')\n",
        )
        assert run_rule(ErrorDisciplineRule(config), good) == []

    def test_out_of_scope_module_passes(self, config):
        other = make_module(
            "repro.core.ir", "def f():\n    raise ValueError('fine here')\n"
        )
        assert run_rule(ErrorDisciplineRule(config), other) == []


class TestDefaultRules:
    def test_five_rules_with_unique_ids(self):
        rules = default_rules()
        ids = [rule.id for rule in rules]
        assert len(ids) == 5
        assert len(set(ids)) == 5
        assert set(ids) == {
            "layering",
            "determinism",
            "backend-contract",
            "slots",
            "error-discipline",
        }
