"""The repo passes its own analyzer — with an *empty* baseline — and
the CLI surface (formats, rule selection, baseline round-trip) works.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.runner import (
    BASELINE_NAME,
    load_baseline,
    main,
    run_analysis,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSelfCheck:
    def test_src_repro_is_clean(self):
        findings = run_analysis(REPO_ROOT, [Path("src")])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_tests_and_benchmarks_are_clean(self):
        findings = run_analysis(
            REPO_ROOT, [Path("src"), Path("tests"), Path("benchmarks")]
        )
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_committed_baseline_is_empty(self):
        baseline = load_baseline(REPO_ROOT / BASELINE_NAME)
        assert baseline == set()


class TestCli:
    def test_exit_zero_on_clean_repo(self, capsys):
        assert main(["--root", str(REPO_ROOT)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert main(["--root", str(REPO_ROOT), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0
        assert set(payload["rules"]) == {
            "layering",
            "determinism",
            "backend-contract",
            "slots",
            "error-discipline",
        }

    def test_rule_selection(self, capsys):
        code = main(
            ["--root", str(REPO_ROOT), "--format", "json", "--rules", "slots"]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out)["rules"] == ["slots"]

    def test_unknown_rule_id_is_usage_error(self, capsys):
        assert main(["--root", str(REPO_ROOT), "--rules", "nope"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["--root", str(REPO_ROOT), "no/such/dir"]) == 2
        assert "no such file" in capsys.readouterr().err


@pytest.fixture()
def violating_repo(tmp_path: Path) -> Path:
    bad = tmp_path / "src" / "repro" / "fleet" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "def f(x):\n"
        "    if not x:\n"
        "        raise ValueError('no jobs')\n"
    )
    return tmp_path


class TestBaselineRoundTrip:
    def test_findings_fail_then_baseline_suppresses(
        self, violating_repo, capsys
    ):
        root = str(violating_repo)
        assert main(["--root", root]) == 1
        out = capsys.readouterr().out
        assert "error-discipline" in out

        assert main(["--root", root, "--write-baseline"]) == 0
        capsys.readouterr()

        assert main(["--root", root]) == 0
        assert "1 suppressed by baseline" in capsys.readouterr().out

    def test_json_report_written_to_output_file(
        self, violating_repo, capsys
    ):
        root = str(violating_repo)
        report = violating_repo / "report.json"
        code = main(
            [
                "--root",
                root,
                "--format",
                "json",
                "--output",
                str(report),
            ]
        )
        assert code == 1
        capsys.readouterr()
        payload = json.loads(report.read_text())
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "error-discipline"
