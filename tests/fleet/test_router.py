"""The deterministic backlog-aware router (repro.fleet.router).

The routing plan must be pure virtual-time arithmetic: same arrivals +
same solo estimates => same job->replica assignment, every time, on any
machine — worker processes only execute the plan, never influence it.
"""

import pytest

from repro.core.arrivals import poisson_arrivals
from repro.core.framework import NdftFramework
from repro.errors import ConfigError
from repro.experiments.scale_serving import job_mix
from repro.fleet import route_jobs

SIZES = job_mix(64)


@pytest.fixture(scope="module")
def estimates():
    framework = NdftFramework()
    return framework.job_estimates(SIZES)


class TestRouteJobsDeterminism:
    def test_repeated_routing_is_identical(self, estimates):
        solo_times, lanes = estimates
        arrivals = poisson_arrivals(len(SIZES), 2.0, seed=0)
        first = route_jobs(4, arrivals, solo_times, lanes)
        second = route_jobs(4, arrivals, solo_times, lanes)
        assert first == second
        assert first.assignments == second.assignments
        assert first.predicted_completions == second.predicted_completions

    def test_deterministic_across_replica_counts(self, estimates):
        """Every fleet size yields a full, reproducible assignment —
        including the degenerate single-replica fleet."""
        solo_times, lanes = estimates
        for n_replicas in (1, 2, 4, 8):
            plan = route_jobs(n_replicas, None, solo_times, lanes)
            again = route_jobs(n_replicas, None, solo_times, lanes)
            assert plan.assignments == again.assignments
            assert sum(plan.replica_job_counts) == len(SIZES)
            assert all(0 <= r < n_replicas for r in plan.assignments)

    def test_single_replica_takes_everything(self, estimates):
        solo_times, lanes = estimates
        plan = route_jobs(1, None, solo_times, lanes)
        assert plan.assignments == (0,) * len(SIZES)
        assert plan.replica_job_counts == (len(SIZES),)

    def test_identical_jobs_split_evenly_when_counts_divide(self):
        """N identical closed-batch jobs over R | N replicas: the
        backlog model sees equal load everywhere, ties break by replica
        index, so the split is perfectly even and cyclic."""
        framework = NdftFramework()
        for n_replicas in (1, 2, 4):
            sizes = [64] * 16
            solo_times, lanes = framework.job_estimates(sizes)
            plan = route_jobs(n_replicas, None, solo_times, lanes)
            assert plan.replica_job_counts == (
                16 // n_replicas,
            ) * n_replicas
            # Cyclic: job i lands on replica i mod R.
            assert plan.assignments == tuple(
                i % n_replicas for i in range(16)
            )

    def test_closed_batch_ties_break_by_replica_index(self):
        framework = NdftFramework()
        solo_times, lanes = framework.job_estimates([64, 64, 64])
        plan = route_jobs(4, None, solo_times, lanes)
        # Three equal jobs, four empty replicas: lowest indices win.
        assert plan.assignments == (0, 1, 2)
        assert plan.replica_job_counts == (1, 1, 1, 0)

    def test_arrival_order_not_submission_order(self, estimates):
        """Routing visits jobs by (arrival, index) — the simulator's
        release order — so a permuted release stream routes the same
        physical job to the same replica."""
        solo_times, lanes = estimates
        arrivals = list(poisson_arrivals(len(SIZES), 2.0, seed=3))
        plan = route_jobs(2, arrivals, solo_times, lanes)
        # Reverse the submission stream: job j of the reversed call is
        # job n-1-j of the original, and must land on the same replica.
        n = len(SIZES)
        reversed_plan = route_jobs(
            2,
            arrivals[::-1],
            solo_times[::-1],
            tuple(lanes[::-1]),
        )
        assert reversed_plan.assignments == plan.assignments[::-1]

    def test_jobs_for_partitions_in_submission_order(self, estimates):
        solo_times, lanes = estimates
        plan = route_jobs(3, None, solo_times, lanes)
        seen = []
        for replica in range(3):
            indices = plan.jobs_for(replica)
            assert list(indices) == sorted(indices)
            seen.extend(indices)
        assert sorted(seen) == list(range(len(SIZES)))


class TestRouteJobsBalancing:
    def test_backlog_spreads_load(self, estimates):
        """A mixed 64-job batch over 4 replicas never piles onto one
        replica: predicted-backlog routing keeps every replica busy."""
        solo_times, lanes = estimates
        plan = route_jobs(4, None, solo_times, lanes)
        counts = plan.replica_job_counts
        assert min(counts) > 0
        assert max(counts) <= 2 * min(counts)
        # The balanced quantity is drain time, which is even too.
        backlogs = plan.predicted_backlogs
        assert max(backlogs) <= 1.5 * min(backlogs)

    def test_predicted_completions_cover_solo_times(self, estimates):
        solo_times, lanes = estimates
        plan = route_jobs(2, None, solo_times, lanes)
        for completion, solo in zip(plan.predicted_completions, solo_times):
            assert completion >= solo


class TestRouteJobsValidation:
    def test_rejects_nonpositive_replicas(self, estimates):
        solo_times, lanes = estimates
        with pytest.raises(ConfigError, match="n_replicas"):
            route_jobs(0, None, solo_times, lanes)

    def test_rejects_misaligned_inputs(self, estimates):
        solo_times, lanes = estimates
        with pytest.raises(ConfigError, match="align"):
            route_jobs(2, [0.0], solo_times, lanes)
        with pytest.raises(ConfigError, match="align"):
            route_jobs(2, None, solo_times, lanes[:-1])
