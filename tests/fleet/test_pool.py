"""WorkerPool: the shared-snapshot lifecycle, merge-back idempotence,
fleet-mode fingerprint refusal, and the bit-identity contract between
worker processes and a single-process run of the same assignment.

Everything that needs real worker processes uses the spawn context the
pool defaults to; the inline pool runs the identical worker code
in-process and is the deterministic reference.
"""

import pytest

from repro.core.arrivals import poisson_arrivals
from repro.core.framework import NdftFramework
from repro.core.scheduler import Placement, SchedulingPolicy
from repro.errors import ConfigError
from repro.experiments.scale_serving import job_mix
from repro.fleet import WorkerPool

SIZES = job_mix(32)


def _single_process_completions(plan, sizes, arrivals=None):
    """Per-replica completion times from a plain single-process
    ``run_many`` of the routed assignment — the bit-identity oracle."""
    completions = {}
    for replica in range(plan.n_replicas):
        indices = plan.jobs_for(replica)
        if not indices:
            continue
        framework = NdftFramework()
        result = framework.run_many(
            [sizes[i] for i in indices],
            arrivals=(
                None if arrivals is None else [arrivals[i] for i in indices]
            ),
        )
        completions[replica] = tuple(
            job.report.total_time for job in result.jobs
        )
    return completions


class TestInlineServe:
    def test_serve_is_deterministic(self):
        with WorkerPool(2, inline=True) as pool:
            first = pool.serve(SIZES)
            second = pool.serve(SIZES)
        assert first.plan == second.plan
        assert first.completion_times == second.completion_times

    def test_closed_batch_bit_identical_to_single_process(self):
        with WorkerPool(3, inline=True) as pool:
            result = pool.serve(SIZES)
        oracle = _single_process_completions(result.plan, SIZES)
        for summary in result.replicas:
            if not summary.job_indices:
                continue
            assert summary.completion_times == oracle[summary.replica]

    def test_open_queue_bit_identical_to_single_process(self):
        arrivals = poisson_arrivals(len(SIZES), 2.0, seed=0)
        with WorkerPool(2, inline=True) as pool:
            result = pool.serve(SIZES, arrivals=arrivals)
        oracle = _single_process_completions(result.plan, SIZES, arrivals)
        for summary in result.replicas:
            if not summary.job_indices:
                continue
            assert summary.completion_times == oracle[summary.replica]
        # Latencies subtract the global release offsets.
        for latency, completion, release in zip(
            result.completion_latencies, result.completion_times, arrivals
        ):
            assert latency == completion - release

    def test_rounds_do_not_change_results(self):
        with WorkerPool(2, inline=True) as pool:
            once = pool.serve(SIZES, rounds=1)
            thrice = pool.serve(SIZES, rounds=3)
        assert once.completion_times == thrice.completion_times
        assert thrice.rounds == 3

    def test_aggregation_shape(self):
        with WorkerPool(4, inline=True) as pool:
            result = pool.serve(SIZES)
        assert result.n_replicas == 4
        assert result.n_jobs == len(SIZES)
        assert len(result.completion_times) == len(SIZES)
        assert all(c > 0 for c in result.completion_times)
        assert result.p50_latency <= result.p99_latency
        assert result.imbalance_ratio >= 1.0
        assert len(result.replica_utilization) == 4
        assert max(result.replica_utilization) <= 1.0 + 1e-12
        assert sum(result.backend_jobs.values()) == len(SIZES)
        assert result.throughput > 0
        assert result.jobs_per_second_wall > 0


class TestSpawnServe:
    def test_spawn_matches_inline_bit_for_bit(self):
        """Real worker processes return exactly the numbers the inline
        (single-process) pool computes: OS scheduling can reorder the
        workers, never the results."""
        with WorkerPool(2, inline=True) as pool:
            reference = pool.serve(SIZES)
        with WorkerPool(2) as pool:
            spawned = pool.serve(SIZES)
        assert spawned.plan == reference.plan
        assert spawned.completion_times == reference.completion_times
        for got, want in zip(spawned.replicas, reference.replicas):
            assert got.completion_times == want.completion_times
            assert got.makespan == want.makespan
            assert got.lane_busy_seconds == want.lane_busy_seconds


class TestSharedSnapshotLifecycle:
    def test_merge_back_collects_worker_entries(self):
        """The parent framework never ran a batch — it only derived
        routing estimates — yet after one serve the workers' SCA passes
        are in its caches via merge-back."""
        with WorkerPool(2, inline=True) as pool:
            result = pool.serve(SIZES)
            assert result.merged_entries > 0
            assert pool.framework.cache_stats["sca_misses"] == 0
            pool.framework.run_many(SIZES)
            assert pool.framework.cache_stats["sca_misses"] == 0

    def test_merge_caches_is_idempotent(self, tmp_path):
        donor = NdftFramework()
        donor.run_many(SIZES)
        path = donor.save_caches(tmp_path / "donor.pkl")
        receiver = NdftFramework()
        first = receiver.merge_caches(path)
        assert first > 0
        assert receiver.merge_caches(path) == 0  # union-if-absent

    def test_merge_caches_keeps_local_entries(self, tmp_path):
        """Merge-back is union-only: an entry the receiver already owns
        is never overwritten by the snapshot's copy."""
        donor = NdftFramework()
        donor.run_many([64, 128])
        path = donor.save_caches(tmp_path / "donor.pkl")
        receiver = NdftFramework()
        receiver.run_many([64, 512])
        before = receiver.cache_stats["schedule_misses"]
        receiver.merge_caches(path)
        receiver.run_many([64, 128, 512])
        assert receiver.cache_stats["schedule_misses"] == before  # no re-derive

    def test_persistent_snapshot_warms_next_pool(self, tmp_path):
        snapshot = tmp_path / "fleet.pkl"
        with WorkerPool(2, inline=True, snapshot_path=snapshot) as pool:
            pool.serve(SIZES)
        assert snapshot.exists()
        with WorkerPool(2, inline=True, snapshot_path=snapshot) as warm:
            warm.serve(SIZES)
            stats = warm.framework.cache_stats
        # The second pool derived nothing: estimates came off the merged
        # snapshot the first pool persisted.
        assert stats["schedule_misses"] == 0
        assert stats["solo_misses"] == 0

    def test_fleet_snapshot_fingerprint_refusal(self, tmp_path):
        """A shared snapshot written under a different policy is refused
        at pool construction — the fleet-mode mirror of load_caches'
        refusal rules."""
        snapshot = tmp_path / "fleet.pkl"
        with WorkerPool(1, inline=True, snapshot_path=snapshot) as pool:
            pool.serve([64, 128])
        with pytest.raises(ConfigError, match="fingerprint"):
            WorkerPool(
                1,
                inline=True,
                policy=SchedulingPolicy.ALL_CPU,
                snapshot_path=snapshot,
            )
        with pytest.raises(ConfigError, match="fingerprint"):
            WorkerPool(1, inline=True, enable_gpu=True, snapshot_path=snapshot)

    def test_merge_caches_refuses_mismatched_fingerprint(self, tmp_path):
        donor = NdftFramework(policy=SchedulingPolicy.ALL_CPU)
        donor.run_many([64])
        path = donor.save_caches(tmp_path / "other.pkl")
        with pytest.raises(ConfigError, match="fingerprint"):
            NdftFramework().merge_caches(path)

    def test_merge_caches_refuses_after_register_target(
        self, tmp_path, ndp_model
    ):
        donor = NdftFramework()
        donor.run_many([64])
        path = donor.save_caches(tmp_path / "donor.pkl")
        changed = NdftFramework()
        changed.register_target(Placement.NDP, ndp_model)
        with pytest.raises(ConfigError, match="register_target"):
            changed.merge_caches(path)


class TestServeValidation:
    def test_rejects_nonpositive_replicas(self):
        with pytest.raises(ConfigError, match="n_replicas"):
            WorkerPool(0)

    def test_rejects_empty_batch(self):
        with WorkerPool(1, inline=True) as pool:
            with pytest.raises(ConfigError, match="at least one job"):
                pool.serve([])

    def test_rejects_non_int_entries(self):
        with WorkerPool(1, inline=True) as pool:
            with pytest.raises(ConfigError, match="atom counts"):
                pool.serve([64, "128"])
            with pytest.raises(ConfigError, match="atom counts"):
                pool.serve([True])

    def test_rejects_misaligned_arrivals(self):
        with WorkerPool(1, inline=True) as pool:
            with pytest.raises(ConfigError, match="arrival offsets"):
                pool.serve([64, 128], arrivals=[0.0])

    def test_rejects_nonpositive_rounds(self):
        with WorkerPool(1, inline=True) as pool:
            with pytest.raises(ConfigError, match="rounds"):
                pool.serve([64], rounds=0)
