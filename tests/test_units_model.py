"""Top-level helpers: units, errors, the KernelWorkload descriptor."""

import pytest

from repro import errors, units
from repro.model import AccessPattern, KernelWorkload, PhaseName


class TestUnits:
    def test_prefixes(self):
        assert units.GiB == 2**30
        assert units.GB == 10**9
        assert units.GHZ == 1e9

    def test_format_bytes(self):
        assert units.format_bytes(512) == "512 B"
        assert units.format_bytes(16 * units.GiB) == "16.00 GiB"
        with pytest.raises(ValueError):
            units.format_bytes(-1)

    def test_format_seconds(self):
        assert units.format_seconds(2.5) == "2.500 s"
        assert units.format_seconds(3e-5) == "30.00 us"
        assert units.format_seconds(2e-3) == "2.00 ms"
        with pytest.raises(ValueError):
            units.format_seconds(-1)

    def test_format_rate(self):
        assert units.format_rate(3.84e11) == "384.0 GFLOP/s"
        assert units.format_rate(15.6e12) == "15.60 TFLOP/s"

    def test_physics_conversions(self):
        assert units.HARTREE_TO_EV == pytest.approx(27.2114, abs=1e-3)
        assert units.BOHR_TO_ANGSTROM * units.ANGSTROM_TO_BOHR == pytest.approx(1.0)


class TestErrors:
    def test_hierarchy(self):
        for exc in (
            errors.ConfigError,
            errors.OutOfMemoryError,
            errors.AllocationError,
            errors.SchedulingError,
            errors.CommunicationError,
            errors.SimulationError,
            errors.PhysicsError,
        ):
            assert issubclass(exc, errors.ReproError)

    def test_oom_carries_sizes(self):
        exc = errors.OutOfMemoryError("no", requested=100, available=50)
        assert exc.requested == 100
        assert exc.available == 50


class TestKernelWorkload:
    def test_arithmetic_intensity(self):
        w = KernelWorkload(name="x", flops=100, bytes_read=30, bytes_written=20)
        assert w.arithmetic_intensity == pytest.approx(2.0)

    def test_zero_traffic_infinite_intensity(self):
        w = KernelWorkload(name="x", flops=100, bytes_read=0, bytes_written=0)
        assert w.arithmetic_intensity == float("inf")

    def test_dataset_falls_back_to_traffic(self):
        w = KernelWorkload(name="x", flops=1, bytes_read=10, bytes_written=10)
        assert w.dataset_bytes == 20
        w2 = KernelWorkload(
            name="x", flops=1, bytes_read=10, bytes_written=10, footprint=7
        )
        assert w2.dataset_bytes == 7

    def test_scaled(self):
        w = KernelWorkload(
            name="x", flops=100, bytes_read=50, bytes_written=50,
            comm_bytes=10, parallel_tasks=8,
        )
        half = w.scaled(0.5)
        assert half.flops == 50
        assert half.comm_bytes == 5
        assert half.parallel_tasks == 4
        assert half.working_set == w.working_set  # per-task property

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelWorkload(name="x", flops=-1, bytes_read=0, bytes_written=0)
        with pytest.raises(ValueError):
            KernelWorkload(
                name="x", flops=0, bytes_read=0, bytes_written=0, parallel_tasks=0
            )
        with pytest.raises(ValueError):
            KernelWorkload(name="x", flops=0, bytes_read=0, bytes_written=0).scaled(-1)

    def test_phase_names_cover_fig7(self):
        assert {p.value for p in PhaseName} == {
            "face_split", "fft", "global_comm", "gemm", "syevd", "pseudopotential",
        }

    def test_access_patterns(self):
        assert len(AccessPattern) == 4
