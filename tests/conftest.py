"""Shared fixtures: a small executable silicon system and the machine models.

The physics fixtures are session-scoped: the Si_8 ground state is the
single most expensive object in the suite (~0.5 s) and is read-only for
every consumer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.framework import NdftFramework
from repro.dft.basis import PlaneWaveBasis
from repro.dft.groundstate import solve_ground_state
from repro.dft.lattice import silicon_supercell
from repro.hw.config import cpu_baseline_config, gpu_baseline_config, ndft_system_config
from repro.hw.cpu import CpuModel
from repro.hw.gpu import GpuModel
from repro.hw.ndp import NdpSystemModel


@pytest.fixture(scope="session")
def si8_cell():
    return silicon_supercell(8)


@pytest.fixture(scope="session")
def si8_basis(si8_cell):
    return PlaneWaveBasis(si8_cell, ecut=2.0)


@pytest.fixture(scope="session")
def si8_ground_state(si8_cell, si8_basis):
    return solve_ground_state(si8_cell, si8_basis)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20250610)


@pytest.fixture(scope="session")
def system_config():
    return ndft_system_config()


@pytest.fixture(scope="session")
def cpu_model():
    return CpuModel(cpu_baseline_config())


@pytest.fixture(scope="session")
def host_model(system_config):
    return CpuModel(system_config.host)


@pytest.fixture(scope="session")
def ndp_model(system_config):
    return NdpSystemModel(system_config.ndp)


@pytest.fixture(scope="session")
def gpu_model():
    return GpuModel(gpu_baseline_config())


@pytest.fixture(scope="session")
def framework():
    return NdftFramework()
