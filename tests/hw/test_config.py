"""Table III + baseline configurations: every paper-stated value."""

import pytest

from repro.errors import ConfigError
from repro.hw.config import (
    CacheConfig,
    CpuConfig,
    cpu_baseline_config,
    gpu_baseline_config,
    ndft_system_config,
)
from repro.units import GB, GHZ, GiB, KiB, MiB


@pytest.fixture(scope="module")
def system():
    return ndft_system_config()


class TestTable3Host:
    def test_cores_and_clock(self, system):
        assert system.host.cores == 8
        assert system.host.frequency == 3.0 * GHZ

    def test_cache_sizes(self, system):
        assert system.host.l1_data.capacity == 32 * KiB
        assert system.host.l2.capacity == 256 * KiB
        assert system.host.l3.capacity == 2 * MiB


class TestTable3Ndp:
    def test_mesh_shape(self, system):
        assert (system.ndp.stacks_x, system.ndp.stacks_y) == (4, 4)
        assert system.ndp.n_stacks == 16

    def test_units_and_cores(self, system):
        assert system.ndp.units_per_stack == 8
        assert system.ndp.cores_per_unit == 2
        assert system.ndp.n_units == 128
        assert system.ndp.n_cores == 256

    def test_clock_and_caches(self, system):
        assert system.ndp.frequency == 2.0 * GHZ
        assert system.ndp.l1_data.capacity == 32 * KiB

    def test_capacity(self, system):
        assert system.ndp.capacity_per_unit == 512 * MiB
        assert system.ndp.total_capacity == 64 * GiB

    def test_spm_sizes(self, system):
        assert system.ndp.spm_per_core == 16 * KiB
        assert system.ndp.spm_per_stack == 256 * KiB
        # 16 KB/core x 2 cores x 8 units = 256 KB/stack: consistent.
        assert (
            system.ndp.spm_per_core
            * system.ndp.cores_per_unit
            * system.ndp.units_per_stack
            == system.ndp.spm_per_stack
        )

    def test_hbm_channel_bandwidth(self, system):
        """8 channels x 128-bit x 1000 MHz DDR = 256 GB/s per stack."""
        assert system.ndp.channels_per_stack == 8
        assert system.ndp.bus_width_bits == 128
        assert system.ndp.stack_internal_bandwidth == pytest.approx(256 * GB)
        assert system.ndp.aggregate_internal_bandwidth == pytest.approx(
            16 * 256 * GB
        )

    def test_unit_bandwidth_share(self, system):
        assert system.ndp.unit_bandwidth == pytest.approx(32 * GB)


class TestBaselines:
    def test_cpu_baseline_is_dual_xeon(self):
        cpu = cpu_baseline_config()
        assert cpu.sockets == 2
        assert cpu.cores == 12
        assert cpu.total_cores == 24
        assert cpu.frequency == 2.4 * GHZ
        assert cpu.memory_capacity == 64 * GiB

    def test_gpu_baseline_is_dual_v100(self):
        gpu = gpu_baseline_config()
        assert gpu.n_gpus == 2
        assert gpu.peak_flops == pytest.approx(15.6e12)
        assert gpu.aggregate_memory_bandwidth == pytest.approx(1800 * GB)

    def test_host_weaker_than_baseline_in_cores(self):
        """The CPU-NDP host (8 cores) is not the 24-core baseline."""
        system = ndft_system_config()
        assert system.host.total_cores < cpu_baseline_config().total_cores


class TestValidation:
    def test_cache_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            CacheConfig(capacity=0, latency_cycles=4)

    def test_cpu_rejects_bad_cores(self):
        with pytest.raises(ConfigError):
            CpuConfig(
                name="bad",
                cores=0,
                frequency=1 * GHZ,
                flops_per_cycle=8,
                l1_data=CacheConfig(32 * KiB, 4),
                l2=CacheConfig(256 * KiB, 12),
                l3=CacheConfig(2 * MiB, 40),
                memory_bandwidth=1 * GB,
                memory_latency=1e-7,
                memory_capacity=GiB,
            )

    def test_ranks_equal_units(self):
        system = ndft_system_config()
        assert system.ranks == 128
