"""Mesh network and host-link models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.hw.interconnect import HostLink, MeshNetwork
from repro.units import GB


@pytest.fixture(scope="module")
def mesh():
    return MeshNetwork(stacks_x=4, stacks_y=4, link_bandwidth=24 * GB, hop_latency=40e-9)


class TestMesh:
    def test_coordinates_roundtrip(self, mesh):
        for stack in range(16):
            x, y = mesh.coordinates(stack)
            assert 0 <= x < 4 and 0 <= y < 4
            assert y * 4 + x == stack

    def test_hops_xy_routing(self, mesh):
        assert mesh.hops(0, 0) == 0
        assert mesh.hops(0, 3) == 3      # same row
        assert mesh.hops(0, 15) == 6     # opposite corner
        assert mesh.hops(5, 6) == 1

    def test_hops_symmetric(self, mesh):
        for a in range(16):
            for b in range(16):
                assert mesh.hops(a, b) == mesh.hops(b, a)

    def test_average_hops_4x4(self, mesh):
        """Known value: mean Manhattan distance on 4x4 grid = 8/3."""
        assert mesh.average_hops == pytest.approx(8.0 / 3.0)

    def test_bisection_bandwidth(self, mesh):
        assert mesh.bisection_bandwidth == 4 * 24 * GB

    def test_point_to_point(self, mesh):
        local = mesh.point_to_point_time(1024, 3, 3)
        assert local == 0.0
        one_hop = mesh.point_to_point_time(24 * GB, 0, 1)
        assert one_hop == pytest.approx(40e-9 + 1.0)

    def test_alltoall_halves_cross_bisection(self, mesh):
        nbytes = 192 * GB  # = 2 x bisection
        t = mesh.alltoall_time(nbytes)
        assert t == pytest.approx(1.0, rel=1e-3)

    def test_alltoall_zero(self, mesh):
        assert mesh.alltoall_time(0) == 0.0

    def test_single_stack_free(self):
        lone = MeshNetwork(1, 1, 24 * GB, 40e-9)
        assert lone.alltoall_time(1 * GB) == 0.0
        assert lone.average_hops == 0.0

    def test_stack_id_range_check(self, mesh):
        with pytest.raises(ConfigError):
            mesh.hops(0, 16)

    @given(
        x=st.integers(1, 5), y=st.integers(1, 5),
        a=st.integers(0, 24), b=st.integers(0, 24),
    )
    @settings(max_examples=50, deadline=None)
    def test_hops_triangle_inequality(self, x, y, a, b):
        mesh = MeshNetwork(x, y, 1 * GB, 1e-9)
        n = x * y
        a, b = a % n, b % n
        for c in range(n):
            assert mesh.hops(a, b) <= mesh.hops(a, c) + mesh.hops(c, b)


class TestHostLink:
    def test_transfer_time(self):
        link = HostLink(bandwidth=64 * GB)
        assert link.transfer_time(0) == 0.0
        assert link.transfer_time(64 * GB) == pytest.approx(1.0, abs=1e-6)

    def test_latency_floor(self):
        link = HostLink(bandwidth=64 * GB, base_latency=1e-6)
        assert link.transfer_time(1) >= 1e-6

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ConfigError):
            HostLink(bandwidth=0)
