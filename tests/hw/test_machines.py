"""Machine timing models: CPU, NDP system, GPU."""

import pytest

from repro.dft.workload import problem_size, stage_workloads
from repro.hw.timing import PhaseTime
from repro.model import AccessPattern, KernelWorkload, PhaseName


def make_workload(**overrides):
    defaults = dict(
        name="test",
        flops=1e10,
        bytes_read=5e8,
        bytes_written=5e8,
        working_set=1e9,
        access_pattern=AccessPattern.SEQUENTIAL,
        parallel_tasks=1024,
    )
    defaults.update(overrides)
    return KernelWorkload(**defaults)


class TestPhaseTime:
    def test_total_defaults_to_overlap_rule(self):
        t = PhaseTime("x", compute_time=2.0, memory_time=3.0, overhead_time=0.5)
        assert t.total == 3.5
        assert t.bound == "memory"

    def test_plus_overhead(self):
        t = PhaseTime("x", 1.0, 0.5).plus_overhead(0.25)
        assert t.total == pytest.approx(1.25)


class TestCpuModel:
    def test_memory_bound_kernel(self, cpu_model):
        w = make_workload(flops=1e6)  # essentially no compute
        t = cpu_model.execute(w)
        assert t.bound == "memory"
        assert t.memory_time > 0

    def test_compute_bound_kernel(self, cpu_model):
        w = make_workload(
            flops=1e12, bytes_read=1e6, bytes_written=1e6,
            working_set=1e5, access_pattern=AccessPattern.BLOCKED,
        )
        t = cpu_model.execute(w)
        assert t.bound == "compute"

    def test_cache_reduces_traffic(self, cpu_model):
        streaming = make_workload(working_set=10e9)
        resident = make_workload(working_set=1e5)
        assert cpu_model.dram_traffic(resident) < cpu_model.dram_traffic(streaming)

    def test_utilization_limits_throughput(self, cpu_model):
        narrow = make_workload(parallel_tasks=1, flops=1e12)
        wide = make_workload(parallel_tasks=1000, flops=1e12)
        assert cpu_model.execute(narrow).compute_time > cpu_model.execute(wide).compute_time

    def test_comm_charged_as_memcpy(self, cpu_model):
        w = make_workload(
            flops=0, comm_bytes=1e9, access_pattern=AccessPattern.IRREGULAR
        )
        t = cpu_model.execute(w)
        from repro.hw.cpu import MEMCPY_EFFICIENCY, MEMCPY_PASSES

        expected = 1e9 * MEMCPY_PASSES / (
            cpu_model.memory.peak_bandwidth * MEMCPY_EFFICIENCY
        )
        assert t.memory_time == pytest.approx(expected)

    def test_ridge_point_order_of_magnitude(self, cpu_model):
        assert 5.0 < cpu_model.ridge_point() < 12.0


class TestNdpModel:
    def test_aggregate_bandwidth_advantage(self, ndp_model, cpu_model):
        """The NDP side must beat the CPU on a big streaming kernel —
        the premise of the whole paper."""
        w = make_workload(
            flops=1e9, bytes_read=2e11, bytes_written=2e11,
            parallel_tasks=4096, working_set=1e9,
        )
        assert ndp_model.execute(w).total < cpu_model.execute(w).total / 5

    def test_small_kernels_underutilize(self, ndp_model):
        small = make_workload(bytes_read=1e7, bytes_written=1e7, flops=1e6)
        assert ndp_model.unit_utilization(small) < 0.3

    def test_large_kernels_utilize(self, ndp_model):
        big = make_workload(
            bytes_read=1e11, bytes_written=1e11, parallel_tasks=12800
        )
        assert ndp_model.unit_utilization(big) > 0.9

    def test_blocked_compute_weak(self, ndp_model, host_model):
        """Wimpy in-order cores lose GEMM to the host CPU (the paper's
        placement rationale)."""
        problem = problem_size(1024)
        gemm = stage_workloads(problem)[PhaseName.GEMM]
        assert ndp_model.execute(gemm).total > host_model.execute(gemm).total

    def test_comm_rides_mesh(self, ndp_model):
        w = make_workload(flops=0, comm_bytes=1e10, access_pattern=AccessPattern.IRREGULAR)
        t = ndp_model.execute(w)
        assert t.transfer_time > 0

    def test_validate_spm_consistency(self, ndp_model):
        ndp_model.validate()  # must not raise


class TestGpuModel:
    def test_resident_phase_pays_staging(self, gpu_model):
        w = make_workload(footprint=1e9)
        t = gpu_model.execute(w)
        assert t.overhead_time > gpu_model.config.kernel_launch_overhead

    def test_oversized_dataset_streams(self, gpu_model):
        w = make_workload(
            bytes_read=3e11, bytes_written=3e11, footprint=6e10,
        )
        t = gpu_model.execute(w)
        assert not gpu_model.dataset_fits(w)
        assert t.transfer_time > 0

    def test_comm_phase_charges_links_not_dataset(self, gpu_model):
        w = make_workload(flops=0, comm_bytes=1e10, footprint=1e10)
        t = gpu_model.execute(w)
        nvlink = gpu_model.config.nvlink_bandwidth
        pcie = gpu_model.config.aggregate_pcie_bandwidth
        expected = (5e9 / nvlink + 5e9 / pcie) * 0.5
        assert t.transfer_time == pytest.approx(expected)

    def test_blocked_efficiency_grows_with_volume(self, gpu_model):
        small = make_workload(
            flops=1e9, access_pattern=AccessPattern.BLOCKED
        )
        large = make_workload(
            flops=1e14, access_pattern=AccessPattern.BLOCKED
        )
        assert gpu_model.compute_efficiency(small) < gpu_model.compute_efficiency(large)

    def test_bandwidth_ramp_only_for_streams(self, gpu_model):
        short_stream = make_workload(bytes_read=1e7, bytes_written=1e7)
        blocked = make_workload(
            bytes_read=1e7, bytes_written=1e7,
            access_pattern=AccessPattern.BLOCKED,
        )
        assert gpu_model.bandwidth_ramp(short_stream) < 0.1
        assert gpu_model.bandwidth_ramp(blocked) == 1.0


class TestRooflineModel:
    def test_ridge_and_classification(self):
        from repro.hw.roofline import RooflineModel

        roofline = RooflineModel(name="m", peak_flops=1e12, peak_bandwidth=1e11)
        assert roofline.ridge_point == pytest.approx(10.0)
        assert roofline.classify(1.0) == "memory"
        assert roofline.classify(100.0) == "compute"

    def test_attainable_ceilings(self):
        from repro.hw.roofline import RooflineModel

        roofline = RooflineModel(name="m", peak_flops=1e12, peak_bandwidth=1e11)
        assert roofline.attainable(1.0) == pytest.approx(1e11)
        assert roofline.attainable(1000.0) == pytest.approx(1e12)

    def test_analyze_with_measured_time(self):
        from repro.hw.roofline import RooflineModel

        roofline = RooflineModel(name="m", peak_flops=1e12, peak_bandwidth=1e11)
        w = make_workload(flops=1e10, bytes_read=1e10, bytes_written=0)
        point = roofline.analyze(w, measured_time=1.0)
        assert point.attained_flops == pytest.approx(1e10)
        assert point.bound == "memory"
        assert 0 < point.efficiency <= 1.0
