"""Discrete-event engine semantics."""

import pytest

from repro.errors import SimulationError
from repro.hw.engine import Engine


class TestTimeouts:
    def test_sequential_timeouts(self):
        engine = Engine()
        trace = []

        def process():
            yield engine.timeout(1.0)
            trace.append(engine.now)
            yield engine.timeout(2.0)
            trace.append(engine.now)

        engine.spawn(process())
        total = engine.run()
        assert trace == [1.0, 3.0]
        assert total == 3.0

    def test_parallel_processes_interleave(self):
        engine = Engine()
        trace = []

        def worker(name, delay):
            yield engine.timeout(delay)
            trace.append((name, engine.now))

        engine.spawn(worker("b", 2.0))
        engine.spawn(worker("a", 1.0))
        engine.run()
        assert trace == [("a", 1.0), ("b", 2.0)]

    def test_negative_timeout_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.timeout(-1.0)

    def test_run_until(self):
        engine = Engine()

        def process():
            yield engine.timeout(10.0)

        engine.spawn(process())
        now = engine.run(until=4.0)
        assert now == 4.0


class TestResources:
    def test_capacity_serializes(self):
        engine = Engine()
        resource = engine.resource(1, "device")
        finish = []

        def job(duration):
            yield resource.acquire()
            yield engine.timeout(duration)
            yield resource.release()
            finish.append(engine.now)

        engine.spawn(job(2.0))
        engine.spawn(job(3.0))
        engine.run()
        assert finish == [2.0, 5.0]

    def test_capacity_two_overlaps(self):
        engine = Engine()
        resource = engine.resource(2, "device")
        finish = []

        def job(duration):
            yield resource.acquire()
            yield engine.timeout(duration)
            yield resource.release()
            finish.append(engine.now)

        engine.spawn(job(2.0))
        engine.spawn(job(3.0))
        engine.run()
        assert finish == [2.0, 3.0]

    def test_release_idle_rejected(self):
        engine = Engine()
        resource = engine.resource(1)

        def bad():
            yield resource.release()

        engine.spawn(bad())
        with pytest.raises(SimulationError):
            engine.run()

    def test_deadlock_detected(self):
        engine = Engine()
        resource = engine.resource(1)

        def hog():
            yield resource.acquire()
            # never releases

        def waiter():
            yield resource.acquire()

        engine.spawn(hog())
        engine.spawn(waiter())
        with pytest.raises(SimulationError, match="deadlock"):
            engine.run()

    def test_busy_time_accounting(self):
        engine = Engine()
        resource = engine.resource(1, "unit")

        def job():
            yield resource.acquire()
            yield engine.timeout(5.0)
            yield resource.release()

        engine.spawn(job())
        engine.run()
        assert resource.busy_time() == pytest.approx(5.0)


class TestProcessJoin:
    def test_wait_on_other_process(self):
        engine = Engine()
        order = []

        def first():
            yield engine.timeout(2.0)
            order.append("first")

        def second(dep):
            yield dep
            order.append("second")

        dep = engine.spawn(first())
        engine.spawn(second(dep))
        engine.run()
        assert order == ["first", "second"]

    def test_join_finished_process(self):
        engine = Engine()
        done = []

        def quick():
            yield engine.timeout(0.5)

        def late(dep):
            yield engine.timeout(3.0)
            yield dep  # already finished
            done.append(engine.now)

        dep = engine.spawn(quick())
        engine.spawn(late(dep))
        engine.run()
        assert done == [3.0]

    def test_unsupported_command_rejected(self):
        engine = Engine()

        def bad():
            yield "nonsense"

        engine.spawn(bad())
        with pytest.raises(SimulationError, match="unsupported"):
            engine.run()
