"""DRAM timing and working-set cache models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.hw.cache import CacheHierarchy, TRAFFIC_AT_L1, TRAFFIC_BEYOND
from repro.hw.config import CacheConfig
from repro.hw.dram import (
    DramModel,
    ddr4_memory,
    gpu_hbm,
    hbm2_stack_internal,
)
from repro.hw.spm import ScratchpadSpec
from repro.model import AccessPattern
from repro.units import GB, KiB, MiB


class TestDram:
    def test_sequential_fastest(self):
        for factory in (ddr4_memory, lambda: hbm2_stack_internal(256 * GB), lambda: gpu_hbm(900 * GB)):
            model = factory()
            seq = model.effective_bandwidth(AccessPattern.SEQUENTIAL)
            irr = model.effective_bandwidth(AccessPattern.IRREGULAR)
            assert seq > irr

    def test_access_time_includes_latency(self):
        model = ddr4_memory()
        assert model.access_time(0, AccessPattern.SEQUENTIAL) == 0.0
        tiny = model.access_time(64, AccessPattern.SEQUENTIAL)
        assert tiny >= model.base_latency

    def test_time_scales_with_bytes(self):
        model = ddr4_memory()
        t1 = model.access_time(1 * GB, AccessPattern.SEQUENTIAL)
        t2 = model.access_time(2 * GB, AccessPattern.SEQUENTIAL)
        assert t2 > t1
        assert t2 < 2.1 * t1

    def test_hbm_internal_latency_lower_than_ddr(self):
        assert hbm2_stack_internal(256 * GB).base_latency < ddr4_memory().base_latency

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigError):
            DramModel(
                name="bad",
                peak_bandwidth=GB,
                base_latency=1e-8,
                pattern_efficiency={p: 1.5 for p in AccessPattern},
            )

    def test_rejects_missing_pattern(self):
        with pytest.raises(ConfigError):
            DramModel(
                name="bad",
                peak_bandwidth=GB,
                base_latency=1e-8,
                pattern_efficiency={AccessPattern.SEQUENTIAL: 0.8},
            )

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigError):
            ddr4_memory().access_time(-1, AccessPattern.SEQUENTIAL)


@pytest.fixture(scope="module")
def hierarchy():
    return CacheHierarchy(
        l1=CacheConfig(32 * KiB, 4),
        l2=CacheConfig(256 * KiB, 12),
        l3=CacheConfig(30 * MiB, 42),
    )


class TestCache:
    def test_tiny_working_set_absorbed(self, hierarchy):
        factor = hierarchy.dram_traffic_factor(16 * KiB, AccessPattern.SEQUENTIAL)
        assert factor == TRAFFIC_AT_L1

    def test_huge_working_set_streams(self, hierarchy):
        factor = hierarchy.dram_traffic_factor(10 * 1024 * MiB, AccessPattern.SEQUENTIAL)
        assert factor == TRAFFIC_BEYOND

    def test_irregular_gets_no_relief(self, hierarchy):
        assert (
            hierarchy.dram_traffic_factor(16 * KiB, AccessPattern.IRREGULAR)
            == TRAFFIC_BEYOND
        )

    def test_rejects_non_monotone_levels(self):
        with pytest.raises(ConfigError):
            CacheHierarchy(
                l1=CacheConfig(256 * KiB, 4),
                l2=CacheConfig(32 * KiB, 12),
                l3=CacheConfig(30 * MiB, 42),
            )

    def test_load_latency_by_level(self, hierarchy):
        freq = 3e9
        l1 = hierarchy.load_latency(8 * KiB, freq)
        l2 = hierarchy.load_latency(128 * KiB, freq)
        l3 = hierarchy.load_latency(8 * MiB, freq)
        assert l1 < l2 < l3

    @given(ws=st.floats(1, 1e12), seed=st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_factor_bounded_and_monotone(self, hierarchy, ws, seed):
        pattern = list(AccessPattern)[seed]
        factor = hierarchy.dram_traffic_factor(ws, pattern)
        assert TRAFFIC_AT_L1 <= factor <= TRAFFIC_BEYOND
        bigger = hierarchy.dram_traffic_factor(ws * 2, pattern)
        assert bigger >= factor - 1e-12


class TestSpm:
    def test_access_time(self):
        spm = ScratchpadSpec(capacity=256 * KiB)
        assert spm.access_time(0) == 0.0
        assert spm.access_time(1024) > spm.latency

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigError):
            ScratchpadSpec(capacity=0)

    def test_faster_than_dram(self):
        spm = ScratchpadSpec(capacity=256 * KiB)
        dram = ddr4_memory()
        assert spm.access_time(4096) < dram.access_time(4096, AccessPattern.SEQUENTIAL)
