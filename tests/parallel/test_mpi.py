"""Unit + property tests for the simulated MPI collectives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CommunicationError
from repro.parallel.mpi import SimCommunicator


def make_alltoall_payload(size, rng, width=3):
    return [
        [rng.normal(size=width) for _dst in range(size)] for _src in range(size)
    ]


class TestAlltoall:
    def test_transposition_semantics(self, rng):
        comm = SimCommunicator(3)
        send = make_alltoall_payload(3, rng)
        recv = comm.alltoall(send)
        for src in range(3):
            for dst in range(3):
                assert np.array_equal(recv[dst][src], send[src][dst])

    def test_self_sends_free(self, rng):
        comm = SimCommunicator(2)
        send = [
            [np.zeros(10), np.zeros(0)],
            [np.zeros(0), np.zeros(10)],
        ]
        comm.alltoall(send)
        assert comm.total_bytes == 0

    def test_byte_accounting(self):
        comm = SimCommunicator(2)
        send = [[np.zeros(4), np.ones(4)], [np.ones(4), np.zeros(4)]]
        comm.alltoall(send)
        # two off-diagonal float64 buffers of 4 elements
        assert comm.total_bytes == 2 * 4 * 8

    def test_rejects_wrong_rank_count(self):
        comm = SimCommunicator(3)
        with pytest.raises(CommunicationError):
            comm.alltoall([[np.zeros(1)] * 3] * 2)
        with pytest.raises(CommunicationError):
            comm.alltoall([[np.zeros(1)] * 2] * 3)


class TestAllreduce:
    def test_sum_semantics(self, rng):
        comm = SimCommunicator(4)
        values = [rng.normal(size=(2, 3)) for _ in range(4)]
        results = comm.allreduce(values)
        expected = sum(values)
        for result in results:
            assert np.allclose(result, expected, atol=1e-12)

    def test_results_independent_copies(self):
        comm = SimCommunicator(2)
        results = comm.allreduce([np.ones(3), np.ones(3)])
        results[0][0] = 99
        assert results[1][0] == 2.0

    def test_shape_mismatch(self):
        comm = SimCommunicator(2)
        with pytest.raises(CommunicationError):
            comm.allreduce([np.zeros(2), np.zeros(3)])

    def test_ring_traffic_model(self):
        comm = SimCommunicator(4)
        comm.allreduce([np.zeros(128)] * 4)
        payload = 128 * 8
        per_rank = 2 * payload * 3 // 4
        assert comm.log[-1].bytes_moved == per_rank * 4


class TestOtherCollectives:
    def test_allgather(self, rng):
        comm = SimCommunicator(3)
        values = [rng.normal(size=2) for _ in range(3)]
        gathered = comm.allgather(values)
        for rank in range(3):
            for src in range(3):
                assert np.array_equal(gathered[rank][src], values[src])

    def test_bcast(self):
        comm = SimCommunicator(3)
        results = comm.bcast(np.arange(5), root=1)
        assert all(np.array_equal(r, np.arange(5)) for r in results)
        assert comm.total_bytes == 2 * 5 * 8

    def test_bcast_bad_root(self):
        with pytest.raises(CommunicationError):
            SimCommunicator(2).bcast(np.zeros(1), root=5)

    def test_scatter(self):
        comm = SimCommunicator(2)
        out = comm.scatter([np.zeros(2), np.ones(2)], root=0)
        assert np.array_equal(out[1], np.ones(2))

    def test_size_validation(self):
        with pytest.raises(CommunicationError):
            SimCommunicator(0)

    def test_bytes_by_op(self, rng):
        comm = SimCommunicator(2)
        comm.bcast(np.zeros(4))
        comm.allreduce([np.zeros(4)] * 2)
        by_op = comm.bytes_by_op()
        assert set(by_op) == {"bcast", "allreduce"}


class TestProperties:
    @given(size=st.integers(2, 6), seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_alltoall_involution(self, size, seed):
        """alltoall applied twice restores the original send matrix."""
        rng = np.random.default_rng(seed)
        comm = SimCommunicator(size)
        send = make_alltoall_payload(size, rng)
        twice = comm.alltoall(comm.alltoall(send))
        for i in range(size):
            for j in range(size):
                assert np.array_equal(twice[i][j], send[i][j])

    @given(size=st.integers(1, 6), elements=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_alltoall_conserves_bytes(self, size, elements):
        """Total payload (incl. self-sends) is conserved by transposition."""
        rng = np.random.default_rng(elements)
        comm = SimCommunicator(size)
        send = [
            [rng.normal(size=elements) for _ in range(size)]
            for _ in range(size)
        ]
        recv = comm.alltoall(send)
        sent = sum(b.nbytes for row in send for b in row)
        received = sum(b.nbytes for row in recv for b in row)
        assert sent == received
