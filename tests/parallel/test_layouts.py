"""Unit + property tests for data layouts and transposes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CommunicationError
from repro.parallel.layouts import (
    block_partition,
    grid_to_pairs_layout,
    pairs_to_grid_layout,
    partition_sizes,
)
from repro.parallel.mpi import SimCommunicator


class TestPartition:
    def test_sizes_balanced(self):
        assert partition_sizes(10, 3) == [4, 3, 3]
        assert partition_sizes(9, 3) == [3, 3, 3]
        assert partition_sizes(2, 4) == [1, 1, 0, 0]

    def test_slices_cover_range(self):
        slices = block_partition(17, 5)
        covered = []
        for s in slices:
            covered.extend(range(s.start, s.stop))
        assert covered == list(range(17))

    def test_rejects_bad_input(self):
        with pytest.raises(CommunicationError):
            partition_sizes(5, 0)
        with pytest.raises(CommunicationError):
            partition_sizes(-1, 2)

    @given(n=st.integers(0, 200), parts=st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_partition_properties(self, n, parts):
        sizes = partition_sizes(n, parts)
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1


class TestTransposes:
    def _full_matrix(self, n_pairs, n_grid, rng):
        return rng.normal(size=(n_pairs, n_grid)) + 1j * rng.normal(
            size=(n_pairs, n_grid)
        )

    def test_pairs_to_grid_semantics(self, rng):
        comm = SimCommunicator(3)
        full = self._full_matrix(7, 11, rng)
        pair_slices = block_partition(7, 3)
        local_pairs = [full[s, :] for s in pair_slices]
        grid_blocks = pairs_to_grid_layout(comm, local_pairs)
        grid_slices = block_partition(11, 3)
        for rank in range(3):
            assert np.allclose(grid_blocks[rank], full[:, grid_slices[rank]])

    def test_roundtrip_restores_layout(self, rng):
        comm = SimCommunicator(4)
        full = self._full_matrix(10, 13, rng)
        pair_slices = block_partition(10, 4)
        local_pairs = [full[s, :] for s in pair_slices]
        grid_blocks = pairs_to_grid_layout(comm, local_pairs)
        back = grid_to_pairs_layout(
            comm, grid_blocks, [s.stop - s.start for s in pair_slices]
        )
        for rank in range(4):
            assert np.allclose(back[rank], local_pairs[rank], atol=1e-12)

    def test_rank_count_validation(self, rng):
        comm = SimCommunicator(2)
        with pytest.raises(CommunicationError):
            pairs_to_grid_layout(comm, [np.zeros((1, 4))])

    def test_width_mismatch(self):
        comm = SimCommunicator(2)
        with pytest.raises(CommunicationError):
            pairs_to_grid_layout(comm, [np.zeros((1, 4)), np.zeros((1, 5))])

    @given(
        n_pairs=st.integers(1, 12),
        n_grid=st.integers(1, 20),
        ranks=st.integers(1, 5),
        seed=st.integers(0, 999),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, n_pairs, n_grid, ranks, seed):
        rng = np.random.default_rng(seed)
        comm = SimCommunicator(ranks)
        full = rng.normal(size=(n_pairs, n_grid))
        pair_slices = block_partition(n_pairs, ranks)
        local = [full[s, :] for s in pair_slices]
        back = grid_to_pairs_layout(
            comm,
            pairs_to_grid_layout(comm, local),
            [s.stop - s.start for s in pair_slices],
        )
        reassembled = np.concatenate([b for b in back if b.size], axis=0)
        if n_pairs:
            assert np.allclose(reassembled, full, atol=1e-12)
