"""End-to-end integration: physics pipeline + systems pipeline together.

These tests walk the same path a user of the library walks: build a
crystal, solve its ground state, run LR-TDDFT (serial and simulated-MPI),
then run the same problem through the performance framework and check the
two sides agree where they overlap (kernel mix, communication structure).
"""

import numpy as np
import pytest

from repro import (
    NdftFramework,
    PlaneWaveBasis,
    problem_size,
    run_cpu_baseline,
    run_gpu_baseline,
    run_lrtddft,
    silicon_supercell,
    solve_ground_state,
)
from repro.model import PhaseName
from repro.workloads import silicon_workload


class TestPhysicsToPerformance:
    def test_full_workflow_si8(self):
        cell = silicon_supercell(8)
        basis = PlaneWaveBasis(cell, ecut=2.0)
        gs = solve_ground_state(cell, basis)
        result = run_lrtddft(gs, n_active_valence=4, n_active_conduction=4, n_ranks=4)

        # Physics side sane:
        assert result.excitation_energies[0] > 0
        # The kernel mix matches the six-phase model minus comm (which the
        # SimMPI layer logs separately):
        assert {"face_split", "fft", "gemm", "syevd", "pointwise"} <= set(
            result.counters.calls
        )
        assert result.comm_bytes > 0

    def test_parallel_comm_structure_matches_pipeline(self, si8_ground_state):
        """Three alltoall transposes + two allreduces, as in Fig. 1."""
        result = run_lrtddft(
            si8_ground_state, n_active_valence=4, n_active_conduction=4, n_ranks=4
        )
        by_op = result.comm_bytes_by_op
        assert set(by_op) == {"alltoall", "allreduce"}
        # Alltoall volume dominates the coupling-matrix reductions.
        assert by_op["alltoall"] > by_op["allreduce"]

    def test_workload_model_agrees_with_executed_kernel_mix(self, si8_ground_state):
        """The analytic model's FLOP ordering must match the executed one:
        at executable scale, GEMM > FFT > face-split."""
        result = run_lrtddft(
            si8_ground_state, n_active_valence=4, n_active_conduction=4
        )
        calls = result.counters.calls
        assert calls["gemm"] >= 1 and calls["fft"] >= 1


class TestFrameworkEndToEnd:
    @pytest.mark.parametrize("n_atoms", [16, 64, 1024])
    def test_every_paper_system_runs(self, framework, n_atoms):
        result = framework.run(n_atoms=n_atoms)
        assert result.total_time > 0
        assert set(result.report.phase_seconds) == {str(p) for p in PhaseName}

    def test_headline_result(self, framework):
        """The abstract's claim: ~5.2x over CPU, ~2.5x over GPU on the
        large system (we assert the band, see EXPERIMENTS.md)."""
        problem = problem_size(1024)
        ndft = framework.run(problem=problem).total_time
        cpu = run_cpu_baseline(problem).total_time
        gpu = run_gpu_baseline(problem).total_time
        assert 4.2 < cpu / ndft < 6.5
        assert 1.7 < gpu / ndft < 3.3

    def test_deterministic(self, framework):
        a = framework.run(n_atoms=64)
        b = framework.run(n_atoms=64)
        assert a.total_time == pytest.approx(b.total_time, rel=1e-12)
        assert a.schedule.assignments == b.schedule.assignments


class TestWorkloadObjects:
    def test_executable_window(self):
        assert silicon_workload(64).is_executable
        assert not silicon_workload(1024).is_executable

    def test_executable_build(self):
        workload = silicon_workload(16)
        basis = workload.build_basis(ecut=1.0)
        assert basis.n_pw > 16

    def test_analytic_only_refuses_basis(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            silicon_workload(1024).build_basis()
