"""Unit tests for the EPM form factors and Kleinman-Bylander projectors."""

import numpy as np
import pytest

from repro.dft.basis import PlaneWaveBasis
from repro.dft.lattice import A_SILICON, silicon_supercell
from repro.dft.pseudopotential import (
    PROJECTORS_PER_ATOM,
    apply_nonlocal,
    build_projectors,
    epm_form_factor,
    local_potential_coefficients,
)
from repro.units import RYDBERG_TO_HARTREE


def shell_g2(q2_units: float) -> float:
    """|G|^2 in Bohr^-2 for a shell given in (2*pi/a)^2 units."""
    return q2_units * (2 * np.pi / A_SILICON) ** 2


class TestFormFactor:
    def test_published_knots(self):
        """The three Cohen-Bergstresser Si form factors are reproduced."""
        for q2, v_ry in ((3.0, -0.21), (8.0, 0.04), (11.0, 0.08)):
            v = epm_form_factor(np.array([shell_g2(q2)]))[0]
            assert v == pytest.approx(v_ry * RYDBERG_TO_HARTREE, rel=1e-9)

    def test_zero_at_gamma(self):
        assert epm_form_factor(np.array([0.0]))[0] == 0.0

    def test_zero_beyond_cutoff(self):
        assert epm_form_factor(np.array([shell_g2(30.0)]))[0] == 0.0

    def test_attractive_at_long_wavelength(self):
        v = epm_form_factor(np.array([shell_g2(1.0)]))
        assert v[0] < 0.0

    def test_smooth_between_knots(self):
        q2 = np.linspace(0.1, 11.0, 200)
        v = epm_form_factor(shell_g2(1.0) * q2 / 1.0)
        assert np.all(np.isfinite(v))
        assert np.abs(np.diff(v)).max() < 0.05


class TestLocalPotential:
    def test_hermiticity_symmetry(self, si8_cell):
        """V(-G) = conj(V(G)) so the convolution matrix is Hermitian."""
        g = np.array([[1.0, 0.5, -0.25], [0.3, 0.0, 0.9]])
        plus = local_potential_coefficients(si8_cell, g)
        minus = local_potential_coefficients(si8_cell, -g)
        assert np.allclose(minus, plus.conj(), atol=1e-12)

    def test_supercell_equivalence(self):
        """Si_8 and Si_64 give the same potential on shared G vectors."""
        small = silicon_supercell(8)
        large = silicon_supercell(64)
        g = np.array([[1, 1, 1], [2, 2, 0]]) @ small.reciprocal
        v_small = local_potential_coefficients(small, g)
        v_large = local_potential_coefficients(large, g)
        assert np.allclose(v_small, v_large, atol=1e-10)


class TestProjectors:
    def test_block_count_and_shape(self, si8_cell, si8_basis):
        blocks = build_projectors(si8_cell, si8_basis)
        assert len(blocks) == si8_cell.n_atoms
        for block in blocks:
            assert block.n_proj == PROJECTORS_PER_ATOM
            assert block.projectors.shape == (PROJECTORS_PER_ATOM, si8_basis.n_pw)
            assert block.pw_index.dtype == np.int64

    def test_payload_bytes_positive(self, si8_cell, si8_basis):
        blocks = build_projectors(si8_cell, si8_basis)
        expected = (
            si8_basis.n_pw * 8                      # index array
            + 2 * PROJECTORS_PER_ATOM * si8_basis.n_pw * 8  # re + im
            + PROJECTORS_PER_ATOM * 8               # coupling
        )
        assert blocks[0].nbytes == expected

    def test_apply_linear(self, si8_cell, si8_basis, rng):
        blocks = build_projectors(si8_cell, si8_basis)
        a = rng.normal(size=si8_basis.n_pw) + 1j * rng.normal(size=si8_basis.n_pw)
        b = rng.normal(size=si8_basis.n_pw) + 1j * rng.normal(size=si8_basis.n_pw)
        lhs = apply_nonlocal(blocks, 2.0 * a + 1j * b)
        rhs = 2.0 * apply_nonlocal(blocks, a) + 1j * apply_nonlocal(blocks, b)
        assert np.allclose(lhs, rhs, atol=1e-10)

    def test_apply_hermitian(self, si8_cell, si8_basis, rng):
        """<a|V_nl|b> = conj(<b|V_nl|a>)."""
        blocks = build_projectors(si8_cell, si8_basis)
        a = rng.normal(size=si8_basis.n_pw) + 1j * rng.normal(size=si8_basis.n_pw)
        b = rng.normal(size=si8_basis.n_pw) + 1j * rng.normal(size=si8_basis.n_pw)
        lhs = np.vdot(a, apply_nonlocal(blocks, b))
        rhs = np.conj(np.vdot(b, apply_nonlocal(blocks, a)))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_apply_positive_semidefinite(self, si8_cell, si8_basis, rng):
        """Positive couplings make <a|V_nl|a> >= 0."""
        blocks = build_projectors(si8_cell, si8_basis)
        a = rng.normal(size=si8_basis.n_pw) + 1j * rng.normal(size=si8_basis.n_pw)
        assert np.vdot(a, apply_nonlocal(blocks, a)).real >= -1e-12

    def test_apply_batch_matches_single(self, si8_cell, si8_basis, rng):
        blocks = build_projectors(si8_cell, si8_basis)
        batch = rng.normal(size=(3, si8_basis.n_pw)).astype(complex)
        out = apply_nonlocal(blocks, batch)
        for i in range(3):
            assert np.allclose(out[i], apply_nonlocal(blocks, batch[i]), atol=1e-12)
