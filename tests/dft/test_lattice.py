"""Unit tests for the silicon supercell builder."""

import numpy as np
import pytest

from repro.dft.lattice import (
    A_SILICON,
    ATOMS_PER_CONVENTIONAL_CELL,
    Crystal,
    silicon_supercell,
    supercell_dims,
)
from repro.errors import ConfigError


class TestSupercellDims:
    def test_unit(self):
        assert supercell_dims(1) == (1, 1, 1)

    def test_paper_sizes(self):
        assert supercell_dims(2) == (2, 1, 1)      # Si_16
        assert supercell_dims(4) == (2, 2, 1)      # Si_32
        assert supercell_dims(8) == (2, 2, 2)      # Si_64
        assert supercell_dims(128) == (8, 4, 4)    # Si_1024
        assert supercell_dims(256) == (8, 8, 4)    # Si_2048

    def test_product_preserved(self):
        for n in (1, 2, 3, 5, 6, 12, 30, 100):
            dims = supercell_dims(n)
            assert dims[0] * dims[1] * dims[2] == n

    def test_near_cubic_for_cubes(self):
        assert supercell_dims(27) == (3, 3, 3)
        assert supercell_dims(64) == (4, 4, 4)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            supercell_dims(0)


class TestSiliconSupercell:
    def test_atom_count(self):
        for n in (8, 16, 64, 128):
            assert silicon_supercell(n).n_atoms == n

    def test_rejects_non_multiple_of_8(self):
        for bad in (0, 4, 7, 12, -8):
            with pytest.raises(ConfigError):
                silicon_supercell(bad)

    def test_volume_scales_linearly(self):
        v8 = silicon_supercell(8).volume
        v64 = silicon_supercell(64).volume
        assert v64 == pytest.approx(8 * v8, rel=1e-12)
        assert v8 == pytest.approx(A_SILICON**3, rel=1e-12)

    def test_positions_in_unit_cell(self):
        cell = silicon_supercell(64)
        assert np.all(cell.frac_positions >= 0.0)
        assert np.all(cell.frac_positions < 1.0)

    def test_minimum_interatomic_distance(self):
        """Nearest-neighbor distance in diamond Si is a*sqrt(3)/4."""
        cell = silicon_supercell(8)
        cart = cell.cart_positions
        expected = A_SILICON * np.sqrt(3.0) / 4.0
        dmin = np.inf
        for i in range(len(cart)):
            for j in range(i + 1, len(cart)):
                delta = cart[i] - cart[j]
                # minimum-image convention in the cubic cell
                frac = np.linalg.solve(cell.lattice.T, delta)
                frac -= np.round(frac)
                dmin = min(dmin, np.linalg.norm(frac @ cell.lattice))
        assert dmin == pytest.approx(expected, rel=1e-9)

    def test_species_default_silicon(self):
        cell = silicon_supercell(8)
        assert set(cell.species) == {"Si"}
        assert len(cell.species) == 8


class TestCrystal:
    def test_reciprocal_duality(self):
        cell = silicon_supercell(8)
        product = cell.lattice @ cell.reciprocal.T
        assert np.allclose(product, 2 * np.pi * np.eye(3), atol=1e-12)

    def test_structure_factor_at_gamma(self):
        cell = silicon_supercell(16)
        s = cell.structure_factor(np.zeros((1, 3)))
        assert s[0] == pytest.approx(cell.n_atoms)

    def test_structure_factor_forbidden_reflection(self):
        """Diamond (2,0,0)-type reflections are extinct."""
        cell = silicon_supercell(8)
        g = np.array([[2, 0, 0]]) @ cell.reciprocal
        assert abs(cell.structure_factor(g)[0]) < 1e-9

    def test_structure_factor_allowed_reflection(self):
        """(1,1,1) reflection is allowed in diamond."""
        cell = silicon_supercell(8)
        g = np.array([[1, 1, 1]]) @ cell.reciprocal
        assert abs(cell.structure_factor(g)[0]) > 1.0

    def test_rejects_singular_lattice(self):
        with pytest.raises(ConfigError):
            Crystal(lattice=np.zeros((3, 3)), frac_positions=np.zeros((1, 3)))

    def test_rejects_bad_positions_shape(self):
        with pytest.raises(ConfigError):
            Crystal(lattice=np.eye(3), frac_positions=np.zeros((3,)))

    def test_rejects_species_mismatch(self):
        with pytest.raises(ConfigError):
            Crystal(
                lattice=np.eye(3),
                frac_positions=np.zeros((2, 3)),
                species=("Si",),
            )

    def test_positions_wrapped(self):
        cell = Crystal(lattice=np.eye(3), frac_positions=np.array([[1.25, -0.25, 0.5]]))
        assert np.allclose(cell.frac_positions[0], [0.25, 0.75, 0.5])

    def test_conventional_cell_has_8_atoms(self):
        assert ATOMS_PER_CONVENTIONAL_CELL == 8
