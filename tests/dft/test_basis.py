"""Unit tests for the plane-wave basis and its grid transforms."""

import numpy as np
import pytest

from repro.dft.basis import PlaneWaveBasis, next_fast_fft_size
from repro.dft.lattice import silicon_supercell
from repro.errors import ConfigError


class TestNextFastFftSize:
    def test_already_smooth(self):
        for n in (1, 2, 8, 12, 30, 125, 128):
            assert next_fast_fft_size(n) == n

    def test_rounds_up(self):
        assert next_fast_fft_size(7) == 8
        assert next_fast_fft_size(11) == 12
        assert next_fast_fft_size(97) == 100

    def test_result_is_smooth(self):
        for n in range(1, 200):
            result = next_fast_fft_size(n)
            assert result >= n
            reduced = result
            for p in (2, 3, 5):
                while reduced % p == 0:
                    reduced //= p
            assert reduced == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            next_fast_fft_size(0)


class TestBasisConstruction:
    def test_cutoff_respected(self, si8_basis):
        assert np.all(si8_basis.g2 / 2.0 <= si8_basis.ecut + 1e-9)

    def test_pw_count_scaling(self, si8_cell):
        """n_pw grows ~ecut^1.5 (sphere volume in G space)."""
        low = PlaneWaveBasis(si8_cell, ecut=1.0).n_pw
        high = PlaneWaveBasis(si8_cell, ecut=4.0).n_pw
        assert 5.0 < high / low < 11.0  # ideal ratio 8

    def test_gamma_present_and_first_shell(self, si8_basis):
        assert si8_basis.g2[si8_basis.gamma_index] == pytest.approx(0.0)

    def test_grid_covers_products(self, si8_cell):
        basis = PlaneWaveBasis(si8_cell, ecut=2.0)
        hmax = np.abs(basis.miller).max(axis=0)
        for axis in range(3):
            assert basis.fft_shape[axis] >= 4 * hmax[axis] + 1

    def test_rejects_bad_ecut(self, si8_cell):
        with pytest.raises(ConfigError):
            PlaneWaveBasis(si8_cell, ecut=0.0)

    def test_rejects_bad_grid_factor(self, si8_cell):
        with pytest.raises(ConfigError):
            PlaneWaveBasis(si8_cell, ecut=1.0, grid_factor=0.5)

    def test_g_vectors_match_miller(self, si8_basis):
        reconstructed = si8_basis.miller @ si8_basis.cell.reciprocal
        assert np.allclose(reconstructed, si8_basis.g_cart, atol=1e-12)


class TestGridTransforms:
    def test_roundtrip_single(self, si8_basis, rng):
        coeffs = rng.normal(size=si8_basis.n_pw) + 1j * rng.normal(size=si8_basis.n_pw)
        back = si8_basis.from_grid(si8_basis.to_grid(coeffs))
        assert np.allclose(back, coeffs, atol=1e-10)

    def test_roundtrip_batch(self, si8_basis, rng):
        coeffs = rng.normal(size=(5, si8_basis.n_pw)) + 1j * rng.normal(
            size=(5, si8_basis.n_pw)
        )
        back = si8_basis.from_grid(si8_basis.to_grid(coeffs))
        assert back.shape == coeffs.shape
        assert np.allclose(back, coeffs, atol=1e-10)

    def test_parseval(self, si8_basis, rng):
        """Grid samples preserve the norm: mean |psi~|^2 = sum |c|^2."""
        coeffs = rng.normal(size=si8_basis.n_pw)
        coeffs = si8_basis.normalize(coeffs.astype(complex))
        grid = si8_basis.to_grid(coeffs)
        assert np.mean(np.abs(grid) ** 2) == pytest.approx(1.0, rel=1e-9)

    def test_constant_function(self, si8_basis):
        """A pure G=0 coefficient produces a constant grid."""
        coeffs = np.zeros(si8_basis.n_pw, dtype=complex)
        coeffs[si8_basis.gamma_index] = 1.0
        grid = si8_basis.to_grid(coeffs)
        assert np.allclose(grid, 1.0, atol=1e-12)

    def test_linear(self, si8_basis, rng):
        a = rng.normal(size=si8_basis.n_pw).astype(complex)
        b = rng.normal(size=si8_basis.n_pw).astype(complex)
        lhs = si8_basis.to_grid(2.0 * a - 3.0 * b)
        rhs = 2.0 * si8_basis.to_grid(a) - 3.0 * si8_basis.to_grid(b)
        assert np.allclose(lhs, rhs, atol=1e-10)

    def test_shape_errors(self, si8_basis):
        with pytest.raises(ConfigError):
            si8_basis.to_grid(np.zeros(si8_basis.n_pw + 1))
        with pytest.raises(ConfigError):
            si8_basis.from_grid(np.zeros((2, 2, 2)))

    def test_normalize_rejects_zero(self, si8_basis):
        with pytest.raises(ConfigError):
            si8_basis.normalize(np.zeros(si8_basis.n_pw))

    def test_grid_g_vectors_shape_and_gamma(self, si8_basis):
        g = si8_basis.grid_g_vectors()
        assert g.shape == (si8_basis.n_grid, 3)
        assert np.allclose(g[0], 0.0)
