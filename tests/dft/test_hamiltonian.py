"""Unit tests for the Casida/TDA response-matrix assembly."""

import numpy as np
import pytest

from repro.dft.hamiltonian import (
    build_tda_matrix,
    coulomb_multiplier,
    pair_energy_differences,
    select_active_window,
)
from repro.dft.kernels import KernelCounters
from repro.errors import ConfigError


class TestActiveWindow:
    def test_default_covers_all(self, si8_ground_state):
        window = select_active_window(si8_ground_state)
        assert window.n_valence == si8_ground_state.n_valence
        assert window.n_conduction == si8_ground_state.n_conduction

    def test_window_near_gap(self, si8_ground_state):
        window = select_active_window(si8_ground_state, 3, 2)
        # Highest 3 valence, lowest 2 conduction.
        nv = si8_ground_state.n_valence
        assert list(window.valence_index) == [nv - 3, nv - 2, nv - 1]
        assert list(window.conduction_index) == [nv, nv + 1]
        assert window.n_pairs == 6

    def test_rejects_out_of_range(self, si8_ground_state):
        with pytest.raises(ConfigError):
            select_active_window(si8_ground_state, 0, 2)
        with pytest.raises(ConfigError):
            select_active_window(si8_ground_state, 2, 10**6)


class TestCoulombMultiplier:
    def test_zero_at_gamma_positive_elsewhere(self, si8_basis):
        v = coulomb_multiplier(si8_basis)
        assert v[0] == 0.0
        assert np.all(v[1:] > 0.0)

    def test_inverse_g2(self, si8_basis):
        v = coulomb_multiplier(si8_basis)
        g = si8_basis.grid_g_vectors()
        g2 = np.einsum("ij,ij->i", g, g)
        mask = g2 > 1e-12
        assert np.allclose(v[mask] * g2[mask], 4 * np.pi, rtol=1e-12)


class TestEnergyDifferences:
    def test_positive_and_ordered(self, si8_ground_state):
        window = select_active_window(si8_ground_state, 4, 3)
        diffs = pair_energy_differences(si8_ground_state, window)
        assert diffs.shape == (12,)
        assert np.all(diffs > 0)
        gap = si8_ground_state.band_gap
        assert diffs.min() == pytest.approx(gap, rel=1e-9)


class TestTdaMatrix:
    @pytest.fixture(scope="class")
    def tda(self, si8_ground_state):
        window = select_active_window(si8_ground_state, 4, 4)
        counters = KernelCounters()
        matrix = build_tda_matrix(si8_ground_state, window, counters=counters)
        return matrix, window, counters

    def test_hermitian(self, tda):
        matrix, _window, _c = tda
        assert np.allclose(matrix, matrix.conj().T, atol=1e-12)

    def test_dimensions(self, tda):
        matrix, window, _c = tda
        assert matrix.shape == (window.n_pairs, window.n_pairs)

    def test_diagonal_dominated_by_energy_differences(
        self, tda, si8_ground_state
    ):
        matrix, window, _c = tda
        diffs = pair_energy_differences(si8_ground_state, window)
        coupling = np.real(np.diag(matrix)) - diffs
        # The 2K correction is a fraction of the transition energies.
        assert np.abs(coupling).max() < diffs.max()

    def test_eigenvalues_positive(self, tda):
        matrix, _window, _c = tda
        eigenvalues = np.linalg.eigvalsh(matrix)
        assert np.all(eigenvalues > 0)

    def test_counter_covers_all_kernels(self, tda):
        _matrix, _window, counters = tda
        assert set(counters.calls) >= {"face_split", "fft", "gemm", "pointwise"}

    def test_hartree_blockwise_psd(self, si8_ground_state):
        """The Hartree-only coupling (no f_xc) must be PSD: it is a Gram
        matrix in the Coulomb metric."""
        window = select_active_window(si8_ground_state, 3, 3)
        full = build_tda_matrix(si8_ground_state, window, include_correlation=False)
        diffs = np.diag(pair_energy_differences(si8_ground_state, window))
        # 2K_total = A - diag; with exchange-only f_xc, K = K_H + K_x where
        # K_x is negative semidefinite; so lambda_min(K) >= lambda_min(K_x).
        coupling = (full - diffs) / 2.0
        eigenvalues = np.linalg.eigvalsh(coupling)
        assert eigenvalues.max() > -1e-10  # not entirely negative
