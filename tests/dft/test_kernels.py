"""Unit tests for the instrumented numerical kernels and their counters."""

import numpy as np
import pytest

from repro.dft.kernels import (
    KernelCounters,
    face_splitting_product,
    fft_3d,
    fft_flops,
    gemm,
    ifft_3d,
    pointwise_multiply,
    syevd,
)
from repro.errors import PhysicsError


class TestCounters:
    def test_record_accumulates(self):
        c = KernelCounters()
        c.record("x", flops=10, bytes_read=4, bytes_written=2)
        c.record("x", flops=5, bytes_read=1, bytes_written=1)
        assert c.flops == 15
        assert c.bytes_total == 8
        assert c.calls == {"x": 2}

    def test_merged(self):
        a = KernelCounters()
        a.record("fft", 1, 2, 3)
        b = KernelCounters()
        b.record("gemm", 10, 20, 30)
        b.record("fft", 1, 1, 1)
        merged = a.merged(b)
        assert merged.flops == 12
        assert merged.calls == {"fft": 2, "gemm": 1}
        # inputs untouched
        assert a.flops == 1 and b.flops == 11

    def test_arithmetic_intensity(self):
        c = KernelCounters()
        c.record("x", flops=100, bytes_read=40, bytes_written=10)
        assert c.arithmetic_intensity == pytest.approx(2.0)

    def test_ai_undefined_without_traffic(self):
        with pytest.raises(PhysicsError):
            KernelCounters().arithmetic_intensity


class TestFft:
    def test_flop_formula(self):
        assert fft_flops(1024) == pytest.approx(5 * 1024 * 10)

    def test_roundtrip(self, rng):
        field = rng.normal(size=(4, 6, 5)) + 1j * rng.normal(size=(4, 6, 5))
        assert np.allclose(ifft_3d(fft_3d(field)), field, atol=1e-12)

    def test_matches_numpy(self, rng):
        field = rng.normal(size=(3, 4, 5)).astype(complex)
        assert np.allclose(fft_3d(field), np.fft.fftn(field), atol=1e-12)

    def test_batch_axes(self, rng):
        batch = rng.normal(size=(2, 3, 4, 5)).astype(complex)
        out = fft_3d(batch)
        for i in range(2):
            assert np.allclose(out[i], np.fft.fftn(batch[i]), atol=1e-12)

    def test_counter_accounting(self):
        c = KernelCounters()
        fft_3d(np.zeros((2, 4, 4, 4), dtype=complex), c)
        assert c.flops == pytest.approx(2 * fft_flops(64))
        assert c.bytes_read == 2 * 64 * 16
        assert c.calls["fft"] == 1


class TestFaceSplit:
    def test_values(self):
        psi_v = np.array([[1 + 1j, 2.0], [0.5, 1j]])
        psi_c = np.array([[2.0, 1.0]])
        pairs = face_splitting_product(psi_v, psi_c)
        assert pairs.shape == (2, 2)
        assert pairs[0, 0] == pytest.approx((1 - 1j) * 2.0)
        assert pairs[1, 1] == pytest.approx(-1j * 1.0)

    def test_pair_ordering_valence_major(self, rng):
        psi_v = rng.normal(size=(3, 4)).astype(complex)
        psi_c = rng.normal(size=(2, 4)).astype(complex)
        pairs = face_splitting_product(psi_v, psi_c)
        # pair index = i * n_c + a
        assert np.allclose(pairs[1 * 2 + 1], psi_v[1].conj() * psi_c[1])

    def test_grid_mismatch(self):
        with pytest.raises(PhysicsError):
            face_splitting_product(np.zeros((1, 3)), np.zeros((1, 4)))

    def test_counter(self):
        c = KernelCounters()
        face_splitting_product(np.ones((2, 8)), np.ones((3, 8)), c)
        assert c.flops == 6 * 2 * 3 * 8
        assert c.calls["face_split"] == 1


class TestGemm:
    def test_matches_numpy(self, rng):
        a = rng.normal(size=(3, 5)).astype(complex)
        b = rng.normal(size=(5, 2)).astype(complex)
        assert np.allclose(gemm(a, b), a @ b, atol=1e-12)

    def test_counter_flops(self, rng):
        c = KernelCounters()
        gemm(np.ones((3, 5), dtype=complex), np.ones((5, 2), dtype=complex), c)
        assert c.flops == 8 * 3 * 2 * 5

    def test_shape_mismatch(self):
        with pytest.raises(PhysicsError):
            gemm(np.zeros((2, 3)), np.zeros((4, 2)))


class TestSyevd:
    def test_eigen_decomposition(self, rng):
        m = rng.normal(size=(6, 6)) + 1j * rng.normal(size=(6, 6))
        h = m + m.conj().T
        values, vectors = syevd(h)
        assert np.all(np.diff(values) >= -1e-12)
        assert np.allclose(h @ vectors, vectors @ np.diag(values), atol=1e-9)

    def test_rejects_non_hermitian(self, rng):
        with pytest.raises(PhysicsError):
            syevd(rng.normal(size=(5, 5)) + 1j * rng.normal(size=(5, 5)))

    def test_rejects_non_square(self):
        with pytest.raises(PhysicsError):
            syevd(np.zeros((3, 4)))

    def test_counter(self):
        c = KernelCounters()
        syevd(np.eye(8, dtype=complex), c)
        assert c.flops == 9 * 8**3


class TestPointwise:
    def test_values_and_counter(self, rng):
        c = KernelCounters()
        field = rng.normal(size=(2, 6)).astype(complex)
        mult = rng.normal(size=6)
        out = pointwise_multiply(field, mult[None, :], c)
        assert np.allclose(out, field * mult, atol=1e-12)
        assert c.flops == 6 * 12
