"""Integration tests: the end-to-end LR-TDDFT drivers."""

import numpy as np
import pytest

from repro.dft.lrtddft import run_lrtddft
from repro.errors import ConfigError
from repro.units import HARTREE_TO_EV


@pytest.fixture(scope="module")
def serial_result(si8_ground_state):
    return run_lrtddft(si8_ground_state, n_active_valence=4, n_active_conduction=4)


class TestSerial:
    def test_energy_count(self, serial_result):
        assert len(serial_result.excitation_energies) == 16

    def test_energies_positive_sorted(self, serial_result):
        e = serial_result.excitation_energies
        assert np.all(e > 0)
        assert np.all(np.diff(e) >= -1e-12)

    def test_lowest_excitation_near_gap(self, serial_result, si8_ground_state):
        """TDA lowest excitation sits within a few eV of the HOMO-LUMO gap."""
        gap_ev = si8_ground_state.band_gap * HARTREE_TO_EV
        lowest = serial_result.lowest_excitation_ev
        assert 0.3 * gap_ev < lowest < 3.0 * gap_ev

    def test_counters_populated(self, serial_result):
        assert serial_result.counters.flops > 0
        assert "syevd" in serial_result.counters.calls

    def test_serial_has_no_comm(self, serial_result):
        assert serial_result.comm_bytes == 0
        assert serial_result.comm_bytes_by_op == {}


class TestParallel:
    @pytest.mark.parametrize("n_ranks", [2, 3, 4, 7])
    def test_matches_serial(self, si8_ground_state, serial_result, n_ranks):
        parallel = run_lrtddft(
            si8_ground_state,
            n_active_valence=4,
            n_active_conduction=4,
            n_ranks=n_ranks,
        )
        assert np.allclose(
            parallel.excitation_energies,
            serial_result.excitation_energies,
            atol=1e-8,
        )

    def test_comm_traffic_recorded(self, si8_ground_state):
        result = run_lrtddft(
            si8_ground_state, n_active_valence=4, n_active_conduction=4, n_ranks=4
        )
        assert result.comm_bytes > 0
        assert "alltoall" in result.comm_bytes_by_op
        assert "allreduce" in result.comm_bytes_by_op

    def test_more_ranks_more_traffic(self, si8_ground_state):
        totals = []
        for n_ranks in (2, 4, 8):
            result = run_lrtddft(
                si8_ground_state,
                n_active_valence=4,
                n_active_conduction=4,
                n_ranks=n_ranks,
            )
            totals.append(result.comm_bytes)
        assert totals[0] < totals[1] < totals[2]

    def test_rejects_bad_rank_count(self, si8_ground_state):
        with pytest.raises(ConfigError):
            run_lrtddft(si8_ground_state, n_ranks=0)

    def test_without_correlation(self, si8_ground_state):
        serial = run_lrtddft(
            si8_ground_state, 4, 4, n_ranks=1, include_correlation=False
        )
        parallel = run_lrtddft(
            si8_ground_state, 4, 4, n_ranks=3, include_correlation=False
        )
        assert np.allclose(
            serial.excitation_energies, parallel.excitation_energies, atol=1e-8
        )
