"""Tests for the analytic workload model, including its consistency with
the instrumented numpy kernels at executable scale."""

import math

import numpy as np
import pytest

from repro.dft.workload import (
    GRID_POINTS_PER_ATOM,
    gemm_intensity,
    problem_size,
    stage_workloads,
    syevd_intensity,
)
from repro.errors import ConfigError
from repro.model import AccessPattern, PhaseName


class TestProblemSize:
    def test_paper_dimensions(self):
        ps = problem_size(64)
        assert ps.label == "Si_64"
        assert ps.n_valence == 128
        assert ps.n_active_valence == 40   # 5 * sqrt(64)
        assert ps.n_active_conduction == 8
        assert ps.n_pairs == 320

    def test_grid_tracks_atom_count(self):
        for n in (16, 64, 256, 1024):
            ps = problem_size(n)
            assert 0.8 * GRID_POINTS_PER_ATOM * n <= ps.n_grid <= 1.6 * GRID_POINTS_PER_ATOM * n

    def test_sphere_fractions(self):
        ps = problem_size(256)
        assert ps.n_pw == ps.n_grid // 8
        assert ps.n_chi == ps.n_grid // 160

    def test_rejects_bad_atoms(self):
        with pytest.raises(ConfigError):
            problem_size(0)

    def test_pair_volume(self):
        ps = problem_size(16)
        assert ps.pair_volume == ps.n_pairs * ps.n_grid


class TestIntensities:
    def test_syevd_flips_with_size(self):
        """The Fig. 4 observation: SYEVD memory-bound small, compute-bound
        large.  The CPU ridge is ~8.7 FLOP/byte."""
        assert syevd_intensity(problem_size(64).n_pairs) < 8.0
        assert syevd_intensity(problem_size(1024).n_pairs) > 9.0

    def test_syevd_clipped(self):
        assert syevd_intensity(1) == 2.0
        assert syevd_intensity(10**6) == 30.0

    def test_gemm_grows_with_size(self):
        small = gemm_intensity(problem_size(64).n_pairs)
        large = gemm_intensity(problem_size(1024).n_pairs)
        assert small < large


class TestStageWorkloads:
    @pytest.fixture(scope="class")
    def workloads(self):
        return stage_workloads(problem_size(64))

    def test_all_phases_present(self, workloads):
        assert set(workloads) == set(PhaseName)

    def test_memory_phases_low_intensity(self, workloads):
        for phase in (PhaseName.FACE_SPLIT, PhaseName.FFT):
            assert workloads[phase].arithmetic_intensity < 2.0

    def test_gemm_high_intensity(self, workloads):
        assert workloads[PhaseName.GEMM].arithmetic_intensity > 20.0

    def test_comm_carries_bytes_not_flops(self, workloads):
        comm = workloads[PhaseName.GLOBAL_COMM]
        assert comm.flops == 0
        assert comm.comm_bytes > 0

    def test_patterns(self, workloads):
        assert workloads[PhaseName.FFT].access_pattern is AccessPattern.STRIDED
        assert workloads[PhaseName.GEMM].access_pattern is AccessPattern.BLOCKED
        assert (
            workloads[PhaseName.GLOBAL_COMM].access_pattern
            is AccessPattern.IRREGULAR
        )

    def test_streaming_phases_scale_superlinearly(self):
        """p * n_grid ~ N^1.5: doubling atoms raises FFT traffic ~2.8x."""
        small = stage_workloads(problem_size(256))[PhaseName.FFT].bytes_total
        large = stage_workloads(problem_size(1024))[PhaseName.FFT].bytes_total
        assert 4.0 < large / small < 14.0  # ideal (4)^1.5 = 8

    def test_footprints_positive(self, workloads):
        for workload in workloads.values():
            assert workload.dataset_bytes > 0


class TestConsistencyWithInstrumentedKernels:
    """The analytic model and the executable kernels must agree on FLOP
    scaling at executable sizes (the workload model's anchor)."""

    def test_fft_flops_formula(self, si8_basis, rng):
        from repro.dft.kernels import KernelCounters, fft_3d

        counters = KernelCounters()
        batch = rng.normal(size=(10, *si8_basis.fft_shape)).astype(complex)
        fft_3d(batch, counters)
        n = si8_basis.n_grid
        assert counters.flops == pytest.approx(10 * 5 * n * math.log2(n), rel=1e-9)

    def test_syevd_flops_formula(self, rng):
        from repro.dft.kernels import KernelCounters, syevd

        counters = KernelCounters()
        m = rng.normal(size=(32, 32))
        syevd(m + m.T, counters)
        assert counters.flops == pytest.approx(9 * 32**3)

    def test_face_split_flops_per_point(self, rng):
        """The analytic model charges 18 FLOPs/point for face-split plus
        the two pointwise kernel multiplies; the executable face-split
        alone charges 6 — exactly one third."""
        from repro.dft.kernels import KernelCounters, face_splitting_product

        counters = KernelCounters()
        face_splitting_product(
            rng.normal(size=(4, 100)).astype(complex),
            rng.normal(size=(2, 100)).astype(complex),
            counters,
        )
        analytic = stage_workloads(problem_size(64))[PhaseName.FACE_SPLIT]
        per_point_exec = counters.flops / (8 * 100)
        assert per_point_exec == pytest.approx(6.0)
        volume = problem_size(64).pair_volume
        assert analytic.flops / volume == pytest.approx(18.0)
