"""Unit tests for the EPM ground-state solver."""

import numpy as np
import pytest

from repro.dft.basis import PlaneWaveBasis
from repro.dft.groundstate import build_hamiltonian, solve_ground_state
from repro.dft.lattice import silicon_supercell
from repro.errors import ConfigError
from repro.units import HARTREE_TO_EV


class TestHamiltonian:
    def test_hermitian(self, si8_cell, si8_basis):
        h = build_hamiltonian(si8_cell, si8_basis)
        assert np.allclose(h, h.conj().T, atol=1e-12)

    def test_kinetic_diagonal(self, si8_cell, si8_basis):
        h = build_hamiltonian(si8_cell, si8_basis, blocks=None)
        # The diagonal carries |G|^2/2 plus the (uniform) V(0) = 0 shift.
        assert np.allclose(np.diag(h).real, 0.5 * si8_basis.g2, atol=1e-9)


class TestGroundState:
    def test_band_count(self, si8_ground_state):
        gs = si8_ground_state
        assert gs.n_valence == 16  # 8 atoms x 4 electrons / 2
        assert gs.n_conduction >= 4
        assert gs.n_bands == gs.n_valence + gs.n_conduction

    def test_eigenvalues_sorted(self, si8_ground_state):
        eigs = si8_ground_state.eigenvalues
        assert np.all(np.diff(eigs) >= -1e-12)

    def test_orbitals_orthonormal(self, si8_ground_state):
        gs = si8_ground_state
        overlap = gs.orbitals @ gs.orbitals.conj().T
        assert np.allclose(overlap, np.eye(gs.n_bands), atol=1e-9)

    def test_silicon_gap_realistic(self, si8_cell):
        """The folded Si_8 supercell gap converges near the experimental
        1.17 eV; at modest cutoff it must land in a physical window."""
        basis = PlaneWaveBasis(si8_cell, ecut=2.5)
        gs = solve_ground_state(si8_cell, basis, include_nonlocal=False)
        gap_ev = gs.band_gap * HARTREE_TO_EV
        assert 0.6 < gap_ev < 1.8

    def test_nonlocal_perturbs_not_destroys(self, si8_cell):
        basis = PlaneWaveBasis(si8_cell, ecut=2.0)
        local = solve_ground_state(si8_cell, basis, include_nonlocal=False)
        full = solve_ground_state(si8_cell, basis, include_nonlocal=True)
        # Nonlocal projectors shift bands by << bandwidth.
        shift = np.abs(full.eigenvalues - local.eigenvalues).max()
        bandwidth = local.eigenvalues.max() - local.eigenvalues.min()
        assert shift < 0.2 * bandwidth
        assert full.band_gap > 0

    def test_density_positive_and_normalized(self, si8_ground_state):
        gs = si8_ground_state
        density = gs.density_grid()
        assert np.all(density >= -1e-12)
        electrons = density.sum() * gs.cell.volume / gs.basis.n_grid
        assert electrons == pytest.approx(2 * gs.n_valence, rel=1e-9)

    def test_density_has_bond_structure(self, si8_ground_state):
        """Covalent silicon density is far from uniform."""
        density = si8_ground_state.density_grid()
        assert density.max() > 3.0 * density.mean()

    def test_orbital_getters(self, si8_ground_state):
        gs = si8_ground_state
        assert len(gs.valence_orbitals()) == gs.n_valence
        assert len(gs.conduction_orbitals()) == gs.n_conduction

    def test_rejects_too_many_bands(self, si8_cell):
        basis = PlaneWaveBasis(si8_cell, ecut=0.5)
        with pytest.raises(ConfigError):
            solve_ground_state(si8_cell, basis, n_conduction=basis.n_pw)

    def test_conduction_override(self, si8_cell, si8_basis):
        gs = solve_ground_state(si8_cell, si8_basis, n_conduction=6)
        assert gs.n_conduction == 6
