"""Unit tests for the LDA functional and the adiabatic kernel."""

import numpy as np
import pytest

from repro.dft import xc
from repro.errors import PhysicsError


def finite_diff(f, rho, h=1e-7):
    return (f(rho * (1 + h)) - f(rho * (1 - h))) / (2 * rho * h)


class TestExchange:
    def test_energy_density_scaling(self):
        """eps_x ~ rho^(1/3)."""
        rho = np.array([0.01, 0.08])
        ratio = xc.exchange_energy_density(rho[1]) / xc.exchange_energy_density(rho[0])
        assert ratio == pytest.approx(2.0, rel=1e-12)

    def test_energy_density_negative(self):
        assert np.all(xc.exchange_energy_density(np.array([0.01, 1.0])) < 0)

    def test_potential_is_derivative(self):
        rho = np.array([0.005, 0.02, 0.1, 0.5])
        analytic = xc.exchange_potential(rho)
        numeric = finite_diff(
            lambda r: r * xc.exchange_energy_density(r), rho
        )
        assert np.allclose(analytic, numeric, rtol=1e-6)

    def test_kernel_is_derivative_of_potential(self):
        rho = np.array([0.005, 0.02, 0.1, 0.5])
        analytic = xc.exchange_kernel(rho)
        numeric = finite_diff(xc.exchange_potential, rho)
        assert np.allclose(analytic, numeric, rtol=1e-6)

    def test_kernel_negative(self):
        assert np.all(xc.exchange_kernel(np.array([0.01, 0.1, 1.0])) < 0)


class TestCorrelation:
    def test_energy_negative(self):
        rho = np.array([1e-3, 0.01, 0.1, 1.0])
        assert np.all(xc.correlation_energy_density(rho) < 0)

    def test_branches_continuous_at_rs1(self):
        """PZ81 branches must join continuously at r_s = 1."""
        rho_at_rs1 = 3.0 / (4.0 * np.pi)  # rs = 1
        below = xc.correlation_energy_density(np.array([rho_at_rs1 * 0.999]))
        above = xc.correlation_energy_density(np.array([rho_at_rs1 * 1.001]))
        assert below[0] == pytest.approx(above[0], rel=1e-3)

    def test_potential_is_derivative(self):
        rho = np.array([0.01, 0.05, 0.3])
        analytic = xc.correlation_potential(rho)
        numeric = finite_diff(
            lambda r: r * xc.correlation_energy_density(r), rho
        )
        assert np.allclose(analytic, numeric, rtol=1e-5)

    def test_known_value_rs2(self):
        """PZ81 at r_s = 2: eps_c ~= -0.0448 Ha (published value)."""
        rho = 3.0 / (4.0 * np.pi * 2.0**3)
        eps = xc.correlation_energy_density(np.array([rho]))[0]
        assert eps == pytest.approx(-0.0448, abs=0.002)


class TestKernel:
    def test_total_kernel_includes_correlation(self):
        rho = np.array([0.02, 0.2])
        with_c = xc.xc_kernel(rho, include_correlation=True)
        without_c = xc.xc_kernel(rho, include_correlation=False)
        assert not np.allclose(with_c, without_c)

    def test_kernel_rejects_negative_density(self):
        with pytest.raises(PhysicsError):
            xc.xc_kernel(np.array([0.01, -0.5]))

    def test_kernel_finite_at_tiny_density(self):
        result = xc.xc_kernel(np.array([0.0, 1e-30]))
        assert np.all(np.isfinite(result))

    def test_potential_composition(self):
        rho = np.array([0.05, 0.5])
        assert np.allclose(
            xc.xc_potential(rho),
            xc.exchange_potential(rho) + xc.correlation_potential(rho),
        )
