"""Replicated vs shared-block pseudopotential layouts (Algorithm 1)."""

import numpy as np
import pytest

from repro.dft.pseudopotential import build_projectors
from repro.errors import ConfigError
from repro.shmem.api import NdftSharedMemory
from repro.shmem.pseudo_layout import ReplicatedLayout, SharedBlockLayout
from repro.units import MiB


@pytest.fixture(scope="module")
def blocks(si8_cell, si8_basis):
    return tuple(build_projectors(si8_cell, si8_basis))


@pytest.fixture
def runtime():
    return NdftSharedMemory(
        n_stacks=4, units_per_stack=2, capacity_per_stack=64 * MiB
    )


@pytest.fixture(scope="module")
def psi(si8_basis, rng):
    return rng.normal(size=(5, si8_basis.n_pw)) + 1j * rng.normal(
        size=(5, si8_basis.n_pw)
    )


class TestReplicated:
    def test_memory_scales_with_ranks(self, blocks):
        r4 = ReplicatedLayout(blocks=blocks, n_ranks=4)
        r8 = ReplicatedLayout(blocks=blocks, n_ranks=8)
        assert r8.total_bytes == 2 * r4.total_bytes
        assert r4.bytes_per_rank == r8.bytes_per_rank

    def test_apply_identical_on_all_ranks(self, blocks, psi):
        layout = ReplicatedLayout(blocks=blocks, n_ranks=3)
        results = [layout.apply(psi, rank=r) for r in range(3)]
        assert np.allclose(results[0], results[1])
        assert np.allclose(results[1], results[2])

    def test_rank_range(self, blocks, psi):
        layout = ReplicatedLayout(blocks=blocks, n_ranks=2)
        with pytest.raises(ConfigError):
            layout.apply(psi, rank=2)


class TestSharedBlock:
    def test_functional_equivalence(self, blocks, runtime, psi):
        """Algorithm 1 must not change the physics: bit-identical update."""
        replicated = ReplicatedLayout(blocks=blocks, n_ranks=runtime.n_units)
        shared = SharedBlockLayout(blocks=blocks, runtime=runtime)
        for rank in (0, 3, 7):
            assert np.allclose(
                shared.apply(psi, rank=rank),
                replicated.apply(psi, rank=0),
                atol=1e-12,
            )

    def test_memory_reduction(self, blocks, runtime):
        replicated = ReplicatedLayout(blocks=blocks, n_ranks=runtime.n_units)
        shared = SharedBlockLayout(blocks=blocks, runtime=runtime)
        assert shared.total_bytes < replicated.total_bytes / 2

    def test_per_rank_footprint_owned_plus_index(self, blocks, runtime):
        shared = SharedBlockLayout(blocks=blocks, runtime=runtime)
        total_owned = sum(
            shared.bytes_per_rank(r) for r in range(shared.n_ranks)
        )
        # Each payload counted once + every rank's index table.
        payload = sum(b.nbytes for b in blocks)
        assert total_owned > payload

    def test_remote_traffic_filtered_on_reuse(self, blocks, runtime, psi):
        shared = SharedBlockLayout(blocks=blocks, runtime=runtime)
        shared.apply(psi, rank=0)
        first = runtime.comm.inter_stack_bytes
        shared.apply(psi, rank=0)
        assert runtime.comm.inter_stack_bytes == first  # all staged

    def test_empty_blocks_rejected(self, runtime):
        with pytest.raises(ConfigError):
            SharedBlockLayout(blocks=(), runtime=runtime)
