"""The NDFT_* shared-memory APIs (Table II) and the hierarchical arbiters."""

import numpy as np
import pytest

from repro.errors import AllocationError, CommunicationError
from repro.hw.interconnect import MeshNetwork
from repro.shmem.api import NdftSharedMemory
from repro.shmem.arbiter import CommArbiter, HierarchicalComm
from repro.units import MiB
from tests.shmem.test_shared_block import make_block


@pytest.fixture
def runtime():
    return NdftSharedMemory(
        n_stacks=4, units_per_stack=2, capacity_per_stack=8 * MiB
    )


class TestAllocShared:
    def test_alloc_returns_descriptor_in_callers_stack(self, runtime):
        block = runtime.alloc_shared(make_block(atom_index=0), unit_id=5)
        assert block.stack_id == runtime.stack_of(5) == 2

    def test_alloc_registers_in_callers_table(self, runtime):
        block = runtime.alloc_shared(make_block(atom_index=1), unit_id=0)
        assert runtime.table_of(0).lookup(1) is block

    def test_payload_stored_once_per_stack(self, runtime):
        runtime.alloc_shared(make_block(atom_index=0), unit_id=0)
        runtime.alloc_shared(make_block(atom_index=1), unit_id=2)
        per_stack = runtime.shared_bytes_by_stack()
        assert per_stack[0] > 0 and per_stack[1] > 0
        assert per_stack[2] == per_stack[3] == 0


class TestReadWrite:
    def test_read_roundtrip(self, runtime):
        original = make_block(atom_index=0, seed=3)
        block = runtime.alloc_shared(original, unit_id=0)
        restored = runtime.read(block, unit_id=1)  # same stack (units 0,1)
        assert np.allclose(restored.projectors, original.projectors)

    def test_read_wrong_stack_rejected(self, runtime):
        block = runtime.alloc_shared(make_block(), unit_id=0)
        with pytest.raises(CommunicationError):
            runtime.read(block, unit_id=7)

    def test_write_updates_payload(self, runtime):
        block = runtime.alloc_shared(make_block(seed=1), unit_id=0)
        replacement = make_block(seed=2)
        runtime.write(block, replacement, unit_id=0)
        restored = runtime.read(block, unit_id=0)
        assert np.allclose(restored.projectors, replacement.projectors)

    def test_write_size_mismatch_rejected(self, runtime):
        block = runtime.alloc_shared(make_block(n_pw=16), unit_id=0)
        with pytest.raises(AllocationError):
            runtime.write(block, make_block(n_pw=32), unit_id=0)


class TestRemote:
    def test_read_remote_returns_data(self, runtime):
        original = make_block(seed=9)
        block = runtime.alloc_shared(original, unit_id=0)
        restored = runtime.read_remote(block, unit_id=7)  # stack 3
        assert np.allclose(restored.projectors, original.projectors)
        assert runtime.comm.inter_stack_bytes == block.length

    def test_second_remote_read_filtered(self, runtime):
        block = runtime.alloc_shared(make_block(), unit_id=0)
        runtime.read_remote(block, unit_id=7)
        before = runtime.comm.inter_stack_bytes
        runtime.read_remote(block, unit_id=6)  # same stack 3: staged copy
        assert runtime.comm.inter_stack_bytes == before
        assert runtime.comm.filtered_requests == 1

    def test_write_remote_invalidates_staged_copies(self, runtime):
        block = runtime.alloc_shared(make_block(seed=1), unit_id=0)
        runtime.read_remote(block, unit_id=7)      # stages in stack 3
        replacement = make_block(seed=2)
        runtime.write_remote(block, replacement, unit_id=7)
        # A fresh remote read must fetch the new payload over the mesh.
        before = runtime.comm.inter_stack_bytes
        restored = runtime.read_remote(block, unit_id=5)  # stack 2
        assert runtime.comm.inter_stack_bytes > before
        assert np.allclose(restored.projectors, replacement.projectors)

    def test_broadcast_registers_everywhere(self, runtime):
        block = runtime.alloc_shared(make_block(atom_index=4), unit_id=0)
        runtime.broadcast(block)
        for unit in range(runtime.n_units):
            assert runtime.table_of(unit).lookup(4) is block


class TestTopology:
    def test_unit_range_checked(self, runtime):
        with pytest.raises(CommunicationError):
            runtime.stack_of(99)

    def test_non_square_needs_explicit_mesh(self):
        with pytest.raises(CommunicationError):
            NdftSharedMemory(n_stacks=6, units_per_stack=2, capacity_per_stack=MiB)
        explicit = NdftSharedMemory(
            n_stacks=6,
            units_per_stack=2,
            capacity_per_stack=MiB,
            mesh=MeshNetwork(3, 2, 24e9, 40e-9),
        )
        assert explicit.n_units == 12


class TestArbiters:
    def test_intra_stack_free(self):
        comm = HierarchicalComm(mesh=MeshNetwork(2, 2, 24e9, 40e-9))
        t = comm.transfer(block_id=0, nbytes=1024, src_stack=1, dst_stack=1)
        assert t == 0.0
        assert comm.intra_stack_bytes == 1024
        assert comm.inter_stack_bytes == 0

    def test_inter_stack_charged_once(self):
        comm = HierarchicalComm(mesh=MeshNetwork(2, 2, 24e9, 40e-9))
        t1 = comm.transfer(0, 4096, src_stack=0, dst_stack=3)
        t2 = comm.transfer(0, 4096, src_stack=0, dst_stack=3)
        assert t1 > 0 and t2 == 0.0
        assert comm.inter_stack_bytes == 4096
        assert comm.filtered_requests == 1

    def test_locality_fraction(self):
        comm = HierarchicalComm(mesh=MeshNetwork(2, 2, 24e9, 40e-9))
        comm.transfer(0, 100, 0, 0)
        comm.transfer(1, 100, 0, 1)
        assert comm.locality_fraction() == pytest.approx(0.5)

    def test_arbiter_counters(self):
        arbiter = CommArbiter(stack_id=0)
        arbiter.record_request(2048)
        assert arbiter.requests_served == 1
        assert arbiter.bytes_forwarded == 2048

    def test_rejects_bad_transfer(self):
        comm = HierarchicalComm(mesh=MeshNetwork(2, 2, 24e9, 40e-9))
        with pytest.raises(CommunicationError):
            comm.transfer(0, 0, 0, 1)
